//! Example binaries live in `src/bin`.
