//! Example binaries live in `src/bin`.

use ic2_balance::DynamicBalancer;
use ic2_graph::Graph;
use ic2_partition::StaticPartitioner;
use ic2mpi::{try_run, NodeProgram, RunConfig, RunReport};

/// Run the platform like [`ic2mpi::run`], but report configuration
/// mistakes as the typed [`ic2mpi::PlatformError`] on stderr and exit 2
/// instead of unwinding with a panic backtrace. Every example binary goes
/// through this wrapper.
pub fn run_reported<P, S, B, F>(
    graph: &Graph,
    program: &P,
    partitioner: &S,
    make_balancer: F,
    cfg: &RunConfig,
) -> RunReport<P::Data>
where
    P: NodeProgram,
    S: StaticPartitioner + ?Sized,
    B: DynamicBalancer,
    F: Fn() -> B + Sync,
{
    try_run(graph, program, partitioner, make_balancer, cfg).unwrap_or_else(|e| {
        eprintln!("error: {e:?}: {e}");
        std::process::exit(2);
    })
}
