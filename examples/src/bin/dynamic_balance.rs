//! Dynamic load balancing in action: a runtime hot region no static
//! partitioner can anticipate, corrected on the fly by task migration.
//!
//! ```text
//! cargo run -p ic2-examples --release --bin dynamic_balance
//! ```

use ic2_examples::run_reported;
use ic2mpi::prelude::*;
use ic2mpi::Phase;

fn main() {
    let graph = ic2_graph::generators::hex_grid_n(96);
    // Half the domain turns out to be 100x more expensive at run time —
    // Metis partitioned for uniform weights and cannot know.
    let program = AvgProgram::persistent();
    let iters = 25;

    println!("96-node hex grid, persistent runtime hot region, {iters} iterations\n");
    println!(
        "  {:>5} {:>12} {:>12} {:>11} {:>11}",
        "procs", "static (s)", "dynamic (s)", "improvement", "migrations"
    );
    for procs in [2, 4, 8, 16] {
        let static_run = run_reported(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &RunConfig::new(procs, iters),
        );
        let dynamic_cfg = RunConfig::new(procs, iters)
            .with_balancing(10)
            .with_balance_offset(5)
            .with_migration_batch(12)
            .with_migrant_policy(MigrantPolicy::LoadAware);
        let dynamic_run = run_reported(
            &graph,
            &program,
            &Metis::default(),
            || Diffusion { threshold: 0.10 },
            &dynamic_cfg,
        );
        println!(
            "  {procs:>5} {:>12.4} {:>12.4} {:>10.1}% {:>11}",
            static_run.total_time,
            dynamic_run.total_time,
            100.0 * (1.0 - dynamic_run.total_time / static_run.total_time),
            dynamic_run.migrations,
        );
    }

    // Show where the time goes with and without balancing at 8 procs.
    let static_run = run_reported(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, iters),
    );
    let dynamic_run = run_reported(
        &graph,
        &program,
        &Metis::default(),
        || Diffusion { threshold: 0.10 },
        &RunConfig::new(8, iters)
            .with_balancing(10)
            .with_balance_offset(5)
            .with_migration_batch(12)
            .with_migrant_policy(MigrantPolicy::LoadAware),
    );
    println!("\nphase breakdown at 8 processors (mean seconds per rank):");
    println!("  {:<32} {:>9} {:>9}", "phase", "static", "dynamic");
    for phase in Phase::ALL {
        println!(
            "  {:<32} {:>9.4} {:>9.4}",
            phase.label(),
            static_run.mean_timers().get(phase),
            dynamic_run.mean_timers().get(phase),
        );
    }
}
