//! Quickstart: parallelise a sequential iterative computation in a few
//! lines — the thesis's Goal 2a.
//!
//! ```text
//! cargo run -p ic2-examples --bin quickstart
//! ```

use ic2_examples::run_reported;
use ic2mpi::prelude::*;
use ic2mpi::seq;

fn main() {
    // 1. The application program graph: a 64-node hexagonal grid.
    let graph = ic2_graph::generators::hex_grid_n(64);

    // 2. The node computation: neighbour averaging with a 0.3 ms grain —
    //    the thesis's generic fine-grained workload. Your own application
    //    implements `NodeProgram` instead.
    let program = AvgProgram::fine();

    // 3. Reference run: the plain sequential execution.
    let sequential = seq::run_sequential(&graph, &program, 20);

    // 4. Parallel run: pick a processor count and a static partitioner —
    //    no MPI code, no changes to the node computation.
    let t1 = run_reported(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(1, 20),
    );
    println!("  1 processor : {:.4}s", t1.total_time);
    for procs in [2, 4, 8, 16] {
        let cfg = RunConfig::new(procs, 20);
        let report = run_reported(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
        assert_eq!(
            report.final_data, sequential,
            "parallel must match sequential"
        );
        println!(
            "  {procs:>2} processors: {:.4}s  (speedup {:.2}, {} shadow bytes moved)",
            report.total_time,
            t1.total_time / report.total_time,
            report.comm.iter().map(|c| c.bytes_sent).sum::<u64>(),
        );
    }
    println!("results verified identical to the sequential execution");
}
