//! The platform as a partitioning test-bed (the thesis's Goal 3): plug in
//! a *custom* partitioner, execute it against the built-ins on real
//! workloads, and compare measured execution times — not analytical
//! estimates.
//!
//! ```text
//! cargo run -p ic2-examples --release --bin partitioner_lab
//! ```

use ic2_examples::run_reported;
use ic2_graph::{metrics, Graph, Partition};
use ic2mpi::prelude::*;
use mpisim::NetModel;

/// A deliberately naive "researcher's first idea" partitioner: breadth-
/// first strips from node 0. Ten lines of code, instantly comparable
/// against Metis and PaGrid on actual executions.
struct BfsStrips;

impl StaticPartitioner for BfsStrips {
    fn name(&self) -> &'static str {
        "bfs-strips"
    }
    fn partition(&self, graph: &Graph, nparts: usize) -> Partition {
        let n = graph.num_nodes();
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0u32]);
        seen[0] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in graph.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
        // Unreached nodes (disconnected graphs) go at the end.
        for v in graph.nodes() {
            if !seen[v as usize] {
                order.push(v);
            }
        }
        let mut assignment = vec![0u32; n];
        for (i, v) in order.into_iter().enumerate() {
            assignment[v as usize] = (i * nparts / n) as u32;
        }
        Partition::new(assignment, nparts)
    }
}

fn main() {
    let graph = ic2_graph::generators::hex_grid(16, 16);
    let program = AvgProgram::fine();
    let procs = 8;
    let iters = 20;

    println!("256-node hex grid, {procs} processors, {iters} iterations, fine grain\n");
    println!(
        "  {:<12} {:>8} {:>10} {:>10} {:>12}",
        "partitioner", "cut", "imbalance", "time (s)", "vs metis"
    );

    let partitioners: Vec<Box<dyn StaticPartitioner + Sync>> = vec![
        Box::new(Metis::default()),
        Box::new(PaGrid::default()),
        Box::new(BfsStrips),
        Box::new(ic2_partition::simple::RoundRobin),
        Box::new(ic2_partition::simple::BlockPartition),
        Box::new(ic2_partition::simple::RandomPartition { seed: 42 }),
    ];

    let mut metis_time = None;
    for p in &partitioners {
        let part = p.partition(&graph, procs);
        // A slow (grid/WAN-like) interconnect makes partition quality the
        // first-order effect, as on the thesis's target platforms.
        let cfg =
            RunConfig::new(procs, iters).with_world(mpisim::Config::virtual_time(NetModel::wan()));
        let report = run_reported(&graph, &program, p.as_ref(), || NoBalancer, &cfg);
        let base = *metis_time.get_or_insert(report.total_time);
        println!(
            "  {:<12} {:>8} {:>10.3} {:>10.4} {:>11.2}x",
            p.name(),
            metrics::edge_cut(&graph, &part),
            metrics::imbalance(&graph, &part),
            report.total_time,
            report.total_time / base,
        );
    }
    println!(
        "\nat this fine grain the balance factor dominates; the cut shows up in the\n\
         random partition's 17% penalty — exactly the measured-not-estimated\n\
         comparison the platform exists to provide"
    );
}
