//! A domain application written against the platform from scratch: 2-D
//! heat diffusion on a torus, with fixed-point temperatures.
//!
//! Demonstrates implementing [`NodeProgram`] for your own node data and
//! physics: the platform handles partitioning, ghost exchange and load
//! balancing; the application only writes the per-node update rule.
//!
//! ```text
//! cargo run -p ic2-examples --bin heat_diffusion
//! ```

use ic2_examples::run_reported;
use ic2_graph::{Graph, NodeId};
use ic2mpi::prelude::*;
use ic2mpi::seq;

/// Temperatures in milli-kelvin fixed point, so parallel and sequential
/// runs agree exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Heat(i64);

impl mpisim::Wire for Heat {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, mpisim::WireError> {
        Ok(Heat(i64::decode(buf)?))
    }
}

/// Explicit diffusion: `T' = T + α (mean(neighbours) - T)`, with α = 1/4
/// in fixed point.
struct Diffusion2D {
    /// Hot-spot node (heat source held at a fixed temperature).
    source: NodeId,
    /// Source temperature, milli-kelvin.
    source_temp: i64,
}

impl NodeProgram for Diffusion2D {
    type Data = Heat;

    fn init(&self, node: NodeId, _graph: &Graph) -> Heat {
        Heat(if node == self.source {
            self.source_temp
        } else {
            0
        })
    }

    fn compute(
        &self,
        node: NodeId,
        own: &Heat,
        neighbors: &[NeighborData<'_, Heat>],
        _ctx: &ComputeCtx,
    ) -> Heat {
        if node == self.source {
            return Heat(self.source_temp); // boundary condition
        }
        if neighbors.is_empty() {
            return *own;
        }
        let mean: i64 = neighbors.iter().map(|n| n.data.0).sum::<i64>() / neighbors.len() as i64;
        Heat(own.0 + (mean - own.0) / 4)
    }

    fn cost(&self, _node: NodeId, _own: &Heat, _ctx: &ComputeCtx) -> f64 {
        120e-6
    }
}

fn main() {
    let graph = ic2_graph::generators::torus(16, 16);
    let program = Diffusion2D {
        source: (8 * 16 + 8) as NodeId,
        source_temp: 1_000_000,
    };
    let steps = 60;

    let oracle = seq::run_sequential(&graph, &program, steps);
    let report = run_reported(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, steps),
    );
    assert_eq!(report.final_data, oracle);

    // Temperature profile along the source row.
    println!("heat along row 8 after {steps} steps (mK):");
    for c in 0..16 {
        let t = report.final_data[8 * 16 + c].0;
        println!(
            "  col {c:>2}: {t:>8}  {}",
            "#".repeat((t / 12_000) as usize)
        );
    }
    let warmed = report.final_data.iter().filter(|h| h.0 > 0).count();
    println!(
        "{warmed}/{} cells warmed; simulated time {:.3}s on 8 processors",
        graph.num_nodes(),
        report.total_time
    );
}
