//! Cellular automaton on the platform: Conway's Game of Life.
//!
//! The thesis's introduction names cellular automata as a member of the
//! target application class; this example runs Life on a torus (8
//! neighbours per cell via a Moore-neighbourhood graph) and checks a
//! glider walks across the field identically in sequential and parallel
//! executions.
//!
//! ```text
//! cargo run -p ic2-examples --release --bin cellular
//! ```

use ic2_examples::run_reported;
use ic2_graph::{Graph, GraphBuilder, NodeId};
use ic2mpi::prelude::*;
use ic2mpi::seq;

/// Moore-neighbourhood torus: every cell adjacent to its 8 surrounding
/// cells (wrap-around).
fn life_grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::new(rows * cols);
    let mut seen = std::collections::HashSet::new();
    for r in 0..rows {
        for c in 0..cols {
            for dr in [-1i64, 0, 1] {
                for dc in [-1i64, 0, 1] {
                    if dr == 0 && dc == 0 {
                        continue;
                    }
                    let nr = ((r as i64 + dr).rem_euclid(rows as i64)) as usize;
                    let nc = ((c as i64 + dc).rem_euclid(cols as i64)) as usize;
                    let (a, z) = (id(r, c), id(nr, nc));
                    if a != z && seen.insert((a.min(z), a.max(z))) {
                        b.edge(a.min(z), a.max(z));
                    }
                }
            }
        }
    }
    b.build()
}

/// Conway's rules as a node program: state is 0 (dead) or 1 (alive).
struct Life {
    seed_cells: Vec<NodeId>,
}

impl NodeProgram for Life {
    type Data = u8;

    fn init(&self, node: NodeId, _graph: &Graph) -> u8 {
        u8::from(self.seed_cells.contains(&node))
    }

    fn compute(
        &self,
        _node: NodeId,
        own: &u8,
        neighbors: &[NeighborData<'_, u8>],
        _ctx: &ComputeCtx,
    ) -> u8 {
        let alive: u8 = neighbors.iter().map(|n| *n.data).sum();
        match (*own, alive) {
            (1, 2) | (1, 3) | (0, 3) => 1,
            _ => 0,
        }
    }

    fn cost(&self, _node: NodeId, own: &u8, _ctx: &ComputeCtx) -> f64 {
        // Live regions cost more (rule evaluation + bookkeeping) — another
        // runtime load pattern static partitioning cannot predict.
        40e-6 + 60e-6 * f64::from(*own)
    }
}

fn render(cells: &[u8], rows: usize, cols: usize) -> String {
    let mut out = String::new();
    for r in 0..rows {
        out.push_str("  ");
        for c in 0..cols {
            out.push(if cells[r * cols + c] == 1 { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

fn main() {
    let (rows, cols) = (16, 16);
    let graph = life_grid(rows, cols);
    // A glider in the top-left corner.
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let life = Life {
        seed_cells: vec![id(0, 1), id(1, 2), id(2, 0), id(2, 1), id(2, 2)],
    };

    let steps = 24; // a glider moves one diagonal cell every 4 steps
    let oracle = seq::run_sequential(&graph, &life, steps);
    let report = run_reported(
        &graph,
        &life,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, steps),
    );
    assert_eq!(
        report.final_data, oracle,
        "parallel Life must match sequential"
    );

    println!("glider after {steps} steps on 8 simulated processors:");
    println!("{}", render(&report.final_data, rows, cols));
    let population: u32 = report.final_data.iter().map(|&c| c as u32).sum();
    println!(
        "population {population} (a glider stays at 5), simulated time {:.3}s",
        report.total_time
    );
    assert_eq!(population, 5, "the glider must survive intact");
}
