//! The thesis's flagship application: the 32×32 battlefield management
//! simulation, run across every static partitioning scheme of §5.3.
//!
//! ```text
//! cargo run -p ic2-examples --release --bin battlefield
//! ```

use ic2_battlefield::{BattleStats, BattlefieldProgram, Scenario};
use ic2_examples::run_reported;
use ic2_partition::bands::{ColumnBand, RectangularBand, RowBand};
use ic2_partition::graycode::GrayCodeBf;
use ic2mpi::prelude::*;

fn main() {
    let program = BattlefieldProgram::new(&Scenario::thesis());
    let graph = program.terrain();
    let steps = 25;

    println!("32x32 battlefield, {steps} steps, 8 processors\n");
    let partitioners: Vec<Box<dyn StaticPartitioner + Sync>> = vec![
        Box::new(Metis::default()),
        Box::new(GrayCodeBf),
        Box::new(RowBand),
        Box::new(ColumnBand),
        Box::new(RectangularBand),
    ];

    let mut outcome = None;
    for partitioner in &partitioners {
        let report = run_reported(
            &graph,
            &program,
            partitioner.as_ref(),
            || NoBalancer,
            &RunConfig::new(8, steps),
        );
        let cut = ic2_graph::metrics::edge_cut(&graph, &report.initial_partition);
        println!(
            "  {:<12} time {:.3}s   edge-cut {cut:>5}   shadow bytes {:>9}",
            partitioner.name(),
            report.total_time,
            report.comm.iter().map(|c| c.bytes_sent).sum::<u64>(),
        );
        // Every partitioner computes the identical battle.
        match &outcome {
            None => outcome = Some(report.final_data),
            Some(prev) => assert_eq!(prev, &report.final_data, "{}", partitioner.name()),
        }
    }

    let stats = BattleStats::from_cells(outcome.as_ref().unwrap());
    println!("\nafter {steps} steps:");
    println!(
        "  red : {:>4} units, strength {:>6}, losses {}",
        stats.units[0], stats.strength[0], stats.destroyed[0]
    );
    println!(
        "  blue: {:>4} units, strength {:>6}, losses {}",
        stats.units[1], stats.strength[1], stats.destroyed[1]
    );
    println!(
        "  {} occupied cells, {} in contact, hottest cell holds {} units",
        stats.occupied_cells, stats.contact_cells, stats.max_units_per_cell
    );
}
