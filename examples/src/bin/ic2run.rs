//! Command-line platform driver — the analogue of the thesis's
//! `mpirun -np num_procs MPIFramework $program_graph`.
//!
//! ```text
//! ic2run <graph> [--procs N] [--iters N] [--partitioner NAME]
//!                [--grain fine|coarse|shifting|persistent]
//!                [--balance EVERY] [--overlap] [--phase-report]
//!
//! <graph>:  path to a Chaco file, or one of
//!           hex:<N>  random:<N>[:SEED]  battlefield
//! ```
//!
//! Examples:
//! ```text
//! cargo run -p ic2-examples --release --bin ic2run -- hex:64 --procs 8 --iters 20
//! cargo run -p ic2-examples --release --bin ic2run -- graph.chaco --partitioner pagrid
//! cargo run -p ic2-examples --release --bin ic2run -- battlefield --procs 16 --iters 25
//! ```

use ic2_battlefield::{BattlefieldProgram, Scenario};
use ic2_examples::run_reported;
use ic2_graph::Graph;
use ic2mpi::prelude::*;
use ic2mpi::Phase;

struct Args {
    graph: String,
    procs: usize,
    iters: u32,
    partitioner: String,
    grain: String,
    balance: Option<u32>,
    overlap: bool,
    phase_report: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        graph: String::new(),
        procs: 4,
        iters: 20,
        partitioner: "metis".into(),
        grain: "fine".into(),
        balance: None,
        overlap: false,
        phase_report: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--procs" => args.procs = value("--procs")?.parse().map_err(|e| format!("{e}"))?,
            "--iters" => args.iters = value("--iters")?.parse().map_err(|e| format!("{e}"))?,
            "--partitioner" => args.partitioner = value("--partitioner")?,
            "--grain" => args.grain = value("--grain")?,
            "--balance" => {
                args.balance = Some(value("--balance")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--overlap" => args.overlap = true,
            "--phase-report" => args.phase_report = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other if args.graph.is_empty() => args.graph = other.to_string(),
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    if args.graph.is_empty() {
        return Err("missing <graph> argument".into());
    }
    Ok(args)
}

fn load_graph(spec: &str) -> Result<Graph, String> {
    if let Some(n) = spec.strip_prefix("hex:") {
        let n: usize = n.parse().map_err(|e| format!("bad hex size: {e}"))?;
        return Ok(ic2_graph::generators::hex_grid_n(n));
    }
    if let Some(rest) = spec.strip_prefix("random:") {
        let mut parts = rest.split(':');
        let n: usize = parts
            .next()
            .unwrap_or_default()
            .parse()
            .map_err(|e| format!("bad random size: {e}"))?;
        let seed: u64 = parts
            .next()
            .map(|s| s.parse().map_err(|e| format!("bad seed: {e}")))
            .transpose()?
            .unwrap_or(0);
        return Ok(ic2_graph::generators::thesis_random_graph(n, seed));
    }
    ic2_graph::chaco::read_file(std::path::Path::new(spec))
        .map_err(|e| format!("cannot read {spec}: {e}"))
}

fn make_partitioner(name: &str) -> Result<Box<dyn StaticPartitioner + Sync>, String> {
    Ok(match name {
        "metis" => Box::new(Metis::default()),
        "pagrid" => Box::new(PaGrid::default()),
        "row" => Box::new(ic2_partition::bands::RowBand),
        "column" => Box::new(ic2_partition::bands::ColumnBand),
        "rect" => Box::new(ic2_partition::bands::RectangularBand),
        "graycode" => Box::new(ic2_partition::graycode::GrayCodeBf),
        "hilbert" => Box::new(ic2_partition::sfc::HilbertCurve::default()),
        "spectral" => Box::new(ic2_partition::spectral::Spectral::default()),
        "roundrobin" => Box::new(ic2_partition::simple::RoundRobin),
        "block" => Box::new(ic2_partition::simple::BlockPartition),
        other => return Err(format!("unknown partitioner {other}")),
    })
}

fn report<D>(args: &Args, report: &RunReport<D>) {
    println!(
        "time elapsed = {:.6}s  ({} procs, {} iters, {} partitioner, {} migrations)",
        report.total_time, args.procs, args.iters, args.partitioner, report.migrations
    );
    let bytes: u64 = report.comm.iter().map(|c| c.bytes_sent).sum();
    let msgs: u64 = report.comm.iter().map(|c| c.msgs_sent).sum();
    println!("communication: {msgs} messages, {bytes} payload bytes");
    if args.phase_report {
        println!("phase breakdown (mean seconds per rank):");
        let timers = report.mean_timers();
        for phase in Phase::ALL {
            println!("  {:<32} {:.6}", phase.label(), timers.get(phase));
        }
    }
}

fn run_generic(args: &Args, graph: &Graph) -> Result<(), String> {
    let program = match args.grain.as_str() {
        "fine" => AvgProgram::fine(),
        "coarse" => AvgProgram::coarse(),
        "shifting" => AvgProgram::shifting(),
        "persistent" => AvgProgram::persistent(),
        other => return Err(format!("unknown grain {other}")),
    };
    let partitioner = make_partitioner(&args.partitioner)?;
    let mut cfg = RunConfig::new(args.procs, args.iters);
    if let Some(every) = args.balance {
        cfg = cfg
            .with_balancing(every)
            .with_balance_offset(every / 2)
            .with_migration_batch(12)
            .with_migrant_policy(MigrantPolicy::LoadAware);
    }
    if args.overlap {
        cfg = cfg.with_exchange(ExchangeMode::Overlap);
    }
    // With `--balance` unset, `balance_every` is `None` and the balancer
    // is never consulted, so one balancer type covers both modes.
    let r = run_reported(
        graph,
        &program,
        partitioner.as_ref(),
        || Diffusion { threshold: 0.10 },
        &cfg,
    );
    report(args, &r);
    Ok(())
}

fn run_battlefield(args: &Args) -> Result<(), String> {
    let program = BattlefieldProgram::new(&Scenario::thesis());
    let graph = program.terrain();
    let partitioner = make_partitioner(&args.partitioner)?;
    let mut cfg = RunConfig::new(args.procs, args.iters);
    if args.overlap {
        cfg = cfg.with_exchange(ExchangeMode::Overlap);
    }
    let r = run_reported(&graph, &program, partitioner.as_ref(), || NoBalancer, &cfg);
    let stats = ic2_battlefield::BattleStats::from_cells(&r.final_data);
    report(args, &r);
    println!(
        "battle: red {} units / blue {} units alive, {} destroyed total",
        stats.units[0],
        stats.units[1],
        stats.total_destroyed()
    );
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: ic2run <chaco-file|hex:N|random:N[:SEED]|battlefield> \
                 [--procs N] [--iters N] [--partitioner NAME] \
                 [--grain fine|coarse|shifting|persistent] [--balance EVERY] \
                 [--overlap] [--phase-report]"
            );
            std::process::exit(2);
        }
    };
    let outcome = if args.graph == "battlefield" {
        run_battlefield(&args)
    } else {
        match load_graph(&args.graph) {
            Ok(graph) => run_generic(&args, &graph),
            Err(e) => Err(e),
        }
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
