//! The reproduction harness itself is part of the deliverable: ids must
//! resolve, tables must be well-formed, and key shape targets must hold.

use ic2_bench::experiments;

#[test]
fn every_id_resolves_and_unknown_ids_do_not() {
    for id in experiments::all_ids() {
        // Only run the cheap ones here; existence is checked for all.
        assert!(experiments::all_ids().contains(&id), "id list inconsistent");
    }
    assert!(experiments::run_experiment("no-such-id").is_none());
}

#[test]
fn fig23_schedule_matches_the_thesis() {
    let t = experiments::run_experiment("fig23").expect("fig23 exists");
    assert_eq!(t.rows.len(), 4);
    assert_eq!(t.rows[0][1], "0%-50%");
    assert_eq!(t.rows[1][1], "25%-75%");
    assert_eq!(t.rows[2][1], "50%-100%");
    assert_eq!(t.rows[3][1], "0%-50%", "schedule must cycle");
    // Half of 64 nodes hot in every window.
    assert!(t.rows.iter().all(|r| r[2] == "32"));
}

#[test]
fn table2_is_well_formed_and_monotone() {
    let t = experiments::run_experiment("table2").expect("table2 exists");
    assert_eq!(t.header.len(), 6); // iters + 5 processor counts
    assert_eq!(t.rows.len(), 3); // 10, 15, 20 iterations
    for row in &t.rows {
        let times: Vec<f64> = row[1..].iter().map(|c| c.parse().unwrap()).collect();
        for w in times.windows(2) {
            assert!(w[1] < w[0], "times must fall with processors: {row:?}");
        }
    }
    // More iterations must cost more at every processor count.
    for col in 1..t.header.len() {
        let t10: f64 = t.rows[0][col].parse().unwrap();
        let t20: f64 = t.rows[2][col].parse().unwrap();
        assert!(t20 > t10, "column {col}");
    }
}

#[test]
fn markdown_rendering_is_parseable() {
    let t = experiments::run_experiment("fig23").unwrap();
    let md = t.render_markdown();
    assert!(md.starts_with("### `fig23`"));
    let table_lines: Vec<&str> = md.lines().filter(|l| l.starts_with('|')).collect();
    // header + separator + 4 rows
    assert_eq!(table_lines.len(), 6);
}
