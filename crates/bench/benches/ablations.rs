//! Ablation benches for the design choices DESIGN.md calls out. These
//! measure the simulator's real-time cost of each configuration; the
//! *virtual-time* effect of each choice (what the thesis would measure) is
//! reported by `repro ablations`.

use ic2_bench::harness::{bench, header};
use ic2mpi::prelude::*;
use ic2mpi::NodeTable;
use std::hint::black_box;

/// Figure 8 vs Figure 8a: post-communication vs overlapped exchange.
fn ablation_overlap() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    header("ablation_overlap");
    for (name, mode) in [
        ("postcomm", ExchangeMode::PostComm),
        ("overlap", ExchangeMode::Overlap),
    ] {
        bench(name, 10, || {
            run(
                &graph,
                &program,
                &Metis::default(),
                || NoBalancer,
                &RunConfig::new(8, 20).with_exchange(mode),
            )
        });
    }
}

/// Balancer threshold sensitivity (thesis fixes 25%).
fn ablation_threshold() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::persistent();
    header("ablation_threshold");
    for (name, threshold) in [("t10", 0.10), ("t25", 0.25), ("t50", 0.50)] {
        bench(name, 10, || {
            run(
                &graph,
                &program,
                &Metis::default(),
                || Diffusion { threshold },
                &RunConfig::new(8, 25)
                    .with_balancing(10)
                    .with_balance_offset(5)
                    .with_migration_batch(8)
                    .with_migrant_policy(MigrantPolicy::LoadAware),
            )
        });
    }
}

/// One task per pair per round (thesis) vs multi-task batches (§7).
fn ablation_batch() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::persistent();
    header("ablation_batch");
    for (name, batch) in [("batch1", 1u32), ("batch4", 4), ("batch12", 12)] {
        bench(name, 10, || {
            run(
                &graph,
                &program,
                &Metis::default(),
                || Diffusion { threshold: 0.10 },
                &RunConfig::new(8, 25)
                    .with_balancing(10)
                    .with_balance_offset(5)
                    .with_migration_batch(batch)
                    .with_migrant_policy(MigrantPolicy::LoadAware),
            )
        });
    }
}

/// The [PSC95] claim behind the thesis's hash table: bucketed access vs a
/// linear scan of the data-node list.
fn ablation_hashtab() {
    let n = 1024u32;
    header("ablation_hashtab");
    for buckets in [1usize, 10, 64, 512] {
        let mut table = NodeTable::new(buckets);
        for id in 0..n {
            table.insert(id, id as i64);
        }
        bench(&format!("lookup_1024_buckets{buckets}"), 100, || {
            let mut acc = 0i64;
            for id in 0..n {
                acc += *table.get(black_box(id)).unwrap();
            }
            acc
        });
    }
    // The true linear-scan baseline: an unindexed data-node list.
    let list: Vec<(u32, i64)> = (0..n).map(|id| (id, id as i64)).collect();
    bench("lookup_1024_linear_scan", 100, || {
        let mut acc = 0i64;
        for id in 0..n {
            acc += list.iter().find(|(k, _)| *k == black_box(id)).unwrap().1;
        }
        acc
    });
}

fn main() {
    ablation_overlap();
    ablation_threshold();
    ablation_batch();
    ablation_hashtab();
}
