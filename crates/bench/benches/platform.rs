//! End-to-end platform throughput: how fast the simulator executes the
//! thesis workloads (real time, not virtual time).

use criterion::{criterion_group, criterion_main, Criterion};
use ic2_battlefield::{BattlefieldProgram, Scenario};
use ic2mpi::prelude::*;
use ic2mpi::NodeStore;

fn bench_runs(c: &mut Criterion) {
    let hex64 = ic2_graph::generators::hex_grid_n(64);
    let fine = AvgProgram::fine();
    let mut g = c.benchmark_group("platform");
    g.sample_size(10);
    g.bench_function("hex64_fine_20iters_8procs", |b| {
        b.iter(|| {
            run(
                &hex64,
                &fine,
                &Metis::default(),
                || NoBalancer,
                &RunConfig::new(8, 20),
            )
        })
    });
    let shifting = AvgProgram::shifting();
    g.bench_function("hex64_dynamic_25iters_8procs", |b| {
        b.iter(|| {
            run(
                &hex64,
                &shifting,
                &Metis::default(),
                CentralizedHeuristic::default,
                &RunConfig::new(8, 25).with_balancing(10),
            )
        })
    });
    let bf = BattlefieldProgram::new(&Scenario::thesis());
    let terrain = bf.terrain();
    g.bench_function("battlefield_5steps_8procs", |b| {
        b.iter(|| {
            run(
                &terrain,
                &bf,
                &Metis::default(),
                || NoBalancer,
                &RunConfig::new(8, 5),
            )
        })
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    let battlefield = ic2_graph::generators::hex_grid(32, 32);
    let part = Metis::default().partition(&battlefield, 8);
    let program = AvgProgram::fine();
    let mut g = c.benchmark_group("store");
    g.bench_function("build_1024_nodes_8procs", |b| {
        b.iter(|| NodeStore::build(&battlefield, &part, 0, &program, 64))
    });
    let mut store = NodeStore::build(&battlefield, &part, 0, &program, 64);
    g.bench_function("rebuild_lists_1024", |b| {
        b.iter(|| store.rebuild_lists(&battlefield))
    });
    g.finish();
}

criterion_group!(benches, bench_runs, bench_store);
criterion_main!(benches);
