//! End-to-end platform throughput: how fast the simulator executes the
//! thesis workloads (real time, not virtual time).

use ic2_battlefield::{BattlefieldProgram, Scenario};
use ic2_bench::harness::{bench, header};
use ic2mpi::prelude::*;
use ic2mpi::NodeStore;

fn bench_runs() {
    let hex64 = ic2_graph::generators::hex_grid_n(64);
    let fine = AvgProgram::fine();
    header("platform");
    bench("hex64_fine_20iters_8procs", 10, || {
        run(
            &hex64,
            &fine,
            &Metis::default(),
            || NoBalancer,
            &RunConfig::new(8, 20),
        )
    });
    let shifting = AvgProgram::shifting();
    bench("hex64_dynamic_25iters_8procs", 10, || {
        run(
            &hex64,
            &shifting,
            &Metis::default(),
            CentralizedHeuristic::default,
            &RunConfig::new(8, 25).with_balancing(10),
        )
    });
    let bf = BattlefieldProgram::new(&Scenario::thesis());
    let terrain = bf.terrain();
    bench("battlefield_5steps_8procs", 10, || {
        run(
            &terrain,
            &bf,
            &Metis::default(),
            || NoBalancer,
            &RunConfig::new(8, 5),
        )
    });
}

fn bench_store() {
    let battlefield = ic2_graph::generators::hex_grid(32, 32);
    let part = Metis::default().partition(&battlefield, 8);
    let program = AvgProgram::fine();
    header("store");
    bench("build_1024_nodes_8procs", 100, || {
        NodeStore::build(&battlefield, &part, 0, &program, 64)
    });
    let mut store = NodeStore::build(&battlefield, &part, 0, &program, 64);
    bench("rebuild_lists_1024", 100, || {
        store.rebuild_lists(&battlefield)
    });
}

fn main() {
    bench_runs();
    bench_store();
}
