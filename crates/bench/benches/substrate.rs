//! Microbenchmarks of the message-passing substrate: codec throughput,
//! world spin-up, point-to-point and collective operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mpisim::{Config, NetModel, Wire, World};
use std::hint::black_box;

fn shadow_buffer(n: usize) -> Vec<(u32, i64)> {
    (0..n as u32).map(|i| (i, i as i64 * 31)).collect()
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let buf = shadow_buffer(64);
    g.bench_function("encode_shadow_buffer_64", |b| {
        b.iter(|| black_box(&buf).to_bytes())
    });
    let bytes = buf.to_bytes();
    g.bench_function("decode_shadow_buffer_64", |b| {
        b.iter(|| Vec::<(u32, i64)>::from_bytes(black_box(&bytes)).unwrap())
    });
    g.finish();
}

fn bench_world(c: &mut Criterion) {
    let mut g = c.benchmark_group("world");
    g.sample_size(20);
    let cfg = Config::virtual_time(NetModel::origin2000());
    g.bench_function("spawn_join_8_ranks", |b| {
        b.iter(|| World::new(cfg.clone()).run(8, |rank| rank.rank()))
    });
    g.bench_function("ring_100_messages_4_ranks", |b| {
        b.iter(|| {
            World::new(cfg.clone()).run(4, |rank| {
                let right = (rank.rank() + 1) % rank.size();
                let left = (rank.rank() + rank.size() - 1) % rank.size();
                let mut acc = 0u64;
                for i in 0..100u32 {
                    rank.send(right, i, &(i as u64));
                    acc += rank.recv::<u64>(left, i);
                }
                acc
            })
        })
    });
    g.bench_function("barrier_100x_8_ranks", |b| {
        b.iter(|| {
            World::new(cfg.clone()).run(8, |rank| {
                for _ in 0..100 {
                    rank.barrier();
                }
            })
        })
    });
    g.bench_function("bcast_gather_50x_8_ranks", |b| {
        b.iter(|| {
            World::new(cfg.clone()).run(8, |rank| {
                let mut acc = 0u64;
                for i in 0..50u64 {
                    let mut v = if rank.rank() == 0 { i } else { 0 };
                    rank.bcast(0, &mut v);
                    if let Some(all) = rank.gather(0, &v) {
                        acc += all.iter().sum::<u64>();
                    }
                }
                acc
            })
        })
    });
    g.finish();
}

fn bench_mailbox(c: &mut Criterion) {
    let mut g = c.benchmark_group("selfsend");
    let cfg = Config::virtual_time(NetModel::zero());
    g.sample_size(20);
    g.bench_function("send_recv_1000_self", |b| {
        b.iter_batched(
            || World::new(cfg.clone()),
            |world| {
                world.run(1, |rank| {
                    for i in 0..1000u32 {
                        rank.send(0, i % 7, &(i as u64));
                    }
                    let mut acc = 0u64;
                    for i in 0..1000u32 {
                        acc += rank.recv::<u64>(0, i % 7);
                    }
                    acc
                })
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_wire, bench_world, bench_mailbox);
criterion_main!(benches);
