//! Microbenchmarks of the message-passing substrate: codec throughput,
//! world spin-up, point-to-point and collective operations.

use ic2_bench::harness::{bench, header};
use mpisim::{Config, NetModel, Wire, World};
use std::hint::black_box;

fn shadow_buffer(n: usize) -> Vec<(u32, i64)> {
    (0..n as u32).map(|i| (i, i as i64 * 31)).collect()
}

fn bench_wire() {
    header("wire");
    let buf = shadow_buffer(64);
    bench("encode_shadow_buffer_64", 1000, || {
        black_box(&buf).to_bytes()
    });
    let bytes = buf.to_bytes();
    bench("decode_shadow_buffer_64", 1000, || {
        Vec::<(u32, i64)>::from_bytes(black_box(&bytes)).unwrap()
    });
}

fn bench_world() {
    header("world");
    let cfg = Config::virtual_time(NetModel::origin2000());
    bench("spawn_join_8_ranks", 20, || {
        World::new(cfg.clone()).run(8, |rank| rank.rank())
    });
    bench("ring_100_messages_4_ranks", 20, || {
        World::new(cfg.clone()).run(4, |rank| {
            let right = (rank.rank() + 1) % rank.size();
            let left = (rank.rank() + rank.size() - 1) % rank.size();
            let mut acc = 0u64;
            for i in 0..100u32 {
                rank.send(right, i, &(i as u64));
                acc += rank.recv::<u64>(left, i);
            }
            acc
        })
    });
    bench("barrier_100x_8_ranks", 20, || {
        World::new(cfg.clone()).run(8, |rank| {
            for _ in 0..100 {
                rank.barrier();
            }
        })
    });
    bench("bcast_gather_50x_8_ranks", 20, || {
        World::new(cfg.clone()).run(8, |rank| {
            let mut acc = 0u64;
            for i in 0..50u64 {
                let mut v = if rank.rank() == 0 { i } else { 0 };
                rank.bcast(0, &mut v);
                if let Some(all) = rank.gather(0, &v) {
                    acc += all.iter().sum::<u64>();
                }
            }
            acc
        })
    });
}

fn bench_mailbox() {
    header("selfsend");
    let cfg = Config::virtual_time(NetModel::zero());
    bench("send_recv_1000_self", 20, || {
        World::new(cfg.clone()).run(1, |rank| {
            for i in 0..1000u32 {
                rank.send(0, i % 7, &(i as u64));
            }
            let mut acc = 0u64;
            for i in 0..1000u32 {
                acc += rank.recv::<u64>(0, i % 7);
            }
            acc
        })
    });
}

fn main() {
    bench_wire();
    bench_world();
    bench_mailbox();
}
