//! Partitioner throughput on thesis-scale and larger graphs.

use ic2_bench::harness::{bench, header};
use ic2_graph::generators;
use ic2_partition::bands::{RectangularBand, RowBand};
use ic2_partition::graycode::GrayCodeBf;
use ic2_partition::metis::Metis;
use ic2_partition::pagrid::PaGrid;
use ic2_partition::StaticPartitioner;
use std::hint::black_box;

fn bench_partitioners() {
    let battlefield = generators::hex_grid(32, 32);
    let big_random = generators::random_connected(1024, 4.0, 10, 7);
    let hex64 = generators::hex_grid_n(64);

    header("partition");
    bench("metis_hex64_k8", 20, || {
        Metis::default().partition(black_box(&hex64), 8)
    });
    bench("metis_battlefield_k16", 20, || {
        Metis::default().partition(black_box(&battlefield), 16)
    });
    bench("metis_random1024_k16", 20, || {
        Metis::default().partition(black_box(&big_random), 16)
    });
    bench("pagrid_battlefield_k16", 20, || {
        PaGrid::default().partition(black_box(&battlefield), 16)
    });
    bench("rowband_battlefield_k16", 20, || {
        RowBand.partition(black_box(&battlefield), 16)
    });
    bench("rect_battlefield_k16", 20, || {
        RectangularBand.partition(black_box(&battlefield), 16)
    });
    bench("graycode_battlefield_k16", 20, || {
        GrayCodeBf.partition(black_box(&battlefield), 16)
    });
}

fn bench_generators() {
    header("generate");
    bench("hex_grid_32x32", 100, || generators::hex_grid(32, 32));
    bench("random_1024_deg4", 100, || {
        generators::random_connected(1024, 4.0, 10, 7)
    });
}

fn main() {
    bench_partitioners();
    bench_generators();
}
