//! Partitioner throughput on thesis-scale and larger graphs.

use criterion::{criterion_group, criterion_main, Criterion};
use ic2_graph::generators;
use ic2_partition::bands::{RectangularBand, RowBand};
use ic2_partition::graycode::GrayCodeBf;
use ic2_partition::metis::Metis;
use ic2_partition::pagrid::PaGrid;
use ic2_partition::StaticPartitioner;
use std::hint::black_box;

fn bench_partitioners(c: &mut Criterion) {
    let battlefield = generators::hex_grid(32, 32);
    let big_random = generators::random_connected(1024, 4.0, 10, 7);
    let hex64 = generators::hex_grid_n(64);

    let mut g = c.benchmark_group("partition");
    g.sample_size(20);
    g.bench_function("metis_hex64_k8", |b| {
        b.iter(|| Metis::default().partition(black_box(&hex64), 8))
    });
    g.bench_function("metis_battlefield_k16", |b| {
        b.iter(|| Metis::default().partition(black_box(&battlefield), 16))
    });
    g.bench_function("metis_random1024_k16", |b| {
        b.iter(|| Metis::default().partition(black_box(&big_random), 16))
    });
    g.bench_function("pagrid_battlefield_k16", |b| {
        b.iter(|| PaGrid::default().partition(black_box(&battlefield), 16))
    });
    g.bench_function("rowband_battlefield_k16", |b| {
        b.iter(|| RowBand.partition(black_box(&battlefield), 16))
    });
    g.bench_function("rect_battlefield_k16", |b| {
        b.iter(|| RectangularBand.partition(black_box(&battlefield), 16))
    });
    g.bench_function("graycode_battlefield_k16", |b| {
        b.iter(|| GrayCodeBf.partition(black_box(&battlefield), 16))
    });
    g.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate");
    g.bench_function("hex_grid_32x32", |b| {
        b.iter(|| generators::hex_grid(32, 32))
    });
    g.bench_function("random_1024_deg4", |b| {
        b.iter(|| generators::random_connected(1024, 4.0, 10, 7))
    });
    g.finish();
}

criterion_group!(benches, bench_partitioners, bench_generators);
criterion_main!(benches);
