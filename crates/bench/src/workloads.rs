//! Shared workload construction for every experiment: the Section-5
//! parameters, centralised so tables and figures agree.

use ic2_battlefield::{BattlefieldProgram, Scenario};
use ic2_graph::Graph;
use ic2mpi::prelude::*;

/// Processor counts the thesis sweeps.
pub const PROCS: [usize; 5] = [1, 2, 4, 8, 16];

/// Iteration counts of the hex/random execution-time tables.
pub const TABLE_ITERS: [u32; 3] = [10, 15, 20];

/// Simulation steps of the battlefield tables.
pub const BF_STEPS: [u32; 3] = [5, 15, 25];

/// Seeds for the "five different graphs" the thesis averages random-graph
/// results over.
pub const RANDOM_SEEDS: [u64; 5] = [0, 1, 2, 3, 4];

/// A hex-grid workload of the thesis's sizes (32/64/96 nodes).
pub fn hex(n: usize) -> Graph {
    ic2_graph::generators::hex_grid_n(n)
}

/// One of the random-graph workloads.
pub fn random(n: usize, seed: u64) -> Graph {
    ic2_graph::generators::thesis_random_graph(n, seed)
}

/// The battlefield program on the thesis's 32×32 terrain.
pub fn battlefield() -> BattlefieldProgram {
    BattlefieldProgram::new(&Scenario::thesis())
}

/// A workload with a tunable fraction of *churning* nodes, built for the
/// delta-exchange experiment: a churner increments its value every
/// iteration (always dirty), every other node holds its value (always
/// clean after the initial sync). Which nodes churn is a deterministic
/// hash of the node id, so the dirty set is stable across runs and modes.
#[derive(Debug, Clone, Copy)]
pub struct ChurnProgram {
    /// Percentage (0–100) of nodes that change every iteration.
    pub churn_pct: u64,
}

impl ChurnProgram {
    fn is_churner(&self, node: ic2_graph::NodeId) -> bool {
        // splitmix64 finalizer: decorrelates the id from the grid layout.
        let mut z = node as u64 ^ 0x9e37_79b9_7f4a_7c15;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) % 100 < self.churn_pct
    }
}

impl NodeProgram for ChurnProgram {
    type Data = i64;
    fn init(&self, node: ic2_graph::NodeId, _graph: &Graph) -> i64 {
        node as i64 + 1
    }
    fn compute(
        &self,
        node: ic2_graph::NodeId,
        own: &i64,
        _neighbors: &[NeighborData<'_, i64>],
        _ctx: &ComputeCtx,
    ) -> i64 {
        if self.is_churner(node) {
            *own + 1
        } else {
            *own
        }
    }
}

/// Baseline static run configuration (virtual-time Origin-2000 model).
pub fn static_cfg(procs: usize, iters: u32) -> RunConfig {
    RunConfig::new(procs, iters)
}

/// The dynamic-balancing bundle used for the static-vs-dynamic figures:
/// balancer invoked every 10 steps as in the thesis, with the §7
/// extensions this reproduction needed to make migration effective
/// (mid-window trigger phase, multi-task batches, load-aware migrant
/// selection) — see EXPERIMENTS.md for the full discussion.
pub fn dynamic_cfg(procs: usize, iters: u32) -> RunConfig {
    RunConfig::new(procs, iters)
        .with_balancing(10)
        .with_balance_offset(5)
        .with_migration_batch(12)
        .with_migrant_policy(MigrantPolicy::LoadAware)
}

/// The dynamic balancer the figures use.
pub fn figure_balancer() -> Diffusion {
    Diffusion { threshold: 0.10 }
}

/// Run the platform like [`ic2mpi::run`], but report configuration
/// mistakes as the typed [`PlatformError`] on stderr and exit 2 instead of
/// unwinding with a panic backtrace. Every experiment goes through this
/// wrapper so `repro` fails cleanly on bad configurations.
pub fn run_reported<P, S, B, F>(
    graph: &Graph,
    program: &P,
    partitioner: &S,
    make_balancer: F,
    cfg: &RunConfig,
) -> RunReport<P::Data>
where
    P: NodeProgram,
    S: ic2_partition::StaticPartitioner + ?Sized,
    B: DynamicBalancer,
    F: Fn() -> B + Sync,
{
    try_run(graph, program, partitioner, make_balancer, cfg).unwrap_or_else(|e| {
        eprintln!("error: {e:?}: {e}");
        std::process::exit(2);
    })
}

/// Run a static AvgProgram workload and return total execution time.
pub fn run_static(graph: &Graph, program: &AvgProgram, procs: usize, iters: u32) -> f64 {
    run_reported(
        graph,
        program,
        &Metis::default(),
        || NoBalancer,
        &static_cfg(procs, iters),
    )
    .total_time
}

/// Average a closure over the five random-graph seeds.
pub fn mean_over_seeds(n: usize, mut f: impl FnMut(&Graph) -> f64) -> f64 {
    let total: f64 = RANDOM_SEEDS.iter().map(|&s| f(&random(n, s))).sum();
    total / RANDOM_SEEDS.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_sizes_match_thesis() {
        assert_eq!(hex(32).num_nodes(), 32);
        assert_eq!(hex(96).num_nodes(), 96);
        assert_eq!(random(64, 0).num_nodes(), 64);
        assert_eq!(battlefield().terrain().num_nodes(), 1024);
    }

    #[test]
    fn dynamic_cfg_enables_balancing() {
        let c = dynamic_cfg(8, 25);
        assert_eq!(c.balance_every, Some(10));
        assert!(c.migration_batch > 1);
    }
}
