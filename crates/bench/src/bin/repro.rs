//! Reproduction harness: regenerate every table and figure of the thesis.
//!
//! ```text
//! repro all                   # every artifact, thesis order
//! repro table3 fig20          # specific artifacts
//! repro --markdown all        # markdown output (EXPERIMENTS.md building block)
//! repro --json all            # one JSON object per artifact, one per line
//! repro --list                # available ids
//! repro --trace trace.json    # record the canonical chaos run (Perfetto)
//! repro --timeline tl.json    # per-iteration metrics timeline of that run
//! repro --check-trace t.json  # validate a recorded trace against the schema
//! ```

use ic2_bench::{experiments, trace_tools};

fn usage() {
    eprintln!(
        "usage: repro [--markdown|--json] [--trace <path>] [--timeline <path>] \
         [--check-trace <path>] <id...|all>"
    );
    eprintln!("available experiments:");
    for id in experiments::all_ids() {
        eprintln!("  {id}");
    }
}

fn main() {
    let mut markdown = false;
    let mut json = false;
    let mut list = false;
    let mut trace_path: Option<String> = None;
    let mut timeline_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_flag = |slot: &mut Option<String>, flag: &str| match args.next() {
            Some(p) => *slot = Some(p),
            None => {
                eprintln!("{flag} needs a file path");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--markdown" => markdown = true,
            "--json" => json = true,
            "--list" => list = true,
            "--trace" => path_flag(&mut trace_path, "--trace"),
            "--timeline" => path_flag(&mut timeline_path, "--timeline"),
            "--check-trace" => path_flag(&mut check_path, "--check-trace"),
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                usage();
                std::process::exit(2);
            }
            _ => ids.push(arg),
        }
    }

    let trace_work = check_path.is_some() || trace_path.is_some() || timeline_path.is_some();

    if let Some(path) = check_path {
        let content = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        match trace_tools::check_trace(&content) {
            Ok(s) => eprintln!(
                "{path}: ok — {} rank tracks, {} spans, {} instants",
                s.ranks, s.spans, s.instants
            ),
            Err(e) => {
                eprintln!("{path}: schema violation: {e}");
                std::process::exit(1);
            }
        }
    }

    if trace_path.is_some() || timeline_path.is_some() {
        let (trace, timeline) = trace_tools::traced_chaos_sinks();
        for (path, content) in [(&trace_path, trace), (&timeline_path, timeline)] {
            if let Some(path) = path {
                std::fs::write(path, content).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                });
                eprintln!("wrote {path}");
            }
        }
    }

    if list {
        usage();
        return;
    }
    if ids.is_empty() {
        if !trace_work {
            usage();
            std::process::exit(2);
        }
        return;
    }

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        experiments::all_ids()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    for id in selected {
        match experiments::run_experiment(id) {
            Some(table) => {
                if json {
                    println!("{}", table.render_json());
                } else if markdown {
                    println!("{}", table.render_markdown());
                } else {
                    println!("{}", table.render());
                }
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(1);
            }
        }
    }
}
