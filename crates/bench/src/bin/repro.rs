//! Reproduction harness: regenerate every table and figure of the thesis.
//!
//! ```text
//! repro all             # every artifact, thesis order
//! repro table3 fig20    # specific artifacts
//! repro --markdown all  # markdown output (EXPERIMENTS.md building block)
//! repro --json all      # one JSON object per artifact, one per line
//! repro --list          # available ids
//! ```

use ic2_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let json = args.iter().any(|a| a == "--json");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();

    if args.iter().any(|a| a == "--list") || ids.is_empty() {
        eprintln!("usage: repro [--markdown|--json] <id...|all>");
        eprintln!("available experiments:");
        for id in experiments::all_ids() {
            eprintln!("  {id}");
        }
        if ids.is_empty() {
            std::process::exit(2);
        }
        return;
    }

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        experiments::all_ids()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    for id in selected {
        match experiments::run_experiment(id) {
            Some(table) => {
                if json {
                    println!("{}", table.render_json());
                } else if markdown {
                    println!("{}", table.render_markdown());
                } else {
                    println!("{}", table.render());
                }
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(1);
            }
        }
    }
}
