//! One function per thesis table/figure, regenerating its rows.

use crate::report::{secs, speedup, Table};
use crate::workloads::{self as w, BF_STEPS, PROCS, RANDOM_SEEDS, TABLE_ITERS};
use ic2mpi::prelude::*;
use ic2mpi::Phase;

fn procs_header(first: &str) -> Vec<String> {
    let mut h = vec![first.to_string()];
    h.extend(PROCS.iter().map(|p| format!("p={p}")));
    h
}

// ---- Tables 2-4: hex-grid execution times --------------------------------

/// Execution time table for an `n`-node hexagonal grid (Tables 2–4).
pub fn table_hex(id: &str, n: usize) -> Table {
    let graph = w::hex(n);
    let program = AvgProgram::fine();
    let mut t = Table::new(
        id,
        &format!("Execution time (s), {n}-node hexagonal grid, Metis, fine grain"),
        "times fall with processors; diminishing returns (slight flattening) by 16",
        procs_header("iters"),
    );
    for iters in TABLE_ITERS {
        let mut row = vec![iters.to_string()];
        for procs in PROCS {
            row.push(secs(w::run_static(&graph, &program, procs, iters)));
        }
        t.row(row);
    }
    t
}

// ---- Tables 5-6: random-graph execution times ----------------------------

/// Execution time table for `n`-node random graphs, averaged over five
/// seeds (Tables 5–6).
pub fn table_random(id: &str, n: usize) -> Table {
    let program = AvgProgram::fine();
    let mut t = Table::new(
        id,
        &format!("Execution time (s), {n}-node random graphs (mean of 5), Metis, fine grain"),
        "times fall with processors; speedup dips from 8 to 16 at this grain",
        procs_header("iters"),
    );
    for iters in TABLE_ITERS {
        let mut row = vec![iters.to_string()];
        for procs in PROCS {
            let mean = w::mean_over_seeds(n, |g| w::run_static(g, &program, procs, iters));
            row.push(secs(mean));
        }
        t.row(row);
    }
    t
}

// ---- Tables 7-11: battlefield execution times -----------------------------

/// Execution time table for the battlefield under one static partitioner
/// (Tables 7–11).
pub fn table_battlefield(
    id: &str,
    partitioner: &(dyn StaticPartitioner + Sync),
    expectation: &str,
) -> Table {
    let program = w::battlefield();
    let graph = program.terrain();
    let mut t = Table::new(
        id,
        &format!(
            "Execution time (s), 32x32 battlefield, {} partition",
            partitioner.name()
        ),
        expectation,
        procs_header("steps"),
    );
    for steps in BF_STEPS {
        let mut row = vec![steps.to_string()];
        for procs in PROCS {
            let report = w::run_reported(
                &graph,
                &program,
                partitioner,
                || NoBalancer,
                &w::static_cfg(procs, steps),
            );
            row.push(secs(report.total_time));
        }
        t.row(row);
    }
    t
}

/// The five battlefield partitioners of Section 5.3, in table order.
pub fn battlefield_partitioners() -> Vec<(&'static str, Box<dyn StaticPartitioner + Sync>)> {
    use ic2_partition::bands::{ColumnBand, RectangularBand, RowBand};
    use ic2_partition::graycode::GrayCodeBf;
    vec![
        ("table7", Box::new(Metis::default())),
        ("table8", Box::new(GrayCodeBf)),
        ("table9", Box::new(RowBand)),
        ("table10", Box::new(ColumnBand)),
        ("table11", Box::new(RectangularBand)),
    ]
}

// ---- Figure 11 / 16: speedup plots ----------------------------------------

/// Speedup at 20 iterations for the hex grids (Figure 11).
pub fn fig11() -> Table {
    let program = AvgProgram::fine();
    let mut t = Table::new(
        "fig11",
        "Speedup @20 iters, hexagonal grids, Metis, fine grain",
        "larger graphs speed up better; all curves bend at 16 procs",
        procs_header("graph"),
    );
    for n in [32usize, 64, 96] {
        let graph = w::hex(n);
        let t1 = w::run_static(&graph, &program, 1, 20);
        let mut row = vec![format!("{n}-node hex")];
        for procs in PROCS {
            row.push(speedup(t1 / w::run_static(&graph, &program, procs, 20)));
        }
        t.row(row);
    }
    t
}

/// Speedup at 20 iterations for the random graphs (Figure 16).
pub fn fig16() -> Table {
    let program = AvgProgram::fine();
    let mut t = Table::new(
        "fig16",
        "Speedup @20 iters, random graphs (mean of 5), Metis, fine grain",
        "speedup rises to 8 procs, then dips slightly at 16 (fine grain)",
        procs_header("graph"),
    );
    for n in [32usize, 64] {
        let mut row = vec![format!("{n}-node random")];
        for procs in PROCS {
            let mut speedups = 0.0;
            for &seed in &RANDOM_SEEDS {
                let g = w::random(n, seed);
                let t1 = w::run_static(&g, &program, 1, 20);
                speedups += t1 / w::run_static(&g, &program, procs, 20);
            }
            row.push(speedup(speedups / RANDOM_SEEDS.len() as f64));
        }
        t.row(row);
    }
    t
}

// ---- Figures 12 / 17: Metis vs PaGrid -------------------------------------

fn metis_vs_pagrid(id: &str, title: &str, expectation: &str, graphs: Vec<Graph>) -> Table {
    let mut t = Table::new(id, title, expectation, procs_header("series"));
    let fine = AvgProgram::fine();
    let coarse = AvgProgram::coarse();
    let cases: [(&str, &AvgProgram, bool); 4] = [
        ("fine / Metis", &fine, false),
        ("coarse / Metis", &coarse, false),
        ("fine / PaGrid", &fine, true),
        ("coarse / PaGrid", &coarse, true),
    ];
    for (label, program, use_pagrid) in cases {
        let mut row = vec![label.to_string()];
        for procs in PROCS {
            let mut acc = 0.0;
            for g in &graphs {
                let (t1, tp) = if use_pagrid {
                    let p = PaGrid::default();
                    let t1 = w::run_reported(g, program, &p, || NoBalancer, &w::static_cfg(1, 20))
                        .total_time;
                    let tp =
                        w::run_reported(g, program, &p, || NoBalancer, &w::static_cfg(procs, 20))
                            .total_time;
                    (t1, tp)
                } else {
                    let p = Metis::default();
                    let t1 = w::run_reported(g, program, &p, || NoBalancer, &w::static_cfg(1, 20))
                        .total_time;
                    let tp =
                        w::run_reported(g, program, &p, || NoBalancer, &w::static_cfg(procs, 20))
                            .total_time;
                    (t1, tp)
                };
                acc += t1 / tp;
            }
            row.push(speedup(acc / graphs.len() as f64));
        }
        t.row(row);
    }
    t
}

/// Metis vs PaGrid on the 64-node hex grid (Figure 12).
pub fn fig12() -> Table {
    metis_vs_pagrid(
        "fig12",
        "Metis vs PaGrid speedup, 64-node hex grid, fine & coarse grain",
        "coarse >> fine; Metis and PaGrid comparable on the regular grid",
        vec![w::hex(64)],
    )
}

/// Metis vs PaGrid on 64-node random graphs (Figure 17).
pub fn fig17() -> Table {
    metis_vs_pagrid(
        "fig17",
        "Metis vs PaGrid speedup, 64-node random graphs (mean of 5), fine & coarse",
        "PaGrid >= Metis on irregular graphs (bottleneck-aware objective)",
        RANDOM_SEEDS.iter().map(|&s| w::random(64, s)).collect(),
    )
}

// ---- Figures 13-15 / 18-19: static vs dynamic ------------------------------

/// Static vs dynamic partitioning under runtime load imbalance
/// (Figures 13–15 for hex grids, 18–19 for random graphs). Two imbalance
/// flavours are reported: the thesis's Figure-23 shifting window, and the
/// persistent hot region that isolates the migration machinery (see
/// EXPERIMENTS.md for why the shifting window resists correction).
pub fn fig_static_vs_dynamic(id: &str, title: &str, graph: &Graph) -> Table {
    let mut t = Table::new(
        id,
        title,
        "dynamic balancing above static for the persistent imbalance; \
         shifting window resists single-task correction (reported honestly)",
        procs_header("series"),
    );
    for (label, program) in [
        ("shifting / static", AvgProgram::shifting()),
        ("shifting / dynamic", AvgProgram::shifting()),
        ("persistent / static", AvgProgram::persistent()),
        ("persistent / dynamic", AvgProgram::persistent()),
    ] {
        let dynamic = label.ends_with("dynamic");
        let mut row = vec![label.to_string()];
        let t1 = w::run_reported(
            graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &w::static_cfg(1, 25),
        )
        .total_time;
        for procs in PROCS {
            let time = if dynamic {
                w::run_reported(
                    graph,
                    &program,
                    &Metis::default(),
                    w::figure_balancer,
                    &w::dynamic_cfg(procs, 25),
                )
                .total_time
            } else {
                w::run_reported(
                    graph,
                    &program,
                    &Metis::default(),
                    || NoBalancer,
                    &w::static_cfg(procs, 25),
                )
                .total_time
            };
            row.push(speedup(t1 / time));
        }
        t.row(row);
    }
    t
}

/// Figure 13: 64-node hex grid.
pub fn fig13() -> Table {
    fig_static_vs_dynamic(
        "fig13",
        "Static vs dynamic partitioning, 64-node hex grid, 25 iters, LB every 10",
        &w::hex(64),
    )
}

/// Figure 14: 32-node hex grid.
pub fn fig14() -> Table {
    fig_static_vs_dynamic(
        "fig14",
        "Static vs dynamic partitioning, 32-node hex grid",
        &w::hex(32),
    )
}

/// Figure 15: 96-node hex grid.
pub fn fig15() -> Table {
    fig_static_vs_dynamic(
        "fig15",
        "Static vs dynamic partitioning, 96-node hex grid",
        &w::hex(96),
    )
}

/// Figure 18: 64-node random graph.
pub fn fig18() -> Table {
    fig_static_vs_dynamic(
        "fig18",
        "Static vs dynamic partitioning, 64-node random graph (seed 0)",
        &w::random(64, 0),
    )
}

/// Figure 19: 32-node random graph.
pub fn fig19() -> Table {
    fig_static_vs_dynamic(
        "fig19",
        "Static vs dynamic partitioning, 32-node random graph (seed 0)",
        &w::random(32, 0),
    )
}

// ---- Figure 20: battlefield speedups ---------------------------------------

/// Battlefield speedups at 25 steps for all five partitioners (Figure 20).
pub fn fig20() -> Table {
    let program = w::battlefield();
    let graph = program.terrain();
    let mut t = Table::new(
        "fig20",
        "Battlefield speedup @25 steps per static partitioner",
        "Metis best; BF gray-code worst (slower than 1 proc at p=2); \
         rectangular > column > row bands",
        procs_header("partitioner"),
    );
    for (_, partitioner) in battlefield_partitioners() {
        let t1 = w::run_reported(
            &graph,
            &program,
            partitioner.as_ref(),
            || NoBalancer,
            &w::static_cfg(1, 25),
        )
        .total_time;
        let mut row = vec![partitioner.name().to_string()];
        for procs in PROCS {
            let tp = w::run_reported(
                &graph,
                &program,
                partitioner.as_ref(),
                || NoBalancer,
                &w::static_cfg(procs, 25),
            )
            .total_time;
            row.push(speedup(t1 / tp));
        }
        t.row(row);
    }
    t
}

// ---- Figures 21-22: overhead breakdown -------------------------------------

/// Phase-overhead breakdown, 35 iterations with the balancer every 10
/// (Figures 21 for hex, 22 for random), mean over ranks, per processor
/// count.
pub fn fig_overheads(id: &str, title: &str, graph: &Graph) -> Table {
    let program = AvgProgram::fine();
    let mut header = vec!["phase".to_string()];
    header.extend([2usize, 4, 8, 16].iter().map(|p| format!("p={p}")));
    let mut t = Table::new(
        id,
        title,
        "communication overhead dominates; compute and its overhead fall with procs",
        header,
    );
    let mut columns = Vec::new();
    for procs in [2usize, 4, 8, 16] {
        let report = w::run_reported(
            graph,
            &program,
            &Metis::default(),
            w::figure_balancer,
            &RunConfig::new(procs, 35)
                .with_balancing(10)
                .with_migration_batch(1),
        );
        columns.push(report.mean_timers());
    }
    for phase in Phase::ALL {
        let mut row = vec![phase.label().to_string()];
        for timers in &columns {
            row.push(secs(timers.get(phase)));
        }
        t.row(row);
    }
    t
}

/// Figure 21: overheads on the fine 64-node hex grid.
pub fn fig21() -> Table {
    fig_overheads(
        "fig21",
        "Phase overheads, fine-grained 64-node hex grid, 35 iters, LB every 10",
        &w::hex(64),
    )
}

/// Figure 22: overheads on the fine 64-node random graph.
pub fn fig22() -> Table {
    fig_overheads(
        "fig22",
        "Phase overheads, fine-grained 64-node random graph, 35 iters, LB every 10",
        &w::random(64, 0),
    )
}

// ---- Figure 23: the imbalance schedule --------------------------------------

/// Trace of the shifting-window load schedule (Figure 23).
pub fn fig23() -> Table {
    let s = ic2mpi::ShiftingWindowLoad::default();
    let mut t = Table::new(
        "fig23",
        "Dynamic-imbalance schedule: hot band per iteration window (64 nodes)",
        "hot band covers ids 0-50%, then 25-75%, then 50-100%, cycling every 10 iters",
        vec![
            "iters".into(),
            "hot band".into(),
            "hot nodes".into(),
            "hot grain".into(),
            "cold grain".into(),
        ],
    );
    for window in 0..4u32 {
        let iter = window * s.window_iters + 1;
        let (lo, hi) = s.hot_band(iter);
        let hot = (0..64).filter(|&v| s.is_hot(v, 64, iter)).count();
        t.row(vec![
            format!("{}-{}", iter, iter + s.window_iters - 1),
            format!("{:.0}%-{:.0}%", lo * 100.0, hi * 100.0),
            hot.to_string(),
            format!("{:.1}ms", s.coarse * 1e3),
            format!("{:.2}ms", s.fine * 1e3),
        ]);
    }
    t
}

// ---- Virtual-time ablations --------------------------------------------

/// Virtual-time effect of the design choices DESIGN.md calls out:
/// exchange overlap (Fig 8 vs 8a), balancer threshold, and migration
/// batch size. (The hash-table ablation is real-time only; see
/// `cargo bench ablation_hashtab`.)
pub fn ablations() -> Table {
    let graph = w::hex(64);
    let mut t = Table::new(
        "ablations",
        "Virtual execution time (s) of platform design variants, 64-node hex grid, 8 procs",
        "overlap <= postcomm; lower thresholds/larger batches help persistent imbalance",
        vec!["variant".into(), "time (s)".into(), "migrations".into()],
    );
    // Exchange mode (static fine-grained workload, 20 iters).
    let fine = AvgProgram::fine();
    for (name, mode) in [
        ("exchange: postcomm (Fig 8)", ExchangeMode::PostComm),
        ("exchange: overlap (Fig 8a)", ExchangeMode::Overlap),
    ] {
        let r = w::run_reported(
            &graph,
            &fine,
            &Metis::default(),
            || NoBalancer,
            &w::static_cfg(8, 20).with_exchange(mode),
        );
        t.row(vec![name.into(), secs(r.total_time), "0".into()]);
    }
    // Balancer threshold and batch (persistent imbalance, 25 iters).
    let persistent = AvgProgram::persistent();
    for (name, threshold, batch) in [
        ("balance: threshold 10%, batch 12", 0.10, 12u32),
        ("balance: threshold 25%, batch 12", 0.25, 12),
        ("balance: threshold 50%, batch 12", 0.50, 12),
        ("balance: threshold 10%, batch 1 (thesis)", 0.10, 1),
        ("balance: threshold 10%, batch 4", 0.10, 4),
    ] {
        let r = w::run_reported(
            &graph,
            &persistent,
            &Metis::default(),
            || Diffusion { threshold },
            &w::static_cfg(8, 25)
                .with_balancing(10)
                .with_balance_offset(5)
                .with_migration_batch(batch)
                .with_migrant_policy(MigrantPolicy::LoadAware),
        );
        t.row(vec![
            name.into(),
            secs(r.total_time),
            r.migrations.to_string(),
        ]);
    }
    let r = w::run_reported(
        &graph,
        &persistent,
        &Metis::default(),
        || NoBalancer,
        &w::static_cfg(8, 25),
    );
    t.row(vec![
        "balance: none (static)".into(),
        secs(r.total_time),
        "0".into(),
    ]);
    t
}

// ---- Chaos & recovery (this reproduction's robustness extensions) --------

fn chaos_world(plan: mpisim::FaultPlan) -> mpisim::Config {
    mpisim::Config::virtual_time(mpisim::NetModel::origin2000())
        .with_watchdog(std::time::Duration::from_secs(60))
        .with_faults(plan)
}

/// Per-mechanism fault breakdown under increasing chaos: every column is
/// one `FaultStats` counter (no aggregate hiding which mechanism fired),
/// exactly as `RunReport::faults` exposes them.
pub fn chaos_faults() -> Table {
    let graph = w::hex(64);
    let program = AvgProgram::fine();
    let mut t = Table::new(
        "chaos_faults",
        "Injected-fault breakdown, 64-node hex grid, 8 procs, 20 iters, seed 42",
        "each scenario fires only its own mechanisms; time grows with recovery work",
        vec![
            "scenario".into(),
            "time (s)".into(),
            "dropped".into(),
            "delayed".into(),
            "duplicated".into(),
            "reordered".into(),
            "retries".into(),
            "escalations".into(),
            "stale".into(),
            "crash timeouts".into(),
            "corrupted".into(),
            "truncated".into(),
            "detected".into(),
            "retransmits".into(),
            "nacks".into(),
        ],
    );
    let scenarios: Vec<(&str, mpisim::FaultPlan)> = vec![
        ("clean", mpisim::FaultPlan::new(42)),
        ("drops 5%", mpisim::FaultPlan::new(42).with_drop(0.05)),
        (
            "drops+delays 5%",
            mpisim::FaultPlan::new(42)
                .with_drop(0.05)
                .with_delay(0.05, 2e-4),
        ),
        (
            "corrupt 5% + truncate 2%",
            mpisim::FaultPlan::new(42)
                .with_corrupt(0.05)
                .with_truncate(0.02),
        ),
        (
            "full mix 5%",
            mpisim::FaultPlan::new(42)
                .with_drop(0.05)
                .with_delay(0.05, 2e-4)
                .with_dup(0.05)
                .with_reorder(0.05)
                .with_corrupt(0.05)
                .with_truncate(0.02),
        ),
        (
            "mix + crash r3",
            mpisim::FaultPlan::new(42)
                .with_drop(0.05)
                .with_delay(0.05, 2e-4)
                .with_dup(0.05)
                .with_reorder(0.05)
                .with_corrupt(0.05)
                .with_truncate(0.02)
                .with_crash(3, 0.05),
        ),
    ];
    for (name, plan) in scenarios {
        let r = w::run_reported(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &w::static_cfg(8, 20).with_world(chaos_world(plan)),
        );
        let f = &r.faults;
        t.row(vec![
            name.into(),
            secs(r.total_time),
            f.dropped.to_string(),
            f.delayed.to_string(),
            f.duplicated.to_string(),
            f.reordered.to_string(),
            f.retries.to_string(),
            f.escalations.to_string(),
            f.stale_discarded.to_string(),
            f.crash_timeouts.to_string(),
            f.corrupted.to_string(),
            f.truncated.to_string(),
            f.corruptions_detected.to_string(),
            f.retransmits.to_string(),
            f.nacks.to_string(),
        ]);
    }
    t
}

/// Corruption-recovery overhead vs corruption probability: the virtual-time
/// cost of checksummed framing's NACK + retransmit repair loop, with the
/// answer pinned byte-identical to the clean run at every rate.
pub fn corruption_overhead() -> Table {
    let graph = w::hex(64);
    let program = AvgProgram::fine();
    let iters = 20u32;
    let clean = w::run_reported(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &w::static_cfg(8, iters).with_world(chaos_world(mpisim::FaultPlan::new(42))),
    );
    let mut t = Table::new(
        "corruption_overhead",
        "Corruption-recovery overhead vs corruption rate (64-node hex grid, 8 procs, \
         20 iters, truncation at 40% of the bit-flip rate, seed 42)",
        "overhead grows with the rate (each mangle costs one NACK backoff + retransmit); \
         the answer is byte-identical to clean at every rate",
        vec![
            "corrupt p".into(),
            "time (s)".into(),
            "overhead vs clean".into(),
            "corrupted".into(),
            "truncated".into(),
            "detected".into(),
            "retransmits".into(),
            "nacks".into(),
        ],
    );
    t.row(vec![
        "0 (clean)".into(),
        secs(clean.total_time),
        "—".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);
    for p in [0.01f64, 0.02, 0.05, 0.10, 0.20] {
        let plan = mpisim::FaultPlan::new(42)
            .with_corrupt(p)
            .with_truncate(p * 0.4);
        let r = w::run_reported(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &w::static_cfg(8, iters).with_world(chaos_world(plan)),
        );
        assert_eq!(
            r.final_data, clean.final_data,
            "corruption repair must reproduce the clean answer"
        );
        let f = &r.faults;
        t.row(vec![
            format!("{p:.2}"),
            secs(r.total_time),
            format!("{:+.1}%", (r.total_time / clean.total_time - 1.0) * 100.0),
            f.corrupted.to_string(),
            f.truncated.to_string(),
            f.corruptions_detected.to_string(),
            f.retransmits.to_string(),
            f.nacks.to_string(),
        ]);
    }
    t
}

/// State-audit overhead vs audit interval and replication factor: the
/// virtual-time cost of incremental digest maintenance, boundary
/// verification, and checksummed multi-replica checkpoint staging — then
/// the same machinery earning its keep against silent memory corruption,
/// with the answer pinned byte-identical to the clean run.
pub fn audit_overhead() -> Table {
    let graph = w::hex(64);
    let program = AvgProgram::fine();
    let iters = 20u32;
    let cfg = |plan: mpisim::FaultPlan| {
        w::static_cfg(8, iters)
            .with_checkpointing(4)
            .with_world(chaos_world(plan))
    };
    let base = w::run_reported(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(mpisim::FaultPlan::new(42)),
    );
    let mut t = Table::new(
        "audit_overhead",
        "State-audit overhead vs audit interval k and replication r (64-node hex \
         grid, 8 procs, 20 iters, checkpoint every 4, seed 42); the last rows rot \
         live memory at p=0.005/0.01 per entry per sweep and repair it exactly",
        "audit cost grows as the interval tightens; replica mirroring shows up as \
         wire traffic (sent KiB grows with r; staged bytes do not); under rot the \
         audits detect and repair every corruption and the answer stays \
         byte-identical to clean",
        vec![
            "scenario".into(),
            "time (s)".into(),
            "overhead vs base".into(),
            "staged KiB".into(),
            "sent KiB".into(),
            "corruptions".into(),
            "mismatches".into(),
            "resyncs".into(),
            "repairs".into(),
            "rollbacks".into(),
        ],
    );
    let mut push = |name: &str, r: &ic2mpi::RunReport<i64>| {
        assert_eq!(
            r.final_data, base.final_data,
            "audited run must reproduce the clean answer ({name})"
        );
        let sent: u64 = r.comm.iter().map(|c| c.bytes_sent).sum();
        t.row(vec![
            name.into(),
            secs(r.total_time),
            format!("{:+.1}%", (r.total_time / base.total_time - 1.0) * 100.0),
            format!("{:.1}", r.checkpoint_bytes as f64 / 1024.0),
            format!("{:.1}", sent as f64 / 1024.0),
            r.memory_corruptions.to_string(),
            r.audit_mismatches.to_string(),
            r.shadow_resyncs.to_string(),
            r.repairs.to_string(),
            r.rollbacks.to_string(),
        ]);
    };
    push("no audit (base)", &base);
    for k in [4u32, 2, 1] {
        let r = w::run_reported(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &cfg(mpisim::FaultPlan::new(42)).with_state_audit(k),
        );
        push(&format!("audit k={k}"), &r);
    }
    for rep in [2u32, 4] {
        let r = w::run_reported(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &cfg(mpisim::FaultPlan::new(42))
                .with_state_audit(1)
                .with_replication(rep),
        );
        push(&format!("audit k=1, r={rep}"), &r);
    }
    for p in [0.005f64, 0.01] {
        let mut plan = mpisim::FaultPlan::new(42);
        for rank in 0..8 {
            plan = plan.with_memory_corrupt(rank, p);
        }
        let r = w::run_reported(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &cfg(plan).with_state_audit(1).with_replication(3),
        );
        assert!(
            r.memory_corruptions > 0 && r.repairs > 0,
            "rot at p={p} must fire and be repaired"
        );
        push(&format!("rot p={p}, k=1, r=3"), &r);
    }
    t
}

/// Mailbox capacity vs retransmit traffic: bounded mailboxes with
/// credit-based flow control under a fixed corruption plan. Retransmits and
/// the virtual clock are schedule-independent (identical down the whole
/// column). Credit stalls are canonical receiver-side counts — per round,
/// `max(0, frames_present - capacity)` — so they are deterministic and
/// monotone as capacity shrinks; only peak depth remains a wall-clock
/// phenomenon.
pub fn capacity_backpressure() -> Table {
    let graph = w::hex(64);
    let program = AvgProgram::fine();
    let iters = 20u32;
    let plan = || {
        mpisim::FaultPlan::new(42)
            .with_corrupt(0.05)
            .with_truncate(0.02)
    };
    let mut t = Table::new(
        "capacity_backpressure",
        "Mailbox capacity vs retransmit traffic (64-node hex grid, 8 procs, 20 iters, \
         corrupt 5% + truncate 2%, seed 42)",
        "time and retransmits identical at every capacity (backpressure is invisible \
         to the virtual clock); canonical stall counts grow monotonically as capacity \
         shrinks; peak depth varies with host scheduling",
        vec![
            "capacity".into(),
            "time (s)".into(),
            "retransmits".into(),
            "credit stalls".into(),
            "peak mailbox depth".into(),
        ],
    );
    let mut reference: Option<ic2mpi::RunReport<i64>> = None;
    for cap in [None, Some(16usize), Some(8), Some(4), Some(2)] {
        let mut world = chaos_world(plan());
        if let Some(c) = cap {
            world = world.with_mailbox_capacity(c);
        }
        let r = w::run_reported(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &w::static_cfg(8, iters).with_world(world),
        );
        if let Some(reference) = &reference {
            assert_eq!(
                r.final_data, reference.final_data,
                "backpressure must not change the answer"
            );
            assert_eq!(
                r.total_time.to_bits(),
                reference.total_time.to_bits(),
                "backpressure must be invisible to the virtual clock"
            );
        }
        t.row(vec![
            cap.map_or("unbounded".into(), |c| c.to_string()),
            secs(r.total_time),
            r.faults.retransmits.to_string(),
            r.credit_stalls.to_string(),
            r.peak_mailbox_depth.to_string(),
        ]);
        reference.get_or_insert(r);
    }
    t
}

/// Recovery overhead vs checkpoint interval `k`: one uncooperative crash
/// on the battlefield, swept over checkpoint cadences. Small `k` pays
/// steady checkpointing cost but replays little; large `k` checkpoints
/// cheaply but replays a long tail.
pub fn recovery_overhead() -> Table {
    let program = w::battlefield();
    let terrain = program.terrain();
    let iters = 12u32;
    let clean = w::run_reported(
        &terrain,
        &program,
        &Metis::default(),
        || NoBalancer,
        &w::static_cfg(8, iters).with_world(chaos_world(mpisim::FaultPlan::new(0))),
    );
    let mut t = Table::new(
        "recovery_overhead",
        "Crash-recovery overhead vs checkpoint interval k (battlefield, 8 procs, \
         12 steps, rank 3 crashes at 55% of the clean run)",
        "overhead falls then rises: frequent checkpoints cost bandwidth, rare ones cost replay",
        vec![
            "k".into(),
            "time (s)".into(),
            "overhead vs clean".into(),
            "checkpoint KiB".into(),
            "rollbacks".into(),
            "iters replayed".into(),
        ],
    );
    t.row(vec![
        "no crash".into(),
        secs(clean.total_time),
        "—".into(),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);
    for k in [1u32, 2, 4, 8, 12] {
        let plan = mpisim::FaultPlan::new(0).with_crash(3, clean.total_time * 0.55);
        let r = w::run_reported(
            &terrain,
            &program,
            &Metis::default(),
            || NoBalancer,
            &w::static_cfg(8, iters)
                .with_checkpointing(k)
                .with_world(chaos_world(plan)),
        );
        assert_eq!(
            r.final_data, clean.final_data,
            "recovery must reproduce the clean answer"
        );
        t.row(vec![
            k.to_string(),
            secs(r.total_time),
            format!("{:+.1}%", (r.total_time / clean.total_time - 1.0) * 100.0),
            format!("{:.1}", r.checkpoint_bytes as f64 / 1024.0),
            r.rollbacks.to_string(),
            r.iterations_replayed.to_string(),
        ]);
    }
    t
}

/// Partition-tolerance overhead vs partition span: a 6-vs-2 rank split on
/// the 64-node hex grid, swept over window widths. The majority keeps
/// computing in degraded mode while the minority parks; on heal the
/// minority rejoins from its checkpoint buddy and replays, and the answer
/// is pinned byte-identical to the clean run at every span. Short windows
/// that never straddle an iteration boundary heal as plain blip rollbacks
/// (rejoins = 0, rollbacks > 0) — reported honestly, not hidden.
pub fn partition_tolerance() -> Table {
    let graph = w::hex(64);
    let program = AvgProgram::fine();
    let iters = 20u32;
    let cfg = |plan: mpisim::FaultPlan| {
        w::static_cfg(8, iters)
            .with_checkpointing(2)
            .with_partition_tolerance()
            .with_world(chaos_world(plan))
    };
    let clean = w::run_reported(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(mpisim::FaultPlan::new(42)),
    );
    let mut t = Table::new(
        "partition_tolerance",
        "Partition-tolerance overhead vs partition span (64-node hex grid, 8 procs, \
         20 iters, ranks {6,7} cut off from {0..5} starting at 40% of the clean run, \
         checkpoint every 2, detect timeout 1e-4, seed 42)",
        "majority degrades, minority parks, heal rejoins + replays; overhead grows \
         with the span; answers byte-identical to clean at every span; sub-iteration \
         blips roll back without a rejoin",
        vec![
            "span".into(),
            "time (s)".into(),
            "overhead vs clean".into(),
            "degraded iters".into(),
            "suspected peak".into(),
            "rejoins".into(),
            "rollbacks".into(),
            "iters replayed".into(),
            "rejoin KiB".into(),
            "cuts".into(),
            "cut timeouts".into(),
        ],
    );
    t.row(vec![
        "none (clean)".into(),
        secs(clean.total_time),
        "—".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);
    for span in [0.05f64, 0.15, 0.25, 0.35] {
        let plan = mpisim::FaultPlan::new(42)
            .with_partition(
                vec![vec![0, 1, 2, 3, 4, 5], vec![6, 7]],
                clean.total_time * 0.40,
                clean.total_time * (0.40 + span),
            )
            .with_detect_timeout(1e-4);
        let r = w::run_reported(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &cfg(plan),
        );
        assert_eq!(
            r.final_data, clean.final_data,
            "partition recovery must reproduce the clean answer (span {span})"
        );
        t.row(vec![
            format!("{:.0}%", span * 100.0),
            secs(r.total_time),
            format!("{:+.1}%", (r.total_time / clean.total_time - 1.0) * 100.0),
            r.degraded_iterations.to_string(),
            r.suspected_peak.to_string(),
            r.rejoins.to_string(),
            r.rollbacks.to_string(),
            r.iterations_replayed.to_string(),
            format!("{:.1}", r.rejoin_bytes as f64 / 1024.0),
            r.faults.partition_cuts.to_string(),
            r.faults.partition_timeouts.to_string(),
        ]);
    }
    t
}

/// Tracing overhead: the same chaos workload with the recorder off and on.
/// The recorder never touches the virtual clock, so the simulated results
/// must be **bit-identical** either way (asserted here); the only cost is
/// host wall-clock, reported per run alongside the event volume. The
/// `negative clamps` column surfaces `RunReport::negative_clamps` — zero
/// means no phase window ever came out negative, even under chaos.
pub fn tracing_overhead() -> Table {
    let graph = w::hex(64);
    let program = AvgProgram::fine();
    let plan = || {
        mpisim::FaultPlan::new(42)
            .with_drop(0.05)
            .with_corrupt(0.05)
            .with_truncate(0.02)
    };
    let mut t = Table::new(
        "tracing_overhead",
        "Tracing overhead (64-node hex grid, 8 procs, 20 iters, drop 5% + corrupt 5% \
         + truncate 2%, seed 42)",
        "virtual time bit-identical with tracing on and off; overhead is host \
         wall-clock only (varies run to run)",
        vec![
            "tracing".into(),
            "time (s)".into(),
            "events".into(),
            "host ms".into(),
            "negative clamps".into(),
        ],
    );
    let mut run = |tracing: bool| {
        let mut cfg = w::static_cfg(8, 20).with_world(chaos_world(plan()));
        if tracing {
            cfg = cfg.with_tracing();
        }
        let wall = std::time::Instant::now();
        let r = w::run_reported(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
        let host_ms = wall.elapsed().as_secs_f64() * 1e3;
        let events: usize = r
            .trace
            .as_ref()
            .map(|t| t.iter().map(|(_, ev)| ev.len()).sum())
            .unwrap_or(0);
        t.row(vec![
            if tracing { "on" } else { "off" }.into(),
            secs(r.total_time),
            events.to_string(),
            format!("{host_ms:.1}"),
            r.negative_clamps.to_string(),
        ]);
        r
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(
        off.total_time.to_bits(),
        on.total_time.to_bits(),
        "tracing must be invisible to the virtual clock"
    );
    assert_eq!(
        off.final_data, on.final_data,
        "tracing must not change the answer"
    );
    assert_eq!(off.negative_clamps, 0, "no negative phase windows");
    assert_eq!(on.negative_clamps, 0, "no negative phase windows");
    t
}

// ---- Communication optimization (delta exchange + zero-copy transport) ----

/// Delta shadow exchange vs full exchange across boundary churn rates:
/// bytes on the wire, shadow-entry suppression, virtual time, and
/// quiescence detection, with the answer pinned identical between modes at
/// every rate. The low-churn rows are the headline: suppressing clean
/// nodes must cut wire traffic by at least 40%.
pub fn delta_exchange() -> Table {
    let graph = w::hex(96);
    let iters = 30u32;
    let procs = 8usize;
    let mut t = Table::new(
        "delta_exchange",
        "Delta vs full shadow exchange (96-node hex grid, 8 procs, 30 iters, \
         churn = % of nodes changing every iteration)",
        "wire bytes and virtual time fall as churn falls (>=40% byte cut at <=10% churn); \
         answers identical between modes at every rate; full churn costs nothing extra",
        vec![
            "churn".into(),
            "bytes full".into(),
            "bytes delta".into(),
            "byte cut".into(),
            "entries sent".into(),
            "entries skipped".into(),
            "time full (s)".into(),
            "time delta (s)".into(),
            "quiescent iters".into(),
        ],
    );
    for churn_pct in [0u64, 10, 25, 50, 100] {
        let program = w::ChurnProgram { churn_pct };
        let cfg = w::static_cfg(procs, iters);
        let full = w::run_reported(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
        let delta = w::run_reported(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &cfg.clone().with_delta_exchange(),
        );
        assert_eq!(
            delta.final_data, full.final_data,
            "delta exchange must not change the answer (churn {churn_pct}%)"
        );
        let bytes =
            |r: &ic2mpi::RunReport<i64>| -> u64 { r.comm.iter().map(|c| c.bytes_sent).sum() };
        let (bf, bd) = (bytes(&full), bytes(&delta));
        let cut = 1.0 - bd as f64 / bf as f64;
        if churn_pct <= 10 {
            assert!(
                cut >= 0.40,
                "low-churn runs must cut wire bytes by >=40%, got {:.1}% at churn {}%",
                cut * 100.0,
                churn_pct
            );
        }
        t.row(vec![
            format!("{churn_pct}%"),
            bf.to_string(),
            bd.to_string(),
            format!("{:.1}%", cut * 100.0),
            delta.delta_entries_sent.to_string(),
            delta.delta_entries_skipped.to_string(),
            secs(full.total_time),
            secs(delta.total_time),
            delta.quiescent_iterations.to_string(),
        ]);
    }
    t
}

/// Hybrid barrier elision vs plain BSP across inner-block lengths and
/// boundary churn: `inner_k` interior-only rounds between global
/// exchanges elide that round's barriers, shadow exchange, and control
/// exchange, with the skipped boundary passes replayed at the next global
/// round. The answer is pinned byte-identical to BSP at every cell; the
/// headline is the virtual-time reduction at low churn.
pub fn hybrid_elision() -> Table {
    let graph = w::hex(96);
    let iters = 30u32;
    let procs = 8usize;
    let mut t = Table::new(
        "hybrid_elision",
        "Hybrid BSP/async execution vs plain BSP (96-node hex grid, 8 procs, 30 iters, \
         churn = % of nodes changing every iteration, k = inner iterations per block)",
        "every cell byte-identical to BSP; barriers elided grow with k; virtual time \
         falls vs BSP at every k (>=5% at <=10% churn)",
        vec![
            "churn".into(),
            "inner k".into(),
            "time bsp (s)".into(),
            "time hybrid (s)".into(),
            "time cut".into(),
            "inner iters".into(),
            "barriers elided".into(),
        ],
    );
    for churn_pct in [0u64, 10, 50] {
        let program = w::ChurnProgram { churn_pct };
        let cfg = w::static_cfg(procs, iters);
        let bsp = w::run_reported(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
        assert_eq!(bsp.inner_iterations, 0, "BSP never elides");
        for inner_k in [1u32, 3, 7] {
            let hybrid = w::run_reported(
                &graph,
                &program,
                &Metis::default(),
                || NoBalancer,
                &cfg.clone().with_hybrid(inner_k),
            );
            assert_eq!(
                hybrid.final_data, bsp.final_data,
                "hybrid must not change the answer (churn {churn_pct}%, k={inner_k})"
            );
            let cut = 1.0 - hybrid.total_time / bsp.total_time;
            assert!(
                cut > 0.0,
                "eliding collectives must save virtual time (churn {churn_pct}%, k={inner_k})"
            );
            if churn_pct <= 10 {
                assert!(
                    cut >= 0.05,
                    "low-churn elision must cut >=5% of virtual time, got {:.1}% \
                     (churn {churn_pct}%, k={inner_k})",
                    cut * 100.0
                );
            }
            t.row(vec![
                format!("{churn_pct}%"),
                inner_k.to_string(),
                secs(bsp.total_time),
                secs(hybrid.total_time),
                format!("{:.1}%", cut * 100.0),
                hybrid.inner_iterations.to_string(),
                hybrid.barriers_elided.to_string(),
            ]);
        }
    }
    t
}

/// Host-time cost of the transport hot path under the `Arc`-backed
/// zero-copy payloads: wall-clock per scenario next to the payload
/// allocation/sharing counters that prove retransmissions, broadcast
/// fan-out, and gather forwarding reuse one buffer instead of copying.
/// Virtual time is unaffected by any of this — the win is host-side only.
pub fn zero_copy_host_time() -> Table {
    use mpisim::{payload_metrics, reset_payload_metrics, RetryPolicy};

    let mut t = Table::new(
        "zero_copy_host_time",
        "Host time and payload accounting on the transport hot path (seed 42)",
        "shared clones dwarf allocations (attempts/edges/hops share one buffer); \
         host ms varies run to run, allocation counters are exact",
        vec![
            "scenario".into(),
            "host ms".into(),
            "payload allocs".into(),
            "alloc KiB".into(),
            "shared clones".into(),
            "clones per alloc".into(),
        ],
    );
    let mut scenario = |name: &str, f: &dyn Fn()| {
        reset_payload_metrics();
        let wall = std::time::Instant::now();
        f();
        let host_ms = wall.elapsed().as_secs_f64() * 1e3;
        let m = payload_metrics();
        t.row(vec![
            name.into(),
            format!("{host_ms:.1}"),
            m.allocs.to_string(),
            format!("{:.1}", m.alloc_bytes as f64 / 1024.0),
            m.shared_clones.to_string(),
            format!("{:.1}", m.shared_clones as f64 / m.allocs.max(1) as f64),
        ]);
    };

    scenario(
        "chaos run: drop 10% + corrupt 5%, 8 procs, 20 iters",
        &|| {
            let graph = w::hex(64);
            let program = AvgProgram::fine();
            let plan = mpisim::FaultPlan::new(42)
                .with_drop(0.10)
                .with_corrupt(0.05);
            w::run_reported(
                &graph,
                &program,
                &Metis::default(),
                || NoBalancer,
                &w::static_cfg(8, 20).with_world(chaos_world(plan)),
            );
        },
    );
    scenario(
        "reliable sends: 1000 x 1 KiB under 50% drops, 2 ranks",
        &|| {
            let plan = mpisim::FaultPlan::new(42)
                .with_drop(0.5)
                .with_retry(1e-3, 16);
            let cfg = mpisim::Config::virtual_time(mpisim::NetModel::origin2000())
                .with_watchdog(std::time::Duration::from_secs(60))
                .with_faults(plan);
            mpisim::World::new(cfg).run(2, |rank| {
                let payload: Vec<u64> = (0..128).collect();
                for _ in 0..1000 {
                    if rank.rank() == 0 {
                        rank.send_reliable(1, 7, &payload, RetryPolicy::Escalate);
                    } else {
                        let _: Vec<u64> = rank.recv(0, 7);
                    }
                }
            });
        },
    );
    scenario("bcast: 1 MiB to 16 ranks", &|| {
        let cfg = mpisim::Config::virtual_time(mpisim::NetModel::origin2000())
            .with_watchdog(std::time::Duration::from_secs(60));
        mpisim::World::new(cfg).run(16, |rank| {
            let mut value: Vec<u64> = if rank.rank() == 0 {
                (0..131_072).collect()
            } else {
                Vec::new()
            };
            rank.bcast(0, &mut value);
        });
    });
    scenario("gather: 64 KiB from each of 16 ranks", &|| {
        let cfg = mpisim::Config::virtual_time(mpisim::NetModel::origin2000())
            .with_watchdog(std::time::Duration::from_secs(60));
        mpisim::World::new(cfg).run(16, |rank| {
            let value: Vec<u64> = (0..8192).map(|j| rank.rank() as u64 + j).collect();
            rank.gather(0, &value);
        });
    });
    t
}

/// Out-of-core paging at the acceptance scale: a 1M-node hex grid on 16
/// ranks, 512 hash buckets per rank, with the resident-page budget swept
/// from the full partition down to 1/8 of it, plus one row running the
/// tightest practical budget under every disk-fault class at once. The
/// answer is pinned byte-identical to the in-memory run in every row.
pub fn out_of_core() -> Table {
    let graph = w::hex(1_000_000);
    let program = AvgProgram::fine();
    let procs = 16usize;
    let iters = 3u32;
    let world = || {
        mpisim::Config::virtual_time(mpisim::NetModel::origin2000())
            .with_watchdog(std::time::Duration::from_secs(300))
    };
    let cfg = || {
        w::static_cfg(procs, iters)
            .with_hash_buckets(512)
            .with_checkpointing(2)
    };
    // Metis at full scale: FM refinement maintains an incremental gain
    // heap, so the multilevel pipeline is n log n end to end and the real
    // partitioner handles the 10^6-node fine graph directly (the old
    // full-rescan refinement was quadratic per pass and forced a RowBand
    // workaround here).
    let partitioner = Metis::default();
    let in_mem = w::run_reported(
        &graph,
        &program,
        &partitioner,
        || NoBalancer,
        &cfg().with_world(world()),
    );
    let mut t = Table::new(
        "out_of_core",
        "Out-of-core paged NodeStore (1M-node hex grid, 16 procs, 3 iters, 512 \
         hash buckets/rank, SIEVE eviction, checkpoints every 2 iterations)",
        "virtual time grows as the resident budget shrinks (every fault-in, \
         write-back and retry is charged to the clock); the answer is \
         byte-identical to the in-memory run at every budget and under faults",
        vec![
            "config".into(),
            "time (s)".into(),
            "overhead".into(),
            "page faults".into(),
            "evicted".into(),
            "retries".into(),
            "torn caught".into(),
            "recovered".into(),
        ],
    );
    t.row(vec![
        "in-memory".into(),
        secs(in_mem.total_time),
        "—".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);
    let mut row = |label: String, r: &RunReport<i64>| {
        assert_eq!(
            r.final_data, in_mem.final_data,
            "{label}: paged run must reproduce the in-memory answer"
        );
        t.row(vec![
            label,
            secs(r.total_time),
            format!("{:+.1}%", (r.total_time / in_mem.total_time - 1.0) * 100.0),
            r.page_faults.to_string(),
            r.pages_evicted.to_string(),
            r.disk_retries.to_string(),
            r.torn_writes_detected.to_string(),
            r.pages_recovered.to_string(),
        ]);
    };
    for budget in [512usize, 256, 128, 64] {
        let r = w::run_reported(
            &graph,
            &program,
            &partitioner,
            || NoBalancer,
            &cfg()
                .with_paging(budget, EvictionPolicy::Sieve)
                .with_world(world()),
        );
        row(format!("budget {budget}"), &r);
    }
    // Per-operation rates scaled to this scale's I/O volume (~60k page
    // reads per rank-iteration): rot at 2e-5 still strikes dozens of
    // times over the run without destroying both copies of a page in
    // one inter-rewrite window.
    let mut plan = mpisim::FaultPlan::new(131);
    for rank in 0..procs {
        plan = plan
            .with_disk_fault(rank, mpisim::DiskFault::TransientError, 0.02)
            .with_disk_fault(rank, mpisim::DiskFault::TornWrite, 0.01)
            .with_disk_fault(rank, mpisim::DiskFault::ReadRot, 0.000_02);
    }
    let r = w::run_reported(
        &graph,
        &program,
        &partitioner,
        || NoBalancer,
        &cfg()
            .with_paging(64, EvictionPolicy::Sieve)
            .with_world(world().with_faults(plan)),
    );
    row("budget 64 + disk faults".into(), &r);
    t
}

/// All experiment ids in thesis order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "table8",
        "table9",
        "table10",
        "table11",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "fig20",
        "fig21",
        "fig22",
        "fig23",
        "ablations",
        "chaos_faults",
        "recovery_overhead",
        "partition_tolerance",
        "corruption_overhead",
        "audit_overhead",
        "capacity_backpressure",
        "tracing_overhead",
        "delta_exchange",
        "hybrid_elision",
        "zero_copy_host_time",
        "out_of_core",
    ]
}

/// Run one experiment by id.
pub fn run_experiment(id: &str) -> Option<Table> {
    Some(match id {
        "table2" => table_hex("table2", 32),
        "table3" => table_hex("table3", 64),
        "table4" => table_hex("table4", 96),
        "table5" => table_random("table5", 32),
        "table6" => table_random("table6", 64),
        "table7" | "table8" | "table9" | "table10" | "table11" => {
            let parts = battlefield_partitioners();
            let (_, p) = parts.into_iter().find(|(pid, _)| *pid == id)?;
            let expectation = match id {
                "table7" => "best absolute times (Metis)",
                "table8" => "p=2 slower than p=1 (fine-grained embedding maximises comm)",
                "table9" => "modest scaling (thin strips, long boundaries)",
                "table10" => "similar to row bands",
                _ => "between Metis and the bands (compact tiles)",
            };
            table_battlefield(id, p.as_ref(), expectation)
        }
        "fig11" => fig11(),
        "fig12" => fig12(),
        "fig13" => fig13(),
        "fig14" => fig14(),
        "fig15" => fig15(),
        "fig16" => fig16(),
        "fig17" => fig17(),
        "fig18" => fig18(),
        "fig19" => fig19(),
        "fig20" => fig20(),
        "fig21" => fig21(),
        "fig22" => fig22(),
        "fig23" => fig23(),
        "ablations" => ablations(),
        "chaos_faults" => chaos_faults(),
        "recovery_overhead" => recovery_overhead(),
        "partition_tolerance" => partition_tolerance(),
        "corruption_overhead" => corruption_overhead(),
        "audit_overhead" => audit_overhead(),
        "capacity_backpressure" => capacity_backpressure(),
        "tracing_overhead" => tracing_overhead(),
        "delta_exchange" => delta_exchange(),
        "hybrid_elision" => hybrid_elision(),
        "zero_copy_host_time" => zero_copy_host_time(),
        "out_of_core" => out_of_core(),
        _ => return None,
    })
}
