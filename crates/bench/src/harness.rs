//! A small wall-clock measurement harness for the `benches/` binaries.
//!
//! The workspace builds offline with no registry dependencies, so the
//! microbenches use this plain-`Instant` harness instead of criterion:
//! each benchmark runs a fixed number of timed samples (after a couple of
//! warmup runs) and prints min / mean / max. No statistics beyond that —
//! these numbers are for eyeballing regressions, not for papers.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Run `f` `samples` times (after `samples / 10 + 1` warmups) and print a
/// one-line timing summary. The closure's result is passed through
/// [`black_box`] so the optimiser cannot delete the work.
pub fn bench<R>(name: &str, samples: usize, mut f: impl FnMut() -> R) {
    assert!(samples > 0, "need at least one sample");
    for _ in 0..samples / 10 + 1 {
        black_box(f());
    }
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed());
    }
    let min = *times.iter().min().unwrap();
    let max = *times.iter().max().unwrap();
    let mean = times.iter().sum::<Duration>() / samples as u32;
    println!(
        "{name:<44} {:>12} {:>12} {:>12}  ({samples} samples)",
        fmt(min),
        fmt(mean),
        fmt(max)
    );
}

/// Print the header row matching [`bench`]'s output columns.
pub fn header(group: &str) {
    println!("\n== {group} ==");
    println!(
        "{:<44} {:>12} {:>12} {:>12}",
        "benchmark", "min", "mean", "max"
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut calls = 0;
        bench("noop", 3, || calls += 1);
        // 3 samples + 1 warmup.
        assert_eq!(calls, 4);
    }

    #[test]
    fn durations_format_in_sane_units() {
        assert_eq!(fmt(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt(Duration::from_micros(50)), "50.0 µs");
        assert_eq!(fmt(Duration::from_millis(50)), "50.00 ms");
        assert_eq!(fmt(Duration::from_secs(50)), "50.00 s");
    }
}
