//! Plain-text table rendering for the reproduction harness.

/// A rendered experiment artifact: a title, a caption tying it to the
/// thesis, a header row, and data rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (`table2`, `fig11`, …).
    pub id: String,
    /// Human title matching the thesis artifact.
    pub title: String,
    /// What shape the thesis reports (for eyeball comparison).
    pub expectation: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Construct an empty table.
    pub fn new(id: &str, title: &str, expectation: &str, header: Vec<String>) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            expectation: expectation.to_string(),
            header,
            rows: Vec::new(),
        }
    }

    /// Append one row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.title));
        out.push_str(&format!("   shape target: {}\n", self.expectation));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format!("   {}\n", fmt_row(&self.header)));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&format!("   {}\n", "-".repeat(total)));
        for row in &self.rows {
            out.push_str(&format!("   {}\n", fmt_row(row)));
        }
        out
    }

    /// Render as a JSON object (`{"id", "title", "expectation", "header",
    /// "rows"}`) for machine consumption — the workspace builds offline,
    /// so this is a small hand-rolled encoder rather than a serde
    /// dependency.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn arr(cells: &[String]) -> String {
            let quoted: Vec<String> = cells.iter().map(|c| format!("\"{}\"", esc(c))).collect();
            format!("[{}]", quoted.join(","))
        }
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"expectation\":\"{}\",\"header\":{},\"rows\":[{}]}}",
            esc(&self.id),
            esc(&self.title),
            esc(&self.expectation),
            arr(&self.header),
            rows.join(",")
        )
    }

    /// Render as GitHub-flavoured markdown (used to assemble
    /// EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### `{}` — {}\n\n", self.id, self.title));
        out.push_str(&format!("*Shape target:* {}\n\n", self.expectation));
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }
}

/// Format seconds like the thesis tables (3–4 significant digits).
pub fn secs(t: f64) -> String {
    if t < 0.1 {
        format!("{t:.4}")
    } else {
        format!("{t:.3}")
    }
}

/// Format a speedup.
pub fn speedup(s: f64) -> String {
    format!("{s:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", "demo", "none", vec!["a".into(), "long-header".into()]);
        t.row(vec!["1".into(), "2".into()]);
        let text = t.render();
        assert!(text.contains("demo"));
        assert!(text.contains("long-header"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", "demo", "none", vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn json_is_escaped_and_well_formed() {
        let mut t = Table::new(
            "t1",
            "a \"quoted\"\ttitle",
            "line\nbreak",
            vec!["a".into(), "b".into()],
        );
        t.row(vec!["1".into(), "x\\y".into()]);
        let json = t.render_json();
        assert_eq!(
            json,
            "{\"id\":\"t1\",\"title\":\"a \\\"quoted\\\"\\ttitle\",\
             \"expectation\":\"line\\nbreak\",\"header\":[\"a\",\"b\"],\
             \"rows\":[[\"1\",\"x\\\\y\"]]}"
        );
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new("t", "demo", "none", vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn secs_formats_small_and_large() {
        assert_eq!(secs(0.0123456), "0.0123");
        assert_eq!(secs(1.23456), "1.235");
    }
}
