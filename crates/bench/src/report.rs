//! Plain-text table rendering for the reproduction harness.

/// A rendered experiment artifact: a title, a caption tying it to the
/// thesis, a header row, and data rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (`table2`, `fig11`, …).
    pub id: String,
    /// Human title matching the thesis artifact.
    pub title: String,
    /// What shape the thesis reports (for eyeball comparison).
    pub expectation: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Construct an empty table.
    pub fn new(id: &str, title: &str, expectation: &str, header: Vec<String>) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            expectation: expectation.to_string(),
            header,
            rows: Vec::new(),
        }
    }

    /// Append one row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.title));
        out.push_str(&format!("   shape target: {}\n", self.expectation));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format!("   {}\n", fmt_row(&self.header)));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&format!("   {}\n", "-".repeat(total)));
        for row in &self.rows {
            out.push_str(&format!("   {}\n", fmt_row(row)));
        }
        out
    }

    /// Render as GitHub-flavoured markdown (used to assemble
    /// EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### `{}` — {}\n\n", self.id, self.title));
        out.push_str(&format!("*Shape target:* {}\n\n", self.expectation));
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }
}

/// Format seconds like the thesis tables (3–4 significant digits).
pub fn secs(t: f64) -> String {
    if t < 0.1 {
        format!("{t:.4}")
    } else {
        format!("{t:.3}")
    }
}

/// Format a speedup.
pub fn speedup(s: f64) -> String {
    format!("{s:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", "demo", "none", vec!["a".into(), "long-header".into()]);
        t.row(vec!["1".into(), "2".into()]);
        let text = t.render();
        assert!(text.contains("demo"));
        assert!(text.contains("long-header"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", "demo", "none", vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new("t", "demo", "none", vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn secs_formats_small_and_large() {
        assert_eq!(secs(0.0123456), "0.0123");
        assert_eq!(secs(1.23456), "1.235");
    }
}
