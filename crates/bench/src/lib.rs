//! # ic2-bench — the reproduction harness
//!
//! One function per table and figure of the thesis's evaluation
//! (Section 5), each regenerating the artifact's rows/series on the
//! simulated substrate. The `repro` binary dispatches on experiment id;
//! microbenches live under `benches/` and use the in-tree [`harness`]
//! (the workspace builds offline, with no registry dependencies).

pub mod experiments;
pub mod harness;
pub mod report;
pub mod trace_tools;
pub mod workloads;
