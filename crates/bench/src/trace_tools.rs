//! Canonical traced runs and the `trace.json` schema check behind
//! `repro --trace/--timeline/--check-trace` and the CI trace job.
//!
//! The canonical run is a seeded chaos workload with **unbounded**
//! mailboxes: credit stalls are the one host-schedule-dependent trace
//! event and only exist under bounded mailboxes, so every event this run
//! emits is a pure function of the virtual clock and the fault plan — two
//! same-seed runs produce byte-identical sink files, which CI checks with
//! a plain `cmp`.

use crate::workloads as w;
use ic2mpi::prelude::*;
use ic2mpi::{chrome_trace_json, timeline_json, RunReport};

/// The canonical seeded chaos workload `repro --trace` records: 64-node
/// hex grid, 8 procs, 12 iterations, drop + corrupt + truncate faults,
/// an uncooperative crash of rank 3 mid-run, checkpointing every 4
/// iterations — so the trace exercises retries, NACKs, crash timeouts,
/// checkpoints and a rollback, all deterministically.
pub fn traced_chaos_report() -> RunReport<i64> {
    let graph = w::hex(64);
    let program = AvgProgram::fine();
    let plan = mpisim::FaultPlan::new(42)
        .with_drop(0.05)
        .with_corrupt(0.05)
        .with_truncate(0.02)
        .with_crash(3, 0.05);
    let world = mpisim::Config::virtual_time(mpisim::NetModel::origin2000())
        .with_watchdog(std::time::Duration::from_secs(60))
        .with_faults(plan);
    let cfg = w::static_cfg(8, 12)
        .with_checkpointing(4)
        .with_world(world)
        .with_tracing();
    w::run_reported(&graph, &program, &Metis::default(), || NoBalancer, &cfg)
}

/// Render both sinks for [`traced_chaos_report`]:
/// `(chrome_trace, timeline)`.
pub fn traced_chaos_sinks() -> (String, String) {
    let report = traced_chaos_report();
    let traces = report.trace.as_deref().unwrap_or(&[]);
    (chrome_trace_json(traces), timeline_json(traces))
}

/// What [`check_trace`] verified about a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Rank tracks (thread-name metadata records).
    pub ranks: usize,
    /// Complete (`"ph":"X"`) span events.
    pub spans: usize,
    /// Instant (`"ph":"i"`) events.
    pub instants: usize,
}

fn tid_of(event: &str) -> Result<usize, String> {
    let pos = event
        .find("\"tid\":")
        .ok_or_else(|| format!("event lacks a tid: {event}"))?;
    let digits: String = event[pos + 6..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits
        .parse()
        .map_err(|_| format!("non-numeric tid: {event}"))
}

/// Validate a `repro --trace` output file against the subset of the Chrome
/// Trace Event Format the recorder emits: the exact header, one
/// `thread_name` metadata record per rank, complete spans with `ts`/`dur`,
/// thread-scoped instants — and at least one span on every rank's track
/// (every rank records at least its Initialization phase). Hand-rolled
/// line scanner; the workspace builds offline with no JSON dependency.
pub fn check_trace(json: &str) -> Result<TraceSummary, String> {
    let mut lines = json.lines();
    let head = lines.next().ok_or("empty trace file")?;
    if head != "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[" {
        return Err(format!("unexpected header: {head}"));
    }
    let mut meta_tids: Vec<usize> = Vec::new();
    let mut span_tids: Vec<usize> = Vec::new();
    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut closed = false;
    for line in lines {
        if closed {
            return Err(format!("content after the closing bracket: {line}"));
        }
        if line == "]}" {
            closed = true;
            continue;
        }
        let event = line.strip_suffix(',').unwrap_or(line);
        if !event.starts_with("{\"ph\":\"") || !event.ends_with('}') {
            return Err(format!("malformed event line: {line}"));
        }
        if !event.contains("\"pid\":1") {
            return Err(format!("event outside pid 1: {event}"));
        }
        let tid = tid_of(event)?;
        match &event[7..8] {
            "M" => {
                if !event.contains("\"name\":\"thread_name\"") {
                    return Err(format!("unknown metadata record: {event}"));
                }
                if meta_tids.contains(&tid) {
                    return Err(format!("duplicate thread_name for tid {tid}"));
                }
                meta_tids.push(tid);
            }
            "X" => {
                if !event.contains("\"ts\":") || !event.contains("\"dur\":") {
                    return Err(format!("span without ts/dur: {event}"));
                }
                spans += 1;
                if !span_tids.contains(&tid) {
                    span_tids.push(tid);
                }
            }
            "i" => {
                if !event.contains("\"ts\":") || !event.contains("\"s\":\"t\"") {
                    return Err(format!("instant without ts or thread scope: {event}"));
                }
                instants += 1;
            }
            ph => return Err(format!("unexpected event phase {ph:?}: {event}")),
        }
    }
    if !closed {
        return Err("trace file is not closed with `]}`".into());
    }
    if meta_tids.is_empty() {
        return Err("no rank tracks".into());
    }
    span_tids.sort_unstable();
    let mut named = meta_tids.clone();
    named.sort_unstable();
    if span_tids != named {
        return Err(format!(
            "span tracks {span_tids:?} do not match named rank tracks {named:?}"
        ));
    }
    Ok(TraceSummary {
        ranks: meta_tids.len(),
        spans,
        instants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_trace_passes_its_own_schema_check() {
        let (trace, timeline) = traced_chaos_sinks();
        let summary = check_trace(&trace).expect("canonical trace is schema-clean");
        assert_eq!(summary.ranks, 8, "one track per rank");
        assert!(summary.spans > 0 && summary.instants > 0);
        assert!(timeline.starts_with("{\"iterations\":["));
    }

    #[test]
    fn schema_check_rejects_garbage() {
        assert!(check_trace("").is_err());
        assert!(check_trace("{\"traceEvents\":[\n]}").is_err());
        let missing_close = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
        assert!(check_trace(missing_close).is_err());
    }
}
