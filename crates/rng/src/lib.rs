//! # ic2-rng — a small deterministic RNG with no external dependencies
//!
//! The workspace must build and test in hermetic environments with no
//! crates-io access, so instead of `rand` every seeded computation
//! (graph generators, partitioner tie-breaking, scenario generation,
//! fault injection) uses this SplitMix64 generator. SplitMix64 is the
//! seeding generator of `java.util.SplittableRandom` (Steele, Lea &
//! Flood, OOPSLA 2014): a 64-bit state marched by a Weyl sequence and
//! scrambled by a variant of the MurmurHash3 finalizer. It passes BigCrush
//! when used as a stream and — critically for fault injection — its
//! finalizer is a high-quality *stateless* mixer, so per-message fault
//! decisions can be computed as pure hashes independent of thread
//! interleaving.

/// The SplitMix64 finalizer: a bijective 64-bit mixer.
///
/// Useful on its own for deterministic, order-independent decisions
/// (e.g. "should message #k from rank i to rank j be dropped?"): hash the
/// identifying tuple, mix, and threshold.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic sequential generator over the SplitMix64 stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Equal seeds yield equal streams on
    /// every platform.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Uses the widening-multiply range
    /// reduction (Lemire), whose bias is at most 2⁻⁶⁴ per draw.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `usize` in `lo..hi` (half-open).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// Uniform `usize` in `lo..=hi` (inclusive).
    ///
    /// # Panics
    /// Panics if `hi < lo`.
    #[inline]
    pub fn gen_range_incl(&mut self, range: std::ops::RangeInclusive<usize>) -> usize {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range");
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 1234567 from the canonical SplitMix64
        // (Vigna's xoshiro site / SplittableRandom).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range_incl(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SplitMix64::new(11);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[r.below(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn mix64_is_stateless_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Low-entropy inputs must produce high-entropy outputs.
        let bits: u32 = (0..64u64).map(|i| mix64(i).count_ones()).sum::<u32>() / 64;
        assert!((20..44).contains(&bits));
    }
}
