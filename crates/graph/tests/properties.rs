//! Randomised tests for the graph substrate, driven by the in-tree
//! [`SplitMix64`] generator with fixed seeds (hermetic and reproducible).

use ic2_graph::{chaco, generators, metrics, Graph, GraphBuilder, Partition};
use ic2_rng::SplitMix64;

/// A connected random graph plus a valid partition of it.
fn graph_and_partition(rng: &mut SplitMix64) -> (Graph, Partition) {
    let n = rng.gen_range(2..40);
    let k = rng.gen_range(1..6);
    let g = generators::random_connected(n, 3.0, 10, rng.next_u64());
    let assign: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k) as u32).collect();
    (g, Partition::new(assign, k))
}

#[test]
fn generated_graphs_always_validate() {
    let mut rng = SplitMix64::new(0x6A1);
    for _ in 0..64 {
        let n = rng.gen_range(1..60);
        let deg = 2.0 + 4.0 * rng.next_f64();
        let g = generators::random_connected(n, deg, 10, rng.next_u64());
        assert_eq!(g.validate(), Ok(()));
        assert!(g.is_connected());
        assert!(g.max_degree() <= 10);
        assert_eq!(g.num_nodes(), n);
    }
}

#[test]
fn hex_grids_always_validate() {
    for rows in 1..10 {
        for cols in 1..10 {
            let g = generators::hex_grid(rows, cols);
            assert_eq!(g.validate(), Ok(()));
            assert!(g.is_connected());
            assert!(g.max_degree() <= 6);
        }
    }
}

#[test]
fn chaco_roundtrip_any_graph() {
    let mut rng = SplitMix64::new(0x6A2);
    for _ in 0..64 {
        let n = rng.gen_range(2..40);
        let g = generators::random_connected(n, 3.0, 10, rng.next_u64());
        let fmt = *rng.choose(&[0u8, 1, 10, 11]).unwrap();
        let text = chaco::render(&g, fmt);
        let back = chaco::parse(&text).unwrap();
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_edges(), g.num_edges());
        for v in g.nodes() {
            assert_eq!(back.neighbors(v), g.neighbors(v));
        }
    }
}

#[test]
fn edge_cut_is_bounded_and_zero_for_trivial() {
    let mut rng = SplitMix64::new(0x6A3);
    for _ in 0..64 {
        let (g, p) = graph_and_partition(&mut rng);
        let cut = metrics::edge_cut(&g, &p);
        let total: i64 = g.edges().map(|(_, _, w)| w).sum();
        assert!(cut >= 0);
        assert!(cut <= total);
        let trivial = Partition::all_on_one(g.num_nodes(), p.num_parts());
        assert_eq!(metrics::edge_cut(&g, &trivial), 0);
    }
}

#[test]
fn move_gain_predicts_cut_change() {
    let mut rng = SplitMix64::new(0x6A4);
    for _ in 0..64 {
        let (g, p) = graph_and_partition(&mut rng);
        let before = metrics::edge_cut(&g, &p);
        for v in g.nodes().take(5) {
            for to in 0..p.num_parts() as u32 {
                let mut moved = p.clone();
                moved.assign(v, to);
                assert_eq!(
                    metrics::edge_cut(&g, &moved) - before,
                    metrics::move_gain(&g, &p, v, to)
                );
            }
        }
    }
}

#[test]
fn comm_matrix_row_sums_equal_comm_volume() {
    let mut rng = SplitMix64::new(0x6A5);
    for _ in 0..64 {
        let (g, p) = graph_and_partition(&mut rng);
        let matrix = metrics::comm_matrix(&g, &p);
        let total: usize = matrix.iter().flatten().sum();
        assert_eq!(total, metrics::comm_volume(&g, &p));
    }
}

#[test]
fn boundary_nodes_zero_iff_cut_zero() {
    let mut rng = SplitMix64::new(0x6A6);
    for _ in 0..64 {
        let (g, p) = graph_and_partition(&mut rng);
        let cut = metrics::edge_cut(&g, &p);
        let boundary = metrics::boundary_nodes(&g, &p);
        assert_eq!(cut == 0, boundary == 0);
    }
}

#[test]
fn loads_sum_to_total_weight() {
    let mut rng = SplitMix64::new(0x6A7);
    for _ in 0..64 {
        let (g, p) = graph_and_partition(&mut rng);
        let loads = p.loads(&g);
        assert_eq!(loads.iter().sum::<i64>(), g.total_vertex_weight());
    }
}

#[test]
fn builder_neighbors_are_sorted_and_symmetric() {
    let mut rng = SplitMix64::new(0x6A8);
    for _ in 0..64 {
        let n = rng.gen_range(2..30);
        let num_edges = rng.gen_range(1..60);
        let mut b = GraphBuilder::new(n);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..num_edges {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v && seen.insert((u.min(v), u.max(v))) {
                b.edge(u.min(v), u.max(v));
            }
        }
        let g = b.build();
        assert_eq!(g.validate(), Ok(()));
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
