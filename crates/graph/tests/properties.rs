//! Property-based tests for the graph substrate.

use ic2_graph::{chaco, generators, metrics, Graph, GraphBuilder, Partition};
use proptest::prelude::*;

/// Strategy: a connected random graph plus a valid partition of it.
fn graph_and_partition() -> impl Strategy<Value = (Graph, Partition)> {
    (2usize..40, 1usize..6, any::<u64>()).prop_flat_map(|(n, k, seed)| {
        let g = generators::random_connected(n, 3.0, 10, seed);
        let parts = proptest::collection::vec(0..k as u32, n);
        (Just(g), parts, Just(k))
            .prop_map(|(g, assign, k)| (g, Partition::new(assign, k)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_graphs_always_validate(
        n in 1usize..60,
        deg in 2.0f64..6.0,
        seed in any::<u64>(),
    ) {
        let g = generators::random_connected(n, deg, 10, seed);
        prop_assert_eq!(g.validate(), Ok(()));
        prop_assert!(g.is_connected());
        prop_assert!(g.max_degree() <= 10);
        prop_assert_eq!(g.num_nodes(), n);
    }

    #[test]
    fn hex_grids_always_validate(rows in 1usize..10, cols in 1usize..10) {
        let g = generators::hex_grid(rows, cols);
        prop_assert_eq!(g.validate(), Ok(()));
        prop_assert!(g.is_connected());
        prop_assert!(g.max_degree() <= 6);
    }

    #[test]
    fn chaco_roundtrip_any_graph(n in 2usize..40, seed in any::<u64>(), fmt in prop_oneof![Just(0u8), Just(1), Just(10), Just(11)]) {
        let g = generators::random_connected(n, 3.0, 10, seed);
        let text = chaco::render(&g, fmt);
        let back = chaco::parse(&text).unwrap();
        prop_assert_eq!(back.num_nodes(), g.num_nodes());
        prop_assert_eq!(back.num_edges(), g.num_edges());
        for v in g.nodes() {
            prop_assert_eq!(back.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn edge_cut_is_bounded_and_zero_for_trivial((g, p) in graph_and_partition()) {
        let cut = metrics::edge_cut(&g, &p);
        let total: i64 = g.edges().map(|(_, _, w)| w).sum();
        prop_assert!(cut >= 0);
        prop_assert!(cut <= total);
        let trivial = Partition::all_on_one(g.num_nodes(), p.num_parts());
        prop_assert_eq!(metrics::edge_cut(&g, &trivial), 0);
    }

    #[test]
    fn move_gain_predicts_cut_change((g, p) in graph_and_partition()) {
        let before = metrics::edge_cut(&g, &p);
        for v in g.nodes().take(5) {
            for to in 0..p.num_parts() as u32 {
                let mut moved = p.clone();
                moved.assign(v, to);
                prop_assert_eq!(
                    metrics::edge_cut(&g, &moved) - before,
                    metrics::move_gain(&g, &p, v, to)
                );
            }
        }
    }

    #[test]
    fn comm_matrix_row_sums_equal_comm_volume((g, p) in graph_and_partition()) {
        let matrix = metrics::comm_matrix(&g, &p);
        let total: usize = matrix.iter().flatten().sum();
        prop_assert_eq!(total, metrics::comm_volume(&g, &p));
    }

    #[test]
    fn boundary_nodes_zero_iff_cut_zero((g, p) in graph_and_partition()) {
        let cut = metrics::edge_cut(&g, &p);
        let boundary = metrics::boundary_nodes(&g, &p);
        prop_assert_eq!(cut == 0, boundary == 0);
    }

    #[test]
    fn loads_sum_to_total_weight((g, p) in graph_and_partition()) {
        let loads = p.loads(&g);
        prop_assert_eq!(loads.iter().sum::<i64>(), g.total_vertex_weight());
    }

    #[test]
    fn builder_neighbors_are_sorted_and_symmetric(
        n in 2usize..30,
        edges in proptest::collection::vec((0u32..30, 0u32..30), 1..60),
    ) {
        let mut b = GraphBuilder::new(n);
        let mut seen = std::collections::HashSet::new();
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            if u != v && seen.insert((u.min(v), u.max(v))) {
                b.edge(u.min(v), u.max(v));
            }
        }
        let g = b.build();
        prop_assert_eq!(g.validate(), Ok(()));
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
