//! CSR graph representation.

/// Node identifier: a dense index in `0..graph.num_nodes()`.
///
/// The Chaco files the thesis uses number nodes from 1; the
/// [`crate::chaco`] module converts at the boundary.
pub type NodeId = u32;

/// An undirected graph in compressed-sparse-row form with integer node and
/// edge weights and optional planar coordinates.
///
/// Invariants (checked by [`GraphBuilder::build`] and [`Graph::validate`]):
/// adjacency is symmetric with matching edge weights, there are no
/// self-loops or parallel edges, and `xadj` is monotone.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    xadj: Vec<usize>,
    adj: Vec<NodeId>,
    vwgt: Vec<i64>,
    ewgt: Vec<i64>,
    coords: Option<Vec<(f64, f64)>>,
}

impl Graph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Neighbours of `v`, in sorted order.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Edge weights aligned with [`neighbors`](Self::neighbors).
    pub fn edge_weights(&self, v: NodeId) -> &[i64] {
        &self.ewgt[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Computational weight of node `v`.
    pub fn vertex_weight(&self, v: NodeId) -> i64 {
        self.vwgt[v as usize]
    }

    /// All vertex weights.
    pub fn vertex_weights(&self) -> &[i64] {
        &self.vwgt
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> i64 {
        self.vwgt.iter().sum()
    }

    /// Weight of the edge `(u, v)`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<i64> {
        let nbrs = self.neighbors(u);
        nbrs.binary_search(&v).ok().map(|i| self.edge_weights(u)[i])
    }

    /// Whether `(u, v)` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Planar coordinates, if the generator attached them.
    pub fn coords(&self) -> Option<&[(f64, f64)]> {
        self.coords.as_deref()
    }

    /// Coordinate of one node, if coordinates exist.
    pub fn coord(&self, v: NodeId) -> Option<(f64, f64)> {
        self.coords.as_ref().map(|c| c[v as usize])
    }

    /// Iterate over every node id.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterate over each undirected edge once, as `(u, v, weight)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, i64)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .zip(self.edge_weights(u))
                .filter(move |(&v, _)| u < v)
                .map(move |(&v, &w)| (u, v, w))
        })
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Whether the graph is connected (empty graphs count as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Check all structural invariants; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes();
        if self.vwgt.len() != n {
            return Err(format!("vwgt length {} != n {}", self.vwgt.len(), n));
        }
        if self.ewgt.len() != self.adj.len() {
            return Err("ewgt length != adjacency length".into());
        }
        if let Some(c) = &self.coords {
            if c.len() != n {
                return Err("coords length != n".into());
            }
        }
        for v in self.nodes() {
            let nbrs = self.neighbors(v);
            for window in nbrs.windows(2) {
                if window[0] >= window[1] {
                    return Err(format!("node {v}: neighbours not strictly sorted"));
                }
            }
            for (&w, &ew) in nbrs.iter().zip(self.edge_weights(v)) {
                if w as usize >= n {
                    return Err(format!("node {v}: neighbour {w} out of range"));
                }
                if w == v {
                    return Err(format!("node {v}: self loop"));
                }
                match self.edge_weight(w, v) {
                    Some(back) if back == ew => {}
                    Some(back) => {
                        return Err(format!("edge ({v},{w}): asymmetric weights {ew} vs {back}"))
                    }
                    None => return Err(format!("edge ({v},{w}) missing reverse direction")),
                }
            }
        }
        Ok(())
    }
}

/// Incremental graph construction from an edge list.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, i64)>,
    vwgt: Option<Vec<i64>>,
    coords: Option<Vec<(f64, f64)>>,
}

impl GraphBuilder {
    /// Builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            ..Default::default()
        }
    }

    /// Add an undirected edge of weight 1.
    pub fn edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.weighted_edge(u, v, 1)
    }

    /// Add an undirected edge with an explicit weight.
    pub fn weighted_edge(&mut self, u: NodeId, v: NodeId, w: i64) -> &mut Self {
        self.edges.push((u, v, w));
        self
    }

    /// Set all vertex weights (defaults to uniform 1).
    pub fn vertex_weights(&mut self, vwgt: Vec<i64>) -> &mut Self {
        self.vwgt = Some(vwgt);
        self
    }

    /// Attach planar coordinates.
    pub fn coords(&mut self, coords: Vec<(f64, f64)>) -> &mut Self {
        self.coords = Some(coords);
        self
    }

    /// Build the CSR graph.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, duplicate edges, or
    /// mismatched weight/coordinate vector lengths.
    pub fn build(&self) -> Graph {
        let n = self.n;
        for &(u, v, w) in &self.edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range for {n} nodes"
            );
            assert_ne!(u, v, "self loop at node {u}");
            assert!(w > 0, "edge ({u},{v}) has non-positive weight {w}");
        }
        let mut deg = vec![0usize; n];
        for &(u, v, _) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for i in 0..n {
            xadj[i + 1] = xadj[i] + deg[i];
        }
        let mut adj = vec![0 as NodeId; xadj[n]];
        let mut ewgt = vec![0i64; xadj[n]];
        let mut cursor = xadj.clone();
        for &(u, v, w) in &self.edges {
            adj[cursor[u as usize]] = v;
            ewgt[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            ewgt[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency run and detect duplicates.
        for v in 0..n {
            let range = xadj[v]..xadj[v + 1];
            let mut pairs: Vec<(NodeId, i64)> = adj[range.clone()]
                .iter()
                .copied()
                .zip(ewgt[range.clone()].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(w, _)| w);
            for window in pairs.windows(2) {
                assert_ne!(
                    window[0].0, window[1].0,
                    "duplicate edge ({v},{})",
                    window[0].0
                );
            }
            for (i, (w, ew)) in pairs.into_iter().enumerate() {
                adj[xadj[v] + i] = w;
                ewgt[xadj[v] + i] = ew;
            }
        }
        let vwgt = match &self.vwgt {
            Some(v) => {
                assert_eq!(v.len(), n, "vertex weight vector length mismatch");
                v.clone()
            }
            None => vec![1; n],
        };
        if let Some(c) = &self.coords {
            assert_eq!(c.len(), n, "coordinate vector length mismatch");
        }
        let g = Graph {
            xadj,
            adj,
            vwgt,
            ewgt,
            coords: self.coords.clone(),
        };
        debug_assert_eq!(g.validate(), Ok(()));
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1).edge(1, 2).weighted_edge(0, 2, 5);
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.edge_weight(0, 2), Some(5));
        assert_eq!(g.edge_weight(2, 0), Some(5));
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert!(g.has_edge(1, 2));
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.total_vertex_weight(), 3);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 1), (0, 2, 5), (1, 2, 1)]);
    }

    #[test]
    fn connectivity_detection() {
        let g = triangle();
        assert!(g.is_connected());
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1).edge(2, 3);
        assert!(!b.build().is_connected());
        assert!(GraphBuilder::new(0).build().is_connected());
        assert!(GraphBuilder::new(1).build().is_connected());
    }

    #[test]
    fn custom_vertex_weights() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 1).vertex_weights(vec![3, 4]);
        let g = b.build();
        assert_eq!(g.vertex_weight(0), 3);
        assert_eq!(g.total_vertex_weight(), 7);
    }

    #[test]
    fn coords_attach() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 1).coords(vec![(0.0, 0.0), (1.0, 0.5)]);
        let g = b.build();
        assert_eq!(g.coord(1), Some((1.0, 0.5)));
        assert_eq!(triangle().coord(0), None);
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new(2);
        b.edge(1, 1);
        b.build();
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_rejected() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 1).edge(1, 0);
        b.build();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 2);
        b.build();
    }

    #[test]
    fn validate_passes_for_built_graphs() {
        assert_eq!(triangle().validate(), Ok(()));
    }
}
