//! # ic2-graph — application-graph substrate for iC2mpi
//!
//! The iC2mpi platform consumes *application program graphs*: undirected
//! graphs whose nodes carry the application's computational units and whose
//! edges define the neighbourhoods a node's computation reads. This crate
//! provides:
//!
//! * a compact CSR [`Graph`] with node and edge weights and optional planar
//!   coordinates (band partitioners need them),
//! * [Chaco-format](chaco) readers/writers — the interchange format the
//!   thesis feeds to Metis and PaGrid,
//! * deterministic [generators] for every workload in the
//!   thesis's evaluation: hexagonal grids (32/64/96 nodes), connected random
//!   graphs (32/64 nodes), and the 32×32 hex battlefield mesh,
//! * a [`Partition`] type (node → processor assignment) plus the
//!   [quality metrics](metrics) the thesis optimises: edge-cut and load
//!   balance.

pub mod chaco;
pub mod generators;
pub mod graph;
pub mod metrics;
pub mod partition;

pub use graph::{Graph, GraphBuilder, NodeId};
pub use partition::Partition;
