//! Node-to-processor assignments.

use crate::graph::{Graph, NodeId};

/// A mapping of every node to a processor (part) in `0..num_parts`.
///
/// This is the thesis's "output array": the node-to-processor mapping a
/// static graph partitioner yields and the dynamic load balancer mutates
/// during task migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<u32>,
    num_parts: usize,
}

impl Partition {
    /// Wrap an explicit assignment vector.
    ///
    /// # Panics
    /// Panics if any entry is `>= num_parts` or `num_parts == 0`.
    pub fn new(assignment: Vec<u32>, num_parts: usize) -> Self {
        assert!(num_parts > 0, "partition needs at least one part");
        for (node, &p) in assignment.iter().enumerate() {
            assert!(
                (p as usize) < num_parts,
                "node {node} assigned to part {p} >= {num_parts}"
            );
        }
        Partition {
            assignment,
            num_parts,
        }
    }

    /// Everything on part 0.
    pub fn all_on_one(n: usize, num_parts: usize) -> Self {
        Partition::new(vec![0; n], num_parts)
    }

    /// Number of parts (processors).
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the partition covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Part of node `v`.
    pub fn part_of(&self, v: NodeId) -> u32 {
        self.assignment[v as usize]
    }

    /// Reassign node `v` (used by task migration).
    pub fn assign(&mut self, v: NodeId, part: u32) {
        assert!((part as usize) < self.num_parts);
        self.assignment[v as usize] = part;
    }

    /// The raw assignment slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.assignment
    }

    /// Nodes assigned to `part`.
    pub fn nodes_of(&self, part: u32) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == part)
            .map(|(v, _)| v as NodeId)
            .collect()
    }

    /// Vertex-weight load of each part under `graph`'s weights.
    pub fn loads(&self, graph: &Graph) -> Vec<i64> {
        assert_eq!(graph.num_nodes(), self.len());
        let mut loads = vec![0i64; self.num_parts];
        for v in graph.nodes() {
            loads[self.part_of(v) as usize] += graph.vertex_weight(v);
        }
        loads
    }

    /// Number of nodes on each part.
    pub fn counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_parts];
        for &p in &self.assignment {
            counts[p as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn basic_partition_queries() {
        let p = Partition::new(vec![0, 1, 1, 0], 2);
        assert_eq!(p.num_parts(), 2);
        assert_eq!(p.len(), 4);
        assert_eq!(p.part_of(1), 1);
        assert_eq!(p.nodes_of(0), vec![0, 3]);
        assert_eq!(p.counts(), vec![2, 2]);
    }

    #[test]
    fn loads_respect_vertex_weights() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1).edge(1, 2).vertex_weights(vec![5, 1, 2]);
        let g = b.build();
        let p = Partition::new(vec![0, 0, 1], 2);
        assert_eq!(p.loads(&g), vec![6, 2]);
    }

    #[test]
    fn assign_moves_a_node() {
        let mut p = Partition::new(vec![0, 0], 2);
        p.assign(1, 1);
        assert_eq!(p.part_of(1), 1);
    }

    #[test]
    #[should_panic(expected = ">= 2")]
    fn out_of_range_part_rejected() {
        Partition::new(vec![0, 2], 2);
    }

    #[test]
    fn empty_parts_allowed() {
        let p = Partition::new(vec![0, 0], 4);
        assert_eq!(p.counts(), vec![2, 0, 0, 0]);
        assert!(p.nodes_of(3).is_empty());
    }
}
