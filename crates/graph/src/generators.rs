//! Deterministic workload generators for every graph the thesis evaluates.

use crate::graph::{Graph, GraphBuilder, NodeId};
use ic2_rng::SplitMix64;

/// A hexagonal grid of `rows × cols` cells in "odd-r" offset layout: every
/// interior cell has six neighbours (E, W, NE, NW, SE, SW). This is the
/// topology of both the thesis's generic hex-grid workloads and the
/// battlefield terrain.
///
/// Coordinates are attached (odd rows shifted half a cell right, rows
/// √3/2 apart) so band partitioners can slice the domain geometrically.
pub fn hex_grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "hex grid needs positive dimensions");
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::new(rows * cols);
    let mut coords = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            coords.push((c as f64 + 0.5 * (r % 2) as f64, r as f64 * 0.866));
            // East edge.
            if c + 1 < cols {
                b.edge(id(r, c), id(r, c + 1));
            }
            // Southern diagonals (northern ones are added by the row above).
            if r + 1 < rows {
                if r % 2 == 0 {
                    // even row: SE = (r+1, c), SW = (r+1, c-1)
                    b.edge(id(r, c), id(r + 1, c));
                    if c > 0 {
                        b.edge(id(r, c), id(r + 1, c - 1));
                    }
                } else {
                    // odd row: SE = (r+1, c+1), SW = (r+1, c)
                    if c + 1 < cols {
                        b.edge(id(r, c), id(r + 1, c + 1));
                    }
                    b.edge(id(r, c), id(r + 1, c));
                }
            }
        }
    }
    b.coords(coords);
    b.build()
}

/// The hex-grid sizes the thesis reports: 32, 64 and 96 nodes
/// (4×8, 8×8 and 8×12). Other sizes are factored as close to square as
/// possible.
pub fn hex_grid_n(n: usize) -> Graph {
    let (rows, cols) = match n {
        32 => (4, 8),
        64 => (8, 8),
        96 => (8, 12),
        1024 => (32, 32),
        _ => squarish_dims(n),
    };
    hex_grid(rows, cols)
}

/// The thesis's battlefield terrain: a 32 × 32 hex grid (1024 cells).
pub fn battlefield_mesh() -> Graph {
    hex_grid(32, 32)
}

fn squarish_dims(n: usize) -> (usize, usize) {
    assert!(n > 0);
    let mut best = (1, n);
    let mut r = 1;
    while r * r <= n {
        if n.is_multiple_of(r) {
            best = (r, n / r);
        }
        r += 1;
    }
    best
}

/// A connected random graph on `n` nodes with roughly `avg_degree` average
/// degree and per-node degree capped at `max_degree` (the thesis's node
/// structures hold at most 10 neighbours).
///
/// Construction: a random spanning tree (guaranteeing connectivity, as an
/// iterative computation must reach every node), then random extra edges
/// until the target edge count or the degree cap blocks progress.
/// Deterministic in `seed`.
pub fn random_connected(n: usize, avg_degree: f64, max_degree: usize, seed: u64) -> Graph {
    assert!(n > 0, "graph needs at least one node");
    assert!(max_degree >= 2 || n <= 2, "degree cap too small to connect");
    let mut rng = SplitMix64::new(seed);
    let mut degree = vec![0usize; n];
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut has_edge = std::collections::HashSet::new();

    // Random spanning tree: attach each node (in shuffled order) to a
    // uniformly random, not-yet-saturated earlier node.
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    for i in 1..n {
        // Candidates: previously placed nodes with spare degree.
        let candidates: Vec<usize> = order[..i]
            .iter()
            .copied()
            .filter(|&v| degree[v] < max_degree)
            .collect();
        let parent = *rng
            .choose(&candidates)
            .expect("tree always has a candidate");
        let (u, v) = (
            order[i].min(parent) as NodeId,
            order[i].max(parent) as NodeId,
        );
        has_edge.insert((u, v));
        edges.push((u, v));
        degree[order[i]] += 1;
        degree[parent] += 1;
    }

    let target_edges = ((n as f64 * avg_degree) / 2.0).round() as usize;
    let mut attempts = 0;
    while edges.len() < target_edges && attempts < 50 * target_edges.max(1) {
        attempts += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b || degree[a] >= max_degree || degree[b] >= max_degree {
            continue;
        }
        let key = (a.min(b) as NodeId, a.max(b) as NodeId);
        if has_edge.insert(key) {
            edges.push(key);
            degree[a] += 1;
            degree[b] += 1;
        }
    }

    let mut builder = GraphBuilder::new(n);
    for (u, v) in edges {
        builder.edge(u, v);
    }
    builder.build()
}

/// The thesis's random-graph workloads: 32- and 64-node connected random
/// graphs, average degree ≈ 4, degree cap 10 (the `neighboring_nodes[10]`
/// arrays in Appendix D). The seed selects one of the "five different
/// graphs" the thesis averages over.
pub fn thesis_random_graph(n: usize, seed: u64) -> Graph {
    random_connected(n, 4.0, 10, 0x1C2_0000 + seed)
}

/// A 2D torus (wrap-around mesh), used as an extra topology in tests and
/// ablations.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs dimensions >= 3");
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.edge(id(r, c), id(r, (c + 1) % cols));
            b.edge(id(r, c), id((r + 1) % rows, c));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_grid_has_expected_structure() {
        let g = hex_grid(4, 8);
        assert_eq!(g.num_nodes(), 32);
        assert!(g.is_connected());
        assert_eq!(g.validate(), Ok(()));
        assert!(g.max_degree() <= 6);
        // Interior cells have exactly 6 neighbours.
        let interior_deg = g.degree(8 + 4); // row 1, col 4
        assert_eq!(interior_deg, 6);
        assert!(g.coords().is_some());
    }

    #[test]
    fn hex_grid_neighbor_counts_match_hex_topology() {
        // In a big grid the degree histogram should be dominated by 6s.
        let g = hex_grid(10, 10);
        let sixes = g.nodes().filter(|&v| g.degree(v) == 6).count();
        assert!(sixes >= 8 * 8, "interior should be all degree 6");
    }

    #[test]
    fn thesis_sizes_have_right_node_counts() {
        for n in [32, 64, 96] {
            let g = hex_grid_n(n);
            assert_eq!(g.num_nodes(), n);
            assert!(g.is_connected());
        }
        assert_eq!(battlefield_mesh().num_nodes(), 1024);
    }

    #[test]
    fn random_graph_is_connected_and_capped() {
        for seed in 0..5 {
            let g = thesis_random_graph(64, seed);
            assert_eq!(g.num_nodes(), 64);
            assert!(g.is_connected(), "seed {seed} disconnected");
            assert!(g.max_degree() <= 10, "seed {seed} exceeds cap");
            assert_eq!(g.validate(), Ok(()));
            let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
            assert!((3.0..=5.0).contains(&avg), "avg degree {avg}");
        }
    }

    #[test]
    fn random_graph_is_deterministic_in_seed() {
        let a = thesis_random_graph(32, 3);
        let b = thesis_random_graph(32, 3);
        assert_eq!(a, b);
        let c = thesis_random_graph(32, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn torus_is_regular() {
        let g = torus(4, 5);
        assert_eq!(g.num_nodes(), 20);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(g.is_connected());
    }

    #[test]
    fn squarish_dims_factors() {
        assert_eq!(squarish_dims(12), (3, 4));
        assert_eq!(squarish_dims(7), (1, 7));
        assert_eq!(squarish_dims(36), (6, 6));
    }

    #[test]
    fn single_cell_grid() {
        let g = hex_grid(1, 1);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
