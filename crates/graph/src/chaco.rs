//! Chaco / Metis graph-file format.
//!
//! The thesis feeds its application graphs to Metis and PaGrid in Chaco
//! format and reads them back in `InitializeGraph` / `InitializeInputArray`
//! (Appendix A). The header is `n m [fmt]`; each following line lists one
//! node's neighbours (1-indexed). `fmt` selects weights exactly as the
//! appendix decodes it:
//!
//! * `0`  — no weights,
//! * `1`  — edge weights (`neighbour weight` pairs),
//! * `10` — a single vertex weight leading each line,
//! * `11` — vertex weight then `neighbour weight` pairs.

use crate::graph::{Graph, GraphBuilder, NodeId};
use std::fmt::Write as _;

/// Errors arising while parsing a Chaco file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChacoError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A token could not be parsed as an integer.
    BadToken { line: usize, token: String },
    /// Fewer/more node lines than the header's `n`, or a line has the wrong
    /// token parity for its `fmt`.
    Shape(String),
    /// A neighbour index is out of `1..=n`, a self-loop, or the edge list is
    /// asymmetric.
    Structure(String),
}

impl std::fmt::Display for ChacoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChacoError::BadHeader(s) => write!(f, "bad Chaco header: {s}"),
            ChacoError::BadToken { line, token } => {
                write!(f, "line {line}: cannot parse integer {token:?}")
            }
            ChacoError::Shape(s) => write!(f, "malformed Chaco body: {s}"),
            ChacoError::Structure(s) => write!(f, "invalid graph structure: {s}"),
        }
    }
}

impl std::error::Error for ChacoError {}

/// Parse a Chaco-format graph from text.
pub fn parse(text: &str) -> Result<Graph, ChacoError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('%'));
    let (hline, header) = lines
        .next()
        .ok_or_else(|| ChacoError::BadHeader("empty file".into()))?;
    let head: Vec<i64> = parse_ints(header, hline)?;
    let (n, m, fmt) = match head.as_slice() {
        [n, m] => (*n, *m, 0),
        [n, m, fmt] => (*n, *m, *fmt),
        _ => {
            return Err(ChacoError::BadHeader(format!(
                "expected `n m [fmt]`, got {header:?}"
            )))
        }
    };
    if n < 0 || m < 0 || !matches!(fmt, 0 | 1 | 10 | 11) {
        return Err(ChacoError::BadHeader(format!(
            "n={n} m={m} fmt={fmt} out of range"
        )));
    }
    let n = n as usize;
    let has_vwgt = fmt == 10 || fmt == 11;
    let has_ewgt = fmt == 1 || fmt == 11;

    let mut vwgt = vec![1i64; n];
    let mut edges: Vec<(NodeId, NodeId, i64)> = Vec::new();
    let mut seen_pairs = std::collections::HashMap::new();
    let mut node = 0usize;
    for (lineno, line) in lines {
        if node >= n {
            return Err(ChacoError::Shape(format!(
                "more than {n} node lines (line {lineno})"
            )));
        }
        let ints = parse_ints(line, lineno)?;
        let mut rest = &ints[..];
        if has_vwgt {
            let w = *rest.first().ok_or_else(|| {
                ChacoError::Shape(format!("line {lineno}: missing vertex weight"))
            })?;
            vwgt[node] = w;
            rest = &rest[1..];
        }
        let stride = if has_ewgt { 2 } else { 1 };
        if rest.len() % stride != 0 {
            return Err(ChacoError::Shape(format!(
                "line {lineno}: expected neighbour{} tokens in multiples of {stride}",
                if has_ewgt { "/weight" } else { "" }
            )));
        }
        for pair in rest.chunks(stride) {
            let nbr = pair[0];
            let w = if has_ewgt { pair[1] } else { 1 };
            if nbr < 1 || nbr as usize > n {
                return Err(ChacoError::Structure(format!(
                    "line {lineno}: neighbour {nbr} out of 1..={n}"
                )));
            }
            let nbr = (nbr - 1) as NodeId;
            let me = node as NodeId;
            if nbr == me {
                return Err(ChacoError::Structure(format!("line {lineno}: self loop")));
            }
            let key = (me.min(nbr), me.max(nbr));
            match seen_pairs.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((w, 1u8));
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let (w0, count) = *e.get();
                    if w0 != w {
                        return Err(ChacoError::Structure(format!(
                            "edge ({},{}) has asymmetric weights {w0} vs {w}",
                            key.0 + 1,
                            key.1 + 1
                        )));
                    }
                    if count >= 2 {
                        return Err(ChacoError::Structure(format!(
                            "edge ({},{}) listed more than twice",
                            key.0 + 1,
                            key.1 + 1
                        )));
                    }
                    e.insert((w0, count + 1));
                }
            }
        }
        node += 1;
    }
    if node != n {
        return Err(ChacoError::Shape(format!(
            "expected {n} node lines, got {node}"
        )));
    }
    for (&(u, v), &(w, count)) in &seen_pairs {
        if count != 2 {
            return Err(ChacoError::Structure(format!(
                "edge ({},{}) listed only once (asymmetric adjacency)",
                u + 1,
                v + 1
            )));
        }
        edges.push((u, v, w));
    }
    if edges.len() != m as usize {
        return Err(ChacoError::Shape(format!(
            "header claims {m} edges but body has {}",
            edges.len()
        )));
    }
    edges.sort_unstable();
    let mut b = GraphBuilder::new(n);
    for (u, v, w) in edges {
        b.weighted_edge(u, v, w);
    }
    b.vertex_weights(vwgt);
    Ok(b.build())
}

fn parse_ints(line: &str, lineno: usize) -> Result<Vec<i64>, ChacoError> {
    line.split_whitespace()
        .map(|tok| {
            tok.parse::<i64>().map_err(|_| ChacoError::BadToken {
                line: lineno,
                token: tok.to_string(),
            })
        })
        .collect()
}

/// Render a graph in Chaco format. `fmt` chooses the weight encoding; with
/// `fmt = 0` any non-uniform weights are silently dropped, matching the
/// thesis's `fmt=0` runs ("uniform weighted program graph").
pub fn render(graph: &Graph, fmt: u8) -> String {
    assert!(matches!(fmt, 0 | 1 | 10 | 11), "unsupported fmt {fmt}");
    let has_vwgt = fmt == 10 || fmt == 11;
    let has_ewgt = fmt == 1 || fmt == 11;
    let mut out = String::new();
    if fmt == 0 {
        let _ = writeln!(out, "{} {}", graph.num_nodes(), graph.num_edges());
    } else {
        let _ = writeln!(out, "{} {} {}", graph.num_nodes(), graph.num_edges(), fmt);
    }
    for v in graph.nodes() {
        let mut first = true;
        if has_vwgt {
            let _ = write!(out, "{}", graph.vertex_weight(v));
            first = false;
        }
        for (&w, &ew) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{}", w + 1);
            if has_ewgt {
                let _ = write!(out, " {ew}");
            }
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Read a Chaco graph from a file.
pub fn read_file(path: &std::path::Path) -> Result<Graph, Box<dyn std::error::Error>> {
    Ok(parse(&std::fs::read_to_string(path)?)?)
}

/// Write a Chaco graph to a file.
pub fn write_file(graph: &Graph, fmt: u8, path: &std::path::Path) -> Result<(), std::io::Error> {
    std::fs::write(path, render(graph, fmt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn parses_unweighted() {
        let g = parse("3 2\n2\n1 3\n2\n").unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn parses_fmt0_explicit() {
        let g = parse("2 1 0\n2\n1\n").unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parses_edge_weights() {
        let g = parse("2 1 1\n2 9\n1 9\n").unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(9));
    }

    #[test]
    fn parses_vertex_weights() {
        let g = parse("3 2 10\n5 2\n3 1 3\n1 2\n").unwrap();
        assert_eq!(g.vertex_weights(), &[5, 3, 1]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn parses_both_weights() {
        let g = parse("2 1 11\n4 2 7\n6 1 7\n").unwrap();
        assert_eq!(g.vertex_weights(), &[4, 6]);
        assert_eq!(g.edge_weight(0, 1), Some(7));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let g = parse("% a comment\n\n3 2\n2\n\n% another\n1 3\n2\n").unwrap();
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(matches!(parse(""), Err(ChacoError::BadHeader(_))));
        assert!(matches!(parse("1\n"), Err(ChacoError::BadHeader(_))));
        assert!(matches!(
            parse("2 1 7\n2\n1\n"),
            Err(ChacoError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_bad_tokens() {
        assert!(matches!(
            parse("2 1\nx\n1\n"),
            Err(ChacoError::BadToken { .. })
        ));
    }

    #[test]
    fn rejects_wrong_line_count() {
        assert!(matches!(parse("3 1\n2\n1\n"), Err(ChacoError::Shape(_))));
        assert!(matches!(
            parse("1 0\n\n%\n2\n"),
            Err(ChacoError::Shape(_)) | Err(ChacoError::Structure(_))
        ));
    }

    #[test]
    fn rejects_asymmetric_adjacency() {
        assert!(matches!(parse("2 1\n2\n\n"), Err(ChacoError::Shape(_))));
        let err = parse("3 2\n2\n1\n2\n");
        assert!(matches!(err, Err(ChacoError::Structure(_))), "{err:?}");
    }

    #[test]
    fn rejects_out_of_range_neighbor_and_self_loop() {
        assert!(matches!(
            parse("2 1\n3\n1\n"),
            Err(ChacoError::Structure(_))
        ));
        assert!(matches!(
            parse("2 1\n1\n2\n"),
            Err(ChacoError::Structure(_))
        ));
    }

    #[test]
    fn rejects_edge_count_mismatch() {
        assert!(matches!(parse("2 5\n2\n1\n"), Err(ChacoError::Shape(_))));
    }

    #[test]
    fn roundtrips_all_formats() {
        let g = generators::hex_grid(4, 4);
        for fmt in [0u8, 1, 10, 11] {
            let text = render(&g, fmt);
            let back = parse(&text).unwrap_or_else(|e| panic!("fmt {fmt}: {e}"));
            assert_eq!(back.num_nodes(), g.num_nodes());
            assert_eq!(back.num_edges(), g.num_edges());
            for v in g.nodes() {
                assert_eq!(back.neighbors(v), g.neighbors(v), "fmt {fmt} node {v}");
            }
        }
    }

    #[test]
    fn roundtrip_preserves_weights() {
        let mut b = crate::graph::GraphBuilder::new(3);
        b.weighted_edge(0, 1, 3)
            .weighted_edge(1, 2, 4)
            .vertex_weights(vec![7, 8, 9]);
        let g = b.build();
        let back = parse(&render(&g, 11)).unwrap();
        assert_eq!(back, {
            // coords are not representable in Chaco; g has none anyway
            g.clone()
        });
    }

    #[test]
    fn file_roundtrip() {
        let g = generators::thesis_random_graph(32, 0);
        let dir = std::env::temp_dir().join("ic2_chaco_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g32.chaco");
        write_file(&g, 0, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
    }
}
