//! Partition quality metrics.
//!
//! The thesis's two objectives: balance the computational load and minimise
//! the edge-cut (inter-processor communication).

use crate::graph::{Graph, NodeId};
use crate::partition::Partition;

/// Total weight of edges whose endpoints live on different parts.
pub fn edge_cut(graph: &Graph, part: &Partition) -> i64 {
    graph
        .edges()
        .filter(|&(u, v, _)| part.part_of(u) != part.part_of(v))
        .map(|(_, _, w)| w)
        .sum()
}

/// Load-imbalance factor: `max part load / ideal load`, where ideal is the
/// average. 1.0 is perfect; Metis-style partitioners aim for ≤ ~1.03 on
/// unit weights.
pub fn imbalance(graph: &Graph, part: &Partition) -> f64 {
    let loads = part.loads(graph);
    let total: i64 = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let ideal = total as f64 / part.num_parts() as f64;
    let max = *loads.iter().max().expect("at least one part") as f64;
    max / ideal
}

/// Number of *peripheral* nodes: nodes with at least one neighbour on a
/// different part. These are exactly the nodes whose updated data the
/// platform must communicate each iteration.
pub fn boundary_nodes(graph: &Graph, part: &Partition) -> usize {
    graph
        .nodes()
        .filter(|&v| {
            graph
                .neighbors(v)
                .iter()
                .any(|&w| part.part_of(w) != part.part_of(v))
        })
        .count()
}

/// Total communication volume: for each node, the number of *distinct*
/// remote parts among its neighbours (each remote part receives one shadow
/// copy per iteration). This is the quantity the platform's
/// `shadow_for_procs` bookkeeping realises.
pub fn comm_volume(graph: &Graph, part: &Partition) -> usize {
    let mut volume = 0;
    let mut seen: Vec<u32> = Vec::new();
    for v in graph.nodes() {
        seen.clear();
        let home = part.part_of(v);
        for &w in graph.neighbors(v) {
            let p = part.part_of(w);
            if p != home && !seen.contains(&p) {
                seen.push(p);
            }
        }
        volume += seen.len();
    }
    volume
}

/// Per-pair communication matrix: `matrix[i][j]` = number of shadow copies
/// part `i` sends to part `j` each iteration.
pub fn comm_matrix(graph: &Graph, part: &Partition) -> Vec<Vec<usize>> {
    let k = part.num_parts();
    let mut matrix = vec![vec![0usize; k]; k];
    let mut seen: Vec<u32> = Vec::new();
    for v in graph.nodes() {
        seen.clear();
        let home = part.part_of(v);
        for &w in graph.neighbors(v) {
            let p = part.part_of(w);
            if p != home && !seen.contains(&p) {
                seen.push(p);
                matrix[home as usize][p as usize] += 1;
            }
        }
    }
    matrix
}

/// The change in edge-cut if node `v` moved to `to_part`: negative values
/// reduce the cut. This is the gain function both the KL/FM refinement and
/// the thesis's `GetMigratingNode` heuristic (Figure 9) evaluate.
pub fn move_gain(graph: &Graph, part: &Partition, v: NodeId, to_part: u32) -> i64 {
    let home = part.part_of(v);
    if home == to_part {
        return 0;
    }
    let mut delta = 0;
    for (&w, &ew) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
        let p = part.part_of(w);
        if p == home {
            delta += ew; // edge becomes cut
        } else if p == to_part {
            delta -= ew; // edge stops being cut
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Path 0-1-2-3 split in the middle.
    fn path4() -> (Graph, Partition) {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1).edge(1, 2).edge(2, 3);
        (b.build(), Partition::new(vec![0, 0, 1, 1], 2))
    }

    #[test]
    fn edge_cut_counts_cross_edges() {
        let (g, p) = path4();
        assert_eq!(edge_cut(&g, &p), 1);
        let all_one = Partition::all_on_one(4, 2);
        assert_eq!(edge_cut(&g, &all_one), 0);
    }

    #[test]
    fn edge_cut_respects_weights() {
        let mut b = GraphBuilder::new(2);
        b.weighted_edge(0, 1, 7);
        let g = b.build();
        let p = Partition::new(vec![0, 1], 2);
        assert_eq!(edge_cut(&g, &p), 7);
    }

    #[test]
    fn imbalance_of_even_split_is_one() {
        let (g, p) = path4();
        assert!((imbalance(&g, &p) - 1.0).abs() < 1e-12);
        let skew = Partition::new(vec![0, 0, 0, 1], 2);
        assert!((imbalance(&g, &skew) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn boundary_nodes_are_the_peripherals() {
        let (g, p) = path4();
        assert_eq!(boundary_nodes(&g, &p), 2); // nodes 1 and 2
    }

    #[test]
    fn comm_volume_counts_distinct_remote_parts() {
        // Star: center 0 with leaves on two other parts.
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1).edge(0, 2).edge(0, 3);
        let g = b.build();
        let p = Partition::new(vec![0, 1, 1, 2], 3);
        // Node 0 is shadow for parts 1 and 2 (2 copies); each leaf is shadow
        // for part 0 (3 copies).
        assert_eq!(comm_volume(&g, &p), 5);
        let m = comm_matrix(&g, &p);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[0][2], 1);
        assert_eq!(m[1][0], 2);
        assert_eq!(m[2][0], 1);
    }

    #[test]
    fn move_gain_matches_recomputed_cut() {
        let (g, p) = path4();
        for v in g.nodes() {
            for to in 0..2u32 {
                let mut moved = p.clone();
                moved.assign(v, to);
                assert_eq!(
                    edge_cut(&g, &moved) - edge_cut(&g, &p),
                    move_gain(&g, &p, v, to),
                    "node {v} to part {to}"
                );
            }
        }
    }

    #[test]
    fn figure9_example_prefers_low_edge_cut_migrant() {
        // Reconstruction of the thesis's Figure 9: migrating A from part 0
        // to part 1 raises the cut; migrating B lowers it.
        //
        //   part 0: A, B's interior friends; part 1: C and friends.
        //   A has 3 internal edges, 1 edge to part 1.
        //   B has 1 internal edge, 2 edges to part 1.
        let mut b = GraphBuilder::new(7);
        // A = 0 with internal neighbours 2,3,4 and remote 5.
        b.edge(0, 2).edge(0, 3).edge(0, 4).edge(0, 5);
        // B = 1 with internal neighbour 2 and remote 5,6.
        b.edge(1, 2).edge(1, 5).edge(1, 6);
        let g = b.build();
        let p = Partition::new(vec![0, 0, 0, 0, 0, 1, 1], 2);
        let gain_a = move_gain(&g, &p, 0, 1);
        let gain_b = move_gain(&g, &p, 1, 1);
        assert!(gain_b < gain_a, "B ({gain_b}) should beat A ({gain_a})");
        assert_eq!(gain_a, 3 - 1);
        assert_eq!(gain_b, 1 - 2);
    }
}
