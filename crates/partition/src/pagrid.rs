//! PaGrid-style processor-graph-aware partitioner \[WA04, HAB06\].
//!
//! Where Metis minimises total edge-cut subject to balance, PaGrid
//! minimises an *estimated execution time* over a weighted processor graph:
//! each processor's cost is its compute load (scaled by speed) plus `Rref`
//! times its communication, where communication counts each cut edge
//! weighted by the hop distance between the two processors. The bottleneck
//! processor defines the estimate — so PaGrid refinement attacks the
//! maximum, which is what actually bounds an iterative computation's step
//! time. This is why the thesis finds PaGrid ahead of Metis on irregular
//! random graphs (Figure 17): Metis can leave one processor
//! communication-heavy even with a smaller total cut.
//!
//! The thesis runs PaGrid with a hypercube processor network and
//! `Rref = 0.45` for its graph topologies; those are the defaults here.

use crate::metis::Metis;
use crate::procgraph::ProcessorGraph;
use crate::StaticPartitioner;
use ic2_graph::{Graph, NodeId, Partition};

/// Estimated-execution-time mapper over a processor graph.
#[derive(Debug, Clone)]
pub struct PaGrid {
    /// Partitioner used for the starting point.
    pub base: Metis,
    /// Ratio of communication time to computation time per node
    /// (the thesis uses 0.45 for its workloads).
    pub rref: f64,
    /// Target machine; `None` builds a hypercube of the requested size.
    pub machine: Option<ProcessorGraph>,
    /// Allowed compute-load imbalance during refinement.
    pub imbalance: f64,
    /// Maximum refinement passes.
    pub passes: usize,
}

impl Default for PaGrid {
    fn default() -> Self {
        PaGrid {
            base: Metis::default(),
            rref: 0.45,
            machine: None,
            imbalance: 0.10,
            passes: 8,
        }
    }
}

impl PaGrid {
    /// PaGrid with an explicit machine description.
    pub fn on_machine(machine: ProcessorGraph) -> Self {
        PaGrid {
            machine: Some(machine),
            ..Default::default()
        }
    }

    /// Set the communication/computation ratio.
    pub fn with_rref(mut self, rref: f64) -> Self {
        self.rref = rref;
        self
    }
}

/// Incremental cost state for the refinement loop.
struct CostState<'a> {
    graph: &'a Graph,
    dist: Vec<Vec<usize>>,
    speeds: Vec<f64>,
    rref: f64,
    /// Compute load per part (vertex weight sum).
    loads: Vec<i64>,
    /// Communication cost per part.
    comm: Vec<f64>,
}

impl<'a> CostState<'a> {
    fn new(graph: &'a Graph, part: &Partition, machine: &ProcessorGraph, rref: f64) -> Self {
        let k = part.num_parts();
        let mut state = CostState {
            graph,
            dist: machine.distances(),
            speeds: (0..k).map(|p| machine.speed(p)).collect(),
            rref,
            loads: part.loads(graph),
            comm: vec![0.0; k],
        };
        for v in graph.nodes() {
            state.comm[part.part_of(v) as usize] += state.node_comm(v, part, part.part_of(v));
        }
        state
    }

    /// Communication contribution of `v` if it lived on `home`.
    fn node_comm(&self, v: NodeId, part: &Partition, home: u32) -> f64 {
        let mut c = 0.0;
        for (&w, &ew) in self
            .graph
            .neighbors(v)
            .iter()
            .zip(self.graph.edge_weights(v))
        {
            let pw = if w == v { home } else { part.part_of(w) };
            if pw != home {
                c += ew as f64 * self.dist[home as usize][pw as usize] as f64;
            }
        }
        c
    }

    /// Estimated time of part `p`.
    fn part_cost(&self, p: usize) -> f64 {
        self.loads[p] as f64 / self.speeds[p] + self.rref * self.comm[p]
    }

    /// (bottleneck, total) cost of the whole mapping.
    fn objective(&self) -> (f64, f64) {
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        for p in 0..self.loads.len() {
            let c = self.part_cost(p);
            max = max.max(c);
            sum += c;
        }
        (max, sum)
    }

    /// Apply the move `v: from → to`, updating loads and comm incrementally.
    fn apply(&mut self, part: &mut Partition, v: NodeId, to: u32) {
        let from = part.part_of(v);
        debug_assert_ne!(from, to);
        let vw = self.graph.vertex_weight(v);
        // v's own contribution moves.
        self.comm[from as usize] -= self.node_comm(v, part, from);
        // Neighbours' contributions change because v's part changes.
        let nbrs: Vec<NodeId> = self.graph.neighbors(v).to_vec();
        for &w in &nbrs {
            let pw = part.part_of(w);
            self.comm[pw as usize] -= self.node_comm(w, part, pw);
        }
        part.assign(v, to);
        self.comm[to as usize] += self.node_comm(v, part, to);
        for &w in &nbrs {
            let pw = part.part_of(w);
            self.comm[pw as usize] += self.node_comm(w, part, pw);
        }
        self.loads[from as usize] -= vw;
        self.loads[to as usize] += vw;
    }
}

impl StaticPartitioner for PaGrid {
    fn name(&self) -> &'static str {
        "pagrid"
    }

    fn partition(&self, graph: &Graph, nparts: usize) -> Partition {
        assert!(nparts > 0);
        let machine = match &self.machine {
            Some(m) => {
                assert!(
                    m.len() >= nparts,
                    "machine has {} processors, asked for {nparts}",
                    m.len()
                );
                m.induced(nparts)
            }
            None => ProcessorGraph::hypercube_for(nparts),
        };
        let mut part = self.base.partition(graph, nparts);
        if nparts == 1 || graph.num_nodes() < 2 {
            return part;
        }
        let mut state = CostState::new(graph, &part, &machine, self.rref);
        let total = graph.total_vertex_weight();
        let ideal = total as f64 / nparts as f64;
        let cap = (ideal * (1.0 + self.imbalance)).ceil() as i64;

        let mut counts = part.counts();
        for _pass in 0..self.passes {
            let mut improved = false;
            for v in graph.nodes() {
                let home = part.part_of(v);
                // Never empty a processor: the mapping must keep every
                // machine node occupied.
                if counts[home as usize] <= 1 {
                    continue;
                }
                // Candidate targets: parts of v's neighbours.
                let mut cands: Vec<u32> = self
                    .candidate_parts(graph, &part, v)
                    .into_iter()
                    .filter(|&p| p != home)
                    .collect();
                cands.sort_unstable();
                cands.dedup();
                if cands.is_empty() {
                    continue;
                }
                let before = state.objective();
                let vw = graph.vertex_weight(v);
                let mut best: Option<((f64, f64), u32)> = None;
                for &q in &cands {
                    // Balance guard: don't overload the target unless it is
                    // strictly emptier than home.
                    let fits = state.loads[q as usize] + vw <= cap
                        || state.loads[q as usize] + vw < state.loads[home as usize];
                    if !fits {
                        continue;
                    }
                    state.apply(&mut part, v, q);
                    let after = state.objective();
                    state.apply(&mut part, v, home);
                    if after < before && best.is_none_or(|(b, _)| after < b) {
                        best = Some((after, q));
                    }
                }
                if let Some((_, q)) = best {
                    state.apply(&mut part, v, q);
                    counts[home as usize] -= 1;
                    counts[q as usize] += 1;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        part
    }
}

impl PaGrid {
    fn candidate_parts(&self, graph: &Graph, part: &Partition, v: NodeId) -> Vec<u32> {
        graph
            .neighbors(v)
            .iter()
            .map(|&w| part.part_of(w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic2_graph::generators::{hex_grid, thesis_random_graph};
    use ic2_graph::metrics;

    /// Max per-part (compute + rref·comm-volume) estimate on a uniform
    /// machine — the quantity PaGrid is supposed to optimise.
    fn bottleneck(graph: &Graph, part: &Partition, rref: f64) -> f64 {
        let machine = ProcessorGraph::hypercube_for(part.num_parts());
        let state = CostState::new(graph, part, &machine, rref);
        state.objective().0
    }

    #[test]
    fn pagrid_never_worse_than_metis_on_its_own_objective() {
        for seed in 0..3 {
            let g = thesis_random_graph(64, seed);
            for k in [4, 8, 16] {
                let metis = Metis::default().partition(&g, k);
                let pagrid = PaGrid::default().partition(&g, k);
                let bm = bottleneck(&g, &metis, 0.45);
                let bp = bottleneck(&g, &pagrid, 0.45);
                assert!(
                    bp <= bm + 1e-9,
                    "seed {seed} k={k}: pagrid {bp} vs metis {bm}"
                );
            }
        }
    }

    #[test]
    fn pagrid_partitions_are_valid_and_balanced() {
        let g = hex_grid(8, 8);
        for k in [2, 4, 8, 16] {
            let p = PaGrid::default().partition(&g, k);
            assert_eq!(p.len(), 64);
            let imb = metrics::imbalance(&g, &p);
            assert!(imb <= 1.35, "k={k} imbalance {imb}");
        }
    }

    #[test]
    fn rref_zero_reduces_to_pure_balance() {
        let g = thesis_random_graph(32, 1);
        let p = PaGrid::default().with_rref(0.0).partition(&g, 4);
        // With no communication term the refinement must not break balance.
        let imb = metrics::imbalance(&g, &p);
        assert!(imb <= 1.3, "imbalance {imb}");
    }

    #[test]
    fn single_part_short_circuits() {
        let g = hex_grid(4, 4);
        let p = PaGrid::default().partition(&g, 1);
        assert!(p.as_slice().iter().all(|&x| x == 0));
    }

    #[test]
    fn explicit_machine_is_respected() {
        let g = hex_grid(4, 8);
        let m = ProcessorGraph::hypercube(2);
        let p = PaGrid::on_machine(m).partition(&g, 4);
        assert_eq!(p.num_parts(), 4);
    }

    #[test]
    #[should_panic(expected = "processors")]
    fn machine_too_small_panics() {
        let g = hex_grid(4, 4);
        let m = ProcessorGraph::hypercube(1);
        let _ = PaGrid::on_machine(m).partition(&g, 8);
    }

    #[test]
    fn incremental_cost_state_matches_recompute() {
        let g = thesis_random_graph(32, 2);
        let machine = ProcessorGraph::hypercube_for(4);
        let mut part = Metis::default().partition(&g, 4);
        let mut state = CostState::new(&g, &part, &machine, 0.45);
        // Apply a series of moves and verify incremental state equals a
        // fresh computation.
        for v in [0u32, 5, 9, 13, 21] {
            let to = (part.part_of(v) + 1) % 4;
            state.apply(&mut part, v, to);
            let fresh = CostState::new(&g, &part, &machine, 0.45);
            assert_eq!(state.loads, fresh.loads, "after moving {v}");
            for p in 0..4 {
                assert!(
                    (state.comm[p] - fresh.comm[p]).abs() < 1e-9,
                    "comm[{p}] {} vs {}",
                    state.comm[p],
                    fresh.comm[p]
                );
            }
        }
    }

    #[test]
    fn heterogeneous_speeds_shift_load() {
        // One fast processor should receive more vertices.
        let g = hex_grid(8, 8);
        let links = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let m = ProcessorGraph::new(vec![3.0, 1.0], links);
        let p = PaGrid::on_machine(m).with_rref(0.05).partition(&g, 2);
        let loads = p.loads(&g);
        assert!(
            loads[0] > loads[1],
            "fast processor should carry more: {loads:?}"
        );
    }
}
