//! Multilevel k-way partitioner in the style of Metis \[KK98\].
//!
//! Structure follows the classic multilevel recipe the thesis relies on:
//!
//! 1. **Coarsening** — heavy-edge matching contracts the graph until it is
//!    small;
//! 2. **Initial partitioning** — greedy graph-growing bisection from
//!    several seeds, best cut kept;
//! 3. **Uncoarsening** — the bisection is projected back level by level
//!    with Fiduccia–Mattheyses boundary refinement at each level;
//! 4. k-way partitions come from recursive bisection with proportional
//!    weight targets, finished by a greedy k-way boundary refinement pass.
//!
//! Deterministic in [`Metis::seed`].

use crate::StaticPartitioner;
use ic2_graph::{metrics, Graph, GraphBuilder, NodeId, Partition};
use ic2_rng::SplitMix64;

/// Multilevel recursive-bisection partitioner.
#[derive(Debug, Clone, Copy)]
pub struct Metis {
    /// Seed for matching order and growing seeds.
    pub seed: u64,
    /// Allowed imbalance ε: part loads may reach `(1 + ε) ×` ideal.
    pub imbalance: f64,
    /// Stop coarsening below this many nodes.
    pub coarsen_to: usize,
    /// Seeds tried for the initial growing bisection.
    pub init_tries: usize,
}

impl Default for Metis {
    fn default() -> Self {
        Metis {
            seed: 0x1C2,
            imbalance: 0.05,
            coarsen_to: 48,
            init_tries: 6,
        }
    }
}

impl StaticPartitioner for Metis {
    fn name(&self) -> &'static str {
        "metis"
    }

    fn partition(&self, graph: &Graph, nparts: usize) -> Partition {
        assert!(nparts > 0);
        let n = graph.num_nodes();
        let mut assignment = vec![0u32; n];
        if nparts > 1 && n > 0 {
            let nodes: Vec<NodeId> = graph.nodes().collect();
            let mut rng = SplitMix64::new(self.seed);
            // Per-level balance windows compound over log2(k) bisection
            // levels, so shrink each level's ε to keep the final k-way
            // imbalance near the configured budget.
            let levels = (nparts as f64).log2().ceil().max(1.0);
            let eps = self.imbalance / levels;
            self.split(graph, &nodes, 0, nparts, eps, &mut assignment, &mut rng);
        }
        let mut part = Partition::new(assignment, nparts);
        self.kway_refine(graph, &mut part);
        part
    }
}

impl Metis {
    /// Recursively bisect the subgraph induced by `nodes` into parts
    /// `first_part..first_part + k`.
    #[allow(clippy::too_many_arguments)]
    fn split(
        &self,
        graph: &Graph,
        nodes: &[NodeId],
        first_part: u32,
        k: usize,
        eps: f64,
        assignment: &mut [u32],
        rng: &mut SplitMix64,
    ) {
        if k == 1 || nodes.is_empty() {
            for &v in nodes {
                assignment[v as usize] = first_part;
            }
            return;
        }
        let k_left = k / 2;
        let frac = k_left as f64 / k as f64;
        // Each side must receive at least one node per part it will host
        // (when enough nodes exist), or downstream parts end up empty.
        let ml = k_left.min(nodes.len());
        let mr = (k - k_left).min(nodes.len() - ml);
        let (sub, back) = induce(graph, nodes);
        let side = self.bisect(&sub, frac, eps, ml, mr, rng);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (i, &s) in side.iter().enumerate() {
            if s {
                left.push(back[i]);
            } else {
                right.push(back[i]);
            }
        }
        self.split(graph, &left, first_part, k_left, eps, assignment, rng);
        self.split(
            graph,
            &right,
            first_part + k_left as u32,
            k - k_left,
            eps,
            assignment,
            rng,
        );
    }

    /// Multilevel bisection: returns `true` for nodes on the "left" side,
    /// whose weight targets `frac` of the total. The left side receives at
    /// least `ml` nodes and the right at least `mr` (hosting floors from the
    /// recursive split).
    #[allow(clippy::too_many_arguments)]
    fn bisect(
        &self,
        graph: &Graph,
        frac: f64,
        eps: f64,
        ml: usize,
        mr: usize,
        rng: &mut SplitMix64,
    ) -> Vec<bool> {
        let n = graph.num_nodes();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![ml >= 1];
        }
        if n > self.coarsen_to {
            // Coarsen one level and recurse. Node-count floors only bind on
            // tiny graphs, so the coarse level just needs feasible values.
            let (coarse, map) = coarsen(graph, rng);
            if coarse.num_nodes() < n {
                let cn = coarse.num_nodes();
                let cml = ml.min(cn / 2);
                let cmr = mr.min(cn - cml);
                let coarse_side = self.bisect(&coarse, frac, eps, cml, cmr, rng);
                let mut side: Vec<bool> = (0..n).map(|v| coarse_side[map[v] as usize]).collect();
                fm_refine(graph, &mut side, frac, eps, ml, mr);
                return side;
            }
            // Matching failed to shrink the graph (e.g. star graphs);
            // fall through to direct initial partitioning.
        }
        let mut best: Option<(i64, f64, Vec<bool>)> = None;
        for _ in 0..self.init_tries.max(1) {
            let mut side = grow_bisection(graph, frac, ml, mr, rng);
            fm_refine(graph, &mut side, frac, eps, ml, mr);
            let cut = cut_of(graph, &side);
            let dev = balance_deviation(graph, &side, frac);
            if best
                .as_ref()
                .is_none_or(|(bc, bd, _)| (cut, dev) < (*bc, *bd))
            {
                best = Some((cut, dev, side));
            }
        }
        best.expect("at least one try").2
    }

    /// Greedy k-way boundary refinement: move boundary nodes to adjacent
    /// parts when it reduces the cut without breaking balance.
    fn kway_refine(&self, graph: &Graph, part: &mut Partition) {
        let k = part.num_parts();
        if k < 2 || graph.num_nodes() < 2 {
            return;
        }
        let total = graph.total_vertex_weight();
        let ideal = total as f64 / k as f64;
        let cap = (ideal * (1.0 + self.imbalance)).ceil() as i64;
        let mut loads = part.loads(graph);
        let mut counts = part.counts();
        for _pass in 0..4 {
            let mut moved = 0;
            for v in graph.nodes() {
                let home = part.part_of(v);
                // A move must never empty its source part: with k = n every
                // singleton looks tempting to merge, but the mapping must
                // keep all processors occupied.
                if counts[home as usize] <= 1 {
                    continue;
                }
                // Candidate parts: those of v's neighbours.
                let mut best: Option<(i64, u32)> = None;
                for &w in graph.neighbors(v) {
                    let p = part.part_of(w);
                    if p == home {
                        continue;
                    }
                    let gain = metrics::move_gain(graph, part, v, p);
                    let vw = graph.vertex_weight(v);
                    let fits = loads[p as usize] + vw <= cap
                        || loads[p as usize] + vw < loads[home as usize];
                    if gain < 0 && fits && best.is_none_or(|(bg, _)| gain < bg) {
                        best = Some((gain, p));
                    }
                }
                if let Some((_, p)) = best {
                    let vw = graph.vertex_weight(v);
                    loads[home as usize] -= vw;
                    loads[p as usize] += vw;
                    counts[home as usize] -= 1;
                    counts[p as usize] += 1;
                    part.assign(v, p);
                    moved += 1;
                }
            }
            if moved == 0 {
                break;
            }
        }
        // Balancing phase: drain overloaded parts into their least-loaded
        // neighbouring part, choosing the boundary node whose move hurts
        // the cut least. Bisection drift can otherwise accumulate past the
        // configured budget.
        for _pass in 0..6 {
            let mut moved = false;
            for v in graph.nodes() {
                let home = part.part_of(v);
                if loads[home as usize] <= cap || counts[home as usize] <= 1 {
                    continue;
                }
                let vw = graph.vertex_weight(v);
                let mut best: Option<(i64, i64, u32)> = None;
                for &w in graph.neighbors(v) {
                    let p = part.part_of(w);
                    if p == home || loads[p as usize] + vw >= loads[home as usize] {
                        continue;
                    }
                    let gain = metrics::move_gain(graph, part, v, p);
                    let key = (gain, loads[p as usize]);
                    if best.is_none_or(|(bg, bl, _)| key < (bg, bl)) {
                        best = Some((gain, loads[p as usize], p));
                    }
                }
                if let Some((_, _, p)) = best {
                    loads[home as usize] -= vw;
                    loads[p as usize] += vw;
                    counts[home as usize] -= 1;
                    counts[p as usize] += 1;
                    part.assign(v, p);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
    }
}

/// Extract the subgraph induced by `nodes`; returns it plus the
/// local-to-parent id map.
fn induce(graph: &Graph, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
    let mut local = vec![u32::MAX; graph.num_nodes()];
    for (i, &v) in nodes.iter().enumerate() {
        local[v as usize] = i as u32;
    }
    let mut b = GraphBuilder::new(nodes.len());
    let mut vwgt = Vec::with_capacity(nodes.len());
    for (i, &v) in nodes.iter().enumerate() {
        vwgt.push(graph.vertex_weight(v));
        for (&w, &ew) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
            let lw = local[w as usize];
            if lw != u32::MAX && (i as u32) < lw {
                b.weighted_edge(i as u32, lw, ew);
            }
        }
    }
    b.vertex_weights(vwgt);
    (b.build(), nodes.to_vec())
}

/// One level of heavy-edge matching coarsening. Returns the coarse graph
/// and the fine-to-coarse vertex map.
fn coarsen(graph: &Graph, rng: &mut SplitMix64) -> (Graph, Vec<u32>) {
    let n = graph.num_nodes();
    let mut order: Vec<NodeId> = graph.nodes().collect();
    rng.shuffle(&mut order);
    let mut matched = vec![u32::MAX; n];
    let mut coarse_id = vec![u32::MAX; n];
    let mut next = 0u32;
    for &v in &order {
        if matched[v as usize] != u32::MAX {
            continue;
        }
        // Heaviest unmatched neighbour.
        let mut best: Option<(i64, NodeId)> = None;
        for (&w, &ew) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
            if matched[w as usize] == u32::MAX
                && best
                    .is_none_or(|(bw, bn)| (ew, std::cmp::Reverse(w)) > (bw, std::cmp::Reverse(bn)))
            {
                best = Some((ew, w));
            }
        }
        match best {
            Some((_, w)) => {
                matched[v as usize] = w;
                matched[w as usize] = v;
                coarse_id[v as usize] = next;
                coarse_id[w as usize] = next;
            }
            None => {
                matched[v as usize] = v;
                coarse_id[v as usize] = next;
            }
        }
        next += 1;
    }
    // Accumulate coarse vertex weights and combined edges.
    let cn = next as usize;
    let mut vwgt = vec![0i64; cn];
    for v in graph.nodes() {
        vwgt[coarse_id[v as usize] as usize] += graph.vertex_weight(v);
    }
    let mut edge_acc: std::collections::HashMap<(u32, u32), i64> = std::collections::HashMap::new();
    for (u, v, w) in graph.edges() {
        let cu = coarse_id[u as usize];
        let cv = coarse_id[v as usize];
        if cu != cv {
            let key = (cu.min(cv), cu.max(cv));
            *edge_acc.entry(key).or_insert(0) += w;
        }
    }
    let mut b = GraphBuilder::new(cn);
    let mut keys: Vec<_> = edge_acc.into_iter().collect();
    keys.sort_unstable();
    for ((u, v), w) in keys {
        b.weighted_edge(u, v, w);
    }
    b.vertex_weights(vwgt);
    (b.build(), coarse_id)
}

/// Greedy graph-growing bisection: BFS-grow a region from a random seed,
/// always absorbing the frontier vertex with the best cut gain, until the
/// region reaches `frac` of the total weight (respecting the `ml`/`mr`
/// node-count floors).
fn grow_bisection(
    graph: &Graph,
    frac: f64,
    ml: usize,
    mr: usize,
    rng: &mut SplitMix64,
) -> Vec<bool> {
    let n = graph.num_nodes();
    let total = graph.total_vertex_weight();
    let target = (total as f64 * frac).round() as i64;
    let mut side = vec![false; n];
    let mut weight = 0i64;
    let mut count = 0usize;
    let mut frontier: Vec<NodeId> = Vec::new();
    let seed = rng.gen_range(0..n) as NodeId;
    let mut next_seed = seed;
    while (weight < target && count < n - mr) || count < ml {
        let v = if side[next_seed as usize] {
            // Pick the best-gain frontier vertex; gain = (edges into the
            // region) - (edges out), higher absorbs first.
            frontier.retain(|&f| !side[f as usize]);
            match frontier.iter().copied().max_by_key(|&f| {
                let mut gain = 0i64;
                for (&w, &ew) in graph.neighbors(f).iter().zip(graph.edge_weights(f)) {
                    gain += if side[w as usize] { ew } else { -ew };
                }
                (gain, std::cmp::Reverse(f))
            }) {
                Some(f) => f,
                None => {
                    // Disconnected remainder: jump to any unassigned node.
                    match (0..n as NodeId).find(|&v| !side[v as usize]) {
                        Some(v) => v,
                        None => break,
                    }
                }
            }
        } else {
            next_seed
        };
        side[v as usize] = true;
        weight += graph.vertex_weight(v);
        count += 1;
        for &w in graph.neighbors(v) {
            if !side[w as usize] {
                frontier.push(w);
            }
        }
        next_seed = v;
    }
    side
}

fn cut_of(graph: &Graph, side: &[bool]) -> i64 {
    graph
        .edges()
        .filter(|&(u, v, _)| side[u as usize] != side[v as usize])
        .map(|(_, _, w)| w)
        .sum()
}

fn balance_deviation(graph: &Graph, side: &[bool], frac: f64) -> f64 {
    let total = graph.total_vertex_weight() as f64;
    let left: i64 = graph
        .nodes()
        .filter(|&v| side[v as usize])
        .map(|v| graph.vertex_weight(v))
        .sum();
    (left as f64 - total * frac).abs()
}

/// Fiduccia–Mattheyses style 2-way refinement with rollback to the best
/// configuration seen in each pass. Moves must keep the left side's node
/// count in `[ml, n - mr]` and its weight within the balance window — or
/// strictly improve the weight deviation (so a skewed starting point can be
/// repaired).
///
/// Move selection uses the classic FM gain structure — a lazily-invalidated
/// max-heap keyed `(gain, Reverse(v))` — maintained incrementally as moves
/// update neighbour gains. Each step therefore costs `O(log n)` amortised
/// rather than the full `O(n)` rescan a naive implementation performs,
/// which is the difference between quadratic and `n log n` passes and what
/// lets refinement handle million-node graphs. The heap pops in exactly the
/// order the full scan maximised, so the move sequence (and thus every
/// partition produced) is bit-identical to the scan's.
fn fm_refine(graph: &Graph, side: &mut [bool], frac: f64, eps: f64, ml: usize, mr: usize) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = graph.num_nodes();
    if n < 2 {
        return;
    }
    let total = graph.total_vertex_weight();
    let target = total as f64 * frac;
    // Bookmarked (final) states must sit in this tight window...
    let slack = (total as f64 * eps).max(0.5);
    // ...but individual moves may excurse one max-weight vertex beyond it,
    // which classic FM needs to escape local minima (rollback repairs it).
    let max_vw = graph.vertex_weights().iter().copied().max().unwrap_or(1);
    let move_slack = slack.max(max_vw as f64);

    let mut left_weight: i64 = graph
        .nodes()
        .filter(|&v| side[v as usize])
        .map(|v| graph.vertex_weight(v))
        .sum();
    let mut left_count = side.iter().filter(|&&s| s).count();

    for _pass in 0..8 {
        // gain(v) = cut reduction if v switches sides.
        let mut gain = vec![0i64; n];
        for v in graph.nodes() {
            for (&w, &ew) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
                if side[v as usize] != side[w as usize] {
                    gain[v as usize] += ew;
                } else {
                    gain[v as usize] -= ew;
                }
            }
        }
        let mut locked = vec![false; n];
        let mut history: Vec<NodeId> = Vec::new();
        let mut cur_cut = cut_of(graph, side);
        let mut best_cut = cur_cut;
        let mut best_dev = (left_weight as f64 - target).abs();
        let mut best_len = 0usize;
        let mut cur_weight = left_weight;
        let mut cur_count = left_count;
        // Lazy gain heap: one entry per (gain, vertex) version. An entry is
        // *fresh* iff the vertex is unlocked and the stored gain matches the
        // current gain table; anything else is a superseded version and is
        // skipped at pop (the update that changed the gain pushed a fresh
        // entry). Every unlocked vertex always has a fresh entry somewhere
        // in the heap, so the first fresh pop is the true argmax.
        let mut heap: BinaryHeap<(i64, Reverse<NodeId>)> = graph
            .nodes()
            .map(|v| (gain[v as usize], Reverse(v)))
            .collect();
        let mut stash: Vec<(i64, Reverse<NodeId>)> = Vec::new();

        for _step in 0..n {
            let cur_dev = (cur_weight as f64 - target).abs();
            // Best movable vertex respecting the balance window (or
            // improving an out-of-window deviation). Feasibility depends on
            // the running weight/count, so it is tested at pop time;
            // infeasible-but-fresh entries are stashed and re-pushed after
            // the move, since a later step may admit them. The first fresh
            // feasible pop maximises (gain, Reverse(v)) over exactly the
            // vertices the old full scan considered.
            let mut pick: Option<(i64, NodeId)> = None;
            while let Some((g, Reverse(v))) = heap.pop() {
                if locked[v as usize] || g != gain[v as usize] {
                    continue;
                }
                let vw = graph.vertex_weight(v);
                let (new_left, new_count) = if side[v as usize] {
                    (cur_weight - vw, cur_count - 1)
                } else {
                    (cur_weight + vw, cur_count + 1)
                };
                let new_dev = (new_left as f64 - target).abs();
                if new_count >= ml
                    && new_count <= n - mr
                    && (new_dev <= move_slack || new_dev < cur_dev)
                {
                    pick = Some((g, v));
                    break;
                }
                stash.push((g, Reverse(v)));
            }
            let Some((g, v)) = pick else { break };
            // Apply the move.
            let vw = graph.vertex_weight(v);
            if side[v as usize] {
                cur_weight -= vw;
                cur_count -= 1;
            } else {
                cur_weight += vw;
                cur_count += 1;
            }
            side[v as usize] = !side[v as usize];
            locked[v as usize] = true;
            cur_cut -= g;
            history.push(v);
            for (&w, &ew) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
                // After v switched: same-side neighbours gain, others lose.
                if side[w as usize] == side[v as usize] {
                    gain[w as usize] -= 2 * ew;
                } else {
                    gain[w as usize] += 2 * ew;
                }
                if !locked[w as usize] {
                    heap.push((gain[w as usize], Reverse(w)));
                }
            }
            // Stashed entries whose gain a neighbour update just changed
            // re-enter as stale versions and are skipped later; the rest
            // stay fresh and compete again next step.
            heap.extend(stash.drain(..));
            let dev = (cur_weight as f64 - target).abs();
            // Prefer any in-window cut improvement; when both states are
            // outside the window, prefer the better deviation.
            let in_window = dev <= slack;
            let best_in_window = best_dev <= slack;
            let better = match (in_window, best_in_window) {
                (true, true) => cur_cut < best_cut,
                (true, false) => true,
                (false, false) => dev < best_dev,
                (false, true) => false,
            };
            if better {
                best_cut = cur_cut;
                best_dev = dev;
                best_len = history.len();
            }
        }
        // Roll back past the best prefix.
        for &v in history[best_len..].iter().rev() {
            let vw = graph.vertex_weight(v);
            if side[v as usize] {
                cur_weight -= vw;
                cur_count -= 1;
            } else {
                cur_weight += vw;
                cur_count += 1;
            }
            side[v as usize] = !side[v as usize];
        }
        left_weight = cur_weight;
        left_count = cur_count;
        if best_len == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic2_graph::generators::{hex_grid, thesis_random_graph, torus};

    fn check_quality(graph: &Graph, k: usize, max_imbalance: f64) -> i64 {
        let part = Metis::default().partition(graph, k);
        assert_eq!(part.len(), graph.num_nodes());
        let imb = metrics::imbalance(graph, &part);
        assert!(
            imb <= max_imbalance,
            "k={k}: imbalance {imb} > {max_imbalance}, counts {:?}",
            part.counts()
        );
        metrics::edge_cut(graph, &part)
    }

    #[test]
    fn hex_grids_partition_well() {
        for (n, k) in [(32, 2), (32, 4), (64, 4), (64, 8), (96, 8), (96, 16)] {
            let g = ic2_graph::generators::hex_grid_n(n);
            let cut = check_quality(&g, k, 1.26);
            // A k-way split of a hex grid should cut far fewer edges than
            // round-robin interleaving.
            let rr = metrics::edge_cut(&g, &crate::simple::RoundRobin.partition(&g, k));
            assert!(cut * 3 < rr * 2, "n={n} k={k}: cut {cut} vs rr {rr}");
        }
    }

    #[test]
    fn bisection_of_even_path_is_perfect() {
        let mut b = GraphBuilder::new(8);
        for i in 0..7u32 {
            b.edge(i, i + 1);
        }
        let g = b.build();
        let p = Metis::default().partition(&g, 2);
        assert_eq!(metrics::edge_cut(&g, &p), 1);
        assert_eq!(p.counts(), vec![4, 4]);
    }

    #[test]
    fn large_mesh_quality_beats_block() {
        let g = hex_grid(32, 32);
        let metis_cut = check_quality(&g, 16, 1.11);
        let band = metrics::edge_cut(&g, &crate::bands::RowBand.partition(&g, 16));
        assert!(
            metis_cut < band,
            "metis {metis_cut} should beat 16 thin row bands {band}"
        );
    }

    #[test]
    fn random_graphs_stay_balanced() {
        for seed in 0..3 {
            let g = thesis_random_graph(64, seed);
            for k in [2, 4, 8, 16] {
                check_quality(&g, k, 1.3);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = thesis_random_graph(64, 0);
        let a = Metis::default().partition(&g, 8);
        let b = Metis::default().partition(&g, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_can_change_result() {
        let g = thesis_random_graph(64, 0);
        let a = Metis::default().partition(&g, 8);
        let b = Metis {
            seed: 99,
            ..Default::default()
        }
        .partition(&g, 8);
        // Not guaranteed different, but cut quality must hold for both.
        assert!(metrics::imbalance(&g, &b) <= 1.3);
        let _ = a;
    }

    #[test]
    fn k_equal_one_is_trivial() {
        let g = hex_grid(4, 4);
        let p = Metis::default().partition(&g, 1);
        assert!(p.as_slice().iter().all(|&x| x == 0));
    }

    #[test]
    fn k_equal_n_spreads_out() {
        let g = hex_grid(2, 2);
        let p = Metis::default().partition(&g, 4);
        let mut counts = p.counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 1, 1, 1]);
    }

    #[test]
    fn odd_k_gets_proportional_targets() {
        let g = hex_grid(8, 9);
        let p = Metis::default().partition(&g, 3);
        let imb = metrics::imbalance(&g, &p);
        assert!(imb <= 1.15, "imbalance {imb}: {:?}", p.counts());
    }

    #[test]
    fn weighted_vertices_balance_by_weight() {
        let mut b = GraphBuilder::new(6);
        for i in 0..5u32 {
            b.edge(i, i + 1);
        }
        b.vertex_weights(vec![10, 1, 1, 1, 1, 10]);
        let g = b.build();
        let p = Metis::default().partition(&g, 2);
        let loads = p.loads(&g);
        assert!((loads[0] - loads[1]).abs() <= 4, "weighted loads {loads:?}");
    }

    #[test]
    fn torus_partitions_are_sane() {
        let g = torus(8, 8);
        let cut = check_quality(&g, 4, 1.11);
        assert!(cut <= 40, "torus cut {cut}");
    }

    #[test]
    fn coarsening_halves_and_preserves_weight() {
        let g = hex_grid(8, 8);
        let mut rng = SplitMix64::new(1);
        let (coarse, map) = coarsen(&g, &mut rng);
        assert!(coarse.num_nodes() < g.num_nodes());
        assert!(coarse.num_nodes() >= g.num_nodes() / 2);
        assert_eq!(coarse.total_vertex_weight(), g.total_vertex_weight());
        assert_eq!(map.len(), g.num_nodes());
        assert!(map.iter().all(|&c| (c as usize) < coarse.num_nodes()));
    }

    #[test]
    fn large_meshes_refine_in_reasonable_time() {
        // 14 400 nodes. With the old full-rescan move selection each FM
        // pass was O(n²) per level and this test did not finish in useful
        // time in debug builds; the lazy gain heap makes it routine.
        let g = hex_grid(120, 120);
        let cut = check_quality(&g, 8, 1.11);
        let rr = metrics::edge_cut(&g, &crate::simple::RoundRobin.partition(&g, 8));
        assert!(cut * 3 < rr, "cut {cut} vs round-robin {rr}");
    }

    #[test]
    fn fm_refine_fixes_a_bad_split() {
        // Two 4-cliques joined by one edge, split the worst way.
        let mut b = GraphBuilder::new(8);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.edge(i, j);
                b.edge(i + 4, j + 4);
            }
        }
        b.edge(3, 4);
        let g = b.build();
        // Interleaved start: cut = everything.
        let mut side = vec![true, false, true, false, true, false, true, false];
        fm_refine(&g, &mut side, 0.5, 0.05, 1, 1);
        assert_eq!(cut_of(&g, &side), 1, "sides {side:?}");
    }
}
