//! Gray-code mesh-to-hypercube fine-grained embedding ("BF partition").
//!
//! The original battlefield simulator \[DMP98\] was parallelised on hypercube
//! machines with a gray-code-based embedding in which *a hex and its six
//! neighbours are allocated to different processors* (thesis Section 5.3,
//! scheme (ii)). With more than one processor this maximises communication —
//! which is exactly why Table 8 shows it losing to every other scheme (it is
//! *slower on 2 processors than on 1*). Reproducing that pathology is the
//! point of implementing it.

use crate::bands::squarish_factors;
use crate::StaticPartitioner;
use ic2_graph::{Graph, Partition};

/// Fine-grained gray-code embedding of a mesh onto `nparts` processors.
///
/// The processor count is factored `R × C` (powers of two give true
/// sub-hypercubes); cell `(r, c)` — recovered from the graph's coordinates —
/// maps to processor `gray(r mod R) * C + gray(c mod C)`, where `gray` is
/// the binary-reflected Gray code permutation. Consecutive rows/columns thus
/// land on hypercube-adjacent but *distinct* processors.
#[derive(Debug, Clone, Copy, Default)]
pub struct GrayCodeBf;

/// Binary-reflected Gray code of `i`, restricted to a table of size `n`.
/// For power-of-two `n` this is the classic `i ^ (i >> 1)` permutation; for
/// other sizes we fall back to identity (still a valid interleaving).
fn gray_perm(i: usize, n: usize) -> usize {
    let j = i % n;
    if n.is_power_of_two() {
        j ^ (j >> 1)
    } else {
        j
    }
}

impl StaticPartitioner for GrayCodeBf {
    fn name(&self) -> &'static str {
        "bf-graycode"
    }
    fn partition(&self, graph: &Graph, nparts: usize) -> Partition {
        assert!(nparts > 0);
        let coords = graph
            .coords()
            .expect("gray-code embedding needs a graph with coordinates");
        let (pr, pc) = squarish_factors(nparts);
        // Recover integer row/column indices from the generator's layout:
        // rows are y / 0.866, columns are floor(x).
        let assignment = graph
            .nodes()
            .map(|v| {
                let (x, y) = coords[v as usize];
                let r = (y / 0.866).round() as usize;
                let c = x.floor() as usize;
                (gray_perm(r, pr) * pc + gray_perm(c, pc)) as u32
            })
            .collect();
        Partition::new(assignment, nparts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic2_graph::generators::hex_grid;
    use ic2_graph::metrics;

    #[test]
    fn gray_permutation_is_bijective_on_powers_of_two() {
        for n in [2usize, 4, 8, 16] {
            let mut seen = vec![false; n];
            for i in 0..n {
                let g = gray_perm(i, n);
                assert!(!seen[g], "n={n} collision at {i}");
                seen[g] = true;
            }
        }
    }

    #[test]
    fn adjacent_cells_land_on_distinct_processors() {
        // With 4 procs (2x2 factorisation), each cell and its E/S neighbours
        // must differ: gray codes of consecutive indices always differ.
        let g = hex_grid(8, 8);
        let p = GrayCodeBf.partition(&g, 4);
        for v in g.nodes() {
            for &w in g.neighbors(v) {
                assert_ne!(p.part_of(v), p.part_of(w), "edge ({v},{w}) same proc");
            }
        }
    }

    #[test]
    fn embedding_maximises_cut_versus_bands() {
        let g = hex_grid(32, 32);
        let bf = metrics::edge_cut(&g, &GrayCodeBf.partition(&g, 4));
        let band = metrics::edge_cut(&g, &crate::bands::RowBand.partition(&g, 4));
        assert!(
            bf > 5 * band,
            "fine-grained embedding should cut far more: bf={bf} band={band}"
        );
    }

    #[test]
    fn partition_is_balanced_on_power_of_two_meshes() {
        let g = hex_grid(32, 32);
        for k in [2, 4, 8, 16] {
            let p = GrayCodeBf.partition(&g, k);
            let counts = p.counts();
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert_eq!(min, max, "k={k}: {counts:?}");
        }
    }

    #[test]
    fn single_processor_is_identity() {
        let g = hex_grid(4, 4);
        let p = GrayCodeBf.partition(&g, 1);
        assert!(p.as_slice().iter().all(|&x| x == 0));
    }
}
