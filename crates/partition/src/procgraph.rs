//! Processor network graphs.
//!
//! PaGrid maps application graphs onto a *weighted processor graph*; the
//! thesis uses a hypercube (the Origin-2000's interconnect) in PaGrid's
//! grid format. The dynamic load balancer also builds a processor graph at
//! runtime (nodes weighted by execution time, edges by communication
//! volume) — that runtime variant lives in `ic2-balance`; this module is
//! the static description of the machine.

/// A small dense description of the target machine: per-processor relative
/// compute speed and per-link weights (higher = cheaper link).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorGraph {
    n: usize,
    /// Relative compute speed of each processor (1.0 = baseline).
    speeds: Vec<f64>,
    /// Symmetric adjacency: `links[i][j] > 0.0` means a direct link.
    links: Vec<Vec<f64>>,
}

impl ProcessorGraph {
    /// Build from explicit speeds and links.
    ///
    /// # Panics
    /// Panics if `links` is not an `n × n` symmetric matrix with a zero
    /// diagonal, or if any speed is non-positive.
    pub fn new(speeds: Vec<f64>, links: Vec<Vec<f64>>) -> Self {
        let n = speeds.len();
        assert!(n > 0, "processor graph needs at least one processor");
        assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
        assert_eq!(links.len(), n, "links must be n x n");
        for (i, row) in links.iter().enumerate() {
            assert_eq!(row.len(), n, "links must be n x n");
            assert_eq!(row[i], 0.0, "diagonal must be zero");
            for j in 0..n {
                assert!(
                    (row[j] - links[j][i]).abs() < 1e-12,
                    "links must be symmetric"
                );
                assert!(row[j] >= 0.0, "link weights must be non-negative");
            }
        }
        ProcessorGraph { n, speeds, links }
    }

    /// A `2^dim`-processor hypercube with uniform speeds and unit links —
    /// the thesis's processor network for PaGrid.
    pub fn hypercube(dim: u32) -> Self {
        let n = 1usize << dim;
        let mut links = vec![vec![0.0; n]; n];
        for (i, row) in links.iter_mut().enumerate() {
            for b in 0..dim {
                row[i ^ (1usize << b)] = 1.0;
            }
        }
        ProcessorGraph::new(vec![1.0; n], links)
    }

    /// The smallest hypercube holding at least `n` processors, restricted
    /// to its first `n` nodes (sub-cube links retained).
    pub fn hypercube_for(n: usize) -> Self {
        assert!(n > 0);
        let dim = (n.max(1) as f64).log2().ceil() as u32;
        let full = ProcessorGraph::hypercube(dim);
        full.induced(n)
    }

    /// A fully connected uniform machine.
    pub fn complete(n: usize) -> Self {
        let mut links = vec![vec![1.0; n]; n];
        for (i, row) in links.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        ProcessorGraph::new(vec![1.0; n], links)
    }

    /// First `k` processors of this machine with their induced links.
    pub fn induced(&self, k: usize) -> Self {
        assert!(k >= 1 && k <= self.n);
        ProcessorGraph::new(
            self.speeds[..k].to_vec(),
            self.links[..k]
                .iter()
                .map(|row| row[..k].to_vec())
                .collect(),
        )
    }

    /// Number of processors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the machine has zero processors (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Relative speed of processor `p`.
    pub fn speed(&self, p: usize) -> f64 {
        self.speeds[p]
    }

    /// Direct-link weight between `a` and `b` (0.0 = no direct link).
    pub fn link(&self, a: usize, b: usize) -> f64 {
        self.links[a][b]
    }

    /// Hop-count distance matrix (BFS over direct links). Unreachable pairs
    /// get `usize::MAX`; the diagonal is 0.
    pub fn distances(&self) -> Vec<Vec<usize>> {
        let n = self.n;
        let mut dist = vec![vec![usize::MAX; n]; n];
        for (start, row) in dist.iter_mut().enumerate() {
            row[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for v in 0..n {
                    if self.links[u][v] > 0.0 && row[v] == usize::MAX {
                        row[v] = row[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        dist
    }

    /// Render in a PaGrid-style grid format:
    /// header `n`, one line of processor speeds, then the link matrix row
    /// by row.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.n);
        let speeds: Vec<String> = self.speeds.iter().map(|s| format!("{s}")).collect();
        let _ = writeln!(out, "{}", speeds.join(" "));
        for row in &self.links {
            let cells: Vec<String> = row.iter().map(|w| format!("{w}")).collect();
            let _ = writeln!(out, "{}", cells.join(" "));
        }
        out
    }

    /// Parse the format produced by [`render`](Self::render).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let n: usize = lines
            .next()
            .ok_or("empty processor graph file")?
            .trim()
            .parse()
            .map_err(|e| format!("bad processor count: {e}"))?;
        let speeds: Vec<f64> = lines
            .next()
            .ok_or("missing speeds line")?
            .split_whitespace()
            .map(|t| t.parse().map_err(|e| format!("bad speed {t:?}: {e}")))
            .collect::<Result<_, _>>()?;
        if speeds.len() != n {
            return Err(format!("expected {n} speeds, got {}", speeds.len()));
        }
        let mut links = Vec::with_capacity(n);
        for i in 0..n {
            let row: Vec<f64> = lines
                .next()
                .ok_or_else(|| format!("missing link row {i}"))?
                .split_whitespace()
                .map(|t| t.parse().map_err(|e| format!("bad link {t:?}: {e}")))
                .collect::<Result<_, _>>()?;
            if row.len() != n {
                return Err(format!(
                    "link row {i} has {} entries, expected {n}",
                    row.len()
                ));
            }
            links.push(row);
        }
        Ok(ProcessorGraph::new(speeds, links))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_structure() {
        let h = ProcessorGraph::hypercube(3);
        assert_eq!(h.len(), 8);
        // Each node has exactly 3 links.
        for i in 0..8 {
            let deg = (0..8).filter(|&j| h.link(i, j) > 0.0).count();
            assert_eq!(deg, 3);
        }
        assert!(h.link(0, 1) > 0.0);
        assert!(h.link(0, 3) == 0.0); // differ in two bits
    }

    #[test]
    fn hypercube_distances_are_hamming() {
        let h = ProcessorGraph::hypercube(4);
        let d = h.distances();
        for (i, row) in d.iter().enumerate() {
            for (j, &hops) in row.iter().enumerate() {
                assert_eq!(hops, (i ^ j).count_ones() as usize);
            }
        }
    }

    #[test]
    fn hypercube_for_handles_non_powers() {
        let h = ProcessorGraph::hypercube_for(5);
        assert_eq!(h.len(), 5);
        let d = h.distances();
        assert!(d.iter().flatten().all(|&x| x != usize::MAX));
    }

    #[test]
    fn complete_machine_is_diameter_one() {
        let c = ProcessorGraph::complete(6);
        let d = c.distances();
        for (i, row) in d.iter().enumerate() {
            for (j, &hops) in row.iter().enumerate() {
                assert_eq!(hops, usize::from(i != j));
            }
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let h = ProcessorGraph::hypercube(2);
        let text = h.render();
        let back = ProcessorGraph::parse(&text).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(ProcessorGraph::parse("").is_err());
        assert!(ProcessorGraph::parse("2\n1.0\n0 1\n1 0\n").is_err()); // 1 speed
        assert!(ProcessorGraph::parse("2\n1 1\n0 1\n").is_err()); // missing row
        assert!(ProcessorGraph::parse("2\n1 x\n0 1\n1 0\n").is_err());
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_links_rejected() {
        let links = vec![vec![0.0, 1.0], vec![0.5, 0.0]];
        ProcessorGraph::new(vec![1.0, 1.0], links);
    }
}
