//! # ic2-partition — static graph partitioners for iC2mpi
//!
//! The thesis treats static partitioners as third-party plug-ins (Goal 3):
//! Metis and PaGrid are run on the application program graph to obtain the
//! initial node-to-processor mapping, and the battlefield study adds four
//! domain-decomposition schemes (gray-code embedding, row/column/rectangular
//! bands). This crate implements all of them behind one trait,
//! [`StaticPartitioner`], so they can be swapped without touching
//! application code — exactly the experiment the thesis's Section 5.3 runs.
//!
//! * [`metis::Metis`] — multilevel recursive-bisection partitioner in the
//!   style of Metis \[KK98\]: heavy-edge-matching coarsening, greedy
//!   graph-growing initial bisection, Fiduccia–Mattheyses boundary
//!   refinement, plus a final k-way refinement pass.
//! * [`pagrid::PaGrid`] — grid-aware mapper in the style of PaGrid
//!   \[WA04, HAB06\]: starts from a Metis partition and refines against an
//!   estimated-execution-time objective over a weighted
//!   [`procgraph::ProcessorGraph`], with the thesis's `Rref`
//!   communication/computation ratio.
//! * [`bands`] — row, column and rectangular band decompositions of
//!   coordinate-bearing meshes.
//! * [`graycode::GrayCodeBf`] — the battlefield simulator's original
//!   gray-code mesh-to-hypercube *fine-grained* embedding (a hex and its
//!   neighbours land on different processors).
//! * [`simple`] — round-robin, random and contiguous-block baselines.
//! * [`sfc::HilbertCurve`] and [`spectral::Spectral`] — the geometric and
//!   spectral families, added as the kind of third-party algorithms the
//!   test-bed exists to host (thesis §8: "comprehensive evaluation of
//!   static and dynamic partitioners").

pub mod bands;
pub mod graycode;
pub mod metis;
pub mod pagrid;
pub mod procgraph;
pub mod sfc;
pub mod simple;
pub mod spectral;

use ic2_graph::{Graph, Partition};

/// A static graph partitioner: application program graph in,
/// node-to-processor mapping out.
///
/// Implementations must return a partition covering every node with parts
/// in `0..nparts`; they should aim to balance vertex weight and minimise
/// edge-cut, but no quality is *required* — the platform runs any valid
/// mapping (that is the point of the plug-in architecture).
pub trait StaticPartitioner {
    /// Short human-readable name used in experiment reports.
    fn name(&self) -> &'static str;

    /// Partition `graph` into `nparts` parts.
    fn partition(&self, graph: &Graph, nparts: usize) -> Partition;
}

impl<T: StaticPartitioner + ?Sized> StaticPartitioner for &T {
    fn name(&self) -> &'static str {
        (*self).name()
    }
    fn partition(&self, graph: &Graph, nparts: usize) -> Partition {
        (*self).partition(graph, nparts)
    }
}

impl<T: StaticPartitioner + ?Sized> StaticPartitioner for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn partition(&self, graph: &Graph, nparts: usize) -> Partition {
        (**self).partition(graph, nparts)
    }
}
