//! Baseline partitioners: round-robin, random, contiguous block.
//!
//! These exist to exercise the plug-in architecture and to serve as lower
//! bounds in experiments: round-robin maximises the cut on meshes, block
//! respects node order (which for generated grids is row-major and hence
//! surprisingly decent).

use crate::StaticPartitioner;
use ic2_graph::{Graph, Partition};
use ic2_rng::SplitMix64;

/// Assign node `v` to part `v % nparts`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl StaticPartitioner for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }
    fn partition(&self, graph: &Graph, nparts: usize) -> Partition {
        assert!(nparts > 0);
        let assignment = (0..graph.num_nodes())
            .map(|v| (v % nparts) as u32)
            .collect();
        Partition::new(assignment, nparts)
    }
}

/// Uniformly random assignment, deterministic in the seed.
#[derive(Debug, Clone, Copy)]
pub struct RandomPartition {
    /// RNG seed.
    pub seed: u64,
}

impl StaticPartitioner for RandomPartition {
    fn name(&self) -> &'static str {
        "random"
    }
    fn partition(&self, graph: &Graph, nparts: usize) -> Partition {
        assert!(nparts > 0);
        let mut rng = SplitMix64::new(self.seed);
        let assignment = (0..graph.num_nodes())
            .map(|_| rng.gen_range(0..nparts) as u32)
            .collect();
        Partition::new(assignment, nparts)
    }
}

/// Contiguous blocks of (approximately) equal *vertex weight* in node-id
/// order.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockPartition;

impl StaticPartitioner for BlockPartition {
    fn name(&self) -> &'static str {
        "block"
    }
    fn partition(&self, graph: &Graph, nparts: usize) -> Partition {
        assert!(nparts > 0);
        let total = graph.total_vertex_weight();
        let mut assignment = vec![0u32; graph.num_nodes()];
        let mut part = 0u32;
        let mut acc = 0i64;
        for v in graph.nodes() {
            // Advance to the next part when this one has its fair share,
            // keeping the last part as a catch-all.
            let target = total * (part as i64 + 1) / nparts as i64;
            if acc >= target && (part as usize) < nparts - 1 {
                part += 1;
            }
            assignment[v as usize] = part;
            acc += graph.vertex_weight(v);
        }
        Partition::new(assignment, nparts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic2_graph::generators::hex_grid;
    use ic2_graph::metrics;

    #[test]
    fn round_robin_covers_all_parts() {
        let g = hex_grid(4, 8);
        let p = RoundRobin.partition(&g, 4);
        assert_eq!(p.counts(), vec![8; 4]);
    }

    #[test]
    fn random_is_deterministic_and_valid() {
        let g = hex_grid(4, 8);
        let a = RandomPartition { seed: 1 }.partition(&g, 4);
        let b = RandomPartition { seed: 1 }.partition(&g, 4);
        assert_eq!(a, b);
        assert_ne!(a, RandomPartition { seed: 2 }.partition(&g, 4));
    }

    #[test]
    fn block_is_balanced_on_uniform_weights() {
        let g = hex_grid(8, 8);
        let p = BlockPartition.partition(&g, 4);
        assert_eq!(p.counts(), vec![16; 4]);
        // Row-major blocks on a mesh are contiguous strips: small cut.
        assert!(metrics::edge_cut(&g, &p) < metrics::edge_cut(&g, &RoundRobin.partition(&g, 4)));
    }

    #[test]
    fn block_respects_vertex_weights() {
        let mut b = ic2_graph::GraphBuilder::new(4);
        b.edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .vertex_weights(vec![3, 1, 1, 1]);
        let g = b.build();
        let p = BlockPartition.partition(&g, 2);
        // Node 0 alone weighs half the total; the rest go to part 1.
        assert_eq!(p.as_slice(), &[0, 1, 1, 1]);
    }

    #[test]
    fn single_part_puts_everything_on_zero() {
        let g = hex_grid(2, 2);
        for partitioner in [
            &RoundRobin as &dyn StaticPartitioner,
            &BlockPartition,
            &RandomPartition { seed: 0 },
        ] {
            let p = partitioner.partition(&g, 1);
            assert!(
                p.as_slice().iter().all(|&x| x == 0),
                "{}",
                partitioner.name()
            );
        }
    }

    #[test]
    fn more_parts_than_nodes_is_legal() {
        let g = hex_grid(1, 2);
        let p = RoundRobin.partition(&g, 5);
        assert_eq!(p.num_parts(), 5);
        assert_eq!(p.counts().iter().sum::<usize>(), 2);
    }
}
