//! Space-filling-curve partitioner.
//!
//! A classic geometric scheme the thesis's test-bed exists to evaluate:
//! order the nodes along a Hilbert curve through their coordinates and cut
//! the curve into `nparts` equal-weight segments. Locality of the curve
//! translates into compact parts with competitive edge-cuts at a fraction
//! of a multilevel partitioner's cost.

use crate::StaticPartitioner;
use ic2_graph::{Graph, NodeId, Partition};

/// Hilbert-curve partitioner for coordinate-bearing graphs.
#[derive(Debug, Clone, Copy)]
pub struct HilbertCurve {
    /// Curve resolution in bits per dimension (16 is plenty for any mesh
    /// this crate generates).
    pub order: u32,
}

impl Default for HilbertCurve {
    fn default() -> Self {
        HilbertCurve { order: 16 }
    }
}

/// Map `(x, y)` on the `[0, 2^order)²` grid to its Hilbert-curve index.
fn hilbert_d(order: u32, mut x: u64, mut y: u64) -> u64 {
    let mut rx: u64;
    let mut ry: u64;
    let mut d: u64 = 0;
    let mut s: u64 = 1 << (order - 1);
    while s > 0 {
        rx = u64::from((x & s) > 0);
        ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate the quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x) & (s.wrapping_mul(2) - 1);
                y = s.wrapping_sub(1).wrapping_sub(y) & (s.wrapping_mul(2) - 1);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

impl StaticPartitioner for HilbertCurve {
    fn name(&self) -> &'static str {
        "hilbert-sfc"
    }

    fn partition(&self, graph: &Graph, nparts: usize) -> Partition {
        assert!(nparts > 0);
        let coords = graph
            .coords()
            .expect("space-filling-curve partitioning needs coordinates");
        let n = graph.num_nodes();
        if n == 0 {
            return Partition::new(Vec::new(), nparts);
        }
        // Normalise coordinates onto the curve's integer grid.
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in coords {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        let side = ((1u64 << self.order) - 1) as f64;
        let scale = |v: f64, lo: f64, hi: f64| {
            if hi > lo {
                ((v - lo) / (hi - lo) * side).round() as u64
            } else {
                0
            }
        };
        let mut order: Vec<(u64, NodeId)> = graph
            .nodes()
            .map(|v| {
                let (x, y) = coords[v as usize];
                (
                    hilbert_d(self.order, scale(x, min_x, max_x), scale(y, min_y, max_y)),
                    v,
                )
            })
            .collect();
        order.sort_unstable();
        // Cut the curve into equal-weight segments.
        let total = graph.total_vertex_weight();
        let mut assignment = vec![0u32; n];
        let mut part = 0u32;
        let mut acc = 0i64;
        for (_, v) in order {
            let target = total * (part as i64 + 1) / nparts as i64;
            if acc >= target && (part as usize) < nparts - 1 {
                part += 1;
            }
            assignment[v as usize] = part;
            acc += graph.vertex_weight(v);
        }
        Partition::new(assignment, nparts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic2_graph::generators::hex_grid;
    use ic2_graph::metrics;

    #[test]
    fn hilbert_index_is_bijective_at_low_order() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..8u64 {
            for y in 0..8u64 {
                assert!(seen.insert(hilbert_d(3, x, y)), "collision at ({x},{y})");
            }
        }
        assert_eq!(seen.len(), 64);
        assert!(seen.iter().all(|&d| d < 64));
    }

    #[test]
    fn consecutive_curve_points_are_grid_neighbors() {
        // The Hilbert curve moves one step at a time: indices d and d+1
        // must map to cells at Manhattan distance 1.
        let order = 4;
        let side = 1u64 << order;
        let mut by_d = vec![(0u64, 0u64); (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                by_d[hilbert_d(order, x, y) as usize] = (x, y);
            }
        }
        for w in by_d.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(dist, 1, "jump between ({x0},{y0}) and ({x1},{y1})");
        }
    }

    #[test]
    fn partitions_are_balanced() {
        let g = hex_grid(16, 16);
        for k in [2, 4, 8, 16] {
            let p = HilbertCurve::default().partition(&g, k);
            let imb = metrics::imbalance(&g, &p);
            assert!(imb < 1.05, "k={k} imbalance {imb}");
            assert!(p.counts().iter().all(|&c| c > 0));
        }
    }

    #[test]
    fn curve_locality_beats_round_robin_cut() {
        let g = hex_grid(16, 16);
        let sfc = metrics::edge_cut(&g, &HilbertCurve::default().partition(&g, 8));
        let rr = metrics::edge_cut(&g, &crate::simple::RoundRobin.partition(&g, 8));
        assert!(sfc * 3 < rr, "sfc {sfc} vs round-robin {rr}");
    }

    #[test]
    fn competitive_with_bands_on_square_meshes() {
        let g = hex_grid(32, 32);
        let sfc = metrics::edge_cut(&g, &HilbertCurve::default().partition(&g, 16));
        let rows = metrics::edge_cut(&g, &crate::bands::RowBand.partition(&g, 16));
        assert!(
            sfc <= rows,
            "compact curve segments ({sfc}) should beat thin strips ({rows})"
        );
    }

    #[test]
    #[should_panic(expected = "coordinates")]
    fn requires_coordinates() {
        let g = ic2_graph::generators::thesis_random_graph(32, 0);
        let _ = HilbertCurve::default().partition(&g, 4);
    }
}
