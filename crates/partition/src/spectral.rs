//! Spectral bisection partitioner.
//!
//! The third classical family the test-bed should host besides multilevel
//! and geometric methods: split along the sign/median of the Fiedler
//! vector (the eigenvector of the graph Laplacian's second-smallest
//! eigenvalue), computed by power iteration on a spectrum-shifted
//! Laplacian with deflation of the constant vector. k-way partitions come
//! from recursive bisection, exactly as in [`crate::metis`].

use crate::StaticPartitioner;
use ic2_graph::{Graph, GraphBuilder, NodeId, Partition};

/// Recursive spectral-bisection partitioner.
#[derive(Debug, Clone, Copy)]
pub struct Spectral {
    /// Power-iteration steps per bisection.
    pub iterations: usize,
}

impl Default for Spectral {
    fn default() -> Self {
        Spectral { iterations: 300 }
    }
}

/// Approximate the Fiedler vector of `graph` by power iteration on
/// `(c·I − L)`, which maps the Laplacian's smallest eigenvalues to the
/// largest; the constant vector (eigenvalue c) is deflated each step.
fn fiedler_vector(graph: &Graph, iterations: usize) -> Vec<f64> {
    let n = graph.num_nodes();
    // Gershgorin bound: every Laplacian eigenvalue is <= 2 * max degree.
    let shift = 2.0
        * graph
            .nodes()
            .map(|v| graph.edge_weights(v).iter().sum::<i64>() as f64)
            .fold(0.0f64, f64::max)
        + 1.0;
    // Deterministic, non-constant start vector.
    let mut x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.754_877 + 0.1).sin()).collect();
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        // Deflate the constant component, then normalise.
        let mean = x.iter().sum::<f64>() / n as f64;
        for v in x.iter_mut() {
            *v -= mean;
        }
        let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-30 {
            // Degenerate (e.g. n == 1); bail out with what we have.
            break;
        }
        for v in x.iter_mut() {
            *v /= norm;
        }
        // next = (shift*I - L) x  =  shift*x - deg(x)*x + A x
        for v in graph.nodes() {
            let vi = v as usize;
            let deg: f64 = graph.edge_weights(v).iter().sum::<i64>() as f64;
            let mut acc = (shift - deg) * x[vi];
            for (&w, &ew) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
                acc += ew as f64 * x[w as usize];
            }
            next[vi] = acc;
        }
        std::mem::swap(&mut x, &mut next);
    }
    x
}

impl StaticPartitioner for Spectral {
    fn name(&self) -> &'static str {
        "spectral"
    }

    fn partition(&self, graph: &Graph, nparts: usize) -> Partition {
        assert!(nparts > 0);
        let n = graph.num_nodes();
        let mut assignment = vec![0u32; n];
        if nparts > 1 && n > 0 {
            let nodes: Vec<NodeId> = graph.nodes().collect();
            self.split(graph, &nodes, 0, nparts, &mut assignment);
        }
        Partition::new(assignment, nparts)
    }
}

impl Spectral {
    fn split(
        &self,
        graph: &Graph,
        nodes: &[NodeId],
        first_part: u32,
        k: usize,
        assignment: &mut [u32],
    ) {
        if k == 1 || nodes.is_empty() {
            for &v in nodes {
                assignment[v as usize] = first_part;
            }
            return;
        }
        let k_left = k / 2;
        // Induce the subgraph and compute its Fiedler vector.
        let mut local = vec![u32::MAX; graph.num_nodes()];
        for (i, &v) in nodes.iter().enumerate() {
            local[v as usize] = i as u32;
        }
        let mut b = GraphBuilder::new(nodes.len());
        let mut vwgt = Vec::with_capacity(nodes.len());
        for (i, &v) in nodes.iter().enumerate() {
            vwgt.push(graph.vertex_weight(v));
            for (&w, &ew) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
                let lw = local[w as usize];
                if lw != u32::MAX && (i as u32) < lw {
                    b.weighted_edge(i as u32, lw, ew);
                }
            }
        }
        b.vertex_weights(vwgt);
        let sub = b.build();
        let fiedler = fiedler_vector(&sub, self.iterations);
        // Split at the weighted median of the Fiedler values, so the left
        // side gets k_left/k of the weight.
        let mut order: Vec<usize> = (0..nodes.len()).collect();
        order.sort_by(|&a, &b| {
            fiedler[a]
                .partial_cmp(&fiedler[b])
                .expect("fiedler values are finite")
                .then(a.cmp(&b))
        });
        let total: i64 = sub.total_vertex_weight();
        let target = total * k_left as i64 / k as i64;
        // Node-count floors, as in the multilevel splitter: each side must
        // host at least one node per part it will receive (when possible).
        let n_sub = nodes.len();
        let ml = k_left.min(n_sub);
        let mr = (k - k_left).min(n_sub - ml);
        let mut acc = 0i64;
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (pos, &i) in order.iter().enumerate() {
            let remaining = n_sub - pos;
            // Taking this node left must still leave `mr` nodes for the
            // right side.
            let take_left = left.len() < ml || (acc < target && remaining > mr);
            if take_left && remaining > mr || left.len() < ml {
                left.push(nodes[i]);
                acc += sub.vertex_weight(i as u32);
            } else {
                right.push(nodes[i]);
            }
        }
        self.split(graph, &left, first_part, k_left, assignment);
        self.split(
            graph,
            &right,
            first_part + k_left as u32,
            k - k_left,
            assignment,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic2_graph::generators::{hex_grid, thesis_random_graph};
    use ic2_graph::metrics;

    #[test]
    fn fiedler_separates_two_cliques() {
        // Two 5-cliques joined by one edge: the Fiedler vector must take
        // opposite signs on the two cliques.
        let mut b = GraphBuilder::new(10);
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.edge(i, j);
                b.edge(i + 5, j + 5);
            }
        }
        b.edge(4, 5);
        let g = b.build();
        let f = fiedler_vector(&g, 400);
        let left_sign = f[0].signum();
        for i in 0..5 {
            assert_eq!(f[i].signum(), left_sign, "node {i}: {f:?}");
        }
        for i in 5..10 {
            assert_eq!(f[i].signum(), -left_sign, "node {i}: {f:?}");
        }
    }

    #[test]
    fn bisection_of_two_cliques_is_clean() {
        let mut b = GraphBuilder::new(8);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.edge(i, j);
                b.edge(i + 4, j + 4);
            }
        }
        b.edge(0, 4);
        let g = b.build();
        let p = Spectral::default().partition(&g, 2);
        assert_eq!(metrics::edge_cut(&g, &p), 1, "{:?}", p.as_slice());
        assert_eq!(p.counts(), vec![4, 4]);
    }

    #[test]
    fn mesh_partitions_are_balanced_and_local() {
        let g = hex_grid(8, 8);
        for k in [2, 4, 8] {
            let p = Spectral::default().partition(&g, k);
            let imb = metrics::imbalance(&g, &p);
            assert!(imb <= 1.3, "k={k} imbalance {imb}: {:?}", p.counts());
            let cut = metrics::edge_cut(&g, &p);
            let rr = metrics::edge_cut(&g, &crate::simple::RoundRobin.partition(&g, k));
            // No local refinement pass, so the bar is lower than Metis's.
            assert!(cut * 10 < rr * 7, "k={k}: spectral {cut} vs rr {rr}");
        }
    }

    #[test]
    fn random_graphs_are_covered(/* determinism too */) {
        let g = thesis_random_graph(64, 1);
        let a = Spectral::default().partition(&g, 4);
        let b = Spectral::default().partition(&g, 4);
        assert_eq!(a, b);
        assert!(a.counts().iter().all(|&c| c > 0), "{:?}", a.counts());
    }

    #[test]
    fn single_node_and_single_part() {
        let g = hex_grid(1, 1);
        let p = Spectral::default().partition(&g, 1);
        assert_eq!(p.as_slice(), &[0]);
        let g2 = hex_grid(1, 2);
        let p2 = Spectral::default().partition(&g2, 2);
        let mut counts = p2.counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 1]);
    }
}
