//! Band decompositions of coordinate-bearing meshes.
//!
//! The battlefield study (Section 5.3, Tables 9–11) partitions the 32×32
//! hex terrain into row bands, column bands and rectangular tiles — the
//! classic hand-coded domain decompositions iC2mpi lets users compare
//! against graph partitioners without code changes.

use crate::StaticPartitioner;
use ic2_graph::{Graph, NodeId, Partition};

/// Split nodes into `nparts` horizontal bands of (approximately) equal
/// vertex weight, ordered by the y coordinate.
#[derive(Debug, Clone, Copy, Default)]
pub struct RowBand;

/// Split nodes into `nparts` vertical bands by the x coordinate.
#[derive(Debug, Clone, Copy, Default)]
pub struct ColumnBand;

/// Split the domain into a `pr × pc` grid of rectangles, `pr * pc ==
/// nparts`, with the factors chosen as close to square as possible; rows
/// are split by y first, then each row band by x.
#[derive(Debug, Clone, Copy, Default)]
pub struct RectangularBand;

fn coords_of(graph: &Graph) -> &[(f64, f64)] {
    graph
        .coords()
        .expect("band partitioners need a graph with coordinates")
}

/// Sort node ids by a key and slice them into `nparts` contiguous groups of
/// equal vertex weight.
fn banded_by<K: Fn(NodeId) -> f64>(graph: &Graph, nparts: usize, key: K) -> Vec<(NodeId, u32)> {
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.sort_by(|&a, &b| {
        key(a)
            .partial_cmp(&key(b))
            .expect("coordinates must not be NaN")
            .then(a.cmp(&b))
    });
    let total = graph.total_vertex_weight();
    let mut out = Vec::with_capacity(order.len());
    let mut part = 0u32;
    let mut acc = 0i64;
    for v in order {
        let target = total * (part as i64 + 1) / nparts as i64;
        if acc >= target && (part as usize) < nparts - 1 {
            part += 1;
        }
        out.push((v, part));
        acc += graph.vertex_weight(v);
    }
    out
}

impl StaticPartitioner for RowBand {
    fn name(&self) -> &'static str {
        "row-band"
    }
    fn partition(&self, graph: &Graph, nparts: usize) -> Partition {
        assert!(nparts > 0);
        let coords = coords_of(graph);
        let mut assignment = vec![0u32; graph.num_nodes()];
        for (v, p) in banded_by(graph, nparts, |v| coords[v as usize].1) {
            assignment[v as usize] = p;
        }
        Partition::new(assignment, nparts)
    }
}

impl StaticPartitioner for ColumnBand {
    fn name(&self) -> &'static str {
        "column-band"
    }
    fn partition(&self, graph: &Graph, nparts: usize) -> Partition {
        assert!(nparts > 0);
        let coords = coords_of(graph);
        let mut assignment = vec![0u32; graph.num_nodes()];
        for (v, p) in banded_by(graph, nparts, |v| coords[v as usize].0) {
            assignment[v as usize] = p;
        }
        Partition::new(assignment, nparts)
    }
}

/// Factor `n` as `a × b` with `a ≤ b` and `a` maximal ("squarish").
pub(crate) fn squarish_factors(n: usize) -> (usize, usize) {
    let mut a = (n as f64).sqrt() as usize;
    while a > 1 && !n.is_multiple_of(a) {
        a -= 1;
    }
    (a.max(1), n / a.max(1))
}

impl StaticPartitioner for RectangularBand {
    fn name(&self) -> &'static str {
        "rectangular"
    }
    fn partition(&self, graph: &Graph, nparts: usize) -> Partition {
        assert!(nparts > 0);
        let coords = coords_of(graph);
        let (pr, pc) = squarish_factors(nparts);
        let mut assignment = vec![0u32; graph.num_nodes()];
        // First slice into pr row bands...
        let rows = banded_by(graph, pr, |v| coords[v as usize].1);
        let mut row_members: Vec<Vec<NodeId>> = vec![Vec::new(); pr];
        for (v, band) in rows {
            row_members[band as usize].push(v);
        }
        // ...then slice each row band into pc columns by x.
        for (band, members) in row_members.into_iter().enumerate() {
            let mut sorted = members;
            sorted.sort_by(|&a, &b| {
                coords[a as usize]
                    .0
                    .partial_cmp(&coords[b as usize].0)
                    .expect("coordinates must not be NaN")
                    .then(a.cmp(&b))
            });
            let total: i64 = sorted.iter().map(|&v| graph.vertex_weight(v)).sum();
            let mut col = 0u32;
            let mut acc = 0i64;
            for v in sorted {
                let target = total * (col as i64 + 1) / pc as i64;
                if acc >= target && (col as usize) < pc - 1 {
                    col += 1;
                }
                assignment[v as usize] = (band * pc) as u32 + col;
                acc += graph.vertex_weight(v);
            }
        }
        Partition::new(assignment, nparts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic2_graph::generators::hex_grid;
    use ic2_graph::metrics;

    #[test]
    fn row_bands_are_balanced_strips() {
        let g = hex_grid(8, 8);
        let p = RowBand.partition(&g, 4);
        assert_eq!(p.counts(), vec![16; 4]);
        // Every band should contain two full rows: y-sorted row-major ids.
        for v in g.nodes() {
            assert_eq!(p.part_of(v), v / 16, "node {v}");
        }
    }

    #[test]
    fn column_bands_slice_vertically() {
        let g = hex_grid(8, 8);
        let p = ColumnBand.partition(&g, 4);
        assert_eq!(p.counts(), vec![16; 4]);
        // A column band's cut must differ from a row band's partition.
        assert_ne!(p, RowBand.partition(&g, 4));
    }

    #[test]
    fn rectangular_uses_squarish_factors() {
        assert_eq!(squarish_factors(16), (4, 4));
        assert_eq!(squarish_factors(8), (2, 4));
        assert_eq!(squarish_factors(2), (1, 2));
        assert_eq!(squarish_factors(1), (1, 1));
        let g = hex_grid(8, 8);
        let p = RectangularBand.partition(&g, 4);
        assert_eq!(p.counts(), vec![16; 4]);
    }

    #[test]
    fn rectangles_beat_rows_on_square_mesh_at_16() {
        // On a 32x32 mesh with 16 parts, 4x4 tiles cut ~half as many edges
        // as 16 thin rows — the effect behind Table 11 beating Table 9.
        let g = hex_grid(32, 32);
        let rows = metrics::edge_cut(&g, &RowBand.partition(&g, 16));
        let rect = metrics::edge_cut(&g, &RectangularBand.partition(&g, 16));
        assert!(rect < rows, "rect {rect} vs rows {rows}");
    }

    #[test]
    fn bands_keep_every_part_nonempty() {
        let g = hex_grid(4, 8);
        for k in [1, 2, 3, 4, 5, 8, 16] {
            for p in [
                RowBand.partition(&g, k),
                ColumnBand.partition(&g, k),
                RectangularBand.partition(&g, k),
            ] {
                assert!(
                    p.counts().iter().all(|&c| c > 0),
                    "empty part at k={k}: {:?}",
                    p.counts()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "coordinates")]
    fn bands_require_coords() {
        let g = ic2_graph::generators::thesis_random_graph(32, 0);
        let _ = RowBand.partition(&g, 2);
    }
}
