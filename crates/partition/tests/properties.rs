//! Randomised tests for the partitioners: every plug-in must produce a
//! valid, reasonably balanced partition on arbitrary workloads.
//!
//! Inputs come from the in-tree [`SplitMix64`] generator with fixed seeds,
//! so runs are hermetic and reproducible.

use ic2_graph::{generators, metrics, Graph};
use ic2_partition::bands::{ColumnBand, RectangularBand, RowBand};
use ic2_partition::graycode::GrayCodeBf;
use ic2_partition::metis::Metis;
use ic2_partition::pagrid::PaGrid;
use ic2_partition::simple::{BlockPartition, RandomPartition, RoundRobin};
use ic2_partition::StaticPartitioner;
use ic2_rng::SplitMix64;

fn check_valid(g: &Graph, p: &(dyn StaticPartitioner + Sync), k: usize) {
    let part = p.partition(g, k);
    assert_eq!(part.len(), g.num_nodes(), "{} coverage", p.name());
    assert_eq!(part.num_parts(), k);
    // Every part id in range is guaranteed by Partition::new; check
    // non-empty parts when there are enough nodes.
    if g.num_nodes() >= k {
        let counts = part.counts();
        assert!(
            counts.iter().all(|&c| c > 0),
            "{}: empty part with n={} k={k}: {:?}",
            p.name(),
            g.num_nodes(),
            counts
        );
    }
}

#[test]
fn metis_valid_on_random_graphs() {
    let mut rng = SplitMix64::new(0x9A1);
    for _ in 0..48 {
        let n = rng.gen_range(2..80);
        let k = rng.gen_range(1..9);
        let g = generators::random_connected(n, 3.5, 10, rng.next_u64());
        check_valid(&g, &Metis::default(), k);
    }
}

#[test]
fn metis_balance_bounded() {
    let mut rng = SplitMix64::new(0x9A2);
    for _ in 0..48 {
        let n = rng.gen_range(16..100);
        let k = rng.gen_range(2..9);
        let g = generators::random_connected(n, 3.5, 10, rng.next_u64());
        let part = Metis::default().partition(&g, k);
        let imb = metrics::imbalance(&g, &part);
        // Generous bound: one node of slack per part on top of the
        // configured epsilon.
        let bound = 1.05 + k as f64 / n as f64 + 0.15;
        assert!(imb <= bound, "imbalance {imb} > {bound} (n={n}, k={k})");
    }
}

#[test]
fn metis_deterministic() {
    let mut rng = SplitMix64::new(0x9A3);
    for _ in 0..48 {
        let n = rng.gen_range(4..50);
        let k = rng.gen_range(2..6);
        let g = generators::random_connected(n, 3.0, 10, rng.next_u64());
        let a = Metis::default().partition(&g, k);
        let b = Metis::default().partition(&g, k);
        assert_eq!(a, b);
    }
}

#[test]
fn pagrid_valid_and_no_worse_bottleneck() {
    let mut rng = SplitMix64::new(0x9A4);
    for _ in 0..48 {
        let n = rng.gen_range(8..60);
        let k = rng.gen_range(2..6);
        let g = generators::random_connected(n, 3.5, 10, rng.next_u64());
        check_valid(&g, &PaGrid::default(), k);
    }
}

#[test]
fn bands_valid_on_meshes() {
    let mut rng = SplitMix64::new(0x9A5);
    for _ in 0..48 {
        let rows = rng.gen_range(2..9);
        let cols = rng.gen_range(2..9);
        let k = rng.gen_range(1..9);
        let g = generators::hex_grid(rows, cols);
        check_valid(&g, &RowBand, k);
        check_valid(&g, &ColumnBand, k);
        check_valid(&g, &RectangularBand, k);
    }
}

#[test]
fn graycode_valid_on_meshes() {
    let mut rng = SplitMix64::new(0x9A6);
    for _ in 0..48 {
        let rows = rng.gen_range(2..9);
        let cols = rng.gen_range(2..9);
        let k = rng.gen_range(1..9);
        let g = generators::hex_grid(rows, cols);
        let part = GrayCodeBf.partition(&g, k);
        assert_eq!(part.len(), g.num_nodes());
    }
}

#[test]
fn simple_partitioners_always_valid() {
    let mut rng = SplitMix64::new(0x9A7);
    for _ in 0..48 {
        let n = rng.gen_range(1..60);
        let k = rng.gen_range(1..9);
        let seed = rng.next_u64();
        let g = generators::random_connected(n, 3.0, 10, seed);
        let _ = RoundRobin.partition(&g, k);
        let _ = BlockPartition.partition(&g, k);
        let _ = RandomPartition { seed }.partition(&g, k);
    }
}

#[test]
fn metis_beats_random_partition_on_cut() {
    let mut rng = SplitMix64::new(0x9A8);
    for _ in 0..48 {
        let n = rng.gen_range(24..80);
        let seed = rng.next_u64();
        let g = generators::random_connected(n, 4.0, 10, seed);
        let k = 4;
        let metis_cut = metrics::edge_cut(&g, &Metis::default().partition(&g, k));
        let random_cut = metrics::edge_cut(&g, &RandomPartition { seed }.partition(&g, k));
        assert!(
            metis_cut <= random_cut,
            "metis {metis_cut} must not lose to random {random_cut}"
        );
    }
}

#[test]
fn weighted_graphs_balance_by_weight() {
    let mut rng = SplitMix64::new(0x9A9);
    for _ in 0..48 {
        let n = rng.gen_range(12..50);
        // Build a weighted variant: node i has weight 1 + (i % 5).
        let base = generators::random_connected(n, 3.0, 10, rng.next_u64());
        let mut b = ic2_graph::GraphBuilder::new(n);
        for (u, v, w) in base.edges() {
            b.weighted_edge(u, v, w);
        }
        b.vertex_weights((0..n).map(|i| 1 + (i as i64 % 5)).collect());
        let g = b.build();
        let part = Metis::default().partition(&g, 4);
        let imb = metrics::imbalance(&g, &part);
        assert!(imb < 1.6, "weighted imbalance {imb}");
    }
}
