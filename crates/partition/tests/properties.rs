//! Property-based tests for the partitioners: every plug-in must produce a
//! valid, reasonably balanced partition on arbitrary workloads.

use ic2_graph::{generators, metrics, Graph};
use ic2_partition::bands::{ColumnBand, RectangularBand, RowBand};
use ic2_partition::graycode::GrayCodeBf;
use ic2_partition::metis::Metis;
use ic2_partition::pagrid::PaGrid;
use ic2_partition::simple::{BlockPartition, RandomPartition, RoundRobin};
use ic2_partition::StaticPartitioner;
use proptest::prelude::*;

fn check_valid(g: &Graph, p: &(dyn StaticPartitioner + Sync), k: usize) -> Result<(), TestCaseError> {
    let part = p.partition(g, k);
    prop_assert_eq!(part.len(), g.num_nodes(), "{} coverage", p.name());
    prop_assert_eq!(part.num_parts(), k);
    // Every part id in range is guaranteed by Partition::new; check
    // non-empty parts when there are enough nodes.
    if g.num_nodes() >= k {
        let counts = part.counts();
        prop_assert!(
            counts.iter().all(|&c| c > 0),
            "{}: empty part with n={} k={k}: {:?}",
            p.name(),
            g.num_nodes(),
            counts
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn metis_valid_on_random_graphs(n in 2usize..80, k in 1usize..9, seed in any::<u64>()) {
        let g = generators::random_connected(n, 3.5, 10, seed);
        check_valid(&g, &Metis::default(), k)?;
    }

    #[test]
    fn metis_balance_bounded(n in 16usize..100, k in 2usize..9, seed in any::<u64>()) {
        let g = generators::random_connected(n, 3.5, 10, seed);
        let part = Metis::default().partition(&g, k);
        let imb = metrics::imbalance(&g, &part);
        // Generous bound: one node of slack per part on top of the
        // configured epsilon.
        let bound = 1.05 + k as f64 / n as f64 + 0.15;
        prop_assert!(imb <= bound, "imbalance {imb} > {bound} (n={n}, k={k})");
    }

    #[test]
    fn metis_deterministic(n in 4usize..50, k in 2usize..6, seed in any::<u64>()) {
        let g = generators::random_connected(n, 3.0, 10, seed);
        let a = Metis::default().partition(&g, k);
        let b = Metis::default().partition(&g, k);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn pagrid_valid_and_no_worse_bottleneck(n in 8usize..60, k in 2usize..6, seed in any::<u64>()) {
        let g = generators::random_connected(n, 3.5, 10, seed);
        check_valid(&g, &PaGrid::default(), k)?;
    }

    #[test]
    fn bands_valid_on_meshes(rows in 2usize..9, cols in 2usize..9, k in 1usize..9) {
        let g = generators::hex_grid(rows, cols);
        check_valid(&g, &RowBand, k)?;
        check_valid(&g, &ColumnBand, k)?;
        check_valid(&g, &RectangularBand, k)?;
    }

    #[test]
    fn graycode_valid_on_meshes(rows in 2usize..9, cols in 2usize..9, k in 1usize..9) {
        let g = generators::hex_grid(rows, cols);
        let part = GrayCodeBf.partition(&g, k);
        prop_assert_eq!(part.len(), g.num_nodes());
    }

    #[test]
    fn simple_partitioners_always_valid(n in 1usize..60, k in 1usize..9, seed in any::<u64>()) {
        let g = generators::random_connected(n, 3.0, 10, seed);
        let _ = RoundRobin.partition(&g, k);
        let _ = BlockPartition.partition(&g, k);
        let _ = RandomPartition { seed }.partition(&g, k);
    }

    #[test]
    fn metis_beats_random_partition_on_cut(n in 24usize..80, seed in any::<u64>()) {
        let g = generators::random_connected(n, 4.0, 10, seed);
        let k = 4;
        let metis_cut = metrics::edge_cut(&g, &Metis::default().partition(&g, k));
        let random_cut = metrics::edge_cut(&g, &RandomPartition { seed }.partition(&g, k));
        prop_assert!(
            metis_cut <= random_cut,
            "metis {metis_cut} must not lose to random {random_cut}"
        );
    }

    #[test]
    fn weighted_graphs_balance_by_weight(n in 12usize..50, seed in any::<u64>()) {
        // Build a weighted variant: node i has weight 1 + (i % 5).
        let base = generators::random_connected(n, 3.0, 10, seed);
        let mut b = ic2_graph::GraphBuilder::new(n);
        for (u, v, w) in base.edges() {
            b.weighted_edge(u, v, w);
        }
        b.vertex_weights((0..n).map(|i| 1 + (i as i64 % 5)).collect());
        let g = b.build();
        let part = Metis::default().partition(&g, 4);
        let imb = metrics::imbalance(&g, &part);
        prop_assert!(imb < 1.6, "weighted imbalance {imb}");
    }
}
