//! Property-based tests for the battlefield model.

use ic2_battlefield::{BattlefieldProgram, BattleStats, HexCell, Scenario, Unit};
use ic2mpi::seq;
use mpisim::Wire;
use proptest::prelude::*;

fn arb_unit() -> impl Strategy<Value = Unit> {
    (any::<u32>(), 1u32..500, 1u32..50).prop_map(|(id, s, a)| Unit::new(id, s, a))
}

fn arb_cell() -> impl Strategy<Value = HexCell> {
    (
        proptest::collection::vec(arb_unit(), 0..6),
        proptest::collection::vec(arb_unit(), 0..6),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(red, blue, d0, d1)| {
            let mut c = HexCell::new();
            c.red = red;
            c.blue = blue;
            c.destroyed = [d0, d1];
            c.normalize();
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hex_cells_roundtrip_the_wire(cell in arb_cell()) {
        let bytes = cell.to_bytes();
        let back = HexCell::from_bytes(&bytes).ok();
        prop_assert_eq!(back.as_ref(), Some(&cell));
    }

    #[test]
    fn scenarios_place_disjoint_forces(
        rows in 2usize..8,
        cols in 4usize..12,
        seed in any::<u64>(),
    ) {
        let s = Scenario::skirmish(rows, cols, seed);
        let cells = s.generate();
        prop_assert_eq!(cells.len(), rows * cols);
        for cell in &cells {
            // Nobody starts in contact.
            prop_assert!(cell.red.is_empty() || cell.blue.is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn units_conserved_for_arbitrary_scenarios(
        rows in 2usize..6,
        cols in 4usize..10,
        seed in any::<u64>(),
        steps in 1u32..10,
    ) {
        let program = BattlefieldProgram::new(&Scenario::skirmish(rows, cols, seed));
        let graph = program.terrain();
        let initial = BattleStats::from_cells(&seq::run_sequential(&graph, &program, 0));
        let after = BattleStats::from_cells(&seq::run_sequential(&graph, &program, steps));
        for side in 0..2 {
            prop_assert_eq!(
                after.units[side] + after.destroyed[side] as usize,
                initial.units[side],
                "side {} leaked units", side
            );
            // Strength never grows.
            prop_assert!(after.strength[side] <= initial.strength[side]);
        }
    }
}
