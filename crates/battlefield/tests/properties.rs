//! Randomised tests for the battlefield model, driven by the in-tree
//! [`SplitMix64`] generator with fixed seeds (hermetic and reproducible).

use ic2_battlefield::{BattleStats, BattlefieldProgram, HexCell, Scenario, Unit};
use ic2_rng::SplitMix64;
use ic2mpi::seq;
use mpisim::Wire;

fn arb_unit(rng: &mut SplitMix64) -> Unit {
    Unit::new(
        rng.next_u64() as u32,
        rng.gen_range_incl(1..=499) as u32,
        rng.gen_range_incl(1..=49) as u32,
    )
}

fn arb_cell(rng: &mut SplitMix64) -> HexCell {
    let mut c = HexCell::new();
    c.red = (0..rng.gen_range(0..6)).map(|_| arb_unit(rng)).collect();
    c.blue = (0..rng.gen_range(0..6)).map(|_| arb_unit(rng)).collect();
    c.destroyed = [rng.next_u64() as u32, rng.next_u64() as u32];
    c.normalize();
    c
}

#[test]
fn hex_cells_roundtrip_the_wire() {
    let mut rng = SplitMix64::new(0xBA771);
    for _ in 0..64 {
        let cell = arb_cell(&mut rng);
        let bytes = cell.to_bytes();
        let back = HexCell::from_bytes(&bytes).ok();
        assert_eq!(back.as_ref(), Some(&cell));
    }
}

#[test]
fn scenarios_place_disjoint_forces() {
    let mut rng = SplitMix64::new(0xBA772);
    for _ in 0..64 {
        let rows = rng.gen_range(2..8);
        let cols = rng.gen_range(4..12);
        let s = Scenario::skirmish(rows, cols, rng.next_u64());
        let cells = s.generate();
        assert_eq!(cells.len(), rows * cols);
        for cell in &cells {
            // Nobody starts in contact.
            assert!(cell.red.is_empty() || cell.blue.is_empty());
        }
    }
}

#[test]
fn units_conserved_for_arbitrary_scenarios() {
    let mut rng = SplitMix64::new(0xBA773);
    for _ in 0..8 {
        let rows = rng.gen_range(2..6);
        let cols = rng.gen_range(4..10);
        let steps = rng.gen_range(1..10) as u32;
        let program = BattlefieldProgram::new(&Scenario::skirmish(rows, cols, rng.next_u64()));
        let graph = program.terrain();
        let initial = BattleStats::from_cells(&seq::run_sequential(&graph, &program, 0));
        let after = BattleStats::from_cells(&seq::run_sequential(&graph, &program, steps));
        for side in 0..2 {
            assert_eq!(
                after.units[side] + after.destroyed[side] as usize,
                initial.units[side],
                "side {side} leaked units"
            );
            // Strength never grows.
            assert!(after.strength[side] <= initial.strength[side]);
        }
    }
}
