//! The battlefield simulation must run unchanged on the platform and match
//! the sequential oracle exactly — units, strengths, positions, ledgers.

use ic2_battlefield::{BattleStats, BattlefieldProgram, Scenario};
use ic2mpi::prelude::*;
use ic2mpi::seq;
use std::time::Duration;

fn cfg(nprocs: usize, steps: u32) -> RunConfig {
    RunConfig::new(nprocs, steps)
        .with_world(mpisim::Config::default().with_watchdog(Duration::from_secs(20)))
        .with_validation()
}

#[test]
fn parallel_matches_sequential_battle() {
    let program = BattlefieldProgram::new(&Scenario::skirmish(6, 12, 7));
    let graph = program.terrain();
    let oracle = seq::run_sequential(&graph, &program, 10);
    for procs in [1, 2, 4, 8] {
        let report = run(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &cfg(procs, 10),
        );
        assert_eq!(report.final_data, oracle, "{procs} procs");
    }
}

#[test]
fn battle_actually_happens_in_parallel() {
    let program = BattlefieldProgram::new(&Scenario::skirmish(6, 12, 3));
    let graph = program.terrain();
    let report = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(4, 14),
    );
    let stats = BattleStats::from_cells(&report.final_data);
    assert!(stats.total_destroyed() > 0, "no combat occurred: {stats:?}");
    // Units never appear from nowhere.
    let initial = BattleStats::from_cells(&seq::run_sequential(&graph, &program, 0));
    for side in 0..2 {
        assert_eq!(
            stats.units[side] + stats.destroyed[side] as usize,
            initial.units[side]
        );
    }
}

#[test]
fn band_partitioners_run_the_battlefield() {
    use ic2_partition::bands::{ColumnBand, RectangularBand, RowBand};
    use ic2_partition::graycode::GrayCodeBf;
    let program = BattlefieldProgram::new(&Scenario::skirmish(4, 8, 5));
    let graph = program.terrain();
    let oracle = seq::run_sequential(&graph, &program, 6);
    let partitioners: Vec<Box<dyn ic2_partition::StaticPartitioner + Sync>> = vec![
        Box::new(RowBand),
        Box::new(ColumnBand),
        Box::new(RectangularBand),
        Box::new(GrayCodeBf),
    ];
    for p in &partitioners {
        let report = run(&graph, &program, p.as_ref(), || NoBalancer, &cfg(4, 6));
        assert_eq!(report.final_data, oracle, "partitioner {}", p.name());
    }
}

#[test]
fn battlefield_survives_dynamic_migration() {
    let program = BattlefieldProgram::new(&Scenario::skirmish(6, 12, 9));
    let graph = program.terrain();
    let oracle = seq::run_sequential(&graph, &program, 12);
    let config = cfg(4, 12)
        .with_balancing(4)
        .with_migration_batch(6)
        .with_migrant_policy(MigrantPolicy::LoadAware);
    let report = run(
        &graph,
        &program,
        &Metis::default(),
        || Diffusion { threshold: 0.05 },
        &config,
    );
    assert_eq!(report.final_data, oracle);
}

#[test]
fn combat_zone_concentrates_load() {
    // After the armies meet, the busiest cells must be well inside the
    // terrain (not in the original deployment bands) — the dynamically
    // forming combat zone the thesis motivates load balancing with.
    let program = BattlefieldProgram::new(&Scenario::skirmish(6, 16, 11));
    let graph = program.terrain();
    let cells = seq::run_sequential(&graph, &program, 16);
    let stats = BattleStats::from_cells(&cells);
    assert!(stats.max_units_per_cell >= 2);
    let busiest = cells
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| c.unit_count())
        .map(|(i, _)| i % 16)
        .unwrap();
    assert!(
        (3..13).contains(&busiest),
        "combat zone at column {busiest} should be interior"
    );
}
