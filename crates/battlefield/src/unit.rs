//! Combat units.

use mpisim::{Wire, WireError};

/// One combat unit: identity, remaining strength, and attack rating.
///
/// Strength is hit points; a unit whose strength reaches zero is destroyed
/// and logged in its cell's destroyed-asset counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unit {
    /// Globally unique unit id (assigned by the scenario generator;
    /// determines deterministic ordering within a cell).
    pub id: u32,
    /// Remaining hit points.
    pub strength: u32,
    /// Damage contributed to the cell's fire allocation each step.
    pub attack: u32,
}

impl Unit {
    /// A fresh unit.
    pub fn new(id: u32, strength: u32, attack: u32) -> Self {
        Unit {
            id,
            strength,
            attack,
        }
    }

    /// Whether the unit is still combat-effective.
    pub fn alive(&self) -> bool {
        self.strength > 0
    }
}

impl Wire for Unit {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.strength.encode(out);
        self.attack.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Unit {
            id: u32::decode(buf)?,
            strength: u32::decode(buf)?,
            attack: u32::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let u = Unit::new(7, 100, 12);
        let back = Unit::from_bytes(&u.to_bytes()).unwrap();
        assert_eq!(u, back);
    }

    #[test]
    fn aliveness() {
        assert!(Unit::new(0, 1, 1).alive());
        assert!(!Unit::new(0, 0, 1).alive());
    }
}
