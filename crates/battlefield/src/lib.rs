//! # ic2-battlefield — battlefield management simulation on iC2mpi
//!
//! The thesis's flagship application (§2.2, §5.3): a time-stepped combat
//! simulation over a 32 × 32 hex terrain, originally parallelised by hand
//! on hypercube machines \[DMP98\] and re-deployed on the iC2mpi platform to
//! study static partitioning schemes. The original C simulator is not
//! published; this crate implements the closest synthetic equivalent that
//! exercises the same platform paths:
//!
//! * hex cells carry **unit lists** for two sides (red/blue), with the
//!   destroyed-asset bookkeeping of the thesis's
//!   `hex_node_data_struct` (Figure 2);
//! * each time step interleaves **several compute/communicate rounds**
//!   (`NodeProgram::phases` = 3 — targeting, fire + emigration,
//!   movement), the customization the thesis calls out for this
//!   application ("the computation and communication function sequence is
//!   called more than once");
//! * compute cost per cell grows with its unit count, so **combat zones
//!   form dynamically** where the armies meet — the load behaviour that
//!   makes battlefield simulation interesting for load-balancing research.
//!
//! The model is deterministic: scenario generation is seeded, and combat
//! resolution uses only integer arithmetic over the cell's 1-hop
//! neighbourhood, so the platform's parallel execution is bit-identical to
//! the sequential oracle.

pub mod cell;
pub mod program;
pub mod scenario;
pub mod stats;
pub mod unit;

pub use cell::{HexCell, Side, DIRECTIONS};
pub use program::BattlefieldProgram;
pub use scenario::Scenario;
pub use stats::BattleStats;
pub use unit::Unit;
