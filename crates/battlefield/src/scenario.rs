//! Scenario generation: initial force dispositions.

use crate::cell::HexCell;
use crate::unit::Unit;
use ic2_rng::SplitMix64;

/// A deterministic initial battlefield: red deployed along the western
/// columns, blue along the eastern columns, with seeded unit strengths.
/// Out of contact the forces advance toward each other, so a combat zone
/// forms dynamically in the middle of the terrain — the thesis's canonical
/// source of unpredictable load.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Terrain rows.
    pub rows: usize,
    /// Terrain columns.
    pub cols: usize,
    /// Columns occupied by each side at the start.
    pub deployment_depth: usize,
    /// Maximum units a side places in one deployed cell.
    pub max_units_per_cell: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Scenario {
    /// The thesis's configuration: a 32 × 32-hex battlefield.
    pub fn thesis() -> Self {
        Scenario {
            rows: 32,
            cols: 32,
            deployment_depth: 6,
            max_units_per_cell: 3,
            seed: 0xBF,
        }
    }

    /// A small scenario for fast tests.
    pub fn skirmish(rows: usize, cols: usize, seed: u64) -> Self {
        Scenario {
            rows,
            cols,
            deployment_depth: (cols / 4).max(1),
            max_units_per_cell: 2,
            seed,
        }
    }

    /// Generate the initial cell state, indexed row-major.
    pub fn generate(&self) -> Vec<HexCell> {
        assert!(
            2 * self.deployment_depth <= self.cols,
            "deployment bands must not overlap"
        );
        let mut rng = SplitMix64::new(self.seed);
        let mut cells = vec![HexCell::new(); self.rows * self.cols];
        let mut next_id = 0u32;
        let place = |cells: &mut Vec<HexCell>,
                     rng: &mut SplitMix64,
                     r: usize,
                     c: usize,
                     red: bool,
                     next_id: &mut u32| {
            let n = rng.gen_range_incl(1..=self.max_units_per_cell);
            for _ in 0..n {
                let unit = Unit::new(
                    *next_id,
                    rng.gen_range_incl(80..=120) as u32,
                    rng.gen_range_incl(8..=15) as u32,
                );
                *next_id += 1;
                let cell = &mut cells[r * self.cols + c];
                if red {
                    cell.red.push(unit);
                } else {
                    cell.blue.push(unit);
                }
            }
        };
        for r in 0..self.rows {
            for c in 0..self.deployment_depth {
                place(&mut cells, &mut rng, r, c, true, &mut next_id);
            }
            for c in (self.cols - self.deployment_depth)..self.cols {
                place(&mut cells, &mut rng, r, c, false, &mut next_id);
            }
        }
        for cell in &mut cells {
            cell.normalize();
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Side;

    #[test]
    fn thesis_scenario_shape() {
        let s = Scenario::thesis();
        let cells = s.generate();
        assert_eq!(cells.len(), 32 * 32);
        // Red only in the west band, blue only in the east band.
        for (i, cell) in cells.iter().enumerate() {
            let c = i % 32;
            if !cell.red.is_empty() {
                assert!(c < 6, "red at column {c}");
            }
            if !cell.blue.is_empty() {
                assert!(c >= 26, "blue at column {c}");
            }
        }
        let red: u64 = cells.iter().map(|c| c.strength(Side::Red)).sum();
        let blue: u64 = cells.iter().map(|c| c.strength(Side::Blue)).sum();
        assert!(red > 0 && blue > 0);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = Scenario::thesis().generate();
        let b = Scenario::thesis().generate();
        assert_eq!(a, b);
        let mut other = Scenario::thesis();
        other.seed = 1;
        assert_ne!(a, other.generate());
    }

    #[test]
    fn unit_ids_are_globally_unique() {
        let cells = Scenario::thesis().generate();
        let mut ids = std::collections::HashSet::new();
        for cell in &cells {
            for u in cell.red.iter().chain(cell.blue.iter()) {
                assert!(ids.insert(u.id), "duplicate id {}", u.id);
            }
        }
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_bands_rejected() {
        let mut s = Scenario::skirmish(4, 4, 0);
        s.deployment_depth = 3;
        s.generate();
    }
}
