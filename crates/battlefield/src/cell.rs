//! Hex-cell state: the application node data structure.
//!
//! The Rust analogue of the thesis's `hex_node_data_struct` (Figure 2):
//! per-cell unit lists (`my_units`), per-direction fire and emigration
//! buffers (the `buffer[6][...]` temporaries), and destroyed-asset
//! counters (`destroyed[hex][red/blue][unit][direction]`, aggregated here
//! per side and direction).

use crate::unit::Unit;
use mpisim::{Wire, WireError};

/// Number of hex directions (E, W, NE, NW, SE, SW).
pub const DIRECTIONS: usize = 6;

/// Index of the "own cell" pseudo-direction in fire tables.
pub const DIR_SELF: usize = DIRECTIONS;

/// The two sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Red force (advances east when out of contact).
    Red,
    /// Blue force (advances west when out of contact).
    Blue,
}

impl Side {
    /// The opposing side.
    pub fn enemy(self) -> Side {
        match self {
            Side::Red => Side::Blue,
            Side::Blue => Side::Red,
        }
    }

    /// Array index of this side.
    pub fn index(self) -> usize {
        match self {
            Side::Red => 0,
            Side::Blue => 1,
        }
    }

    /// Both sides, red first.
    pub const BOTH: [Side; 2] = [Side::Red, Side::Blue];
}

/// One hex of terrain with everything the node computation reads/writes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HexCell {
    /// Red units present, sorted by id.
    pub red: Vec<Unit>,
    /// Blue units present, sorted by id.
    pub blue: Vec<Unit>,
    /// Fire allocated by this cell's units: `fire[side][direction]` is the
    /// attack the given side pointed at the neighbouring cell in
    /// `direction` (index [`DIR_SELF`] = enemies sharing this cell).
    /// Written in the targeting phase, consumed in the fire phase.
    pub fire: [[u32; DIRECTIONS + 1]; 2],
    /// Units leaving this cell per direction: `emigrants[side][direction]`.
    /// Written in the fire phase, ingested by neighbours in the movement
    /// phase.
    pub emigrants: [[Vec<Unit>; DIRECTIONS]; 2],
    /// Cumulative units this cell has lost, per side — the destroyed-asset
    /// ledger.
    pub destroyed: [u32; 2],
}

impl HexCell {
    /// An empty hex.
    pub fn new() -> Self {
        HexCell::default()
    }

    /// Units of `side`.
    pub fn units(&self, side: Side) -> &[Unit] {
        match side {
            Side::Red => &self.red,
            Side::Blue => &self.blue,
        }
    }

    /// Mutable units of `side`.
    pub fn units_mut(&mut self, side: Side) -> &mut Vec<Unit> {
        match side {
            Side::Red => &mut self.red,
            Side::Blue => &mut self.blue,
        }
    }

    /// Total remaining strength of `side` in this cell.
    pub fn strength(&self, side: Side) -> u64 {
        self.units(side).iter().map(|u| u.strength as u64).sum()
    }

    /// Total attack rating of `side` in this cell.
    pub fn attack(&self, side: Side) -> u64 {
        self.units(side).iter().map(|u| u.attack as u64).sum()
    }

    /// Number of units of both sides (the per-cell load driver).
    pub fn unit_count(&self) -> usize {
        self.red.len() + self.blue.len()
    }

    /// Whether any units are present.
    pub fn occupied(&self) -> bool {
        self.unit_count() > 0
    }

    /// Keep unit lists sorted by id so parallel and sequential executions
    /// agree bit-for-bit.
    pub fn normalize(&mut self) {
        self.red.sort_unstable_by_key(|u| u.id);
        self.blue.sort_unstable_by_key(|u| u.id);
    }
}

fn encode_fire(fire: &[[u32; DIRECTIONS + 1]; 2], out: &mut Vec<u8>) {
    for side in fire {
        for &f in side {
            f.encode(out);
        }
    }
}

fn decode_fire(buf: &mut &[u8]) -> Result<[[u32; DIRECTIONS + 1]; 2], WireError> {
    let mut fire = [[0u32; DIRECTIONS + 1]; 2];
    for side in &mut fire {
        for f in side.iter_mut() {
            *f = u32::decode(buf)?;
        }
    }
    Ok(fire)
}

impl Wire for HexCell {
    fn encode(&self, out: &mut Vec<u8>) {
        self.red.encode(out);
        self.blue.encode(out);
        encode_fire(&self.fire, out);
        for side in &self.emigrants {
            for dir in side {
                dir.encode(out);
            }
        }
        self.destroyed[0].encode(out);
        self.destroyed[1].encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let red = Vec::<Unit>::decode(buf)?;
        let blue = Vec::<Unit>::decode(buf)?;
        let fire = decode_fire(buf)?;
        let mut emigrants: [[Vec<Unit>; DIRECTIONS]; 2] = Default::default();
        for side in &mut emigrants {
            for dir in side.iter_mut() {
                *dir = Vec::<Unit>::decode(buf)?;
            }
        }
        let destroyed = [u32::decode(buf)?, u32::decode(buf)?];
        Ok(HexCell {
            red,
            blue,
            fire,
            emigrants,
            destroyed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HexCell {
        let mut c = HexCell::new();
        c.red.push(Unit::new(1, 100, 10));
        c.blue.push(Unit::new(2, 50, 5));
        c.blue.push(Unit::new(3, 60, 6));
        c.fire[0][2] = 17;
        c.fire[1][DIR_SELF] = 4;
        c.emigrants[1][3].push(Unit::new(9, 10, 1));
        c.destroyed = [2, 5];
        c
    }

    #[test]
    fn wire_roundtrip_preserves_everything() {
        let c = sample();
        let back = HexCell::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn empty_cell_roundtrips() {
        let c = HexCell::new();
        assert_eq!(HexCell::from_bytes(&c.to_bytes()).unwrap(), c);
    }

    #[test]
    fn strength_and_attack_sum_units() {
        let c = sample();
        assert_eq!(c.strength(Side::Red), 100);
        assert_eq!(c.strength(Side::Blue), 110);
        assert_eq!(c.attack(Side::Blue), 11);
        assert_eq!(c.unit_count(), 3);
        assert!(c.occupied());
    }

    #[test]
    fn normalize_sorts_by_id() {
        let mut c = HexCell::new();
        c.red.push(Unit::new(5, 1, 1));
        c.red.push(Unit::new(2, 1, 1));
        c.normalize();
        assert_eq!(c.red[0].id, 2);
    }

    #[test]
    fn side_enemy_and_index() {
        assert_eq!(Side::Red.enemy(), Side::Blue);
        assert_eq!(Side::Blue.enemy(), Side::Red);
        assert_eq!(Side::Red.index(), 0);
        assert_eq!(Side::Blue.index(), 1);
    }
}
