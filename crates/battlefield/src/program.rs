//! The battlefield node program: three compute/communicate phases per
//! time step.
//!
//! Every rule reads only the cell's own state and its 1-hop neighbourhood
//! (the data the platform delivers), and all arithmetic is integral, so
//! the simulation is exactly reproducible:
//!
//! 1. **Targeting** — each unit allocates its attack toward the adjacent
//!    (or own) hex holding the most enemy strength; allocations are
//!    published in the cell's per-direction fire table.
//! 2. **Fire & emigration** — incoming fire (neighbours' tables pointed at
//!    this cell, plus same-hex fire) is applied to the cell's units,
//!    weakest first; losses are added to the destroyed-asset ledger.
//!    Survivors out of contact emigrate toward the enemy (red east, blue
//!    west) via the per-direction emigrant lists.
//! 3. **Movement** — each cell ingests the neighbouring emigrant lists
//!    pointed at it and clears its transient state.

use crate::cell::{HexCell, Side, DIRECTIONS, DIR_SELF};
use crate::scenario::Scenario;
use crate::unit::Unit;
use ic2_graph::{Graph, NodeId};
use ic2mpi::{ComputeCtx, NeighborData, NodeProgram};
use std::sync::Arc;

/// Hex direction indices: E, W, NE, NW, SE, SW (odd-r offset layout,
/// matching `ic2_graph::generators::hex_grid`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    E = 0,
    W = 1,
    Ne = 2,
    Nw = 3,
    Se = 4,
    Sw = 5,
}

/// The battlefield simulation as a platform plug-in.
#[derive(Debug, Clone)]
pub struct BattlefieldProgram {
    rows: usize,
    cols: usize,
    initial: Arc<Vec<HexCell>>,
    /// Fixed per-cell cost per phase (terrain bookkeeping), seconds.
    pub base_cost: f64,
    /// Additional cost per unit present in the cell, seconds.
    pub per_unit_cost: f64,
}

impl BattlefieldProgram {
    /// Build the program from a scenario.
    pub fn new(scenario: &Scenario) -> Self {
        BattlefieldProgram {
            rows: scenario.rows,
            cols: scenario.cols,
            initial: Arc::new(scenario.generate()),
            base_cost: 25e-6,
            per_unit_cost: 13e-6,
        }
    }

    /// The terrain graph this program runs on.
    pub fn terrain(&self) -> Graph {
        ic2_graph::generators::hex_grid(self.rows, self.cols)
    }

    /// Terrain rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Terrain columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn coords(&self, node: NodeId) -> (usize, usize) {
        (node as usize / self.cols, node as usize % self.cols)
    }

    /// Direction from `from` to its hex neighbour `to` in the odd-r
    /// layout; `None` if they are not adjacent.
    fn direction_to(&self, from: NodeId, to: NodeId) -> Option<Dir> {
        let (r, c) = self.coords(from);
        let (tr, tc) = self.coords(to);
        let (dr, dc) = (tr as isize - r as isize, tc as isize - c as isize);
        let odd = r % 2 == 1;
        match (dr, dc, odd) {
            (0, 1, _) => Some(Dir::E),
            (0, -1, _) => Some(Dir::W),
            (-1, 0, false) | (-1, 1, true) => Some(Dir::Ne),
            (-1, -1, false) | (-1, 0, true) => Some(Dir::Nw),
            (1, 0, false) | (1, 1, true) => Some(Dir::Se),
            (1, -1, false) | (1, 0, true) => Some(Dir::Sw),
            _ => None,
        }
    }

    /// Total enemy strength visible from a cell (own hex + neighbours) —
    /// the contact test deciding fight vs advance.
    fn visible_enemy_strength(
        own: &HexCell,
        neighbors: &[NeighborData<'_, HexCell>],
        side: Side,
    ) -> u64 {
        let enemy = side.enemy();
        own.strength(enemy)
            + neighbors
                .iter()
                .map(|n| n.data.strength(enemy))
                .sum::<u64>()
    }

    // ---- phase 0: targeting ---------------------------------------------

    fn targeting(
        &self,
        node: NodeId,
        own: &HexCell,
        neighbors: &[NeighborData<'_, HexCell>],
    ) -> HexCell {
        let mut next = own.clone();
        next.fire = [[0; DIRECTIONS + 1]; 2];
        for side in Side::BOTH {
            let enemy = side.enemy();
            // Enemy strength per direction (self last).
            let mut strength = [0u64; DIRECTIONS + 1];
            strength[DIR_SELF] = own.strength(enemy);
            for n in neighbors {
                if let Some(dir) = self.direction_to(node, n.id) {
                    strength[dir as usize] = n.data.strength(enemy);
                }
            }
            if strength.iter().all(|&s| s == 0) {
                continue;
            }
            // Every unit fires at the richest target hex; prefer the own
            // hex on ties (close combat first), then the lowest direction.
            let mut best = DIR_SELF;
            for d in 0..DIRECTIONS {
                if strength[d] > strength[best] {
                    best = d;
                }
            }
            for unit in own.units(side) {
                next.fire[side.index()][best] += unit.attack;
            }
        }
        next
    }

    // ---- phase 1: fire resolution & emigration --------------------------

    fn fire_and_emigrate(
        &self,
        node: NodeId,
        own: &HexCell,
        neighbors: &[NeighborData<'_, HexCell>],
    ) -> HexCell {
        let mut next = own.clone();
        for side in Side::BOTH {
            let enemy = side.enemy();
            // Incoming damage: enemies in this hex plus every neighbour's
            // fire table entry pointing here.
            let mut damage: u64 = own.fire[enemy.index()][DIR_SELF] as u64;
            for n in neighbors {
                if let Some(dir) = self.direction_to(n.id, node) {
                    damage += n.data.fire[enemy.index()][dir as usize] as u64;
                }
            }
            if damage > 0 {
                apply_damage(&mut next, side, damage);
            }
        }
        // Survivors out of contact advance toward the enemy.
        for side in Side::BOTH {
            if Self::visible_enemy_strength(own, neighbors, side) > 0 {
                continue;
            }
            let (_, c) = self.coords(node);
            let advance = match side {
                Side::Red if c + 1 < self.cols => Some(Dir::E),
                Side::Blue if c > 0 => Some(Dir::W),
                _ => None,
            };
            if let Some(dir) = advance {
                let movers = std::mem::take(next.units_mut(side));
                next.emigrants[side.index()][dir as usize] = movers;
            }
        }
        next
    }

    // ---- phase 2: movement ----------------------------------------------

    fn movement(
        &self,
        node: NodeId,
        own: &HexCell,
        neighbors: &[NeighborData<'_, HexCell>],
    ) -> HexCell {
        let mut next = own.clone();
        for n in neighbors {
            // Units the neighbour sent in our direction.
            if let Some(dir) = self.direction_to(n.id, node) {
                for side in Side::BOTH {
                    let arrivals = &n.data.emigrants[side.index()][dir as usize];
                    next.units_mut(side).extend(arrivals.iter().copied());
                }
            }
        }
        next.emigrants = Default::default();
        next.fire = [[0; DIRECTIONS + 1]; 2];
        next.normalize();
        next
    }
}

/// Apply `damage` to `side`'s units in ascending strength order (weakest
/// are destroyed first), updating the destroyed ledger.
fn apply_damage(cell: &mut HexCell, side: Side, mut damage: u64) {
    let units = cell.units_mut(side);
    units.sort_unstable_by_key(|u| (u.strength, u.id));
    let mut destroyed = 0u32;
    for unit in units.iter_mut() {
        if damage == 0 {
            break;
        }
        let hit = damage.min(unit.strength as u64) as u32;
        unit.strength -= hit;
        damage -= hit as u64;
        if unit.strength == 0 {
            destroyed += 1;
        }
    }
    units.retain(Unit::alive);
    cell.destroyed[side.index()] += destroyed;
    cell.normalize();
}

impl NodeProgram for BattlefieldProgram {
    type Data = HexCell;

    fn init(&self, node: NodeId, _graph: &Graph) -> HexCell {
        self.initial[node as usize].clone()
    }

    fn compute(
        &self,
        node: NodeId,
        own: &HexCell,
        neighbors: &[NeighborData<'_, HexCell>],
        ctx: &ComputeCtx,
    ) -> HexCell {
        match ctx.phase {
            0 => self.targeting(node, own, neighbors),
            1 => self.fire_and_emigrate(node, own, neighbors),
            2 => self.movement(node, own, neighbors),
            other => panic!("battlefield has 3 phases, got {other}"),
        }
    }

    fn cost(&self, _node: NodeId, own: &HexCell, _ctx: &ComputeCtx) -> f64 {
        self.base_cost + self.per_unit_cost * own.unit_count() as f64
    }

    fn phases(&self) -> u32 {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic2mpi::seq;

    fn program(rows: usize, cols: usize, seed: u64) -> BattlefieldProgram {
        BattlefieldProgram::new(&Scenario::skirmish(rows, cols, seed))
    }

    #[test]
    fn directions_are_mutually_inverse() {
        let p = program(6, 6, 0);
        let g = p.terrain();
        for v in g.nodes() {
            for &w in g.neighbors(v) {
                let d = p.direction_to(v, w).expect("adjacent");
                let back = p.direction_to(w, v).expect("adjacent");
                let expected_back = match d {
                    Dir::E => Dir::W,
                    Dir::W => Dir::E,
                    Dir::Ne => Dir::Sw,
                    Dir::Sw => Dir::Ne,
                    Dir::Nw => Dir::Se,
                    Dir::Se => Dir::Nw,
                };
                assert_eq!(back, expected_back, "edge ({v},{w})");
            }
        }
    }

    #[test]
    fn non_adjacent_cells_have_no_direction() {
        let p = program(6, 6, 0);
        assert_eq!(p.direction_to(0, 14), None);
        assert_eq!(p.direction_to(0, 0), None);
    }

    #[test]
    fn armies_advance_and_meet() {
        let p = program(4, 8, 1);
        let g = p.terrain();
        let start = crate::stats::BattleStats::from_cells(&seq::run_sequential(&g, &p, 0));
        assert_eq!(start.contact_cells, 0);
        // After enough steps the forces must have met and fought.
        let end_cells = seq::run_sequential(&g, &p, 12);
        let end = crate::stats::BattleStats::from_cells(&end_cells);
        assert!(
            end.destroyed[0] + end.destroyed[1] > 0,
            "battle must produce losses: {end:?}"
        );
    }

    #[test]
    fn units_are_conserved_modulo_destruction() {
        let p = program(4, 8, 2);
        let g = p.terrain();
        let initial = crate::stats::BattleStats::from_cells(&seq::run_sequential(&g, &p, 0));
        for steps in [1, 3, 7, 12] {
            let s = crate::stats::BattleStats::from_cells(&seq::run_sequential(&g, &p, steps));
            for side in 0..2 {
                assert_eq!(
                    s.units[side] + s.destroyed[side] as usize,
                    initial.units[side],
                    "side {side} at step {steps}: {s:?}"
                );
            }
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let p = program(4, 6, 3);
        let g = p.terrain();
        let a = seq::run_sequential(&g, &p, 8);
        let b = seq::run_sequential(&g, &p, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn cost_scales_with_units() {
        let p = program(4, 6, 0);
        let ctx = ComputeCtx {
            iter: 1,
            phase: 0,
            rank: 0,
            num_nodes: 24,
        };
        let empty = HexCell::new();
        let mut busy = HexCell::new();
        for i in 0..10 {
            busy.red.push(Unit::new(i, 100, 10));
        }
        assert!(p.cost(0, &busy, &ctx) > p.cost(0, &empty, &ctx));
    }

    #[test]
    fn targeting_prefers_strongest_enemy_hex() {
        let p = program(4, 8, 0);
        // Cell 9 (r=1,c=1) with one red unit; blue in E neighbour (10) and
        // a weaker blue in the own cell? Use own-cell preference on tie.
        let mut own = HexCell::new();
        own.red.push(Unit::new(0, 100, 10));
        let mut east = HexCell::new();
        east.blue.push(Unit::new(1, 200, 5));
        let nbrs = [NeighborData {
            id: 10,
            data: &east,
        }];
        let out = p.targeting(9, &own, &nbrs);
        assert_eq!(out.fire[Side::Red.index()][Dir::E as usize], 10);
    }

    #[test]
    fn apply_damage_kills_weakest_first() {
        let mut cell = HexCell::new();
        cell.blue.push(Unit::new(1, 30, 1));
        cell.blue.push(Unit::new(2, 100, 1));
        apply_damage(&mut cell, Side::Blue, 40);
        assert_eq!(cell.blue.len(), 1);
        assert_eq!(cell.blue[0].id, 2);
        assert_eq!(cell.blue[0].strength, 90);
        assert_eq!(cell.destroyed[Side::Blue.index()], 1);
    }

    #[test]
    fn apply_damage_can_wipe_a_cell() {
        let mut cell = HexCell::new();
        cell.red.push(Unit::new(1, 10, 1));
        apply_damage(&mut cell, Side::Red, 1000);
        assert!(cell.red.is_empty());
        assert_eq!(cell.destroyed[Side::Red.index()], 1);
    }
}
