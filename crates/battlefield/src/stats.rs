//! Battle telemetry for tests, examples and the reproduction harness.

use crate::cell::{HexCell, Side};

/// Aggregate state of the battlefield at one instant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BattleStats {
    /// Live units per side (red, blue).
    pub units: [usize; 2],
    /// Remaining strength per side.
    pub strength: [u64; 2],
    /// Cumulative destroyed units per side.
    pub destroyed: [u32; 2],
    /// Cells holding at least one unit.
    pub occupied_cells: usize,
    /// Cells where both sides are present or adjacent load peaks — here:
    /// cells holding units of both sides.
    pub contact_cells: usize,
    /// Largest unit count in a single cell (the load hotspot).
    pub max_units_per_cell: usize,
}

impl BattleStats {
    /// Aggregate over a full battlefield snapshot.
    pub fn from_cells(cells: &[HexCell]) -> Self {
        let mut s = BattleStats::default();
        for cell in cells {
            for side in Side::BOTH {
                s.units[side.index()] += cell.units(side).len();
                s.strength[side.index()] += cell.strength(side);
                s.destroyed[side.index()] += cell.destroyed[side.index()];
            }
            if cell.occupied() {
                s.occupied_cells += 1;
            }
            if !cell.red.is_empty() && !cell.blue.is_empty() {
                s.contact_cells += 1;
            }
            s.max_units_per_cell = s.max_units_per_cell.max(cell.unit_count());
        }
        s
    }

    /// Total losses across both sides.
    pub fn total_destroyed(&self) -> u32 {
        self.destroyed[0] + self.destroyed[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::Unit;

    #[test]
    fn aggregates_over_cells() {
        let mut a = HexCell::new();
        a.red.push(Unit::new(0, 100, 10));
        a.red.push(Unit::new(1, 50, 5));
        a.destroyed = [1, 0];
        let mut b = HexCell::new();
        b.blue.push(Unit::new(2, 70, 7));
        let mut contact = HexCell::new();
        contact.red.push(Unit::new(3, 10, 1));
        contact.blue.push(Unit::new(4, 20, 2));
        let s = BattleStats::from_cells(&[a, b, contact, HexCell::new()]);
        assert_eq!(s.units, [3, 2]);
        assert_eq!(s.strength, [160, 90]);
        assert_eq!(s.destroyed, [1, 0]);
        assert_eq!(s.occupied_cells, 3);
        assert_eq!(s.contact_cells, 1);
        assert_eq!(s.max_units_per_cell, 2);
        assert_eq!(s.total_destroyed(), 1);
    }

    #[test]
    fn empty_battlefield() {
        let s = BattleStats::from_cells(&[]);
        assert_eq!(s, BattleStats::default());
    }
}
