//! # ic2-balance — dynamic load balancers for iC2mpi
//!
//! The platform periodically builds a *runtime processor graph*: node
//! weights are the execution times of the processors over the last window
//! of iterations, edge weights the communication volume between them
//! (estimated by communication-buffer lengths, thesis §4.3). A
//! [`DynamicBalancer`] inspects that graph and nominates busy → idle
//! migration pairs; the platform's task-migration phase then moves one task
//! per pair.
//!
//! Balancers are plug-ins (Goal 3): the thesis ships the
//! [`CentralizedHeuristic`] (a designated processor finds every processor
//! doing ≥ 25 % more work than *all* of its neighbours and pairs it with its
//! least-loaded neighbour); [`Diffusion`] is provided as an extension and
//! [`NoBalancer`] turns the phase off for static-partition baselines.

use std::fmt;

/// Runtime processor graph handed to a balancer.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Per-processor execution time (seconds) accumulated since the last
    /// balancing round — the node weights of the processor graph.
    pub times: Vec<f64>,
    /// Symmetric communication-volume matrix (shadow entries exchanged per
    /// iteration between each pair) — the edge weights. `edges[i][j] == 0`
    /// means the processors are not neighbours in the current partition.
    pub edges: Vec<Vec<u64>>,
}

impl LoadReport {
    /// Validate shape invariants; returns the number of processors.
    ///
    /// # Panics
    /// Panics if the matrix is not square, asymmetric, or has a nonzero
    /// diagonal.
    pub fn num_procs(&self) -> usize {
        let n = self.times.len();
        assert_eq!(self.edges.len(), n, "edge matrix row count");
        for (i, row) in self.edges.iter().enumerate() {
            assert_eq!(row.len(), n, "edge matrix column count");
            assert_eq!(row[i], 0, "diagonal must be zero");
            for (j, &e) in row.iter().enumerate() {
                assert_eq!(e, self.edges[j][i], "edge matrix must be symmetric");
            }
        }
        n
    }

    /// Neighbours of processor `p` in the runtime graph.
    pub fn neighbors(&self, p: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges[p]
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0)
            .map(|(j, _)| j)
    }
}

/// One planned migration: the busy processor will send a task to the idle
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationPair {
    /// Overloaded source processor.
    pub busy: u32,
    /// Underloaded destination processor (a runtime-graph neighbour of
    /// `busy`).
    pub idle: u32,
}

impl fmt::Display for MigrationPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.busy, self.idle)
    }
}

/// A dynamic load balancer plug-in.
pub trait DynamicBalancer {
    /// Short human-readable name used in experiment reports.
    fn name(&self) -> &'static str;

    /// Nominate migrations from the runtime processor graph. An empty plan
    /// means the load is considered balanced.
    fn plan(&mut self, report: &LoadReport) -> Vec<MigrationPair>;

    /// Serialize any internal state into a crash-recovery checkpoint.
    /// Stateless balancers (every balancer in this crate) keep the default
    /// empty encoding; stateful plug-ins must round-trip through
    /// [`DynamicBalancer::restore_state`] so rollback recovery can rewind
    /// them together with the rest of the platform.
    fn checkpoint_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restore internal state captured by
    /// [`DynamicBalancer::checkpoint_state`]. The default is a no-op.
    fn restore_state(&mut self, _state: &[u8]) {}
}

/// Never migrates; the "Static Partition" baseline in Figures 13–15/18–19.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBalancer;

impl DynamicBalancer for NoBalancer {
    fn name(&self) -> &'static str {
        "static"
    }
    fn plan(&mut self, _report: &LoadReport) -> Vec<MigrationPair> {
        Vec::new()
    }
}

/// The thesis's centralized heuristic (§4.3):
///
/// 1. a designated processor assembles the weighted processor graph;
/// 2. a processor doing at least `threshold` (default 25 %) more work than
///    **all** of its neighbours is *busy*;
/// 3. its least-loaded neighbour is the matching *idle* processor.
///
/// The busy/idle role rules of Table 1 fall out of the definition: a busy
/// processor can never simultaneously be idle (mutual ≥ 25 % dominance is
/// contradictory), which [`validate_pairs`] checks.
#[derive(Debug, Clone, Copy)]
pub struct CentralizedHeuristic {
    /// Relative-load threshold; 0.25 reproduces the thesis.
    pub threshold: f64,
}

impl Default for CentralizedHeuristic {
    fn default() -> Self {
        CentralizedHeuristic { threshold: 0.25 }
    }
}

impl DynamicBalancer for CentralizedHeuristic {
    fn name(&self) -> &'static str {
        "centralized-25pct"
    }

    fn plan(&mut self, report: &LoadReport) -> Vec<MigrationPair> {
        let n = report.num_procs();
        let mut pairs = Vec::new();
        for i in 0..n {
            let mut busy = true;
            let mut best_idle: Option<(f64, usize)> = None;
            let mut has_neighbor = false;
            for j in report.neighbors(i) {
                has_neighbor = true;
                let rel = relative_load(report.times[i], report.times[j]);
                if rel < self.threshold {
                    busy = false;
                    break;
                }
                // The idlest neighbour is the one `i` out-works the most.
                if best_idle.is_none_or(|(r, _)| rel > r) {
                    best_idle = Some((rel, j));
                }
            }
            if busy && has_neighbor {
                let (_, idle) = best_idle.expect("busy implies a neighbour");
                pairs.push(MigrationPair {
                    busy: i as u32,
                    idle: idle as u32,
                });
            }
        }
        debug_assert_eq!(validate_pairs(&pairs), Ok(()));
        pairs
    }
}

/// How much more work `a` does than `b`, as a fraction of `b`'s work
/// (the thesis's `relative_proc_load`, expressed as a ratio rather than a
/// percentage). Zero when `a <= b`; saturates when `b` did no work at all.
pub fn relative_load(a: f64, b: f64) -> f64 {
    if a <= b {
        return 0.0;
    }
    if b <= f64::EPSILON {
        return f64::INFINITY;
    }
    (a - b) / b
}

/// A neighbourhood-averaging (diffusion) balancer, provided as the kind of
/// third-party plug-in the thesis's §7 wants to study: processor `i`
/// nominates a migration to its least-loaded neighbour whenever its load
/// exceeds its neighbourhood average by `threshold`.
#[derive(Debug, Clone, Copy)]
pub struct Diffusion {
    /// Excess-over-neighbourhood-average fraction that triggers migration.
    pub threshold: f64,
}

impl Default for Diffusion {
    fn default() -> Self {
        Diffusion { threshold: 0.25 }
    }
}

impl DynamicBalancer for Diffusion {
    fn name(&self) -> &'static str {
        "diffusion"
    }

    fn plan(&mut self, report: &LoadReport) -> Vec<MigrationPair> {
        let n = report.num_procs();
        let mut pairs = Vec::new();
        for i in 0..n {
            let nbrs: Vec<usize> = report.neighbors(i).collect();
            if nbrs.is_empty() {
                continue;
            }
            let avg: f64 = nbrs.iter().map(|&j| report.times[j]).sum::<f64>() / nbrs.len() as f64;
            if relative_load(report.times[i], avg) < self.threshold {
                continue;
            }
            let idle = nbrs
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    report.times[a]
                        .partial_cmp(&report.times[b])
                        .expect("times must not be NaN")
                        .then(a.cmp(&b))
                })
                .expect("non-empty neighbourhood");
            // Only push work downhill.
            if report.times[idle] < report.times[i] {
                pairs.push(MigrationPair {
                    busy: i as u32,
                    idle: idle as u32,
                });
            }
        }
        pairs
    }
}

/// Check the Table-1 role compatibility rules: no processor may be busy in
/// one pair and idle in another, and each busy processor sends at most one
/// task per round (the thesis's single-task-per-pair design, §7).
pub fn validate_pairs(pairs: &[MigrationPair]) -> Result<(), String> {
    let mut busies = std::collections::HashSet::new();
    let mut idles = std::collections::HashSet::new();
    for p in pairs {
        if p.busy == p.idle {
            return Err(format!("pair {p} sends to itself"));
        }
        if !busies.insert(p.busy) {
            return Err(format!("processor {} is busy in two pairs", p.busy));
        }
        idles.insert(p.idle);
    }
    if let Some(conflict) = busies.intersection(&idles).next() {
        return Err(format!(
            "processor {conflict} is both busy and idle (violates Table 1)"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A line of 4 processors with uniform communication.
    fn line_report(times: [f64; 4]) -> LoadReport {
        let mut edges = vec![vec![0u64; 4]; 4];
        for i in 0..3 {
            edges[i][i + 1] = 10;
            edges[i + 1][i] = 10;
        }
        LoadReport {
            times: times.to_vec(),
            edges,
        }
    }

    #[test]
    fn balanced_load_yields_no_pairs() {
        let mut b = CentralizedHeuristic::default();
        let pairs = b.plan(&line_report([1.0, 1.0, 1.0, 1.0]));
        assert!(pairs.is_empty());
    }

    #[test]
    fn below_threshold_imbalance_is_tolerated() {
        let mut b = CentralizedHeuristic::default();
        // 20% more than the neighbours: below the 25% trigger.
        let pairs = b.plan(&line_report([1.2, 1.0, 1.0, 1.0]));
        assert!(pairs.is_empty());
    }

    #[test]
    fn busy_processor_pairs_with_least_loaded_neighbor() {
        let mut b = CentralizedHeuristic::default();
        // Proc 1 does 2.0; neighbours 0 (1.0) and 2 (0.5): both >25% less.
        // (Proc 3 also dominates proc 2 and forms a second pair.)
        let pairs = b.plan(&line_report([1.0, 2.0, 0.5, 1.0]));
        assert!(
            pairs.contains(&MigrationPair { busy: 1, idle: 2 }),
            "least-loaded neighbour must win: {pairs:?}"
        );
        assert_eq!(pairs.len(), 2);
        assert!(validate_pairs(&pairs).is_ok());
    }

    #[test]
    fn dominance_must_hold_over_all_neighbors() {
        let mut b = CentralizedHeuristic::default();
        // Proc 1 beats proc 2 by a lot but proc 0 only by 11%: not busy.
        let pairs = b.plan(&line_report([1.8, 2.0, 0.5, 1.0]));
        assert!(pairs.iter().all(|p| p.busy != 1), "{pairs:?}");
    }

    #[test]
    fn multiple_independent_pairs_form() {
        // 6-proc ring with two hot spots.
        let n = 6;
        let mut edges = vec![vec![0u64; n]; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let j = (i + 1) % n;
            edges[i][j] = 5;
            edges[j][i] = 5;
        }
        let report = LoadReport {
            times: vec![3.0, 1.0, 1.0, 3.0, 1.0, 1.0],
            edges,
        };
        let mut b = CentralizedHeuristic::default();
        let pairs = b.plan(&report);
        assert_eq!(pairs.len(), 2);
        assert!(validate_pairs(&pairs).is_ok());
        let busies: Vec<u32> = pairs.iter().map(|p| p.busy).collect();
        assert!(busies.contains(&0) && busies.contains(&3));
    }

    #[test]
    fn zero_time_neighbors_count_as_infinitely_idle() {
        let mut b = CentralizedHeuristic::default();
        let pairs = b.plan(&line_report([1.0, 0.0, 0.0, 0.0]));
        assert_eq!(pairs, vec![MigrationPair { busy: 0, idle: 1 }]);
    }

    #[test]
    fn relative_load_edge_cases() {
        assert_eq!(relative_load(1.0, 2.0), 0.0);
        assert_eq!(relative_load(2.0, 1.0), 1.0);
        assert!((relative_load(1.25, 1.0) - 0.25).abs() < 1e-12);
        assert!(relative_load(1.0, 0.0).is_infinite());
        assert_eq!(relative_load(0.0, 0.0), 0.0);
    }

    #[test]
    fn no_balancer_never_plans() {
        let mut b = NoBalancer;
        assert!(b.plan(&line_report([9.0, 0.1, 0.1, 0.1])).is_empty());
    }

    #[test]
    fn diffusion_pushes_downhill_only() {
        let mut b = Diffusion::default();
        let pairs = b.plan(&line_report([2.0, 1.0, 1.0, 1.0]));
        assert_eq!(pairs, vec![MigrationPair { busy: 0, idle: 1 }]);
        // An idle processor surrounded by busier ones must not send.
        let pairs = b.plan(&line_report([2.0, 0.1, 2.0, 2.0]));
        assert!(pairs.iter().all(|p| p.busy != 1));
    }

    #[test]
    fn validate_pairs_catches_table1_violations() {
        assert!(validate_pairs(&[MigrationPair { busy: 0, idle: 1 }]).is_ok());
        assert!(validate_pairs(&[MigrationPair { busy: 0, idle: 0 }]).is_err());
        assert!(validate_pairs(&[
            MigrationPair { busy: 0, idle: 1 },
            MigrationPair { busy: 0, idle: 2 }
        ])
        .is_err());
        assert!(validate_pairs(&[
            MigrationPair { busy: 0, idle: 1 },
            MigrationPair { busy: 1, idle: 2 }
        ])
        .is_err());
        // Shared idle is legal (thesis Figure 10's P0).
        assert!(validate_pairs(&[
            MigrationPair { busy: 0, idle: 2 },
            MigrationPair { busy: 1, idle: 2 }
        ])
        .is_ok());
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn malformed_report_panics() {
        let report = LoadReport {
            times: vec![1.0, 1.0],
            edges: vec![vec![0, 1], vec![0, 0]],
        };
        report.num_procs();
    }
}
