//! Out-of-core paging: a fixed-budget buffer pool over the virtual disk.
//!
//! ROADMAP item 2: partitions that outgrow RAM. The paged [`NodeStore`]
//! keeps at most `budget` hash buckets of its [`NodeTable`] resident; the
//! rest live on the rank's private [`mpisim::VirtualDisk`] as checksummed
//! *pages* (one page = one hash bucket, entries in ascending id order,
//! staged pending values included so an eviction mid-iteration loses
//! nothing). Every piece of cleverness a real storage engine owes its
//! block device lives here:
//!
//! * **Checksummed page format.** A page blob is an 8-byte
//!   [`mpisim::frame_checksum`] keyed by `(rank, page, version)` followed
//!   by the wire encoding of the entries. The key is slot-independent, so
//!   the shadow copy verifies with the same arithmetic as the primary.
//! * **Shadow-paging commit.** A commit writes the new version to the
//!   *inactive* slot, read-back-verifies it (the only way to catch a torn
//!   write), and only then flips the active-slot pointer — a torn or
//!   interrupted write can never expose a half-written page. The verified
//!   blob is then mirrored to the other slot (best effort), so steady
//!   state holds two independently-decaying copies of every page.
//! * **Bounded retry with exponential backoff.** Transient I/O errors and
//!   disk-full rejections retry up to [`MAX_IO_RETRIES`] times; every
//!   retry charges `disk_retry_backoff × 2^attempt` virtual seconds. Each
//!   commit round allocates a *fresh* monotonic version, because read rot
//!   is sticky per stored version — retrying the same version could never
//!   converge.
//! * **Escalation, never a wrong answer.** A page whose every copy fails
//!   verification latches the pager's *damage* flag and serves an empty
//!   bucket; compute skips the missing entries (the iteration is garbage),
//!   the flag rides the next agreed control word, and every rank rolls
//!   back to the last verified checkpoint together. Versions are never
//!   rolled back and the disk's op counter survives the purge, so replay
//!   makes fresh fault decisions and converges whenever `p < 1`. A run
//!   whose damage persists across [`crate::checkpoint`]'s consecutive-
//!   failure limit ends in the typed
//!   [`crate::error::PlatformError::UnrecoverableState`].
//!
//! Determinism contract: pool state is a pure function of the access
//! sequence, fault decisions are pure hashes, and all I/O plus backoff
//! time accumulates in a pending-seconds account the platform drains into
//! the virtual clock at fixed points ([`crate::timers::Phase::Storage`]).
//! Same seed, same schedule, bit-identical `total_time`.

use crate::hashtab::NodeTable;
use ic2_graph::NodeId;
use mpisim::{frame_checksum, DiskCounters, DiskTiming, FaultPlan, VirtualDisk, Wire};
use std::collections::BTreeSet;

/// Checksum domain for page blobs (distinct from every wire/audit seed).
const PAGE_SEED: u64 = 0x8cb9_2ba7_2f3d_8dd7;

/// Bounded-retry limit for one logical disk operation (per slot).
const MAX_IO_RETRIES: u32 = 5;

/// Pluggable page-replacement policy for the buffer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the page resident longest, ignoring accesses.
    Fifo,
    /// Evict the least-recently-used page.
    Lru,
    /// Second-chance clock: a hand sweeps the frames, clearing reference
    /// bits; the first unreferenced page is evicted.
    Clock,
    /// SIEVE (NSDI '24): FIFO order with a retention hand moving from the
    /// tail toward the head; visited pages are retained once and the hand
    /// does not move survivors, making it both simpler and lazier than
    /// Clock.
    Sieve,
}

/// Out-of-core paging configuration for [`crate::RunConfig::with_paging`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageConfig {
    /// Maximum resident pages (hash buckets) per rank. Whole-table phases
    /// (checkpoint snapshots, migration, restore, final gather) may exceed
    /// the budget transiently and spill back down afterwards.
    pub budget: usize,
    /// Replacement policy.
    pub policy: EvictionPolicy,
}

impl PageConfig {
    /// A paging configuration with the given budget and policy.
    pub fn new(budget: usize, policy: EvictionPolicy) -> Self {
        PageConfig { budget, policy }
    }
}

/// Platform-side (detection/recovery) paging counters; the injection-side
/// tallies live in [`mpisim::DiskCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCounters {
    /// Pages faulted in from disk.
    pub page_faults: u64,
    /// Pages evicted to enforce the budget.
    pub pages_evicted: u64,
    /// Disk operations retried after a transient error, a disk-full
    /// rejection, or a failed read-back verification.
    pub disk_retries: u64,
    /// Acknowledged writes whose read-back verification failed — torn
    /// writes the shadow-paging commit caught before the flip.
    pub torn_writes_detected: u64,
    /// Pages whose primary copy failed verification but whose shadow copy
    /// was intact (re-marked dirty so the next eviction recommits them).
    pub pages_recovered: u64,
}

impl PageCounters {
    /// Element-wise sum.
    pub fn merge(&mut self, o: &PageCounters) {
        self.page_faults += o.page_faults;
        self.pages_evicted += o.pages_evicted;
        self.disk_retries += o.disk_retries;
        self.torn_writes_detected += o.torn_writes_detected;
        self.pages_recovered += o.pages_recovered;
    }
}

/// A fixed-budget frame pool tracking which pages are resident and, per
/// the configured [`EvictionPolicy`], which to evict next. Pages are dense
/// small integers (hash-bucket indices), so membership is an array test.
/// Entirely deterministic: same admit/touch/evict sequence, same victims.
#[derive(Debug, Clone)]
pub struct BufferPool {
    policy: EvictionPolicy,
    budget: usize,
    /// Frames in policy order. FIFO/LRU: front = next victim. Clock: ring
    /// in admission order. SIEVE: front = head (newest), back = tail.
    order: Vec<usize>,
    resident: Vec<bool>,
    /// Clock reference bits / SIEVE visited bits, indexed by page.
    marked: Vec<bool>,
    hand: usize,
}

impl BufferPool {
    /// A pool holding at most `budget` pages.
    ///
    /// # Panics
    /// Panics if `budget` is zero.
    pub fn new(policy: EvictionPolicy, budget: usize) -> Self {
        assert!(budget > 0, "buffer pool needs a budget of at least 1 page");
        BufferPool {
            policy,
            budget,
            order: Vec::new(),
            resident: Vec::new(),
            marked: Vec::new(),
            hand: usize::MAX,
        }
    }

    /// Resident page count.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no page is resident.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The configured budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Whether more pages are resident than the budget allows.
    pub fn over_budget(&self) -> bool {
        self.order.len() > self.budget
    }

    /// Whether `page` is resident.
    pub fn contains(&self, page: usize) -> bool {
        self.resident.get(page).copied().unwrap_or(false)
    }

    fn grow_to(&mut self, page: usize) {
        if page >= self.resident.len() {
            self.resident.resize(page + 1, false);
            self.marked.resize(page + 1, false);
        }
    }

    /// Admit a non-resident page (caller faults it in).
    ///
    /// # Panics
    /// Panics if `page` is already resident.
    pub fn admit(&mut self, page: usize) {
        self.grow_to(page);
        assert!(!self.resident[page], "page {page} admitted twice");
        self.resident[page] = true;
        self.marked[page] = false;
        match self.policy {
            EvictionPolicy::Sieve => {
                // SIEVE inserts at the head; the tail-ward hand index
                // shifts by one to keep pointing at the same frame.
                self.order.insert(0, page);
                if self.hand != usize::MAX {
                    self.hand += 1;
                }
            }
            _ => self.order.push(page),
        }
    }

    /// Record an access to a resident page.
    pub fn touch(&mut self, page: usize) {
        debug_assert!(self.contains(page), "touch of non-resident page {page}");
        match self.policy {
            EvictionPolicy::Fifo => {}
            EvictionPolicy::Lru => {
                // Move to the back of the recency list.
                if let Some(pos) = self.order.iter().position(|&p| p == page) {
                    self.order.remove(pos);
                    self.order.push(page);
                }
            }
            EvictionPolicy::Clock | EvictionPolicy::Sieve => self.marked[page] = true,
        }
    }

    /// Choose and remove the next victim, never one in `pinned`. `None`
    /// when every resident page is pinned.
    pub fn evict(&mut self, pinned: &BTreeSet<usize>) -> Option<usize> {
        if !self.order.iter().any(|p| !pinned.contains(p)) {
            return None;
        }
        match self.policy {
            EvictionPolicy::Fifo | EvictionPolicy::Lru => {
                let pos = self.order.iter().position(|p| !pinned.contains(p))?;
                let page = self.order.remove(pos);
                self.resident[page] = false;
                Some(page)
            }
            EvictionPolicy::Clock => {
                if self.hand >= self.order.len() {
                    self.hand = 0;
                }
                loop {
                    let page = self.order[self.hand];
                    if !pinned.contains(&page) && !self.marked[page] {
                        self.order.remove(self.hand);
                        self.resident[page] = false;
                        if self.hand >= self.order.len() {
                            self.hand = 0;
                        }
                        return Some(page);
                    }
                    if !pinned.contains(&page) {
                        self.marked[page] = false;
                    }
                    self.hand = (self.hand + 1) % self.order.len();
                }
            }
            EvictionPolicy::Sieve => {
                if self.hand >= self.order.len() {
                    self.hand = self.order.len() - 1;
                }
                loop {
                    let page = self.order[self.hand];
                    if !pinned.contains(&page) && !self.marked[page] {
                        self.order.remove(self.hand);
                        self.resident[page] = false;
                        self.hand = if self.hand == 0 {
                            self.order.len().saturating_sub(1)
                        } else {
                            self.hand - 1
                        };
                        return Some(page);
                    }
                    if !pinned.contains(&page) {
                        self.marked[page] = false;
                    }
                    self.hand = if self.hand == 0 {
                        self.order.len() - 1
                    } else {
                        self.hand - 1
                    };
                }
            }
        }
    }

    /// Resident pages in ascending order (diagnostics and tests).
    pub fn resident_pages(&self) -> Vec<usize> {
        let mut pages = self.order.clone();
        pages.sort_unstable();
        pages
    }
}

/// What a page read found.
enum PageRead<D> {
    /// A verified copy (`from_shadow` says the primary failed and the
    /// shadow slot saved it).
    Good {
        entries: Vec<(NodeId, D, Option<D>)>,
        from_shadow: bool,
    },
    /// Every copy failed verification after retries.
    Lost,
}

/// The paging engine one rank's [`crate::store::NodeStore`] owns: buffer
/// pool, virtual disk, per-page version/slot directory, and the dirty sets
/// that drive write-back and incremental checkpoints. Deliberately not
/// generic over the data type — only its methods are — so the store can
/// hold it untyped.
#[derive(Debug, Clone)]
pub(crate) struct Pager {
    disk: VirtualDisk,
    rank: usize,
    nbuckets: usize,
    pool: BufferPool,
    /// Active slot (0/1) per page: which copy a read trusts first.
    active: Vec<u8>,
    /// Last committed version per page (0 = never committed).
    version: Vec<u64>,
    /// Monotonic version allocator — never rolled back, so replayed
    /// commits make fresh fault decisions.
    next_version: u64,
    /// Page has a committed disk image.
    on_disk: Vec<bool>,
    /// Resident page differs from its disk image: eviction must write.
    disk_dirty: Vec<bool>,
    /// Pages mutated since the last committed checkpoint (drives the
    /// incremental page-diff mirror).
    ckpt_dirty: BTreeSet<usize>,
    /// Pages holding staged pending values this phase.
    staged: BTreeSet<usize>,
    /// Latched when any page lost every verified copy (or a commit could
    /// not secure one): the agreed signal that forces a rollback.
    damaged: bool,
    /// Virtual backoff seconds awaiting a drain (disk transfer seconds
    /// accumulate inside [`VirtualDisk`] and drain together).
    pending: f64,
    backoff: f64,
    counters: PageCounters,
}

impl Pager {
    /// A pager for `rank` over a table of `nbuckets` buckets, all of which
    /// start resident (the caller spills down to budget afterwards).
    pub(crate) fn new(
        rank: usize,
        nbuckets: usize,
        cfg: &PageConfig,
        plan: FaultPlan,
        timing: DiskTiming,
        backoff: f64,
    ) -> Self {
        let mut pool = BufferPool::new(cfg.policy, cfg.budget);
        for b in 0..nbuckets {
            pool.admit(b);
        }
        Pager {
            disk: VirtualDisk::new(rank, plan, timing),
            rank,
            nbuckets,
            pool,
            active: vec![0; nbuckets],
            version: vec![0; nbuckets],
            next_version: 1,
            on_disk: vec![false; nbuckets],
            disk_dirty: vec![false; nbuckets],
            ckpt_dirty: BTreeSet::new(),
            staged: BTreeSet::new(),
            damaged: false,
            pending: 0.0,
            backoff,
            counters: PageCounters::default(),
        }
    }

    /// Whether `page` is resident in the pool.
    pub(crate) fn is_resident(&self, page: usize) -> bool {
        self.pool.contains(page)
    }

    /// The damage latch: some page lost every verified copy since the last
    /// reset. Cleared only by [`Pager::reset_after_restore`].
    pub(crate) fn damaged(&self) -> bool {
        self.damaged
    }

    /// Platform-side counters.
    pub(crate) fn counters(&self) -> PageCounters {
        self.counters
    }

    /// Injection-side counters from the underlying disk.
    pub(crate) fn disk_counters(&self) -> DiskCounters {
        self.disk.counters()
    }

    /// Drain accumulated virtual I/O + backoff seconds; the caller charges
    /// them to the clock under [`crate::timers::Phase::Storage`].
    pub(crate) fn take_seconds(&mut self) -> f64 {
        self.disk.take_seconds() + std::mem::take(&mut self.pending)
    }

    /// Record a current-value mutation of `page` (shadow unpack, migration
    /// surgery): both write-back and the next checkpoint must see it.
    pub(crate) fn note_write(&mut self, page: usize) {
        self.disk_dirty[page] = true;
        self.ckpt_dirty.insert(page);
    }

    /// Record a staged pending value in `page` (compute wrote it); the
    /// promote pass visits exactly these pages.
    pub(crate) fn note_staged(&mut self, page: usize) {
        self.staged.insert(page);
        self.disk_dirty[page] = true;
        self.ckpt_dirty.insert(page);
    }

    /// Pages mutated since the last committed checkpoint, ascending.
    pub(crate) fn ckpt_dirty_pages(&self) -> Vec<usize> {
        self.ckpt_dirty.iter().copied().collect()
    }

    /// A checkpoint carrying the current dirty set committed.
    pub(crate) fn clear_ckpt_dirty(&mut self) {
        self.ckpt_dirty.clear();
    }

    /// Make the pages holding `ids` (and nothing less) resident, then
    /// evict back down to budget sparing exactly those pages. The per-node
    /// hot path: one call pins a node's bucket and its neighbours'.
    pub(crate) fn ensure<D>(
        &mut self,
        table: &mut NodeTable<D>,
        ids: impl IntoIterator<Item = NodeId>,
    ) where
        D: Clone + Wire,
    {
        let needed: BTreeSet<usize> = ids.into_iter().map(|id| table.bucket_index(id)).collect();
        for &b in &needed {
            if self.pool.contains(b) {
                self.pool.touch(b);
            } else {
                self.fault_in(table, b);
            }
        }
        self.evict_to_budget(table, &needed);
    }

    /// Promote staged pending values page by page, faulting each staged
    /// page in as needed, calling `f(id, &new_current)` per promotion.
    pub(crate) fn promote<D>(
        &mut self,
        table: &mut NodeTable<D>,
        mut f: impl FnMut(NodeId, &D),
    ) -> usize
    where
        D: Clone + Wire,
    {
        let staged = std::mem::take(&mut self.staged);
        let mut promoted = 0;
        for &b in &staged {
            let pin = BTreeSet::from([b]);
            if self.pool.contains(b) {
                self.pool.touch(b);
            } else {
                self.fault_in(table, b);
            }
            let n = table.promote_bucket_with(b, &mut f);
            if n > 0 {
                // The promote mutated the bucket in RAM; a mid-iteration
                // eviction may have written (and un-dirtied) the staged
                // image, so re-mark or the stale disk copy wins.
                self.disk_dirty[b] = true;
            }
            promoted += n;
            self.evict_to_budget(table, &pin);
        }
        promoted
    }

    /// Fault in every non-resident page — the bulk-phase prelude
    /// (checkpoint snapshot, migration, audit, gather). The pool runs over
    /// budget until [`Pager::spill_to_budget`].
    pub(crate) fn page_in_all<D>(&mut self, table: &mut NodeTable<D>)
    where
        D: Clone + Wire,
    {
        for b in 0..self.nbuckets {
            if !self.pool.contains(b) {
                self.fault_in(table, b);
            }
        }
    }

    /// Evict back down to the budget with nothing pinned.
    pub(crate) fn spill_to_budget<D>(&mut self, table: &mut NodeTable<D>)
    where
        D: Clone + Wire,
    {
        self.evict_to_budget(table, &BTreeSet::new());
    }

    /// Conservatively mark every page dirty — after bulk table surgery
    /// (migration, evacuation) whose writes bypassed the pager.
    pub(crate) fn mark_all_dirty(&mut self) {
        for b in 0..self.nbuckets {
            self.disk_dirty[b] = true;
            self.ckpt_dirty.insert(b);
        }
    }

    /// Reset after a checkpoint restore rebuilt the table wholesale: purge
    /// the disk (the op counter survives, so replay decides faults
    /// afresh), mark everything resident and dirty, clear the damage
    /// latch. The caller spills back down to budget afterwards.
    pub(crate) fn reset_after_restore(&mut self) {
        self.disk.purge();
        let (policy, budget) = (self.pool.policy, self.pool.budget);
        let mut pool = BufferPool::new(policy, budget);
        for b in 0..self.nbuckets {
            pool.admit(b);
        }
        self.pool = pool;
        self.on_disk = vec![false; self.nbuckets];
        self.disk_dirty = vec![true; self.nbuckets];
        self.ckpt_dirty = (0..self.nbuckets).collect();
        self.staged.clear();
        self.damaged = false;
    }

    fn fault_in<D>(&mut self, table: &mut NodeTable<D>, b: usize)
    where
        D: Clone + Wire,
    {
        self.counters.page_faults += 1;
        match self.read_page::<D>(b) {
            PageRead::Good {
                entries,
                from_shadow,
            } => {
                table.install_bucket(b, entries);
                if from_shadow {
                    // The primary copy is gone: re-mark dirty so the next
                    // eviction recommits a fresh pair of verified copies.
                    self.counters.pages_recovered += 1;
                    self.disk_dirty[b] = true;
                }
            }
            PageRead::Lost => {
                // Serve the empty bucket; compute skips the missing
                // entries and the damage latch forces a rollback at the
                // next agreed boundary.
                self.damaged = true;
            }
        }
        self.pool.admit(b);
    }

    fn evict_to_budget<D>(&mut self, table: &mut NodeTable<D>, pinned: &BTreeSet<usize>)
    where
        D: Clone + Wire,
    {
        // Bounded: a commit failure re-admits its page, so without the
        // attempt cap a wholly-failing disk would spin here forever.
        let mut attempts = self.pool.len() + 1;
        while self.pool.len() > self.pool.budget && attempts > 0 {
            if !self.evict_one(table, pinned) {
                attempts -= 1;
            }
        }
    }

    fn evict_one<D>(&mut self, table: &mut NodeTable<D>, pinned: &BTreeSet<usize>) -> bool
    where
        D: Clone + Wire,
    {
        let Some(b) = self.pool.evict(pinned) else {
            return false;
        };
        let entries = table.take_bucket(b);
        if self.disk_dirty[b] || !self.on_disk[b] {
            if self.write_page(b, &entries) {
                self.disk_dirty[b] = false;
                self.on_disk[b] = true;
            } else {
                // No verified copy could be secured: keep the page in RAM
                // (over budget beats data loss) and latch damage so the
                // platform escalates to rollback.
                table.install_bucket(b, entries);
                self.pool.admit(b);
                self.damaged = true;
                return false;
            }
        }
        self.counters.pages_evicted += 1;
        true
    }

    fn blob<D: Wire + Clone>(
        &self,
        b: usize,
        version: u64,
        entries: &[(NodeId, D, Option<D>)],
    ) -> Vec<u8> {
        let payload = entries.to_vec().to_bytes();
        let sum = frame_checksum(PAGE_SEED, self.rank, b as i64, version, &payload);
        let mut blob = sum.to_le_bytes().to_vec();
        blob.extend_from_slice(&payload);
        blob
    }

    fn verify(&self, b: usize, version: u64, blob: &[u8]) -> bool {
        if blob.len() < 8 {
            return false;
        }
        let (sum, payload) = blob.split_at(8);
        let expect = frame_checksum(PAGE_SEED, self.rank, b as i64, version, payload);
        u64::from_le_bytes(sum.try_into().expect("8-byte checksum prefix")) == expect
    }

    /// Shadow-paging commit of `entries` as the new content of page `b`.
    /// Returns false when no verified copy could be secured after retries.
    fn write_page<D>(&mut self, b: usize, entries: &[(NodeId, D, Option<D>)]) -> bool
    where
        D: Clone + Wire,
    {
        for round in 0..=MAX_IO_RETRIES {
            // A fresh version every round: read rot is sticky per stored
            // version, so re-trying a failed version could never converge.
            let v = self.next_version;
            self.next_version += 1;
            let target = 1 - self.active[b];
            let blob = self.blob(b, v, entries);
            if self.disk.write(b as u64, target as u64, v, &blob).is_err() {
                self.retry_backoff(round);
                continue;
            }
            // Read-back verification before the pointer flip: the only
            // way an acknowledged-but-torn write can be caught.
            match self.read_back(b, target, v, &blob) {
                Some(true) => {
                    self.active[b] = target;
                    self.version[b] = v;
                    self.mirror(b, v, &blob);
                    return true;
                }
                Some(false) => {
                    self.counters.torn_writes_detected += 1;
                    self.retry_backoff(round);
                }
                None => self.retry_backoff(round),
            }
        }
        false
    }

    /// Re-read a just-written slot, comparing raw bytes. `Some(ok)` when a
    /// read succeeded, `None` when transient errors exhausted the retries.
    fn read_back(&mut self, b: usize, slot: u8, version: u64, blob: &[u8]) -> Option<bool> {
        for attempt in 0..=MAX_IO_RETRIES {
            match self.disk.read(b as u64, slot as u64) {
                Ok(Some((v, bytes))) => return Some(v == version && bytes == blob),
                Ok(None) => return Some(false),
                Err(_) => self.retry_backoff(attempt),
            }
        }
        None
    }

    /// Best-effort copy of a committed blob onto the other slot, verified,
    /// so the page ends the commit with two independent copies.
    fn mirror(&mut self, b: usize, version: u64, blob: &[u8]) {
        let other = 1 - self.active[b];
        for attempt in 0..=MAX_IO_RETRIES {
            if self
                .disk
                .write(b as u64, other as u64, version, blob)
                .is_err()
            {
                self.retry_backoff(attempt);
                continue;
            }
            match self.read_back(b, other, version, blob) {
                Some(true) => return,
                _ => self.retry_backoff(attempt),
            }
        }
        // The active copy is verified; a page with one copy merely loses
        // its recovery margin.
    }

    fn retry_backoff(&mut self, attempt: u32) {
        self.counters.disk_retries += 1;
        self.pending += self.backoff * (1u64 << attempt.min(10)) as f64;
    }

    /// Read and verify page `b`, escalating primary → shadow slot.
    fn read_page<D>(&mut self, b: usize) -> PageRead<D>
    where
        D: Clone + Wire,
    {
        let expect = self.version[b];
        if expect == 0 || !self.on_disk[b] {
            // Never committed: the page is genuinely empty.
            return PageRead::Good {
                entries: Vec::new(),
                from_shadow: false,
            };
        }
        for (nth, slot) in [self.active[b], 1 - self.active[b]].into_iter().enumerate() {
            if let Some(entries) = self.read_slot::<D>(b, slot, expect) {
                return PageRead::Good {
                    entries,
                    from_shadow: nth == 1,
                };
            }
        }
        PageRead::Lost
    }

    /// One slot's verified entries, or `None` (wrong version, checksum
    /// failure, undecodable payload, or transient errors past the retry
    /// budget).
    fn read_slot<D>(
        &mut self,
        b: usize,
        slot: u8,
        expect: u64,
    ) -> Option<Vec<(NodeId, D, Option<D>)>>
    where
        D: Clone + Wire,
    {
        for attempt in 0..=MAX_IO_RETRIES {
            match self.disk.read(b as u64, slot as u64) {
                Ok(Some((v, bytes))) => {
                    if v != expect || !self.verify(b, expect, &bytes) {
                        // Stale or rotten — and rot is sticky, so another
                        // attempt on this slot cannot help.
                        return None;
                    }
                    return Vec::<(NodeId, D, Option<D>)>::from_bytes(&bytes[8..]).ok();
                }
                Ok(None) => return None,
                Err(_) => self.retry_backoff(attempt),
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(pool: &mut BufferPool, accesses: &[usize]) -> (u64, u64) {
        let (mut hits, mut misses) = (0u64, 0u64);
        let none = BTreeSet::new();
        for &p in accesses {
            if pool.contains(p) {
                hits += 1;
                pool.touch(p);
            } else {
                misses += 1;
                if pool.len() >= pool.budget() {
                    pool.evict(&none).expect("nothing pinned");
                }
                pool.admit(p);
            }
            assert!(pool.len() <= pool.budget(), "budget invariant violated");
        }
        (hits, misses)
    }

    #[test]
    fn fifo_evicts_in_admission_order() {
        let mut pool = BufferPool::new(EvictionPolicy::Fifo, 3);
        for p in [1, 2, 3] {
            pool.admit(p);
        }
        pool.touch(1); // FIFO ignores accesses
        let none = BTreeSet::new();
        assert_eq!(pool.evict(&none), Some(1));
        assert_eq!(pool.evict(&none), Some(2));
        assert!(!pool.contains(1));
        assert!(pool.contains(3));
    }

    #[test]
    fn lru_protects_recently_used() {
        let mut pool = BufferPool::new(EvictionPolicy::Lru, 3);
        for p in [1, 2, 3] {
            pool.admit(p);
        }
        pool.touch(1);
        let none = BTreeSet::new();
        assert_eq!(pool.evict(&none), Some(2), "1 was touched, 2 is oldest");
    }

    #[test]
    fn clock_second_chance_spares_referenced_pages() {
        let mut pool = BufferPool::new(EvictionPolicy::Clock, 3);
        for p in [1, 2, 3] {
            pool.admit(p);
        }
        pool.touch(1);
        let none = BTreeSet::new();
        // Hand passes 1 (referenced: cleared, spared) and lands on 2.
        assert_eq!(pool.evict(&none), Some(2));
        // 1's bit is now clear; the hand continues from 3.
        assert_eq!(pool.evict(&none), Some(3));
    }

    #[test]
    fn sieve_retains_visited_pages() {
        let mut pool = BufferPool::new(EvictionPolicy::Sieve, 3);
        for p in [1, 2, 3] {
            pool.admit(p);
        }
        pool.touch(1);
        let none = BTreeSet::new();
        // Tail-ward hand: 1 is oldest (tail) but visited — retained; the
        // next unvisited tail-ward page is 2.
        assert_eq!(pool.evict(&none), Some(2));
    }

    #[test]
    fn pinned_pages_are_never_victims() {
        for policy in [
            EvictionPolicy::Fifo,
            EvictionPolicy::Lru,
            EvictionPolicy::Clock,
            EvictionPolicy::Sieve,
        ] {
            let mut pool = BufferPool::new(policy, 2);
            pool.admit(7);
            pool.admit(9);
            let pinned: BTreeSet<usize> = [7, 9].into();
            assert_eq!(pool.evict(&pinned), None, "{policy:?} evicted a pin");
            let pinned: BTreeSet<usize> = [7].into();
            assert_eq!(pool.evict(&pinned), Some(9), "{policy:?}");
        }
    }

    #[test]
    fn eviction_sequences_are_deterministic() {
        let accesses: Vec<usize> = (0..400).map(|i| (i * 7 + i / 13) % 23).collect();
        for policy in [
            EvictionPolicy::Fifo,
            EvictionPolicy::Lru,
            EvictionPolicy::Clock,
            EvictionPolicy::Sieve,
        ] {
            let mut a = BufferPool::new(policy, 8);
            let mut b = BufferPool::new(policy, 8);
            let ra = drive(&mut a, &accesses);
            let rb = drive(&mut b, &accesses);
            assert_eq!(ra, rb, "{policy:?} hit counts diverged");
            assert_eq!(
                a.resident_pages(),
                b.resident_pages(),
                "{policy:?} resident sets diverged"
            );
        }
    }

    #[test]
    fn clock_and_sieve_beat_fifo_on_scan_with_hot_pages() {
        // A looping scan over 16 cold pages interleaved with two hot pages
        // (90% of the value): reference bits keep the hot pages resident,
        // FIFO flushes them with the scan.
        let mut accesses = Vec::new();
        for round in 0..60 {
            for cold in 0..16usize {
                accesses.push(100); // hot
                accesses.push(20 + cold);
                accesses.push(101); // hot
            }
            let _ = round;
        }
        let run = |policy| {
            let mut pool = BufferPool::new(policy, 4);
            drive(&mut pool, &accesses).0
        };
        let fifo = run(EvictionPolicy::Fifo);
        let clock = run(EvictionPolicy::Clock);
        let sieve = run(EvictionPolicy::Sieve);
        assert!(
            clock > fifo,
            "clock ({clock} hits) must beat fifo ({fifo} hits)"
        );
        assert!(
            sieve > fifo,
            "sieve ({sieve} hits) must beat fifo ({fifo} hits)"
        );
    }
}
