//! The platform driver: system flow of control (thesis Figure 6).

use crate::costs::CostModel;
use crate::error::PlatformError;
use crate::exchange;
pub use crate::exchange::ExchangeMode;
use crate::imbalance::StragglerDetector;
use crate::migrate;
use crate::paging::{EvictionPolicy, PageConfig, PageCounters};
use crate::program::{ComputeCtx, NodeProgram};
use crate::store::NodeStore;
use crate::timers::{Phase, PhaseTimers};
use ic2_balance::DynamicBalancer;
use ic2_graph::{Graph, Partition};
use ic2_partition::StaticPartitioner;
use mpisim::trace::{RankTrace, TraceCollector, ITERATION_SPAN};
use mpisim::{ArgValue, CommStats, FaultStats, Rank, World};
use std::sync::Arc;

/// How iterations are synchronised across ranks.
///
/// The split the policy leans on already exists in every
/// [`NodeStore`]: *interior* nodes (`internal`) have no remote
/// neighbours, *boundary* nodes (`peripheral`) do, and `rebuild_lists`
/// recomputes the split after every migration, evacuation, and restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionPolicy {
    /// Bulk-synchronous (the thesis's loop): every iteration updates every
    /// owned node, exchanges shadows, and closes with a global
    /// barrier/control exchange.
    #[default]
    Bsp,
    /// GraphHP-style hybrid barrier elision: between global exchanges, up
    /// to `inner_k` consecutive iterations update *interior* nodes only —
    /// no shadow exchange, no barrier, no control exchange. Each global
    /// round first replays the boundary passes the elided rounds skipped
    /// (oldest first), so every node is computed exactly as many times as
    /// under [`ExecutionPolicy::Bsp`], then runs a full BSP round.
    /// Checkpoints, audits, membership verdicts, balancing, and straggler
    /// checks all land on global rounds only; the schedule is a pure
    /// function of the iteration number, so crash replay re-elides the
    /// identical rounds. Exact for convergent programs (identical
    /// fixed points; byte-identical answers for programs whose update
    /// depends only on the node's own value); `inner_k == 0` is rejected —
    /// that is just BSP spelled confusingly.
    Hybrid {
        /// Maximum consecutive barrier-elided rounds between global
        /// exchanges (must be ≥ 1).
        inner_k: u32,
    },
}

/// Everything configurable about a platform run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of (simulated) processors.
    pub nprocs: usize,
    /// Iterations (time steps) to execute.
    pub iterations: u32,
    /// Invoke the dynamic load balancer every this many iterations
    /// (`None` = static partition only).
    pub balance_every: Option<u32>,
    /// Phase offset of the balancing trigger: fires when
    /// `iter % every == offset % every`. The thesis's trigger is offset 0
    /// (`iter % 10 == 0`), which lands exactly on the Figure-23 window
    /// boundaries — the balancer then always corrects yesterday's load.
    /// A mid-window offset lets it see the load it will actually face.
    pub balance_offset: u32,
    /// Compute/communicate sequencing (Figure 8 vs Figure 8a).
    pub exchange: ExchangeMode,
    /// Message-passing substrate configuration (timing model, watchdog).
    pub world: mpisim::Config,
    /// Platform overhead cost model.
    pub costs: CostModel,
    /// Maximum balancer planning sub-rounds per balancing invocation
    /// (1 = the thesis's one-task-per-pair protocol; larger values enable
    /// the §7 multi-task extension).
    pub migration_batch: u32,
    /// Migrant-selection policy (thesis min-cut rule or the load-aware
    /// extension).
    pub migrant_policy: migrate::MigrantPolicy,
    /// Hash-table buckets per rank (the thesis's `HASH_TABLE_LENGTH`).
    pub hash_buckets: usize,
    /// Run full store-invariant validation after every balancing round
    /// (slow; for tests).
    pub validate: bool,
    /// Straggler detection `(threshold, patience)`: when one rank's
    /// per-iteration compute time exceeds `threshold ×` the mean for
    /// `patience` consecutive iterations, an emergency balancing round
    /// runs immediately instead of waiting for the periodic trigger.
    /// `None` (the default) keeps the thesis's purely periodic protocol.
    pub straggler: Option<(f64, u32)>,
    /// Coordinated-checkpoint interval in iterations (the rollback
    /// distance bound when an uncooperative crash is injected). Only
    /// consulted when the fault plan contains crashes; must be ≥ 1.
    pub checkpoint_every: u32,
    /// Record a structured virtual-time trace of the run (phase spans,
    /// fault/migration/rollback instants, per-iteration metrics) into
    /// [`RunReport::trace`]. Zero-cost when off; when on, results and
    /// `total_time` are bit-identical to an untraced run — tracing never
    /// touches the virtual clock.
    pub tracing: bool,
    /// Delta shadow exchange: pack only the peripheral nodes whose value
    /// actually changed this iteration; receivers retain last-known shadow
    /// values for the rest. Results are bit-identical to a full exchange;
    /// bytes on the wire (and the pack cost of clean nodes) are not paid.
    /// The iteration-closing barrier becomes a control exchange carrying
    /// per-rank changed-node counts, so [`RunReport::quiescent_iterations`]
    /// can report global boundary quiescence.
    pub delta_exchange: bool,
    /// Partition tolerance: run the membership protocol
    /// ([`crate::membership`]) so deterministic network partitions
    /// (`FaultPlan::with_partition`) degrade and heal instead of wedging
    /// the run. The quorum-holding side keeps iterating with the suspected
    /// ranks frozen, the minority parks, and on heal the parked ranks
    /// rejoin via buddy state transfer and the degraded stretch is
    /// replayed — results stay byte-identical to the sequential oracle.
    /// Implies the crash-tolerant control plane (crash plans compose).
    pub partition_tolerance: bool,
    /// State-audit interval: every `k` iterations each rank recomputes its
    /// per-partition state digest (owned nodes and retained shadow copies)
    /// against the incrementally-maintained one and the verdicts ride the
    /// iteration-boundary control exchange. A mismatch means silent at-rest
    /// corruption; the platform repairs it (forced shadow resync or
    /// rollback + replay) without operator intervention. `None` (the
    /// default) disables auditing entirely — zero cost, bit-identical
    /// schedules.
    pub audit_every: Option<u32>,
    /// Checkpoint replication factor `r`: each rank mirrors its snapshot to
    /// its `r` ring successors instead of the single buddy. Restore
    /// escalates through the replicas (local → buddy 1 → … → buddy `r`) and
    /// fails with [`PlatformError::UnrecoverableState`] only when *every*
    /// copy of some rank's state is lost or corrupt. Must be ≥ 1; the
    /// default 1 is the classic single-buddy protocol.
    pub replication: u32,
    /// Out-of-core paging: bound each rank's resident data-node table to a
    /// fixed budget of hash-bucket pages behind a buffer pool
    /// ([`crate::paging::BufferPool`]) and spill the rest to a per-rank
    /// virtual disk with crash-consistent shadow-paged commits and
    /// checksum-verified reads. Paged runs execute on the
    /// checkpoint-tolerant control plane (checkpoints become incremental
    /// page-diff images); an unrecoverable page escalates through rollback
    /// and replay, and only when every copy is gone does the run fail with
    /// the typed [`PlatformError::UnrecoverableState`] — never a wrong
    /// answer. `None` (the default) keeps the whole table in memory.
    pub paging: Option<PageConfig>,
    /// Iteration synchronisation policy (see [`ExecutionPolicy`]). The
    /// default [`ExecutionPolicy::Bsp`] is the thesis's loop; hybrid
    /// barrier elision trades boundary freshness inside an `inner_k`-round
    /// window for elided synchronisation cost.
    pub execution: ExecutionPolicy,
}

impl RunConfig {
    /// Defaults mirroring the thesis's setup: virtual-time Origin-2000
    /// model, basic (Figure 8) exchange, no dynamic balancing.
    pub fn new(nprocs: usize, iterations: u32) -> Self {
        RunConfig {
            nprocs,
            iterations,
            balance_every: None,
            balance_offset: 0,
            exchange: ExchangeMode::PostComm,
            world: mpisim::Config::default(),
            costs: CostModel::default(),
            migration_batch: 1,
            migrant_policy: migrate::MigrantPolicy::MinCut,
            hash_buckets: 64,
            validate: false,
            straggler: None,
            checkpoint_every: 5,
            tracing: false,
            delta_exchange: false,
            partition_tolerance: false,
            audit_every: None,
            replication: 1,
            paging: None,
            execution: ExecutionPolicy::Bsp,
        }
    }

    /// Enable periodic dynamic load balancing (the thesis invokes it every
    /// 10 time steps).
    pub fn with_balancing(mut self, every: u32) -> Self {
        self.balance_every = Some(every);
        self
    }

    /// Shift the balancing trigger's phase (see `balance_offset`).
    pub fn with_balance_offset(mut self, offset: u32) -> Self {
        self.balance_offset = offset;
        self
    }

    /// Select the exchange mode.
    pub fn with_exchange(mut self, mode: ExchangeMode) -> Self {
        self.exchange = mode;
        self
    }

    /// Replace the substrate configuration.
    pub fn with_world(mut self, world: mpisim::Config) -> Self {
        self.world = world;
        self
    }

    /// Set the migration batch (sub-rounds per balancing invocation).
    pub fn with_migration_batch(mut self, batch: u32) -> Self {
        self.migration_batch = batch;
        self
    }

    /// Select the migrant policy.
    pub fn with_migrant_policy(mut self, policy: migrate::MigrantPolicy) -> Self {
        self.migrant_policy = policy;
        self
    }

    /// Enable per-round invariant validation.
    pub fn with_validation(mut self) -> Self {
        self.validate = true;
        self
    }

    /// Enable straggler detection (see [`RunConfig::straggler`]).
    pub fn with_straggler_detection(mut self, threshold: f64, patience: u32) -> Self {
        self.straggler = Some((threshold, patience));
        self
    }

    /// Set the coordinated-checkpoint interval (iterations between
    /// snapshots when crashes may be injected).
    pub fn with_checkpointing(mut self, every: u32) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Record a structured virtual-time trace into [`RunReport::trace`]
    /// (see [`RunConfig::tracing`]). Render it with
    /// [`mpisim::trace::chrome_trace_json`] (Perfetto / `chrome://tracing`)
    /// or [`mpisim::trace::timeline_json`].
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Enable delta shadow exchange (see [`RunConfig::delta_exchange`]).
    pub fn with_delta_exchange(mut self) -> Self {
        self.delta_exchange = true;
        self
    }

    /// Enable partition tolerance (see [`RunConfig::partition_tolerance`]).
    pub fn with_partition_tolerance(mut self) -> Self {
        self.partition_tolerance = true;
        self
    }

    /// Audit state integrity every `k` iterations (see
    /// [`RunConfig::audit_every`]).
    pub fn with_state_audit(mut self, k: u32) -> Self {
        self.audit_every = Some(k);
        self
    }

    /// Set the checkpoint replication factor (see
    /// [`RunConfig::replication`]).
    pub fn with_replication(mut self, r: u32) -> Self {
        self.replication = r;
        self
    }

    /// Bound the resident data-node table to `budget` pages under the
    /// given eviction policy (see [`RunConfig::paging`]).
    pub fn with_paging(mut self, budget: usize, policy: EvictionPolicy) -> Self {
        self.paging = Some(PageConfig::new(budget, policy));
        self
    }

    /// Size each rank's data-node hash table (and so, under paging, its
    /// page count) to `buckets` buckets.
    pub fn with_hash_buckets(mut self, buckets: usize) -> Self {
        self.hash_buckets = buckets;
        self
    }

    /// Run under hybrid barrier elision with up to `inner_k` inner rounds
    /// between global exchanges (see [`ExecutionPolicy::Hybrid`]).
    pub fn with_hybrid(mut self, inner_k: u32) -> Self {
        self.execution = ExecutionPolicy::Hybrid { inner_k };
        self
    }
}

/// Is `iter` a *global* round (full exchange + synchronisation) under
/// `cfg`'s execution policy? Pure in `iter`, so every rank — and every
/// crash replay — derives the identical schedule with no shared state.
///
/// Global rounds are forced by: plain BSP; the end of the run; the elision
/// window filling up (`iter` a multiple of `inner_k + 1`); the balancing
/// cadence; and, on the checkpoint-tolerant control planes
/// (`checkpoints`), the checkpoint and audit cadences — snapshots,
/// verdicts, and repairs only ever happen at globally-synchronised
/// boundaries.
pub(crate) fn is_global_round(iter: u32, cfg: &RunConfig, checkpoints: bool) -> bool {
    let inner_k = match cfg.execution {
        ExecutionPolicy::Bsp => return true,
        ExecutionPolicy::Hybrid { inner_k } => inner_k,
    };
    if iter >= cfg.iterations {
        return true;
    }
    if iter.is_multiple_of(inner_k + 1) {
        return true;
    }
    if iter >= cfg.balance_offset.max(1)
        && migrate::is_balance_iteration(iter - cfg.balance_offset, cfg.balance_every)
    {
        return true;
    }
    if checkpoints {
        if iter.is_multiple_of(cfg.checkpoint_every.max(1)) {
            return true;
        }
        if let Some(ka) = cfg.audit_every {
            if iter.is_multiple_of(ka.max(1)) {
                return true;
            }
        }
    }
    false
}

/// How many consecutive barrier-elided rounds immediately precede global
/// iteration `iter` — the boundary passes a global round must replay
/// before its own exchange. Pure in `iter` like [`is_global_round`];
/// after a rollback the walk stops at the checkpoint iteration (always a
/// global round), so replay never re-replays rounds the restored state
/// already contains.
pub(crate) fn elided_before(iter: u32, cfg: &RunConfig, checkpoints: bool) -> u32 {
    let mut n = 0;
    let mut j = iter;
    while j > 1 && !is_global_round(j - 1, cfg, checkpoints) {
        n += 1;
        j -= 1;
    }
    n
}

/// Result of a platform run.
#[derive(Debug, Clone)]
pub struct RunReport<D> {
    /// End-to-end execution time in seconds (initialization through final
    /// barrier, maximised over ranks) — the quantity the thesis's tables
    /// report.
    pub total_time: f64,
    /// Per-rank phase breakdown (Figures 21–22).
    pub timers: Vec<PhaseTimers>,
    /// Per-rank communication counters.
    pub comm: Vec<CommStats>,
    /// Tasks migrated over the whole run.
    pub migrations: usize,
    /// Final node data, indexed by node id (gathered at rank 0).
    pub final_data: Vec<D>,
    /// The initial static partition the run started from.
    pub initial_partition: Partition,
    /// Owner map after the run (differs from the initial partition iff
    /// migrations happened).
    pub final_owner: Vec<u32>,
    /// Injected-fault and recovery counters summed over all ranks (all
    /// zero in a fault-free run).
    pub faults: FaultStats,
    /// Ranks that died (per the fault plan) during the run, in death
    /// order.
    pub ranks_died: Vec<u32>,
    /// Tasks evacuated off dying ranks.
    pub evacuated: usize,
    /// Emergency balancing rounds fired by the straggler detector.
    pub emergency_balances: usize,
    /// Planned pair migrations abandoned because their payload was lost
    /// despite retries.
    pub skipped_migrations: usize,
    /// Total bytes of checkpoint snapshots taken by the surviving ranks
    /// (0 when crash checkpointing never ran).
    pub checkpoint_bytes: u64,
    /// Rollback recoveries performed after uncooperative crashes.
    pub rollbacks: u32,
    /// Iterations whose work was discarded by rollbacks and re-executed.
    pub iterations_replayed: u32,
    /// Sends that had to wait for a bounded-mailbox credit, summed over
    /// ranks (0 when mailboxes are unbounded).
    pub credit_stalls: u64,
    /// Deepest any rank's mailbox ever got (envelopes queued at once).
    pub peak_mailbox_depth: u64,
    /// Phase-timer additions that clamped a genuinely negative duration
    /// up to zero, summed over ranks. Always 0 in a healthy run: anything
    /// else means a clock window somewhere was measured backwards and
    /// silently vanished from the §5.4 breakdown.
    pub negative_clamps: u64,
    /// Shadow entries actually packed and sent, summed over ranks and
    /// iterations. Without delta exchange this is the full shadow traffic;
    /// with it, the post-suppression traffic.
    pub delta_entries_sent: u64,
    /// Shadow entries suppressed by delta exchange because the node was
    /// clean (always 0 with delta off).
    pub delta_entries_skipped: u64,
    /// Iterations in which *no* rank's boundary changed (global changed
    /// count zero in every phase). Only tracked under delta exchange, and
    /// under hybrid execution only global rounds are judged.
    pub quiescent_iterations: u32,
    /// Barrier-elided (inner) rounds executed under
    /// [`ExecutionPolicy::Hybrid`] — interior-only iterations that paid no
    /// exchange, barrier, or control cost. Counts every execution,
    /// including rounds re-run during rollback replay; always 0 under
    /// [`ExecutionPolicy::Bsp`].
    pub inner_iterations: u32,
    /// Global synchronisations elided by inner rounds: one per elided
    /// round per compute phase (a multi-phase program skips one barrier
    /// per phase). Always 0 under [`ExecutionPolicy::Bsp`].
    pub barriers_elided: u64,
    /// Iterations (and post-loop holding rounds) the run spent in
    /// partition-degraded mode — a non-empty agreed suspected set. All
    /// discarded and replayed at heal; 0 without partition tolerance.
    pub degraded_iterations: u32,
    /// Heal events: times a degraded stretch ended and the suspected ranks
    /// rejoined (with the stretch rolled back and replayed).
    pub rejoins: u32,
    /// Bytes of checkpoint images re-fetched from buddy ranks by rejoining
    /// ranks, summed over ranks.
    pub rejoin_bytes: u64,
    /// Most ranks simultaneously suspected by any membership verdict.
    pub suspected_peak: u32,
    /// At-rest state entries silently bit-flipped by the fault plan
    /// ([`mpisim::FaultPlan::with_memory_corrupt`]), summed over ranks —
    /// the injection count; the detection/repair tallies below say what the
    /// platform did about them.
    pub memory_corruptions: u64,
    /// Audit digest mismatches detected (owned or shadow regions), summed
    /// over ranks. 0 in an uncorrupted run.
    pub audit_mismatches: u64,
    /// Targeted shadow resynchronizations performed after a shadow-only
    /// audit mismatch (the cheap repair; agreed, so the designated rank's
    /// tally is canonical).
    pub shadow_resyncs: u32,
    /// Checkpoint replicas found corrupt when consulted (at restore census
    /// or rejoin), summed over ranks.
    pub bad_replicas: u64,
    /// Repair actions the integrity machinery performed: shadow resyncs,
    /// integrity-triggered rollbacks, and replica re-adoptions (agreed
    /// tally).
    pub repairs: u32,
    /// Pages faulted in from the virtual disk, summed over ranks (all five
    /// paging counters are 0 when [`RunConfig::paging`] is off).
    pub page_faults: u64,
    /// Pages evicted to enforce the buffer-pool budget, summed over ranks.
    pub pages_evicted: u64,
    /// Disk operations retried after a transient error, a disk-full
    /// rejection, or a failed read-back verification, summed over ranks.
    pub disk_retries: u64,
    /// Torn writes the shadow-paging commit's read-back verification
    /// caught before the flip, summed over ranks.
    pub torn_writes_detected: u64,
    /// Pages recovered from their shadow-slot copy after the primary
    /// failed its checksum, summed over ranks.
    pub pages_recovered: u64,
    /// The structured virtual-time trace, one entry per rank (crashed
    /// ranks included, up to their crash instant). `None` unless the run
    /// was configured with [`RunConfig::with_tracing`].
    pub trace: Option<Vec<RankTrace>>,
}

impl<D> RunReport<D> {
    /// Speedup of this run relative to a reference (usually 1-processor)
    /// time.
    pub fn speedup_vs(&self, reference_time: f64) -> f64 {
        reference_time / self.total_time
    }

    /// Merged phase breakdown, averaged over ranks (the thesis plots
    /// per-phase overheads for the parallel configuration as a whole).
    pub fn mean_timers(&self) -> PhaseTimers {
        let mut merged = PhaseTimers::new();
        for t in &self.timers {
            merged = merged.merged(t);
        }
        let n = self.timers.len().max(1) as f64;
        let mut out = PhaseTimers::new();
        for phase in Phase::ALL {
            out.add(phase, merged.get(phase) / n);
        }
        out
    }
}

/// State-integrity tallies one rank accumulates while auditing, repairing,
/// and restoring. Mismatch and bad-replica counts are per-rank observations
/// and sum in the report; resync/repair counts are agreed decisions (every
/// live rank increments together), so the designated copy is canonical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct IntegrityCounters {
    pub(crate) audit_mismatches: u64,
    pub(crate) shadow_resyncs: u32,
    pub(crate) bad_replicas: u64,
    pub(crate) repairs: u32,
}

/// What one rank hands back from its SPMD body. Crashed ranks produce no
/// outcome at all (`World::run_fallible` yields `None` for them), so the
/// report is assembled from whichever ranks survived.
pub(crate) struct RankOutcome<D> {
    pub(crate) total: f64,
    pub(crate) timers: PhaseTimers,
    pub(crate) comm: CommStats,
    pub(crate) migrations: usize,
    pub(crate) skipped: usize,
    pub(crate) evacuated: usize,
    pub(crate) emergency_balances: usize,
    pub(crate) ranks_died: Vec<u32>,
    pub(crate) gathered: Option<Vec<(u32, D)>>,
    pub(crate) owner: Vec<u32>,
    pub(crate) checkpoint_bytes: u64,
    pub(crate) rollbacks: u32,
    pub(crate) iterations_replayed: u32,
    pub(crate) delta: exchange::DeltaStats,
    pub(crate) quiescent_iterations: u32,
    pub(crate) inner_iterations: u32,
    pub(crate) barriers_elided: u64,
    pub(crate) degraded_iterations: u32,
    pub(crate) rejoins: u32,
    pub(crate) rejoin_bytes: u64,
    pub(crate) suspected_peak: u32,
    pub(crate) integrity: IntegrityCounters,
    pub(crate) pages: PageCounters,
    pub(crate) disk: mpisim::DiskCounters,
}

/// Assemble the run report from the per-rank outcomes. The recovery
/// counters are replicated state, so the lowest surviving rank's copy is
/// canonical; the fault counters are per-rank and sum; timers and comm
/// stats cover the surviving ranks.
fn assemble<D: Clone>(
    results: Vec<Option<RankOutcome<D>>>,
    partition: Partition,
    num_nodes: usize,
) -> RunReport<D> {
    let live: Vec<&RankOutcome<D>> = results.iter().flatten().collect();
    let designated = *live.first().expect("at least one rank survives the run");
    let total_time = live.iter().map(|r| r.total).fold(0.0f64, f64::max);
    let migrations = designated.migrations;
    debug_assert!(live.iter().all(|r| r.migrations == migrations));
    debug_assert!(live.iter().all(|r| r.ranks_died == designated.ranks_died));
    let mut faults = FaultStats::default();
    let mut checkpoint_bytes = 0u64;
    let mut credit_stalls = 0u64;
    // Peaks max-merge across ranks (a sum would fabricate a depth no
    // mailbox ever reached); everything else sums.
    let mut peak_mailbox_depth = 0u64;
    let mut negative_clamps = 0u64;
    let mut delta_entries_sent = 0u64;
    let mut delta_entries_skipped = 0u64;
    let mut rejoin_bytes = 0u64;
    let mut audit_mismatches = 0u64;
    let mut bad_replicas = 0u64;
    let mut pages = PageCounters::default();
    for r in &live {
        faults.merge(&r.comm.faults);
        // The virtual disk hangs off the pager, not the rank: fold its
        // injection tallies into the fault totals by hand.
        faults.disk_transient_errors += r.disk.transient_errors;
        faults.disk_torn_writes += r.disk.torn_writes;
        faults.disk_read_rots += r.disk.read_rots;
        faults.disk_full_rejections += r.disk.full_rejections;
        pages.merge(&r.pages);
        checkpoint_bytes += r.checkpoint_bytes;
        credit_stalls += r.comm.credit_stalls;
        peak_mailbox_depth = peak_mailbox_depth.max(r.comm.peak_mailbox_depth);
        negative_clamps += r.timers.negative_clamps();
        delta_entries_sent += r.delta.entries_sent;
        delta_entries_skipped += r.delta.entries_skipped;
        rejoin_bytes += r.rejoin_bytes;
        audit_mismatches += r.integrity.audit_mismatches;
        bad_replicas += r.integrity.bad_replicas;
    }
    let final_owner = designated.owner.clone();
    let mut slots: Vec<Option<D>> = (0..num_nodes).map(|_| None).collect();
    if let Some(gathered) = &designated.gathered {
        for (id, data) in gathered {
            let slot = &mut slots[*id as usize];
            assert!(slot.is_none(), "node {id} gathered twice");
            *slot = Some(data.clone());
        }
    }
    let final_data: Vec<D> = slots
        .into_iter()
        .enumerate()
        .map(|(id, s)| s.unwrap_or_else(|| panic!("node {id} missing from gather")))
        .collect();

    RunReport {
        total_time,
        timers: live.iter().map(|r| r.timers.clone()).collect(),
        comm: live.iter().map(|r| r.comm.clone()).collect(),
        migrations,
        final_data,
        initial_partition: partition,
        final_owner,
        faults,
        ranks_died: designated.ranks_died.clone(),
        evacuated: designated.evacuated,
        emergency_balances: designated.emergency_balances,
        skipped_migrations: designated.skipped,
        checkpoint_bytes,
        rollbacks: designated.rollbacks,
        iterations_replayed: designated.iterations_replayed,
        credit_stalls,
        peak_mailbox_depth,
        negative_clamps,
        delta_entries_sent,
        delta_entries_skipped,
        // The quiescence verdicts are agreed (every live rank saw the same
        // global counts), so the designated rank's tally is canonical.
        quiescent_iterations: designated.quiescent_iterations,
        // The elision schedule is a pure function of the iteration number,
        // identical on every rank that ran the loop; the designated rank's
        // tally is canonical.
        inner_iterations: designated.inner_iterations,
        barriers_elided: designated.barriers_elided,
        // Membership verdicts are likewise agreed: the degraded/heal tallies
        // are replicated, only the transfer bytes are per-rank and sum.
        degraded_iterations: designated.degraded_iterations,
        rejoins: designated.rejoins,
        rejoin_bytes,
        suspected_peak: designated.suspected_peak,
        memory_corruptions: faults.memory_corruptions,
        audit_mismatches,
        // Repair decisions ride the agreed control verdicts, so like the
        // membership tallies the designated rank's copy is canonical.
        shadow_resyncs: designated.integrity.shadow_resyncs,
        bad_replicas,
        repairs: designated.integrity.repairs,
        page_faults: pages.page_faults,
        pages_evicted: pages.pages_evicted,
        disk_retries: pages.disk_retries,
        torn_writes_detected: pages.torn_writes_detected,
        pages_recovered: pages.pages_recovered,
        trace: None,
    }
}

/// Per-iteration trace bookkeeping for the metrics timeline. Constructed
/// only when tracing is on (`None` otherwise), snapshotting the phase
/// timers and the rank-local send/receive counters at the iteration start;
/// [`IterTracer::finish`] emits the `iteration` span with the deltas.
///
/// Every field is rank-local and clock- or program-order-driven, so the
/// emitted span is byte-reproducible across same-seed runs. (The
/// *instantaneous* mailbox depth is deliberately absent: it depends on how
/// far ahead other host threads ran, so it lives only in the run-level
/// `peak_mailbox_depth` counter.)
pub(crate) struct IterTracer {
    timers_before: PhaseTimers,
    sent_before: u64,
    recv_before: u64,
    start: f64,
}

impl IterTracer {
    pub(crate) fn begin(rank: &Rank, timers: &PhaseTimers) -> Option<IterTracer> {
        if !rank.trace_enabled() {
            return None;
        }
        let s = rank.stats();
        Some(IterTracer {
            timers_before: timers.clone(),
            sent_before: s.msgs_sent,
            recv_before: s.msgs_recv,
            start: rank.wtime(),
        })
    }

    pub(crate) fn finish(self, rank: &Rank, iter: u32, timers: &PhaseTimers) {
        let s = rank.stats();
        let delta = |p: Phase| timers.get(p) - self.timers_before.get(p);
        rank.trace_span(
            ITERATION_SPAN,
            "iter",
            self.start,
            &[
                ("iter", ArgValue::U64(iter as u64)),
                (
                    "compute",
                    ArgValue::F64(delta(Phase::Compute) + delta(Phase::ComputationOverhead)),
                ),
                (
                    "comm",
                    ArgValue::F64(delta(Phase::Communicate) + delta(Phase::CommunicationOverhead)),
                ),
                ("integrity", ArgValue::F64(delta(Phase::Integrity))),
                ("balance", ArgValue::F64(delta(Phase::LoadBalancing))),
                ("sent", ArgValue::U64(s.msgs_sent - self.sent_before)),
                ("recv", ArgValue::U64(s.msgs_recv - self.recv_before)),
            ],
        );
    }
}

/// Run `f`, converting the platform's typed panic payloads — a
/// flow-control deadlock (cyclic credit wait among bounded mailboxes), a
/// send addressed outside the world, an unrecoverable restore, or an
/// internal-invariant violation — into the matching [`PlatformError`].
/// Any other panic resumes unwinding untouched.
pub fn catch_flow_deadlock<R>(f: impl FnOnce() -> R) -> Result<R, PlatformError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => match payload.downcast::<mpisim::FlowDeadlock>() {
            Ok(fd) => Err(PlatformError::FlowControlDeadlock { cycle: fd.cycle }),
            Err(other) => match other.downcast::<mpisim::InvalidRank>() {
                Ok(ir) => Err(PlatformError::InvalidDestination {
                    src: ir.src,
                    dest: ir.dest,
                    world_size: ir.world,
                }),
                Err(other) => match other.downcast::<crate::checkpoint::UnrecoverableStateSignal>()
                {
                    Ok(us) => Err(PlatformError::UnrecoverableState { rank: us.rank }),
                    Err(other) => match other.downcast::<crate::error::InvariantSignal>() {
                        Ok(sig) => Err(PlatformError::InternalInvariant {
                            rank: sig.rank,
                            detail: sig.detail,
                        }),
                        Err(other) => std::panic::resume_unwind(other),
                    },
                },
            },
        },
    }
}

/// Partition the graph, run the iterative computation on `cfg.nprocs`
/// simulated ranks, and gather the results.
///
/// `make_balancer` constructs each rank's dynamic-balancer instance (only
/// rank 0's is consulted — the thesis's designated-processor design).
///
/// # Panics
/// Panics on invalid configuration, on a rank panic, or (with
/// `cfg.validate`) on a store-invariant violation.
pub fn run<P, S, B, F>(
    graph: &Graph,
    program: &P,
    partitioner: &S,
    make_balancer: F,
    cfg: &RunConfig,
) -> RunReport<P::Data>
where
    P: NodeProgram,
    S: StaticPartitioner + ?Sized,
    B: DynamicBalancer,
    F: Fn() -> B + Sync,
{
    try_run(graph, program, partitioner, make_balancer, cfg)
        .unwrap_or_else(|e| panic!("ic2mpi: {e}"))
}

/// [`run`], but configuration problems come back as a typed
/// [`PlatformError`] instead of a panic. (A rank panic or a store-invariant
/// violation mid-run still panics: those are platform bugs, not caller
/// mistakes.)
pub fn try_run<P, S, B, F>(
    graph: &Graph,
    program: &P,
    partitioner: &S,
    make_balancer: F,
    cfg: &RunConfig,
) -> Result<RunReport<P::Data>, PlatformError>
where
    P: NodeProgram,
    S: StaticPartitioner + ?Sized,
    B: DynamicBalancer,
    F: Fn() -> B + Sync,
{
    if cfg.nprocs == 0 {
        return Err(PlatformError::NoProcessors);
    }
    if cfg.hash_buckets == 0 {
        return Err(PlatformError::NoHashBuckets);
    }
    if let Some((threshold, patience)) = cfg.straggler {
        if threshold < 1.0 || threshold.is_nan() {
            return Err(PlatformError::BadStragglerThreshold(threshold));
        }
        if patience == 0 {
            return Err(PlatformError::ZeroStragglerPatience);
        }
    }
    let partition = partitioner.partition(graph, cfg.nprocs);
    if partition.len() != graph.num_nodes() {
        return Err(PlatformError::PartitionLengthMismatch {
            nodes: graph.num_nodes(),
            partition: partition.len(),
        });
    }
    if cfg.checkpoint_every == 0 {
        return Err(PlatformError::ZeroCheckpointInterval);
    }
    if cfg.audit_every == Some(0) {
        return Err(PlatformError::ZeroAuditInterval);
    }
    if cfg.replication == 0 {
        return Err(PlatformError::ZeroReplicationFactor);
    }
    if cfg.paging.as_ref().is_some_and(|p| p.budget == 0) {
        return Err(PlatformError::ZeroPageBudget);
    }
    if matches!(cfg.execution, ExecutionPolicy::Hybrid { inner_k: 0 }) {
        return Err(PlatformError::ZeroInnerIterations);
    }
    let num_nodes = graph.num_nodes();
    // Tracing hooks in below the driver: the substrate owns the collector,
    // each rank buffers privately and flushes on drop (normal end or crash
    // unwind alike), and the report harvests after the world joins.
    let collector = cfg.tracing.then(|| Arc::new(TraceCollector::new()));
    let mut world_cfg = cfg.world.clone();
    if let Some(c) = &collector {
        world_cfg = world_cfg.with_trace(Arc::clone(c));
    }
    let world = World::new(world_cfg);

    // Partition tolerance layers the membership protocol (degraded mode,
    // park, heal-and-rejoin) over the crash-tolerant control plane; it
    // subsumes crash recovery, so it takes precedence when both apply.
    if cfg.partition_tolerance {
        let results: Vec<Option<RankOutcome<P::Data>>> = catch_flow_deadlock(|| {
            world.run_fallible(cfg.nprocs, |rank| {
                let mut balancer = make_balancer();
                crate::membership::run_rank_with_membership(
                    rank,
                    graph,
                    program,
                    &partition,
                    &mut balancer,
                    cfg,
                )
            })
        })?;
        let mut report = assemble(results, partition, num_nodes);
        report.trace = collector.map(|c| c.take());
        return Ok(report);
    }

    // Uncooperative crashes need the failure-detecting control plane,
    // coordinated checkpoints, and a world that tolerates rank death. The
    // state-integrity machinery (audits, memory-corruption repair) lives on
    // the same path: its repairs reuse the checkpoint/rollback plumbing —
    // and so does out-of-core paging, whose page-loss repair ladder ends
    // in rollback + replay from a verified checkpoint.
    if cfg.world.faults.has_crashes()
        || cfg.audit_every.is_some()
        || cfg.world.faults.has_memory_corruption()
        || cfg.world.faults.has_disk_faults()
        || cfg.paging.is_some()
    {
        let results: Vec<Option<RankOutcome<P::Data>>> = catch_flow_deadlock(|| {
            world.run_fallible(cfg.nprocs, |rank| {
                let mut balancer = make_balancer();
                crate::checkpoint::run_rank_with_recovery(
                    rank,
                    graph,
                    program,
                    &partition,
                    &mut balancer,
                    cfg,
                )
            })
        })?;
        let mut report = assemble(results, partition, num_nodes);
        report.trace = collector.map(|c| c.take());
        return Ok(report);
    }

    let results: Vec<RankOutcome<P::Data>> = catch_flow_deadlock(|| {
        world.run(cfg.nprocs, |rank| {
            let me = rank.rank() as u32;
            let mut timers = PhaseTimers::new();

            // ---- Initialization phase -------------------------------------
            let t0 = rank.wtime();
            let mut store = NodeStore::build(graph, &partition, me, program, cfg.hash_buckets);
            rank.advance(cfg.costs.init_per_node * store.stored_count() as f64);
            timers.add(Phase::Initialization, rank.wtime() - t0);
            rank.trace_span("Initialization", "phase", t0, &[]);
            if cfg.validate {
                store
                    .validate(graph)
                    .unwrap_or_else(|e| panic!("rank {me}: init invariant: {e}"));
            }
            rank.barrier();

            // ---- Iterate ---------------------------------------------------
            let mut balancer = make_balancer();
            let mut comp_since_balance = 0.0;
            let mut migrations = 0usize;
            let mut skipped = 0usize;
            let mut evacuated = 0usize;
            let mut emergency_balances = 0usize;
            let mut ranks_died: Vec<u32> = Vec::new();
            // Replicated failure state: which ranks have died and been
            // evacuated. A dead rank keeps running this loop as a zombie —
            // owning zero nodes, every phase degenerates to the collectives —
            // so barriers and broadcasts stay aligned across the world.
            let mut dead = vec![false; cfg.nprocs];
            let plan_kills = cfg.world.faults.has_kills();
            let my_kill = cfg.world.faults.kill_time(me as usize);
            let mut detector = cfg.straggler.map(|(t, p)| StragglerDetector::new(t, p));
            let mut delta_stats = exchange::DeltaStats::default();
            let mut quiescent_iterations = 0u32;
            let mut inner_iterations = 0u32;
            let mut barriers_elided = 0u64;
            for iter in 1..=cfg.iterations {
                let tracer = IterTracer::begin(rank, &timers);
                let mut comp_this_iter = 0.0;

                // ---- Inner (barrier-elided) rounds -------------------------
                // Interior nodes only, fully local: no exchange, no barrier,
                // no control cost. Kills, balancing, and straggler checks
                // wait for the next global round — the schedule is pure in
                // `iter`, so every rank elides the identical rounds.
                if !is_global_round(iter, cfg, false) {
                    for phase in 0..program.phases() {
                        let ctx = ComputeCtx {
                            iter,
                            phase,
                            rank: me,
                            num_nodes,
                        };
                        exchange::inner_step(
                            rank,
                            program,
                            &mut store,
                            &ctx,
                            &cfg.costs,
                            &mut timers,
                            &mut comp_this_iter,
                        );
                        barriers_elided += 1;
                    }
                    inner_iterations += 1;
                    comp_since_balance += comp_this_iter;
                    if let Some(tracer) = tracer {
                        tracer.finish(rank, iter, &timers);
                    }
                    continue;
                }

                // ---- Global round ------------------------------------------
                // First replay the boundary passes the elided rounds skipped,
                // so every node's compute count matches plain BSP; if any
                // boundary value moved, retained remote shadows are stale and
                // the exchange below must full-pack.
                let missed = elided_before(iter, cfg, false);
                if missed > 0
                    && exchange::catch_up_boundary(
                        rank,
                        program,
                        &mut store,
                        iter,
                        missed,
                        program.phases(),
                        me,
                        num_nodes,
                        &cfg.costs,
                        &mut timers,
                        &mut comp_this_iter,
                    )
                {
                    store.needs_resync = true;
                }
                let mut iter_quiescent = cfg.delta_exchange;
                for phase in 0..program.phases() {
                    let ctx = ComputeCtx {
                        iter,
                        phase,
                        rank: me,
                        num_nodes,
                    };
                    let res = exchange::step(
                        rank,
                        graph,
                        program,
                        &mut store,
                        &ctx,
                        cfg.exchange,
                        &cfg.costs,
                        &mut timers,
                        &mut comp_this_iter,
                        cfg.delta_exchange,
                    );
                    delta_stats.absorb(res.delta);
                    if res.global_changed != Some(0) {
                        iter_quiescent = false;
                    }
                }
                if iter_quiescent {
                    quiescent_iterations += 1;
                }
                comp_since_balance += comp_this_iter;

                // ---- Failure detection & evacuation (fault plans only) -----
                if plan_kills {
                    // Cooperative fail-stop: a rank whose virtual clock passed
                    // its kill time announces the failure at the iteration
                    // boundary (shadow copies are in sync here), its tasks are
                    // evacuated to survivors, and it degenerates to a zombie.
                    let i_died = !dead[me as usize] && my_kill.is_some_and(|t| rank.wtime() >= t);
                    let announcements: Vec<bool> = rank.allgather(&i_died);
                    let newly: Vec<u32> = announcements
                        .iter()
                        .enumerate()
                        .filter(|&(_, &d)| d)
                        .map(|(r, _)| r as u32)
                        .collect();
                    for &d in &newly {
                        dead[d as usize] = true;
                        ranks_died.push(d);
                    }
                    for &d in &newly {
                        evacuated += migrate::evacuate_rank(
                            rank,
                            graph,
                            &mut store,
                            d,
                            &dead,
                            &cfg.costs,
                            &mut timers,
                        );
                    }
                    if !newly.is_empty() {
                        comp_since_balance = 0.0;
                        store.reset_loads();
                        if cfg.validate {
                            store.validate(graph).unwrap_or_else(|e| {
                                panic!("rank {me}: post-evacuation invariant: {e}")
                            });
                        }
                    }
                }

                // ---- Periodic load balancing -------------------------------
                let mut balanced_this_iter = false;
                if iter >= cfg.balance_offset.max(1)
                    && migrate::is_balance_iteration(iter - cfg.balance_offset, cfg.balance_every)
                {
                    let out = migrate::balance_round(
                        rank,
                        graph,
                        &mut store,
                        &mut balancer,
                        comp_since_balance,
                        cfg.migration_batch,
                        cfg.migrant_policy,
                        &dead,
                        &cfg.costs,
                        &mut timers,
                    );
                    migrations += out.migrated;
                    skipped += out.skipped;
                    comp_since_balance = 0.0;
                    store.reset_loads();
                    balanced_this_iter = true;
                    if cfg.validate {
                        store
                            .validate(graph)
                            .unwrap_or_else(|e| panic!("rank {me}: post-migration invariant: {e}"));
                    }
                }

                // ---- Straggler detection -----------------------------------
                if let Some(det) = detector.as_mut() {
                    // Fed the same allgathered times everywhere, the strike
                    // counter is replicated: every rank reaches the identical
                    // fire/hold decision with one collective.
                    let all_times: Vec<f64> = rank.allgather(&comp_this_iter);
                    let alive: Vec<f64> = all_times
                        .iter()
                        .zip(&dead)
                        .filter(|&(_, &d)| !d)
                        .map(|(&t, _)| t)
                        .collect();
                    let max = alive.iter().cloned().fold(0.0f64, f64::max);
                    let mean = alive.iter().sum::<f64>() / alive.len().max(1) as f64;
                    if det.observe(max, mean) && !balanced_this_iter {
                        let out = migrate::balance_round(
                            rank,
                            graph,
                            &mut store,
                            &mut balancer,
                            comp_since_balance,
                            cfg.migration_batch,
                            cfg.migrant_policy,
                            &dead,
                            &cfg.costs,
                            &mut timers,
                        );
                        migrations += out.migrated;
                        skipped += out.skipped;
                        emergency_balances += 1;
                        comp_since_balance = 0.0;
                        store.reset_loads();
                        if cfg.validate {
                            store.validate(graph).unwrap_or_else(|e| {
                                panic!("rank {me}: post-emergency-balance invariant: {e}")
                            });
                        }
                    }
                }

                if let Some(tracer) = tracer {
                    tracer.finish(rank, iter, &timers);
                }
            }
            rank.barrier();
            let total = rank.wtime();

            // ---- Gather final data at rank 0 --------------------------------
            let owned: Vec<(u32, P::Data)> = store
                .internal
                .iter()
                .chain(store.peripheral.iter())
                .map(|node| {
                    (
                        node.id,
                        store
                            .table
                            .get(node.id)
                            .unwrap_or_else(|| {
                                crate::error::invariant_violated(
                                    me,
                                    format!("no data for owned node {} at gather", node.id),
                                )
                            })
                            .clone(),
                    )
                })
                .collect();
            let gathered = rank
                .gather(0, &owned)
                .map(|per_rank| per_rank.into_iter().flatten().collect::<Vec<_>>());

            // Everyone is past the closing barrier, so every delivery has
            // landed: reconcile lingering stale/damaged frames into the
            // fault counters before the final snapshot (else the totals
            // depend on host scheduling).
            rank.reconcile_faults();
            RankOutcome {
                total,
                timers,
                comm: rank.stats(),
                migrations,
                skipped,
                evacuated,
                emergency_balances,
                ranks_died,
                gathered,
                owner: store.owner.clone(),
                checkpoint_bytes: 0,
                rollbacks: 0,
                iterations_replayed: 0,
                delta: delta_stats,
                quiescent_iterations,
                inner_iterations,
                barriers_elided,
                degraded_iterations: 0,
                rejoins: 0,
                rejoin_bytes: 0,
                suspected_peak: 0,
                integrity: IntegrityCounters::default(),
                pages: PageCounters::default(),
                disk: mpisim::DiskCounters::default(),
            }
        })
    })?;

    let mut report = assemble(
        results.into_iter().map(Some).collect(),
        partition,
        num_nodes,
    );
    report.trace = collector.map(|c| c.take());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timers::Phase;

    #[test]
    fn config_builders_compose() {
        let cfg = RunConfig::new(8, 25)
            .with_balancing(10)
            .with_balance_offset(5)
            .with_migration_batch(4)
            .with_migrant_policy(migrate::MigrantPolicy::LoadAware)
            .with_exchange(ExchangeMode::Overlap)
            .with_straggler_detection(2.0, 3)
            .with_state_audit(4)
            .with_replication(3)
            .with_paging(16, EvictionPolicy::Sieve)
            .with_hybrid(3)
            .with_validation();
        assert_eq!(cfg.nprocs, 8);
        assert_eq!(cfg.iterations, 25);
        assert_eq!(cfg.balance_every, Some(10));
        assert_eq!(cfg.balance_offset, 5);
        assert_eq!(cfg.migration_batch, 4);
        assert_eq!(cfg.migrant_policy, migrate::MigrantPolicy::LoadAware);
        assert_eq!(cfg.exchange, ExchangeMode::Overlap);
        assert_eq!(cfg.straggler, Some((2.0, 3)));
        assert_eq!(cfg.audit_every, Some(4));
        assert_eq!(cfg.replication, 3);
        assert_eq!(cfg.paging, Some(PageConfig::new(16, EvictionPolicy::Sieve)));
        assert_eq!(cfg.execution, ExecutionPolicy::Hybrid { inner_k: 3 });
        assert!(cfg.validate);
    }

    #[test]
    fn defaults_match_the_thesis_protocol() {
        let cfg = RunConfig::new(4, 10);
        assert_eq!(cfg.balance_every, None);
        assert_eq!(cfg.balance_offset, 0);
        assert_eq!(cfg.migration_batch, 1);
        assert_eq!(cfg.migrant_policy, migrate::MigrantPolicy::MinCut);
        assert_eq!(cfg.exchange, ExchangeMode::PostComm);
        assert_eq!(cfg.straggler, None);
        assert_eq!(cfg.checkpoint_every, 5);
        assert_eq!(cfg.audit_every, None);
        assert_eq!(cfg.replication, 1);
        assert_eq!(cfg.paging, None);
        assert_eq!(cfg.execution, ExecutionPolicy::Bsp);
    }

    #[test]
    fn checkpoint_interval_builder_and_validation() {
        let cfg = RunConfig::new(4, 10).with_checkpointing(3);
        assert_eq!(cfg.checkpoint_every, 3);
        let bad = RunConfig::new(2, 5).with_checkpointing(0);
        let graph = ic2_graph::generators::hex_grid_n(16);
        let err = try_run(
            &graph,
            &crate::program::AvgProgram::fine(),
            &ic2_partition::metis::Metis::default(),
            || ic2_balance::NoBalancer,
            &bad,
        )
        .unwrap_err();
        assert!(matches!(err, PlatformError::ZeroCheckpointInterval));
    }

    #[test]
    fn integrity_knobs_are_validated() {
        let graph = ic2_graph::generators::hex_grid_n(16);
        let check = |cfg: RunConfig| {
            try_run(
                &graph,
                &crate::program::AvgProgram::fine(),
                &ic2_partition::metis::Metis::default(),
                || ic2_balance::NoBalancer,
                &cfg,
            )
            .unwrap_err()
        };
        assert!(matches!(
            check(RunConfig::new(2, 5).with_state_audit(0)),
            PlatformError::ZeroAuditInterval
        ));
        assert!(matches!(
            check(RunConfig::new(2, 5).with_replication(0)),
            PlatformError::ZeroReplicationFactor
        ));
        assert!(matches!(
            check(RunConfig::new(2, 5).with_paging(0, EvictionPolicy::Clock)),
            PlatformError::ZeroPageBudget
        ));
        assert!(matches!(
            check(RunConfig::new(2, 5).with_hybrid(0)),
            PlatformError::ZeroInnerIterations
        ));
    }

    #[test]
    fn hybrid_cadence_is_pure_and_bsp_never_elides() {
        let bsp = RunConfig::new(4, 20);
        for iter in 1..=20 {
            assert!(is_global_round(iter, &bsp, false));
            assert_eq!(elided_before(iter, &bsp, false), 0);
        }

        // inner_k = 3, no other triggers: globals at multiples of 4 and at
        // the final iteration; each global replays the rounds since the
        // previous one.
        let hybrid = RunConfig::new(4, 10).with_hybrid(3);
        let globals: Vec<u32> = (1..=10)
            .filter(|&i| is_global_round(i, &hybrid, false))
            .collect();
        assert_eq!(globals, vec![4, 8, 10]);
        assert_eq!(elided_before(4, &hybrid, false), 3);
        assert_eq!(elided_before(8, &hybrid, false), 3);
        assert_eq!(elided_before(10, &hybrid, false), 1);

        // The balancing cadence forces globals mid-window.
        let balanced = RunConfig::new(4, 20).with_hybrid(5).with_balancing(3);
        for iter in (3..20).step_by(3) {
            assert!(is_global_round(iter, &balanced, false));
        }

        // On the checkpoint-tolerant plane the checkpoint and audit
        // cadences force globals too — snapshots and verdicts only land at
        // synchronised boundaries.
        let chk = RunConfig::new(4, 20)
            .with_hybrid(5)
            .with_checkpointing(4)
            .with_state_audit(3);
        for iter in 1..20 {
            let forced = iter % 6 == 0 || iter % 4 == 0 || iter % 3 == 0;
            assert_eq!(is_global_round(iter, &chk, true), forced, "iter {iter}");
        }
        // ...but only on that plane: the plain path ignores them.
        assert!(!is_global_round(3, &chk, false));
    }

    #[test]
    fn report_speedup_and_mean_timers() {
        let mut t0 = PhaseTimers::new();
        t0.add(Phase::Compute, 2.0);
        let mut t1 = PhaseTimers::new();
        t1.add(Phase::Compute, 4.0);
        let report: RunReport<i64> = RunReport {
            total_time: 2.0,
            timers: vec![t0, t1],
            comm: Vec::new(),
            migrations: 0,
            final_data: Vec::new(),
            initial_partition: Partition::all_on_one(0, 1),
            final_owner: Vec::new(),
            faults: FaultStats::default(),
            ranks_died: Vec::new(),
            evacuated: 0,
            emergency_balances: 0,
            skipped_migrations: 0,
            checkpoint_bytes: 0,
            rollbacks: 0,
            iterations_replayed: 0,
            credit_stalls: 0,
            peak_mailbox_depth: 0,
            negative_clamps: 0,
            delta_entries_sent: 0,
            delta_entries_skipped: 0,
            quiescent_iterations: 0,
            inner_iterations: 0,
            barriers_elided: 0,
            degraded_iterations: 0,
            rejoins: 0,
            rejoin_bytes: 0,
            suspected_peak: 0,
            memory_corruptions: 0,
            audit_mismatches: 0,
            shadow_resyncs: 0,
            bad_replicas: 0,
            repairs: 0,
            page_faults: 0,
            pages_evicted: 0,
            disk_retries: 0,
            torn_writes_detected: 0,
            pages_recovered: 0,
            trace: None,
        };
        assert_eq!(report.speedup_vs(8.0), 4.0);
        assert_eq!(report.mean_timers().get(Phase::Compute), 3.0);
    }
}
