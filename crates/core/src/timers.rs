//! Per-phase time accounting (the thesis's §5.4 overhead breakdown).

/// The six phases the thesis reports in Figures 21–22, plus the
/// robustness phases added on top: checkpointing, rollback/re-execution
/// overhead, and message-integrity (retransmission) overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Setting up node lists, data lists, hash tables, buffer plans.
    Initialization,
    /// Building the node+neighbour lists and updating data lists around
    /// the actual node computation.
    ComputationOverhead,
    /// The application node function itself.
    Compute,
    /// Packing and unpacking communication buffers.
    CommunicationOverhead,
    /// Sending/receiving the shadow buffers.
    Communicate,
    /// Gathering load statistics, planning, and migrating tasks.
    LoadBalancing,
    /// Taking coordinated snapshots and mirroring them to buddy ranks.
    Checkpoint,
    /// Rolling back after a crash: restoring state, adopting orphaned
    /// nodes, and rebuilding the directory (re-run iterations are charged
    /// to their own phases).
    Recovery,
    /// Message-integrity overhead: virtual time spent in reliable-send
    /// retry windows and NACK/retransmit exponential backoff. Split out of
    /// `Communicate` so corruption-recovery cost is visible on its own.
    Integrity,
}

impl Phase {
    /// All phases, in report order.
    pub const ALL: [Phase; 9] = [
        Phase::Initialization,
        Phase::ComputationOverhead,
        Phase::Compute,
        Phase::CommunicationOverhead,
        Phase::Communicate,
        Phase::LoadBalancing,
        Phase::Checkpoint,
        Phase::Recovery,
        Phase::Integrity,
    ];

    /// Human-readable label matching the thesis figures.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Initialization => "Initialization",
            Phase::ComputationOverhead => "Computation Overhead",
            Phase::Compute => "Compute",
            Phase::CommunicationOverhead => "Communication Overhead",
            Phase::Communicate => "Communicate",
            Phase::LoadBalancing => "Load Balancing & Task Migration",
            Phase::Checkpoint => "Checkpointing",
            Phase::Recovery => "Crash Recovery",
            Phase::Integrity => "Message Integrity",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Initialization => 0,
            Phase::ComputationOverhead => 1,
            Phase::Compute => 2,
            Phase::CommunicationOverhead => 3,
            Phase::Communicate => 4,
            Phase::LoadBalancing => 5,
            Phase::Checkpoint => 6,
            Phase::Recovery => 7,
            Phase::Integrity => 8,
        }
    }
}

/// Accumulated seconds per phase for one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseTimers {
    totals: [f64; 9],
}

impl PhaseTimers {
    /// Fresh, all-zero timers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `seconds` to `phase`.
    pub fn add(&mut self, phase: Phase, seconds: f64) {
        debug_assert!(seconds >= -1e-9, "negative phase time {seconds}");
        self.totals[phase.index()] += seconds.max(0.0);
    }

    /// Accumulated seconds in `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        self.totals[phase.index()]
    }

    /// Sum over all phases.
    pub fn total(&self) -> f64 {
        self.totals.iter().sum()
    }

    /// Element-wise sum with another rank's timers.
    pub fn merged(&self, other: &PhaseTimers) -> PhaseTimers {
        let mut out = self.clone();
        for i in 0..9 {
            out.totals[i] += other.totals[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_independently() {
        let mut t = PhaseTimers::new();
        t.add(Phase::Compute, 1.0);
        t.add(Phase::Compute, 0.5);
        t.add(Phase::Communicate, 0.25);
        assert_eq!(t.get(Phase::Compute), 1.5);
        assert_eq!(t.get(Phase::Communicate), 0.25);
        assert_eq!(t.get(Phase::Initialization), 0.0);
        assert!((t.total() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_elementwise() {
        let mut a = PhaseTimers::new();
        a.add(Phase::Compute, 1.0);
        let mut b = PhaseTimers::new();
        b.add(Phase::Compute, 2.0);
        b.add(Phase::LoadBalancing, 3.0);
        let m = a.merged(&b);
        assert_eq!(m.get(Phase::Compute), 3.0);
        assert_eq!(m.get(Phase::LoadBalancing), 3.0);
    }

    #[test]
    fn labels_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for p in Phase::ALL {
            assert!(seen.insert(p.label()));
        }
    }
}
