//! Per-phase time accounting (the thesis's §5.4 overhead breakdown).

/// The six phases the thesis reports in Figures 21–22, plus the
/// robustness phases added on top: checkpointing, rollback/re-execution
/// overhead, and message-integrity (retransmission) overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Setting up node lists, data lists, hash tables, buffer plans.
    Initialization,
    /// Building the node+neighbour lists and updating data lists around
    /// the actual node computation. Barrier-elided inner rounds under
    /// [`crate::ExecutionPolicy::Hybrid`] charge only here, `Compute`, and
    /// (when paging) `Storage` — never the communication or control
    /// phases, which is where the elision savings show up.
    ComputationOverhead,
    /// The application node function itself.
    Compute,
    /// Packing and unpacking communication buffers.
    CommunicationOverhead,
    /// Sending/receiving the shadow buffers.
    Communicate,
    /// Gathering load statistics, planning, and migrating tasks.
    LoadBalancing,
    /// Taking coordinated snapshots and mirroring them to buddy ranks.
    Checkpoint,
    /// Rolling back after a crash: restoring state, adopting orphaned
    /// nodes, and rebuilding the directory (re-run iterations are charged
    /// to their own phases).
    Recovery,
    /// Message-integrity overhead: virtual time spent in reliable-send
    /// retry windows and NACK/retransmit exponential backoff. Split out of
    /// `Communicate` so corruption-recovery cost is visible on its own.
    Integrity,
    /// Out-of-core storage: virtual disk transfer time plus I/O retry
    /// backoff charged by the paged node store's buffer pool.
    Storage,
}

impl Phase {
    /// Number of phases. Everything that sizes per-phase storage
    /// (`PhaseTimers::totals`, merge loops) derives from this, so adding a
    /// phase to [`Phase::ALL`] can never silently truncate accounting.
    pub const COUNT: usize = Phase::ALL.len();

    /// All phases, in report order.
    pub const ALL: [Phase; 10] = [
        Phase::Initialization,
        Phase::ComputationOverhead,
        Phase::Compute,
        Phase::CommunicationOverhead,
        Phase::Communicate,
        Phase::LoadBalancing,
        Phase::Checkpoint,
        Phase::Recovery,
        Phase::Integrity,
        Phase::Storage,
    ];

    /// Human-readable label matching the thesis figures.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Initialization => "Initialization",
            Phase::ComputationOverhead => "Computation Overhead",
            Phase::Compute => "Compute",
            Phase::CommunicationOverhead => "Communication Overhead",
            Phase::Communicate => "Communicate",
            Phase::LoadBalancing => "Load Balancing & Task Migration",
            Phase::Checkpoint => "Checkpointing",
            Phase::Recovery => "Crash Recovery",
            Phase::Integrity => "Message Integrity",
            Phase::Storage => "Out-of-core Storage",
        }
    }

    const fn index(self) -> usize {
        match self {
            Phase::Initialization => 0,
            Phase::ComputationOverhead => 1,
            Phase::Compute => 2,
            Phase::CommunicationOverhead => 3,
            Phase::Communicate => 4,
            Phase::LoadBalancing => 5,
            Phase::Checkpoint => 6,
            Phase::Recovery => 7,
            Phase::Integrity => 8,
            Phase::Storage => 9,
        }
    }
}

// `index()` must be a bijection onto `0..Phase::COUNT` that enumerates
// `ALL` in order; a phase added to one but not the other fails the build.
const _: () = {
    let mut i = 0;
    while i < Phase::COUNT {
        assert!(
            Phase::ALL[i].index() == i,
            "Phase::index() must enumerate Phase::ALL in order"
        );
        i += 1;
    }
};

/// Tolerance below which a negative duration is floating-point noise from
/// subtracting two nearby clock readings, not a sign-flipped window.
const NEGATIVE_NOISE: f64 = 1e-9;

/// Accumulated seconds per phase for one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseTimers {
    totals: [f64; Phase::COUNT],
    negative_clamps: u64,
}

impl PhaseTimers {
    /// Fresh, all-zero timers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `seconds` to `phase`.
    ///
    /// Negative durations are clamped to zero, but a duration more negative
    /// than rounding noise is counted in [`PhaseTimers::negative_clamps`]
    /// instead of silently vanishing from the §5.4 breakdown: a sign-flipped
    /// clock window is an accounting bug the report must surface.
    pub fn add(&mut self, phase: Phase, seconds: f64) {
        if seconds < -NEGATIVE_NOISE {
            self.negative_clamps += 1;
        }
        self.totals[phase.index()] += seconds.max(0.0);
    }

    /// Accumulated seconds in `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        self.totals[phase.index()]
    }

    /// Sum over all phases.
    pub fn total(&self) -> f64 {
        self.totals.iter().sum()
    }

    /// How many [`PhaseTimers::add`] calls clamped a genuinely negative
    /// duration (beyond rounding noise) up to zero. Anything non-zero means
    /// a clock window somewhere was measured backwards.
    pub fn negative_clamps(&self) -> u64 {
        self.negative_clamps
    }

    /// Element-wise sum with another rank's timers.
    pub fn merged(&self, other: &PhaseTimers) -> PhaseTimers {
        let mut out = self.clone();
        for i in 0..Phase::COUNT {
            out.totals[i] += other.totals[i];
        }
        out.negative_clamps += other.negative_clamps;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_independently() {
        let mut t = PhaseTimers::new();
        t.add(Phase::Compute, 1.0);
        t.add(Phase::Compute, 0.5);
        t.add(Phase::Communicate, 0.25);
        assert_eq!(t.get(Phase::Compute), 1.5);
        assert_eq!(t.get(Phase::Communicate), 0.25);
        assert_eq!(t.get(Phase::Initialization), 0.0);
        assert!((t.total() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_elementwise() {
        let mut a = PhaseTimers::new();
        a.add(Phase::Compute, 1.0);
        let mut b = PhaseTimers::new();
        b.add(Phase::Compute, 2.0);
        b.add(Phase::LoadBalancing, 3.0);
        let m = a.merged(&b);
        assert_eq!(m.get(Phase::Compute), 3.0);
        assert_eq!(m.get(Phase::LoadBalancing), 3.0);
    }

    #[test]
    fn labels_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for p in Phase::ALL {
            assert!(seen.insert(p.label()));
        }
    }

    #[test]
    fn index_is_a_bijection_onto_all() {
        let mut seen = [false; Phase::COUNT];
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "{p:?} out of order");
            assert!(!seen[p.index()], "{p:?} index collides");
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(Phase::COUNT, Phase::ALL.len());
    }

    #[test]
    fn negative_durations_are_clamped_and_counted() {
        let mut t = PhaseTimers::new();
        t.add(Phase::Compute, -0.5);
        assert_eq!(t.get(Phase::Compute), 0.0, "clamped to zero");
        assert_eq!(t.negative_clamps(), 1);
        // Rounding noise from subtracting nearby clock readings is not a
        // sign-flipped window and must not trip the counter.
        t.add(Phase::Compute, -1e-12);
        assert_eq!(t.negative_clamps(), 1);
        t.add(Phase::Compute, 2.0);
        assert_eq!(t.get(Phase::Compute), 2.0);

        let mut other = PhaseTimers::new();
        other.add(Phase::Recovery, -1.0);
        let m = t.merged(&other);
        assert_eq!(m.negative_clamps(), 2, "merge sums the clamp counter");
    }
}
