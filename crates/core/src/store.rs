//! Per-rank node state: the initialization phase (thesis §4.1) and the
//! bookkeeping every later phase reads.

use crate::audit::{entry_hash, AuditState};
use crate::costs::CostModel;
use crate::error::{PlatformError, StoreViolation};
use crate::hashtab::NodeTable;
use crate::paging::{PageConfig, Pager};
use crate::program::NodeProgram;
use ic2_graph::{Graph, NodeId, Partition};
use mpisim::{DiskTiming, FaultPlan, Wire};

/// Node information maintained per owned node (the thesis's `own_node`
/// struct, Figure 7): identity, neighbourhood, and which processors hold
/// this node as a shadow.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalNode {
    /// Global node id.
    pub id: NodeId,
    /// Global ids of the node's neighbours (the `neighboring_nodes[]`
    /// array).
    pub neighbors: Vec<NodeId>,
    /// Distinct remote processors owning at least one neighbour — the
    /// processors for which this node is a shadow (`shadow_for_procs[]`).
    /// Empty iff the node is internal.
    pub shadow_for: Vec<u32>,
}

impl LocalNode {
    /// Internal nodes have every neighbour on their own processor.
    pub fn is_internal(&self) -> bool {
        self.shadow_for.is_empty()
    }
}

/// Everything one rank keeps in local memory: the internal and peripheral
/// node lists, the data-node table (owned + shadow data) behind its hash
/// table, the replicated owner map (the thesis's `output_arr`), and the
/// communication-buffer plan.
#[derive(Debug, Clone)]
pub struct NodeStore<D> {
    /// This processor's rank.
    pub rank: u32,
    /// World size.
    pub nprocs: usize,
    /// Owned nodes with every neighbour local. Under
    /// [`crate::ExecutionPolicy::Hybrid`] this is the *interior* set the
    /// barrier-elided inner rounds advance on their own: no internal
    /// node's neighbourhood crosses a rank boundary, so their updates need
    /// no exchange until the next global round.
    pub internal: Vec<LocalNode>,
    /// Owned nodes with at least one remote neighbour — the *boundary*
    /// set. Hybrid execution defers their compute passes to the next
    /// global round's catch-up, which replays the elided iterations for
    /// exactly these nodes before the full exchange.
    pub peripheral: Vec<LocalNode>,
    /// Data for owned nodes *and* shadow nodes.
    pub table: NodeTable<D>,
    /// Global node → owning processor, replicated on every rank and kept
    /// in sync through migration broadcasts.
    pub owner: Vec<u32>,
    /// `send_counts[p]`: number of shadow entries this rank sends
    /// processor `p` each iteration (the thesis's
    /// `buffer_size_for_communication`).
    pub send_counts: Vec<usize>,
    /// Measured compute seconds per owned node since the last balancing
    /// round — the per-node load the load-aware migrant policy consults.
    /// Dense, indexed by global node id (entries for nodes this rank does
    /// not own stay 0.0): the per-node hot path pays an array index, not a
    /// hash.
    pub node_load: Vec<f64>,
    /// Delta-exchange resync latch: while set, the next shadow exchange
    /// must pack *every* peripheral node regardless of dirtiness, because
    /// some receiver's retained shadow values can no longer be assumed
    /// current. Set whenever ownership or table contents change outside
    /// the normal iteration flow (initial build, migration, evacuation,
    /// checkpoint restore) and cleared once a full pack has gone out.
    pub needs_resync: bool,
    /// Incremental state-audit digests (`RunConfig::with_state_audit`),
    /// `None` unless audits are enabled. Maintained through
    /// [`Self::audit_note`] at every legitimate write; deliberately *not*
    /// updated by injected memory corruption, which is how an audit
    /// boundary detects it.
    pub(crate) audit: Option<AuditState>,
    /// Out-of-core paging engine (`RunConfig::with_paging`), `None` when
    /// the whole table lives in RAM. When present, at most its budget of
    /// hash buckets is resident; the rest are checksummed pages on the
    /// rank's virtual disk.
    pub(crate) pager: Option<Pager>,
}

impl<D: Clone> NodeStore<D> {
    /// The initialization phase: build every data structure from the
    /// application graph, the static partition, and the program's initial
    /// node data. Returns the store plus the number of locally stored
    /// entries (owned + shadows), which the driver charges init cost for.
    pub fn build<P>(
        graph: &Graph,
        partition: &Partition,
        rank: u32,
        program: &P,
        hash_buckets: usize,
    ) -> Self
    where
        P: NodeProgram<Data = D>,
        D: Clone,
    {
        assert_eq!(
            graph.num_nodes(),
            partition.len(),
            "partition must cover the graph"
        );
        let nprocs = partition.num_parts();
        let owner: Vec<u32> = partition.as_slice().to_vec();
        let mut store = NodeStore {
            rank,
            nprocs,
            internal: Vec::new(),
            peripheral: Vec::new(),
            table: NodeTable::new(hash_buckets),
            owner,
            send_counts: vec![0; nprocs],
            node_load: vec![0.0; graph.num_nodes()],
            needs_resync: true,
            audit: None,
            pager: None,
        };
        // Owned node data...
        for v in graph.nodes() {
            if store.owner[v as usize] == rank {
                store.table.insert(v, program.init(v, graph));
            }
        }
        // ...then shadow data for remote neighbours of owned nodes
        // (InsertShadowsIntoHashTable).
        for v in graph.nodes() {
            if store.owner[v as usize] != rank {
                continue;
            }
            for &w in graph.neighbors(v) {
                if store.owner[w as usize] != rank && !store.table.contains(w) {
                    store.table.insert(w, program.init(w, graph));
                }
            }
        }
        store.rebuild_lists(graph);
        store
    }
}

impl<D> NodeStore<D> {
    /// Whether this rank owns `node`.
    pub fn owns(&self, node: NodeId) -> bool {
        self.owner[node as usize] == self.rank
    }

    /// Number of owned nodes.
    pub fn owned_count(&self) -> usize {
        self.internal.len() + self.peripheral.len()
    }

    /// Locally stored entries (owned + shadows).
    pub fn stored_count(&self) -> usize {
        self.table.len()
    }

    /// Rebuild the internal/peripheral lists, `shadow_for` sets and the
    /// send plan from the owner map — used at initialization and after
    /// task migration (the thesis re-derives `shadow_for_procs[]` and
    /// `buffer_size_for_communication` the same way at the end of
    /// `task_migrate`).
    pub fn rebuild_lists(&mut self, graph: &Graph) {
        self.internal.clear();
        self.peripheral.clear();
        self.send_counts = vec![0; self.nprocs];
        // Boundaries just changed shape: receivers may now hold shadows
        // this rank never refreshed under delta packing, so the next
        // exchange must be a full one.
        self.needs_resync = true;
        for v in graph.nodes() {
            if self.owner[v as usize] != self.rank {
                continue;
            }
            let neighbors: Vec<NodeId> = graph.neighbors(v).to_vec();
            let mut shadow_for: Vec<u32> = Vec::new();
            for &w in &neighbors {
                let p = self.owner[w as usize];
                if p != self.rank && !shadow_for.contains(&p) {
                    shadow_for.push(p);
                }
            }
            shadow_for.sort_unstable();
            for &p in &shadow_for {
                self.send_counts[p as usize] += 1;
            }
            let node = LocalNode {
                id: v,
                neighbors,
                shadow_for,
            };
            if node.is_internal() {
                self.internal.push(node);
            } else {
                self.peripheral.push(node);
            }
        }
    }

    /// Snapshot every locally stored entry — owned nodes *and* shadows —
    /// as `(id, current value)` pairs in ascending id order. Taken at an
    /// iteration boundary (shadows in sync, nothing pending) this is a
    /// complete, self-contained image of the rank's state: together with
    /// the owner map it is everything checkpoint recovery needs, including
    /// the neighbour data a rank adopting these nodes will want as its own
    /// shadows.
    pub fn snapshot_table(&self) -> Vec<(NodeId, D)>
    where
        D: Clone,
    {
        let mut entries: Vec<(NodeId, D)> =
            self.table.iter().map(|(id, d)| (id, d.clone())).collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        entries
    }

    /// Reset this rank's entire state from a checkpoint: install the
    /// restored owner map, repopulate the table from snapshot `entries`
    /// (keeping only what this rank needs under the new ownership — its
    /// owned nodes and their neighbours), and re-derive every list.
    pub fn restore(&mut self, graph: &Graph, owner: Vec<u32>, entries: Vec<(NodeId, D)>)
    where
        D: Clone,
    {
        assert_eq!(owner.len(), graph.num_nodes(), "owner map must cover graph");
        self.owner = owner;
        let mut needed = vec![false; graph.num_nodes()];
        for v in graph.nodes() {
            if self.owner[v as usize] == self.rank {
                needed[v as usize] = true;
                for &w in graph.neighbors(v) {
                    needed[w as usize] = true;
                }
            }
        }
        self.table = crate::hashtab::NodeTable::new(self.table.bucket_count());
        for (id, d) in entries {
            if needed[id as usize] {
                self.table.insert(id, d);
            }
        }
        self.reset_loads();
        self.rebuild_lists(graph);
    }

    /// Distinct shadow node ids this rank stores — remote neighbours of
    /// its owned nodes — ascending. Together with the owned ids this is
    /// the *needed* set: exactly what [`Self::restore`] retains, so audits
    /// over it never trip on stale entries kept after a migration.
    pub(crate) fn shadow_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = Vec::new();
        for node in &self.peripheral {
            for &w in &node.neighbors {
                if self.owner[w as usize] != self.rank && !ids.contains(&w) {
                    ids.push(w);
                }
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Turn on incremental audit digests, (re)seeding the maintained hash
    /// of every stored entry from its current value. Called at build time
    /// when audits are configured, and again after a checkpoint restore
    /// replaces the table wholesale.
    pub(crate) fn enable_audit(&mut self)
    where
        D: Wire,
    {
        let mut audit = AuditState::new(self.owner.len());
        for (id, d) in self.table.iter() {
            audit.record(id, entry_hash(id, d));
        }
        self.audit = Some(audit);
    }

    /// Record a legitimate write for the audit digest (no-op when audits
    /// are off). Every code path that changes a stored current value —
    /// promote, shadow unpack, migration insert, restore — must pass
    /// through here; injected corruption deliberately does not.
    pub(crate) fn audit_note(&mut self, id: NodeId, data: &D)
    where
        D: Wire,
    {
        if let Some(a) = self.audit.as_mut() {
            a.record(id, entry_hash(id, data));
        }
    }

    /// Recompute every needed entry's hash and compare against the
    /// maintained digest state: the audit-boundary integrity check.
    ///
    /// # Panics
    /// Panics if audits were never enabled.
    pub(crate) fn audit_verify(&self) -> crate::audit::AuditOutcome
    where
        D: Wire,
    {
        let audit = self.audit.as_ref().expect("audit_verify without audit");
        let paged = self.pager.is_some();
        let mut out = crate::audit::AuditOutcome::default();
        for node in self.internal.iter().chain(&self.peripheral) {
            out.checked += 1;
            let d = match self.table.get(node.id) {
                Some(d) => d,
                // Paged mode runs audits with every page faulted in; a
                // missing entry means its page lost every copy — report it
                // as a mismatch so the repair ladder escalates.
                None if paged => {
                    out.owned_mismatches += 1;
                    continue;
                }
                None => panic!("owned data present"),
            };
            let h = entry_hash(node.id, d);
            out.owned_root ^= h;
            if h != audit.hash_of(node.id) {
                out.owned_mismatches += 1;
            }
        }
        for id in self.shadow_ids() {
            out.checked += 1;
            let d = match self.table.get(id) {
                Some(d) => d,
                None if paged => {
                    out.shadow_mismatches += 1;
                    continue;
                }
                None => panic!("shadow data present"),
            };
            let h = entry_hash(id, d);
            if h != audit.hash_of(id) {
                out.shadow_mismatches += 1;
            }
        }
        out
    }

    /// Switch the table to out-of-core paged mode: install a pager over
    /// the hash buckets, then spill down to the configured budget (the
    /// spilled pages get their first verified disk commit here).
    pub(crate) fn enable_paging(&mut self, cfg: &PageConfig, plan: &FaultPlan, costs: &CostModel)
    where
        D: Clone + Wire,
    {
        let timing = DiskTiming {
            seek_seconds: costs.disk_seek,
            byte_seconds: costs.disk_byte,
        };
        let mut pager = Pager::new(
            self.rank as usize,
            self.table.bucket_count(),
            cfg,
            plan.clone(),
            timing,
            costs.disk_retry_backoff,
        );
        pager.spill_to_budget(&mut self.table);
        self.pager = Some(pager);
    }

    /// Whether the pager has latched damage (some page lost every verified
    /// copy) since the last restore. Always false in non-paged mode.
    pub(crate) fn disk_damaged(&self) -> bool {
        self.pager.as_ref().is_some_and(|p| p.damaged())
    }

    /// Drain the pager's accumulated virtual I/O seconds (zero when not
    /// paged); the caller charges them to the clock under
    /// [`crate::timers::Phase::Storage`].
    pub(crate) fn take_storage_seconds(&mut self) -> f64 {
        self.pager.as_mut().map_or(0.0, Pager::take_seconds)
    }

    /// Begin a whole-table phase (snapshot, migration, audit, gather):
    /// fault every page in. The pool runs over budget until
    /// [`Self::bulk_end`] — the documented transient for bulk phases.
    pub(crate) fn bulk_begin(&mut self)
    where
        D: Clone + Wire,
    {
        let NodeStore { pager, table, .. } = self;
        if let Some(p) = pager.as_mut() {
            p.page_in_all(table);
        }
    }

    /// End a whole-table phase: conservatively mark every page dirty (bulk
    /// phases mutate buckets behind the pager's back) and spill back down
    /// to budget.
    pub(crate) fn bulk_end(&mut self)
    where
        D: Clone + Wire,
    {
        let NodeStore { pager, table, .. } = self;
        if let Some(p) = pager.as_mut() {
            p.mark_all_dirty();
            p.spill_to_budget(table);
        }
    }

    /// End a *read-only* whole-table phase (snapshot, audit, gather):
    /// spill back down to budget without marking anything dirty — only
    /// pages that never reached disk get written.
    pub(crate) fn bulk_end_clean(&mut self)
    where
        D: Clone + Wire,
    {
        let NodeStore { pager, table, .. } = self;
        if let Some(p) = pager.as_mut() {
            p.spill_to_budget(table);
        }
    }

    /// Data-presence test that understands paging: an entry counts as
    /// stored if it is in RAM or could be on a non-resident page.
    fn has_entry(&self, id: NodeId) -> bool {
        self.table.contains(id)
            || self
                .pager
                .as_ref()
                .is_some_and(|p| !p.is_resident(self.table.bucket_index(id)))
    }

    /// Zero the per-node load samples (a balancing round consumed them, or
    /// a restore invalidated them). Keeps the dense allocation.
    pub fn reset_loads(&mut self) {
        self.node_load.iter_mut().for_each(|l| *l = 0.0);
    }

    /// Processors this rank must *receive* shadow data from: owners of the
    /// remote neighbours of its owned nodes, ascending.
    pub fn recv_procs(&self) -> Vec<u32> {
        let mut procs: Vec<u32> = Vec::new();
        for node in &self.peripheral {
            for &w in &node.neighbors {
                let p = self.owner[w as usize];
                if p != self.rank && !procs.contains(&p) {
                    procs.push(p);
                }
            }
        }
        procs.sort_unstable();
        procs
    }

    /// Processors this rank sends shadow data to, ascending.
    pub fn send_procs(&self) -> Vec<u32> {
        (0..self.nprocs as u32)
            .filter(|&p| self.send_counts[p as usize] > 0)
            .collect()
    }

    /// Check every structural invariant of the store against the graph;
    /// returns the first violation as a typed
    /// [`PlatformError::StoreInvariant`].
    pub fn validate(&self, graph: &Graph) -> Result<(), PlatformError> {
        self.check_invariants(graph)
            .map_err(PlatformError::StoreInvariant)
    }

    fn check_invariants(&self, graph: &Graph) -> Result<(), StoreViolation> {
        // Owner map shape.
        if self.owner.len() != graph.num_nodes() {
            return Err(StoreViolation::OwnerMapLength {
                expected: graph.num_nodes(),
                actual: self.owner.len(),
            });
        }
        // Every owned node in exactly one list, correctly classified.
        let mut owned_seen = std::collections::HashSet::new();
        for (list_name, list, internal) in [
            ("internal", &self.internal, true),
            ("peripheral", &self.peripheral, false),
        ] {
            for node in list {
                if self.owner[node.id as usize] != self.rank {
                    return Err(StoreViolation::NotOwned {
                        list: list_name,
                        node: node.id,
                    });
                }
                if !owned_seen.insert(node.id) {
                    return Err(StoreViolation::ListedTwice { node: node.id });
                }
                if node.neighbors != graph.neighbors(node.id) {
                    return Err(StoreViolation::StaleNeighborList { node: node.id });
                }
                let has_remote = node
                    .neighbors
                    .iter()
                    .any(|&w| self.owner[w as usize] != self.rank);
                if internal && has_remote {
                    return Err(StoreViolation::InternalHasRemoteNeighbor { node: node.id });
                }
                if !internal && !has_remote {
                    return Err(StoreViolation::PeripheralFullyLocal { node: node.id });
                }
                // shadow_for = sorted distinct remote owners.
                let mut expect: Vec<u32> = node
                    .neighbors
                    .iter()
                    .map(|&w| self.owner[w as usize])
                    .filter(|&p| p != self.rank)
                    .collect();
                expect.sort_unstable();
                expect.dedup();
                if node.shadow_for != expect {
                    return Err(StoreViolation::ShadowForMismatch { node: node.id });
                }
            }
        }
        // Every owned node per the owner map is listed.
        for v in graph.nodes() {
            if self.owner[v as usize] == self.rank && !owned_seen.contains(&v) {
                return Err(StoreViolation::UnlistedOwnedNode { node: v });
            }
        }
        // Data present (in RAM, or on a non-resident page in paged mode)
        // for owned nodes and all their neighbours.
        for v in graph.nodes() {
            if self.owner[v as usize] == self.rank {
                if !self.has_entry(v) {
                    return Err(StoreViolation::MissingData { node: v });
                }
                for &w in graph.neighbors(v) {
                    if !self.has_entry(w) {
                        return Err(StoreViolation::MissingNeighborData { node: w, of: v });
                    }
                }
            }
        }
        // Send plan consistent with shadow_for.
        let mut counts = vec![0usize; self.nprocs];
        for node in &self.peripheral {
            for &p in &node.shadow_for {
                counts[p as usize] += 1;
            }
        }
        if counts != self.send_counts {
            return Err(StoreViolation::SendPlanMismatch {
                planned: self.send_counts.clone(),
                derived: counts,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::AvgProgram;
    use ic2_graph::generators::hex_grid;
    use ic2_partition::{metis::Metis, StaticPartitioner};

    fn build_stores(k: usize) -> (Graph, Vec<NodeStore<i64>>) {
        let graph = hex_grid(4, 8);
        let part = Metis::default().partition(&graph, k);
        let program = AvgProgram::fine();
        let stores = (0..k as u32)
            .map(|r| NodeStore::build(&graph, &part, r, &program, 64))
            .collect();
        (graph, stores)
    }

    #[test]
    fn every_store_validates() {
        let (graph, stores) = build_stores(4);
        for s in &stores {
            s.validate(&graph).unwrap();
        }
    }

    #[test]
    fn owned_nodes_cover_graph_exactly_once() {
        let (graph, stores) = build_stores(4);
        let total: usize = stores.iter().map(|s| s.owned_count()).sum();
        assert_eq!(total, graph.num_nodes());
    }

    #[test]
    fn shadow_data_is_present_for_remote_neighbors() {
        let (graph, stores) = build_stores(4);
        for s in &stores {
            for node in &s.peripheral {
                for &w in &node.neighbors {
                    assert!(s.table.contains(w), "rank {} missing {w}", s.rank);
                }
            }
            // Shadows make the table strictly larger than the owned set
            // whenever the rank has peripherals.
            if !s.peripheral.is_empty() {
                assert!(s.stored_count() > s.owned_count());
            }
        }
        let _ = graph;
    }

    #[test]
    fn send_and_recv_plans_are_mirror_images() {
        let (_, stores) = build_stores(4);
        for s in &stores {
            for p in s.send_procs() {
                let other = &stores[p as usize];
                assert!(
                    other.recv_procs().contains(&s.rank),
                    "rank {} sends to {p} but {p} does not expect it",
                    s.rank
                );
            }
            for p in s.recv_procs() {
                let other = &stores[p as usize];
                assert!(
                    other.send_procs().contains(&s.rank),
                    "rank {} expects from {p} but {p} does not send",
                    s.rank
                );
            }
        }
    }

    #[test]
    fn single_rank_has_no_peripherals() {
        let (graph, stores) = build_stores(1);
        assert_eq!(stores[0].peripheral.len(), 0);
        assert_eq!(stores[0].internal.len(), graph.num_nodes());
        assert!(stores[0].send_procs().is_empty());
        assert!(stores[0].recv_procs().is_empty());
    }

    #[test]
    fn send_counts_match_comm_volume_metric() {
        let graph = hex_grid(4, 8);
        let part = Metis::default().partition(&graph, 4);
        let program = AvgProgram::fine();
        let total_sends: usize = (0..4u32)
            .map(|r| {
                NodeStore::build(&graph, &part, r, &program, 64)
                    .send_counts
                    .iter()
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(total_sends, ic2_graph::metrics::comm_volume(&graph, &part));
    }

    #[test]
    fn rebuild_after_owner_change_reclassifies() {
        let (graph, mut stores) = build_stores(2);
        // Move every node to rank 0 and rebuild: rank 0 all internal.
        let n = graph.num_nodes();
        for s in &mut stores {
            s.owner = vec![0; n];
            s.rebuild_lists(&graph);
        }
        assert_eq!(stores[0].owned_count(), n);
        assert!(stores[0].peripheral.is_empty());
        assert_eq!(stores[1].owned_count(), 0);
        assert!(stores[1].send_procs().is_empty());
    }
}
