//! The load balancing & task migration phase (thesis §4.3).
//!
//! Every balancing round:
//!
//! 1. the designated processor (rank 0) gathers each rank's execution time
//!    and communication-buffer lengths into the weighted runtime processor
//!    graph;
//! 2. the pluggable [`DynamicBalancer`] nominates busy → idle pairs;
//! 3. the pairs are broadcast, and for each pair the busy processor picks
//!    the migrating task that keeps the edge-cut smallest (Figure 9's
//!    "choose B over A" rule) among its nodes that are shadows for the
//!    idle processor;
//! 4. the migrating node's identity is broadcast (every rank must update
//!    its replicated owner map), the busy processor ships the neighbours'
//!    data to the idle one, and every affected rank re-derives its node
//!    lists, shadow sets and buffer plan — the same re-derivation the
//!    thesis performs at the end of `task_migrate`.
//!
//! The Table-1 role rules are enforced structurally: pairs come validated
//! from `ic2-balance`, migrations execute in a deterministic order, and a
//! processor receiving two tasks simply handles them sequentially
//! (Figure 10's P0).

use crate::checkpoint::has_new_crash;
use crate::costs::CostModel;
use crate::store::NodeStore;
use crate::timers::{Phase, PhaseTimers};
use ic2_balance::{DynamicBalancer, LoadReport};
use ic2_graph::{Graph, NodeId};
use mpisim::{ArgValue, CtlSlot, Rank, RetryPolicy};

/// Message tag for migrated task data.
pub const TAG_MIGRATE: u32 = 2;

/// Message tag for evacuation payloads shipped off a dying rank.
pub const TAG_EVACUATE: u32 = 3;

/// Sentinel broadcast when a busy processor has no migratable candidate.
const NO_CANDIDATE: u32 = u32::MAX;

/// What one balancing round accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BalanceOutcome {
    /// Tasks whose ownership actually moved.
    pub migrated: usize,
    /// Planned pair migrations abandoned because the payload was lost
    /// despite retries — the round degrades instead of deadlocking.
    pub skipped: usize,
}

/// How the busy processor picks the task to migrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrantPolicy {
    /// The thesis's Figure-9 rule: minimise the edge-cut increase,
    /// ignoring node load.
    #[default]
    MinCut,
    /// Load-aware extension (§7's "more rigorous algorithm"): prefer the
    /// candidate carrying the most measured compute time, bounded by the
    /// busy/idle gap so the move cannot overshoot; edge-cut breaks ties.
    LoadAware,
}

/// Execute one balancing round; returns what moved (and what was skipped).
///
/// A round runs up to `batch` planning sub-rounds. The first sub-round is
/// exactly the thesis's protocol: gather the runtime processor graph at the
/// designated processor, plan busy → idle pairs, migrate one task per pair.
/// Further sub-rounds implement the §7 extension ("a more rigorous
/// algorithm ... would specify the number of tasks that should be
/// migrated"): the measured times are re-estimated after each migration
/// (per-node load = processor time / owned nodes) and the balancer re-plans
/// against the updated processor graph, so a large imbalance drains over
/// several tasks instead of one. `batch = 1` reproduces the thesis.
///
/// `dead` marks ranks that have failed and been evacuated: they are never
/// planned as busy or idle, and their (zero) measured times are masked with
/// the surviving mean so a dead rank does not read as an attractive
/// migration target.
#[allow(clippy::too_many_arguments)]
pub fn balance_round<D, B>(
    rank: &Rank,
    graph: &Graph,
    store: &mut NodeStore<D>,
    balancer: &mut B,
    comp_time: f64,
    batch: u32,
    policy: MigrantPolicy,
    dead: &[bool],
    costs: &CostModel,
    timers: &mut PhaseTimers,
) -> BalanceOutcome
where
    D: Clone + mpisim::Wire + Send + 'static,
    B: DynamicBalancer,
{
    let t0 = rank.wtime();
    let nprocs = store.nprocs;
    rank.advance(costs.lb_per_proc * nprocs as f64);

    // Measured execution times, replicated so every rank can update the
    // estimates identically across sub-rounds. Dead ranks are masked with
    // the surviving mean: the balancer sees them as perfectly average, so
    // it neither drains them nor feeds them.
    let mut times: Vec<f64> = rank.gather(0, &comp_time).unwrap_or_default();
    rank.bcast(0, &mut times);
    if dead.iter().any(|&d| d) {
        let alive: Vec<f64> = times
            .iter()
            .zip(dead)
            .filter(|&(_, &d)| !d)
            .map(|(&t, _)| t)
            .collect();
        let mean = alive.iter().sum::<f64>() / alive.len().max(1) as f64;
        for (t, &d) in times.iter_mut().zip(dead) {
            if d {
                *t = mean;
            }
        }
    }

    let mut outcome = BalanceOutcome::default();
    for _sub in 0..batch.max(1) {
        // 1. Refresh the communication-volume edges (they change as tasks
        //    move) and plan at the designated processor.
        let my_counts: Vec<u64> = store.send_counts.iter().map(|&c| c as u64).collect();
        let all_counts = rank.gather(0, &my_counts);
        let mut plan: Vec<(u32, u32)> = Vec::new();
        if let Some(counts) = all_counts {
            let mut edges = vec![vec![0u64; nprocs]; nprocs];
            for i in 0..nprocs {
                for j in 0..nprocs {
                    if i != j {
                        edges[i][j] = counts[i][j] + counts[j][i];
                    }
                }
            }
            let report = LoadReport {
                times: times.clone(),
                edges,
            };
            plan = balancer
                .plan(&report)
                .into_iter()
                .map(|p| (p.busy, p.idle))
                .filter(|&(b, i)| !dead[b as usize] && !dead[i as usize])
                .collect();
        }

        // 2. Broadcast the plan; an empty plan ends the round.
        rank.bcast(0, &mut plan);
        if plan.is_empty() {
            break;
        }

        // 3. Execute each pair. All ranks walk the plan in the same order,
        //    so point-to-point traffic matches up; buffered sends make
        //    multiple receives at one idle processor (Figure 10) safely
        //    sequential.
        let mut moved_this_sub = 0;
        for &(busy, idle) in &plan {
            let mut chosen: (u32, f64) = (NO_CANDIDATE, 0.0);
            if rank.rank() as u32 == busy {
                chosen = select_migrant(graph, store, busy, idle, policy, &times)
                    .unwrap_or((NO_CANDIDATE, 0.0));
            }
            rank.bcast(busy as usize, &mut chosen);
            let (migrating, moved_load) = chosen;
            if migrating == NO_CANDIDATE {
                continue;
            }

            let mut delivered = true;
            if rank.rank() as u32 == busy {
                // Ship the migrating node's neighbours' data: they become
                // shadows on the idle processor, needed before its next
                // iteration. (The idle processor already holds the
                // migrating node's own data — it was a shadow there.)
                let payload: Vec<(u32, D)> = graph
                    .neighbors(migrating)
                    .iter()
                    .map(|&w| {
                        let data = store
                            .table
                            .get(w)
                            .unwrap_or_else(|| panic!("busy rank lacks data for neighbour {w}"))
                            .clone();
                        (w, data)
                    })
                    .collect();
                rank.advance(costs.migrate_per_entry * payload.len() as f64);
                // A lost payload degrades to skipping this pair rather
                // than committing an ownership change the idle processor
                // can never honour.
                delivered =
                    rank.send_reliable(idle as usize, TAG_MIGRATE, &payload, RetryPolicy::GiveUp);
            }
            // Commit protocol: every rank learns whether the payload made
            // it before anyone touches the owner map, so the replicated
            // state never diverges.
            rank.bcast(busy as usize, &mut delivered);
            if !delivered {
                outcome.skipped += 1;
                continue;
            }
            if rank.rank() as u32 == idle {
                let payload: Vec<(u32, D)> = rank.recv(busy as usize, TAG_MIGRATE);
                rank.advance(costs.migrate_per_entry * payload.len() as f64);
                if store.audit.is_some() {
                    rank.advance(costs.audit_per_entry * payload.len() as f64);
                }
                for (id, data) in payload {
                    // Insert new shadows; refresh ones already held.
                    store.audit_note(id, &data);
                    store.table.insert(id, data);
                }
                debug_assert!(
                    store.table.contains(migrating),
                    "idle rank must already hold the migrating node's data as a shadow"
                );
            }

            // Re-estimate the load shift on every rank identically: the
            // migrated task carries its measured compute time (falling
            // back to the busy processor's per-node average when nothing
            // was measured yet).
            let shift = if moved_load > 0.0 {
                moved_load
            } else {
                let busy_count = store.owner.iter().filter(|&&p| p == busy).count().max(1);
                times[busy as usize] / busy_count as f64
            };
            times[busy as usize] -= shift;
            times[idle as usize] += shift;

            // Every rank: change of ownership, then re-derive node lists,
            // shadow_for sets and the buffer plan.
            store.owner[migrating as usize] = idle;
            store.rebuild_lists(graph);
            rank.trace_instant(
                "migration",
                "balance",
                &[
                    ("node", ArgValue::U64(migrating as u64)),
                    ("from", ArgValue::U64(busy as u64)),
                    ("to", ArgValue::U64(idle as u64)),
                ],
            );
            outcome.migrated += 1;
            moved_this_sub += 1;
        }
        if moved_this_sub == 0 {
            break;
        }
    }

    timers.add(Phase::LoadBalancing, rank.wtime() - t0);
    rank.trace_span("LoadBalancing", "phase", t0, &[]);
    outcome
}

/// Replicated evacuation plan for a failed rank: every node it owns is
/// assigned to the surviving rank owning the most of its neighbours
/// (locality first — ties go to the lowest rank), falling back to the
/// least-loaded survivor for nodes with no surviving neighbour owner.
/// Deterministic and computed from replicated state only, so every rank
/// derives the identical plan without communication.
pub fn plan_evacuation(
    graph: &Graph,
    owner: &[u32],
    dead_rank: u32,
    dead: &[bool],
) -> Vec<(NodeId, u32)> {
    let mut lost = vec![false; dead.len()];
    lost[dead_rank as usize] = true;
    plan_adoption(graph, owner, &lost, dead)
}

/// The multi-failure generalization of [`plan_evacuation`]: assign every
/// node owned by a `lost` rank to a survivor (neither lost nor `excluded`),
/// preferring the survivor owning the most of the node's neighbours —
/// the pure-replication adoption rule that minimizes new edge-cut — with
/// the least-loaded survivor as the fallback for isolated orphans.
/// A pure function of replicated inputs, so every rank derives the
/// identical plan with no communication; rollback recovery relies on that.
pub fn plan_adoption(
    graph: &Graph,
    owner: &[u32],
    lost: &[bool],
    excluded: &[bool],
) -> Vec<(NodeId, u32)> {
    let nprocs = lost.len();
    // Running owned-node counts, updated as nodes are assigned so the
    // least-loaded fallback spreads orphans instead of piling them up.
    let mut load = vec![0usize; nprocs];
    for &p in owner {
        load[p as usize] += 1;
    }
    let survivor = |p: u32| !lost[p as usize] && !excluded[p as usize];
    let mut plan = Vec::new();
    for v in graph.nodes() {
        if !lost[owner[v as usize] as usize] {
            continue;
        }
        let mut votes = vec![0usize; nprocs];
        for &w in graph.neighbors(v) {
            let p = owner[w as usize];
            if survivor(p) {
                votes[p as usize] += 1;
            }
        }
        let by_neighbours = (0..nprocs as u32)
            .filter(|&p| survivor(p) && votes[p as usize] > 0)
            .max_by_key(|&p| (votes[p as usize], std::cmp::Reverse(p)));
        let target = by_neighbours.or_else(|| {
            (0..nprocs as u32)
                .filter(|&p| survivor(p))
                .min_by_key(|&p| (load[p as usize], p))
        });
        let target = target.expect("at least one rank must survive to adopt the orphans");
        load[owner[v as usize] as usize] -= 1;
        load[target as usize] += 1;
        plan.push((v, target));
    }
    plan
}

/// Symmetric communication-volume matrix derived *locally* from the
/// replicated owner map: `edges[i][j]` counts the shadow entries exchanged
/// between processors `i` and `j` each iteration (both directions).
/// Equals the matrix [`balance_round`] gathers from per-rank
/// `send_counts`, but needs no communication — crash-mode balancing uses
/// it so the planning inputs stay replicated even while ranks are dying.
pub fn comm_edges(graph: &Graph, owner: &[u32], nprocs: usize) -> Vec<Vec<u64>> {
    let mut counts = vec![vec![0u64; nprocs]; nprocs];
    for v in graph.nodes() {
        let i = owner[v as usize] as usize;
        let mut seen: Vec<u32> = Vec::new();
        for &w in graph.neighbors(v) {
            let p = owner[w as usize];
            if p as usize != i && !seen.contains(&p) {
                seen.push(p);
                counts[i][p as usize] += 1;
            }
        }
    }
    let mut edges = vec![vec![0u64; nprocs]; nprocs];
    for (i, row) in edges.iter_mut().enumerate() {
        for (j, e) in row.iter_mut().enumerate() {
            if i != j {
                *e = counts[i][j] + counts[j][i];
            }
        }
    }
    edges
}

/// Crash-tolerant balancing round. Protocol-equivalent to
/// [`balance_round`], but every collective is replaced by a
/// failure-detecting control-plane exchange and every planning input is
/// replicated:
///
/// * execution times travel in the entry exchange's load slots;
/// * communication edges come from [`comm_edges`] (no gather);
/// * the plan is computed *locally on every rank* from those replicated
///   inputs (the balancer itself is replicated state);
/// * the busy processor announces its chosen migrant through a control
///   word and commits delivery through a control flag.
///
/// If any exchange's verdict reports a crash not already in
/// `known_crashes`, the round aborts with `Err(())` and the caller rolls
/// back to the last checkpoint — a half-executed round is exactly the kind
/// of torn state rollback recovery exists to discard.
#[allow(clippy::too_many_arguments)]
pub(crate) fn balance_round_crash<D, B>(
    rank: &Rank,
    graph: &Graph,
    store: &mut NodeStore<D>,
    balancer: &mut B,
    comp_time: f64,
    batch: u32,
    policy: MigrantPolicy,
    dead: &[bool],
    known_crashes: &[bool],
    costs: &CostModel,
    timers: &mut PhaseTimers,
) -> Result<BalanceOutcome, ()>
where
    D: Clone + mpisim::Wire + Send + 'static,
    B: DynamicBalancer,
{
    let t0 = rank.wtime();
    let nprocs = store.nprocs;
    let me = rank.rank() as u32;
    let result = (|| {
        rank.advance(costs.lb_per_proc * nprocs as f64);

        // Entry exchange doubles as the times allgather.
        let verdict = rank.ctl_exchange(CtlSlot {
            word: 0,
            load: comp_time,
            flag: false,
        });
        if has_new_crash(&verdict, known_crashes) {
            return Err(());
        }
        let mut times: Vec<f64> = (0..nprocs)
            .map(|r| verdict.load(r).unwrap_or(0.0))
            .collect();
        if dead.iter().any(|&d| d) {
            let alive: Vec<f64> = times
                .iter()
                .zip(dead)
                .filter(|&(_, &d)| !d)
                .map(|(&t, _)| t)
                .collect();
            let mean = alive.iter().sum::<f64>() / alive.len().max(1) as f64;
            for (t, &d) in times.iter_mut().zip(dead) {
                if d {
                    *t = mean;
                }
            }
        }

        let mut outcome = BalanceOutcome::default();
        for _sub in 0..batch.max(1) {
            let report = LoadReport {
                times: times.clone(),
                edges: comm_edges(graph, &store.owner, nprocs),
            };
            let plan: Vec<(u32, u32)> = balancer
                .plan(&report)
                .into_iter()
                .map(|p| (p.busy, p.idle))
                .filter(|&(b, i)| !dead[b as usize] && !dead[i as usize])
                .collect();
            if plan.is_empty() {
                break;
            }

            let mut moved_this_sub = 0;
            for &(busy, idle) in &plan {
                let mut chosen: (u32, f64) = (NO_CANDIDATE, 0.0);
                if me == busy {
                    chosen = select_migrant(graph, store, busy, idle, policy, &times)
                        .unwrap_or((NO_CANDIDATE, 0.0));
                }
                let verdict = rank.ctl_exchange(CtlSlot {
                    word: chosen.0 as u64,
                    load: chosen.1,
                    flag: false,
                });
                if has_new_crash(&verdict, known_crashes) {
                    return Err(());
                }
                let migrating = match verdict.word(busy as usize) {
                    Some(w) => w as u32,
                    None => return Err(()),
                };
                let moved_load = verdict.load(busy as usize).unwrap_or(0.0);
                if migrating == NO_CANDIDATE {
                    continue;
                }

                let mut delivered = true;
                if me == busy {
                    let payload: Vec<(u32, D)> = graph
                        .neighbors(migrating)
                        .iter()
                        .map(|&w| {
                            let data = store
                                .table
                                .get(w)
                                .unwrap_or_else(|| panic!("busy rank lacks data for neighbour {w}"))
                                .clone();
                            (w, data)
                        })
                        .collect();
                    rank.advance(costs.migrate_per_entry * payload.len() as f64);
                    delivered = rank.send_reliable(
                        idle as usize,
                        TAG_MIGRATE,
                        &payload,
                        RetryPolicy::GiveUp,
                    );
                }
                // Commit: the busy processor's flag says whether the
                // payload made it, agreed by everyone before the owner map
                // changes.
                let verdict = rank.ctl_exchange(CtlSlot {
                    word: 0,
                    load: 0.0,
                    flag: delivered,
                });
                if has_new_crash(&verdict, known_crashes) {
                    return Err(());
                }
                if !verdict.flag(busy as usize).unwrap_or(false) {
                    outcome.skipped += 1;
                    continue;
                }
                if me == idle {
                    // The payload was deposited before the commit exchange
                    // resolved, so this receive cannot block; `Died` here
                    // means a crash slipped in and the round must abort.
                    match rank.try_recv::<Vec<(u32, D)>>(busy as usize, TAG_MIGRATE) {
                        Ok(payload) => {
                            rank.advance(costs.migrate_per_entry * payload.len() as f64);
                            if store.audit.is_some() {
                                rank.advance(costs.audit_per_entry * payload.len() as f64);
                            }
                            for (id, data) in payload {
                                store.audit_note(id, &data);
                                store.table.insert(id, data);
                            }
                        }
                        Err(_) => return Err(()),
                    }
                }

                let shift = if moved_load > 0.0 {
                    moved_load
                } else {
                    let busy_count = store.owner.iter().filter(|&&p| p == busy).count().max(1);
                    times[busy as usize] / busy_count as f64
                };
                times[busy as usize] -= shift;
                times[idle as usize] += shift;

                store.owner[migrating as usize] = idle;
                store.rebuild_lists(graph);
                rank.trace_instant(
                    "migration",
                    "balance",
                    &[
                        ("node", ArgValue::U64(migrating as u64)),
                        ("from", ArgValue::U64(busy as u64)),
                        ("to", ArgValue::U64(idle as u64)),
                    ],
                );
                outcome.migrated += 1;
                moved_this_sub += 1;
            }
            if moved_this_sub == 0 {
                break;
            }
        }
        Ok(outcome)
    })();
    timers.add(Phase::LoadBalancing, rank.wtime() - t0);
    rank.trace_span("LoadBalancing", "phase", t0, &[]);
    result
}

/// Evacuate every task off `dead_rank` onto survivors. Called
/// synchronously on **all** ranks (including the dying one, which is still
/// cooperative — see DESIGN.md's fault model) once the failure is agreed.
/// The dying rank ships each receiving survivor the assigned nodes' data
/// plus their neighbours' data (it holds all of it: owned data plus shadow
/// copies, in sync at the iteration boundary); shipping uses escalated
/// reliable sends, because evacuation must not itself be lost to the fault
/// plan. Returns the number of nodes evacuated.
pub fn evacuate_rank<D>(
    rank: &Rank,
    graph: &Graph,
    store: &mut NodeStore<D>,
    dead_rank: u32,
    dead: &[bool],
    costs: &CostModel,
    timers: &mut PhaseTimers,
) -> usize
where
    D: Clone + mpisim::Wire + Send + 'static,
{
    let t0 = rank.wtime();
    let plan = plan_evacuation(graph, &store.owner, dead_rank, dead);
    let me = rank.rank() as u32;

    // Receivers in ascending order, so the point-to-point traffic pairs up
    // deterministically on both sides.
    let mut receivers: Vec<u32> = plan.iter().map(|&(_, p)| p).collect();
    receivers.sort_unstable();
    receivers.dedup();

    for &s in &receivers {
        if me == dead_rank {
            let mut payload: Vec<(u32, D)> = Vec::new();
            let mut packed = std::collections::HashSet::new();
            for &(v, target) in &plan {
                if target != s {
                    continue;
                }
                for id in std::iter::once(v).chain(graph.neighbors(v).iter().copied()) {
                    if packed.insert(id) {
                        let data = store.table.get(id).unwrap_or_else(|| {
                            panic!("dying rank {dead_rank} lacks data for {id}")
                        });
                        payload.push((id, data.clone()));
                    }
                }
            }
            rank.advance(costs.migrate_per_entry * payload.len() as f64);
            rank.send_reliable(s as usize, TAG_EVACUATE, &payload, RetryPolicy::Escalate);
        } else if me == s {
            let payload: Vec<(u32, D)> = rank.recv(dead_rank as usize, TAG_EVACUATE);
            rank.advance(costs.migrate_per_entry * payload.len() as f64);
            if store.audit.is_some() {
                rank.advance(costs.audit_per_entry * payload.len() as f64);
            }
            for (id, data) in payload {
                store.audit_note(id, &data);
                store.table.insert(id, data);
            }
        }
    }

    // Every rank commits the identical ownership change and re-derives its
    // lists; the dead rank ends up owning nothing and degenerates to a
    // zombie that only participates in collectives.
    for &(v, target) in &plan {
        store.owner[v as usize] = target;
    }
    store.rebuild_lists(graph);
    timers.add(Phase::LoadBalancing, rank.wtime() - t0);
    rank.trace_instant(
        "evacuation",
        "fault",
        &[
            ("dead_rank", ArgValue::U64(dead_rank as u64)),
            ("nodes", ArgValue::U64(plan.len() as u64)),
        ],
    );
    rank.trace_span("LoadBalancing", "phase", t0, &[]);
    plan.len()
}

/// The thesis's `GetMigratingNode`: among the busy processor's peripheral
/// nodes that are shadows for the idle processor, pick the one whose move
/// increases the edge-cut least — `(edges kept on busy) − (edges already on
/// idle)`, minimised; first minimum wins ([`MigrantPolicy::MinCut`]).
/// [`MigrantPolicy::LoadAware`] instead maximises the candidate's measured
/// compute load, capped at the busy/idle time gap so a migration never
/// overshoots the balance point; the cut delta breaks ties. `None` when
/// nothing qualifies (e.g. the busy processor is down to its last node).
///
/// Returns the chosen node and its measured load.
pub fn select_migrant<D>(
    _graph: &Graph,
    store: &NodeStore<D>,
    busy: u32,
    idle: u32,
    policy: MigrantPolicy,
    times: &[f64],
) -> Option<(NodeId, f64)> {
    if store.owned_count() <= 1 {
        return None;
    }
    let load_of = |id: NodeId| store.node_load[id as usize];
    // Loads are bucketed to 0.1 ms so near-equal candidates tie and the
    // edge-cut criterion (locality) decides between them.
    let bucket = |load: f64| (load * 1e4).round() as i64;
    let mut best: Option<(NodeId, f64)> = None;
    let mut best_key: (i64, i64) = (0, 0);
    for node in &store.peripheral {
        if !node.shadow_for.contains(&idle) {
            continue;
        }
        let mut cut_delta = 0i64;
        for &w in &node.neighbors {
            let p = store.owner[w as usize];
            if p == busy {
                cut_delta += 1;
            } else if p == idle {
                cut_delta -= 1;
            }
        }
        let load = load_of(node.id);
        let key = match policy {
            // Smaller cut delta first; load ignored.
            MigrantPolicy::MinCut => (cut_delta, 0),
            MigrantPolicy::LoadAware => {
                // Moving more than the busy/idle gap would invert the
                // imbalance; such candidates are skipped.
                let gap = times
                    .get(busy as usize)
                    .zip(times.get(idle as usize))
                    .map(|(b, i)| b - i)
                    .unwrap_or(f64::INFINITY);
                if load > gap.max(0.0) {
                    continue;
                }
                // Locality guard: only candidates whose move leaves the
                // edge-cut (nearly) unchanged qualify — migrations that
                // scatter the partition cost more in communication than
                // they recover in balance.
                if cut_delta > 1 {
                    continue;
                }
                // Bigger (bucketed) load first, then smaller cut delta.
                (-bucket(load), cut_delta)
            }
        };
        if best.is_none() || key < best_key {
            best = Some((node.id, load));
            best_key = key;
        }
    }
    best
}

/// Convenience used by `balance_round` callers for the thesis's periodic
/// trigger (`iter % every == 0`).
pub fn is_balance_iteration(iter: u32, every: Option<u32>) -> bool {
    match every {
        Some(e) if e > 0 => iter.is_multiple_of(e),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::AvgProgram;
    use ic2_graph::generators::hex_grid;
    use ic2_graph::Partition;

    /// 2x4 hex strip split left/right between two ranks.
    fn two_rank_store() -> (Graph, NodeStore<i64>) {
        let graph = hex_grid(2, 4);
        let part = Partition::new(
            graph
                .nodes()
                .map(|v| if v % 4 < 2 { 0 } else { 1 })
                .collect(),
            2,
        );
        let store = NodeStore::build(&graph, &part, 0, &AvgProgram::fine(), 16);
        (graph, store)
    }

    #[test]
    fn migrant_selection_prefers_minimal_cut_growth() {
        let (graph, store) = two_rank_store();
        let m = select_migrant(&graph, &store, 0, 1, MigrantPolicy::MinCut, &[1.0, 0.5])
            .map(|(id, _)| id)
            .expect("candidate exists");
        // The chosen node must actually be a shadow for rank 1.
        let node = store
            .peripheral
            .iter()
            .find(|n| n.id == m)
            .expect("migrant is peripheral");
        assert!(node.shadow_for.contains(&1));
        // And no other candidate may have a strictly smaller cut delta.
        let delta = |id: NodeId| {
            graph
                .neighbors(id)
                .iter()
                .map(|&w| match store.owner[w as usize] {
                    0 => 1i64,
                    1 => -1,
                    _ => 0,
                })
                .sum::<i64>()
        };
        for cand in &store.peripheral {
            if cand.shadow_for.contains(&1) {
                assert!(delta(m) <= delta(cand.id), "node {} beats {m}", cand.id);
            }
        }
    }

    #[test]
    fn last_node_is_never_migrated() {
        let graph = hex_grid(1, 2);
        let part = Partition::new(vec![0, 1], 2);
        let store = NodeStore::build(&graph, &part, 0, &AvgProgram::fine(), 16);
        assert_eq!(store.owned_count(), 1);
        assert_eq!(
            select_migrant(&graph, &store, 0, 1, MigrantPolicy::MinCut, &[1.0, 0.5]),
            None
        );
    }

    #[test]
    fn no_candidate_for_non_neighbor_processor() {
        let (graph, store) = two_rank_store();
        // Processor 5 does not exist in the shadow sets.
        assert_eq!(
            select_migrant(&graph, &store, 0, 5, MigrantPolicy::MinCut, &[1.0, 0.5]),
            None
        );
    }

    #[test]
    fn balance_iteration_trigger() {
        assert!(is_balance_iteration(10, Some(10)));
        assert!(is_balance_iteration(20, Some(10)));
        assert!(!is_balance_iteration(5, Some(10)));
        assert!(!is_balance_iteration(10, None));
        assert!(!is_balance_iteration(10, Some(0)));
    }
}
