//! The load balancing & task migration phase (thesis §4.3).
//!
//! Every balancing round:
//!
//! 1. the designated processor (rank 0) gathers each rank's execution time
//!    and communication-buffer lengths into the weighted runtime processor
//!    graph;
//! 2. the pluggable [`DynamicBalancer`] nominates busy → idle pairs;
//! 3. the pairs are broadcast, and for each pair the busy processor picks
//!    the migrating task that keeps the edge-cut smallest (Figure 9's
//!    "choose B over A" rule) among its nodes that are shadows for the
//!    idle processor;
//! 4. the migrating node's identity is broadcast (every rank must update
//!    its replicated owner map), the busy processor ships the neighbours'
//!    data to the idle one, and every affected rank re-derives its node
//!    lists, shadow sets and buffer plan — the same re-derivation the
//!    thesis performs at the end of `task_migrate`.
//!
//! The Table-1 role rules are enforced structurally: pairs come validated
//! from `ic2-balance`, migrations execute in a deterministic order, and a
//! processor receiving two tasks simply handles them sequentially
//! (Figure 10's P0).

use crate::costs::CostModel;
use crate::store::NodeStore;
use crate::timers::{Phase, PhaseTimers};
use ic2_balance::{DynamicBalancer, LoadReport};
use ic2_graph::{Graph, NodeId};
use mpisim::Rank;

/// Message tag for migrated task data.
pub const TAG_MIGRATE: u32 = 2;

/// Sentinel broadcast when a busy processor has no migratable candidate.
const NO_CANDIDATE: u32 = u32::MAX;

/// How the busy processor picks the task to migrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrantPolicy {
    /// The thesis's Figure-9 rule: minimise the edge-cut increase,
    /// ignoring node load.
    #[default]
    MinCut,
    /// Load-aware extension (§7's "more rigorous algorithm"): prefer the
    /// candidate carrying the most measured compute time, bounded by the
    /// busy/idle gap so the move cannot overshoot; edge-cut breaks ties.
    LoadAware,
}

/// Execute one balancing round; returns the number of tasks migrated.
///
/// A round runs up to `batch` planning sub-rounds. The first sub-round is
/// exactly the thesis's protocol: gather the runtime processor graph at the
/// designated processor, plan busy → idle pairs, migrate one task per pair.
/// Further sub-rounds implement the §7 extension ("a more rigorous
/// algorithm ... would specify the number of tasks that should be
/// migrated"): the measured times are re-estimated after each migration
/// (per-node load = processor time / owned nodes) and the balancer re-plans
/// against the updated processor graph, so a large imbalance drains over
/// several tasks instead of one. `batch = 1` reproduces the thesis.
#[allow(clippy::too_many_arguments)]
pub fn balance_round<D, B>(
    rank: &Rank,
    graph: &Graph,
    store: &mut NodeStore<D>,
    balancer: &mut B,
    comp_time: f64,
    batch: u32,
    policy: MigrantPolicy,
    costs: &CostModel,
    timers: &mut PhaseTimers,
) -> usize
where
    D: Clone + mpisim::Wire + Send + 'static,
    B: DynamicBalancer,
{
    let t0 = rank.wtime();
    let nprocs = store.nprocs;
    rank.advance(costs.lb_per_proc * nprocs as f64);

    // Measured execution times, replicated so every rank can update the
    // estimates identically across sub-rounds.
    let mut times: Vec<f64> = rank.gather(0, &comp_time).unwrap_or_default();
    rank.bcast(0, &mut times);

    let mut migrated = 0;
    for _sub in 0..batch.max(1) {
        // 1. Refresh the communication-volume edges (they change as tasks
        //    move) and plan at the designated processor.
        let my_counts: Vec<u64> = store.send_counts.iter().map(|&c| c as u64).collect();
        let all_counts = rank.gather(0, &my_counts);
        let mut plan: Vec<(u32, u32)> = Vec::new();
        if let Some(counts) = all_counts {
            let mut edges = vec![vec![0u64; nprocs]; nprocs];
            for i in 0..nprocs {
                for j in 0..nprocs {
                    if i != j {
                        edges[i][j] = counts[i][j] + counts[j][i];
                    }
                }
            }
            let report = LoadReport {
                times: times.clone(),
                edges,
            };
            plan = balancer
                .plan(&report)
                .into_iter()
                .map(|p| (p.busy, p.idle))
                .collect();
        }

        // 2. Broadcast the plan; an empty plan ends the round.
        rank.bcast(0, &mut plan);
        if plan.is_empty() {
            break;
        }

        // 3. Execute each pair. All ranks walk the plan in the same order,
        //    so point-to-point traffic matches up; buffered sends make
        //    multiple receives at one idle processor (Figure 10) safely
        //    sequential.
        let mut moved_this_sub = 0;
        for &(busy, idle) in &plan {
            let mut chosen: (u32, f64) = (NO_CANDIDATE, 0.0);
            if rank.rank() as u32 == busy {
                chosen = select_migrant(graph, store, busy, idle, policy, &times)
                    .unwrap_or((NO_CANDIDATE, 0.0));
            }
            rank.bcast(busy as usize, &mut chosen);
            let (migrating, moved_load) = chosen;
            if migrating == NO_CANDIDATE {
                continue;
            }

            if rank.rank() as u32 == busy {
                // Ship the migrating node's neighbours' data: they become
                // shadows on the idle processor, needed before its next
                // iteration. (The idle processor already holds the
                // migrating node's own data — it was a shadow there.)
                let payload: Vec<(u32, D)> = graph
                    .neighbors(migrating)
                    .iter()
                    .map(|&w| {
                        let data = store
                            .table
                            .get(w)
                            .unwrap_or_else(|| panic!("busy rank lacks data for neighbour {w}"))
                            .clone();
                        (w, data)
                    })
                    .collect();
                rank.advance(costs.migrate_per_entry * payload.len() as f64);
                rank.send(idle as usize, TAG_MIGRATE, &payload);
            } else if rank.rank() as u32 == idle {
                let payload: Vec<(u32, D)> = rank.recv(busy as usize, TAG_MIGRATE);
                rank.advance(costs.migrate_per_entry * payload.len() as f64);
                for (id, data) in payload {
                    // Insert new shadows; refresh ones already held.
                    store.table.insert(id, data);
                }
                debug_assert!(
                    store.table.contains(migrating),
                    "idle rank must already hold the migrating node's data as a shadow"
                );
            }

            // Re-estimate the load shift on every rank identically: the
            // migrated task carries its measured compute time (falling
            // back to the busy processor's per-node average when nothing
            // was measured yet).
            let shift = if moved_load > 0.0 {
                moved_load
            } else {
                let busy_count = store
                    .owner
                    .iter()
                    .filter(|&&p| p == busy)
                    .count()
                    .max(1);
                times[busy as usize] / busy_count as f64
            };
            times[busy as usize] -= shift;
            times[idle as usize] += shift;

            // Every rank: change of ownership, then re-derive node lists,
            // shadow_for sets and the buffer plan.
            store.owner[migrating as usize] = idle;
            store.rebuild_lists(graph);
            migrated += 1;
            moved_this_sub += 1;
        }
        if moved_this_sub == 0 {
            break;
        }
    }

    timers.add(Phase::LoadBalancing, rank.wtime() - t0);
    migrated
}

/// The thesis's `GetMigratingNode`: among the busy processor's peripheral
/// nodes that are shadows for the idle processor, pick the one whose move
/// increases the edge-cut least — `(edges kept on busy) − (edges already on
/// idle)`, minimised; first minimum wins ([`MigrantPolicy::MinCut`]).
/// [`MigrantPolicy::LoadAware`] instead maximises the candidate's measured
/// compute load, capped at the busy/idle time gap so a migration never
/// overshoots the balance point; the cut delta breaks ties. `None` when
/// nothing qualifies (e.g. the busy processor is down to its last node).
///
/// Returns the chosen node and its measured load.
pub fn select_migrant<D>(
    _graph: &Graph,
    store: &NodeStore<D>,
    busy: u32,
    idle: u32,
    policy: MigrantPolicy,
    times: &[f64],
) -> Option<(NodeId, f64)> {
    if store.owned_count() <= 1 {
        return None;
    }
    let load_of = |id: NodeId| store.node_load.get(&id).copied().unwrap_or(0.0);
    // Loads are bucketed to 0.1 ms so near-equal candidates tie and the
    // edge-cut criterion (locality) decides between them.
    let bucket = |load: f64| (load * 1e4).round() as i64;
    let mut best: Option<(NodeId, f64)> = None;
    let mut best_key: (i64, i64) = (0, 0);
    for node in &store.peripheral {
        if !node.shadow_for.contains(&idle) {
            continue;
        }
        let mut cut_delta = 0i64;
        for &w in &node.neighbors {
            let p = store.owner[w as usize];
            if p == busy {
                cut_delta += 1;
            } else if p == idle {
                cut_delta -= 1;
            }
        }
        let load = load_of(node.id);
        let key = match policy {
            // Smaller cut delta first; load ignored.
            MigrantPolicy::MinCut => (cut_delta, 0),
            MigrantPolicy::LoadAware => {
                // Moving more than the busy/idle gap would invert the
                // imbalance; such candidates are skipped.
                let gap = times
                    .get(busy as usize)
                    .zip(times.get(idle as usize))
                    .map(|(b, i)| b - i)
                    .unwrap_or(f64::INFINITY);
                if load > gap.max(0.0) {
                    continue;
                }
                // Locality guard: only candidates whose move leaves the
                // edge-cut (nearly) unchanged qualify — migrations that
                // scatter the partition cost more in communication than
                // they recover in balance.
                if cut_delta > 1 {
                    continue;
                }
                // Bigger (bucketed) load first, then smaller cut delta.
                (-bucket(load), cut_delta)
            }
        };
        if best.is_none() || key < best_key {
            best = Some((node.id, load));
            best_key = key;
        }
    }
    best
}

/// Convenience used by `balance_round` callers for the thesis's periodic
/// trigger (`iter % every == 0`).
pub fn is_balance_iteration(iter: u32, every: Option<u32>) -> bool {
    match every {
        Some(e) if e > 0 => iter % e == 0,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::AvgProgram;
    use ic2_graph::generators::hex_grid;
    use ic2_graph::Partition;

    /// 2x4 hex strip split left/right between two ranks.
    fn two_rank_store() -> (Graph, NodeStore<i64>) {
        let graph = hex_grid(2, 4);
        let part = Partition::new(
            graph
                .nodes()
                .map(|v| if v % 4 < 2 { 0 } else { 1 })
                .collect(),
            2,
        );
        let store = NodeStore::build(&graph, &part, 0, &AvgProgram::fine(), 16);
        (graph, store)
    }

    #[test]
    fn migrant_selection_prefers_minimal_cut_growth() {
        let (graph, store) = two_rank_store();
        let m = select_migrant(&graph, &store, 0, 1, MigrantPolicy::MinCut, &[1.0, 0.5])
            .map(|(id, _)| id)
            .expect("candidate exists");
        // The chosen node must actually be a shadow for rank 1.
        let node = store
            .peripheral
            .iter()
            .find(|n| n.id == m)
            .expect("migrant is peripheral");
        assert!(node.shadow_for.contains(&1));
        // And no other candidate may have a strictly smaller cut delta.
        let delta = |id: NodeId| {
            graph
                .neighbors(id)
                .iter()
                .map(|&w| match store.owner[w as usize] {
                    0 => 1i64,
                    1 => -1,
                    _ => 0,
                })
                .sum::<i64>()
        };
        for cand in &store.peripheral {
            if cand.shadow_for.contains(&1) {
                assert!(delta(m) <= delta(cand.id), "node {} beats {m}", cand.id);
            }
        }
    }

    #[test]
    fn last_node_is_never_migrated() {
        let graph = hex_grid(1, 2);
        let part = Partition::new(vec![0, 1], 2);
        let store = NodeStore::build(&graph, &part, 0, &AvgProgram::fine(), 16);
        assert_eq!(store.owned_count(), 1);
        assert_eq!(
            select_migrant(&graph, &store, 0, 1, MigrantPolicy::MinCut, &[1.0, 0.5]),
            None
        );
    }

    #[test]
    fn no_candidate_for_non_neighbor_processor() {
        let (graph, store) = two_rank_store();
        // Processor 5 does not exist in the shadow sets.
        assert_eq!(
            select_migrant(&graph, &store, 0, 5, MigrantPolicy::MinCut, &[1.0, 0.5]),
            None
        );
    }

    #[test]
    fn balance_iteration_trigger() {
        assert!(is_balance_iteration(10, Some(10)));
        assert!(is_balance_iteration(20, Some(10)));
        assert!(!is_balance_iteration(5, Some(10)));
        assert!(!is_balance_iteration(10, None));
        assert!(!is_balance_iteration(10, Some(0)));
    }
}
