//! Membership, quorum-gated degraded mode, and live rank rejoin.
//!
//! Crash recovery ([`crate::checkpoint`]) assumes a failed rank is gone
//! for good. A *network partition* (`FaultPlan::with_partition`) violates
//! that premise: ranks on the far side of a cut are unreachable but alive,
//! and will return when the partition heals. This module layers a
//! membership protocol over the checkpoint machinery so a partitioned run
//! still terminates with oracle-exact results:
//!
//! * **Two-level verdicts.** The control plane is never cut, so every
//!   [`mpisim::Rank::ctl_exchange`] still resolves world-wide. Its verdict
//!   now distinguishes *confirmed dead* ranks (crashes — permanent) from
//!   *suspected* ranks (unreachable across an active partition per the
//!   quorum rule in [`mpisim::FaultPlan`] — may return). Both sets are
//!   snapshotted under the barrier lock, so all ranks receive bit-identical
//!   copies.
//!
//! * **Quorum-gated degraded mode.** When a verdict suspects ranks, the
//!   majority side keeps iterating with the suspected set *frozen*: sends
//!   to and receives from suspected peers are skipped (each skipped receive
//!   is charged the detection timeout), their shadow values go stale, and
//!   the side work that would cross the cut — balancing, checkpoints,
//!   straggler reactions, kill processing — is suspended. The minority
//!   *parks*: it stops mutating its state entirely and merely mirrors the
//!   majority's collective footprint (barriers + control exchanges) so the
//!   world-wide collectives keep resolving.
//!
//! * **Heal and rejoin.** The first verdict with an empty suspected set
//!   after a degraded stretch triggers the rejoin: mailboxes are purged,
//!   each parked rank re-fetches its committed checkpoint image from its
//!   ring-successor buddy (the same buddy copy crash recovery adopts from),
//!   and then *everyone* rolls back to the committed checkpoint and replays
//!   the degraded stretch for real. Replay is charged to the virtual
//!   clock, so partitions cost time instead of silently vanishing, and the
//!   final answer stays byte-identical to the sequential oracle.
//!
//! * **Crashes during a partition are deferred.** Rolling back across an
//!   active cut would stall on unreachable buddies, so a crash verdict
//!   received while degraded only marks the rank; the heal rollback adopts
//!   its nodes. Partition *blips* too short to span a detection boundary
//!   still lose data frames (the sender observes the cut); the affected
//!   iteration is discarded by a plain rollback, flagged through a bit
//!   piggybacked on the control word.

use crate::audit;
use crate::checkpoint::TAG_GATHER;
use crate::checkpoint::{has_new_crash, roll_back, take_checkpoint, Checkpoint, Counters};
use crate::driver::{IntegrityCounters, IterTracer, RankOutcome, RunConfig};
use crate::exchange;
use crate::imbalance::StragglerDetector;
use crate::migrate;
use crate::program::{ComputeCtx, NodeProgram};
use crate::store::NodeStore;
use crate::timers::{Phase, PhaseTimers};
use ic2_balance::DynamicBalancer;
use ic2_graph::{Graph, Partition};
use mpisim::{ArgValue, CtlSlot, Died, Rank, RetryPolicy, Wire};

/// Message tag for checkpoint images re-fetched from buddies at rejoin.
pub const TAG_REJOIN: u32 = 7;

/// Bit piggybacked on the control-exchange metadata word when a rank
/// observed a partition cut during the iteration. The low 63 bits still
/// carry the delta-exchange changed-node count (bounded far below 2^63).
const CUT_FLAG: u64 = 1 << 63;

/// The partition-tolerant SPMD body: the crash-mode flow of control
/// (see [`crate::checkpoint::run_rank_with_recovery`]) extended with the
/// membership protocol above. Run under [`mpisim::World::run_fallible`].
pub(crate) fn run_rank_with_membership<P, B>(
    rank: &Rank,
    graph: &Graph,
    program: &P,
    partition: &Partition,
    balancer: &mut B,
    cfg: &RunConfig,
) -> RankOutcome<P::Data>
where
    P: NodeProgram,
    P::Data: Clone + Wire + Send + 'static,
    B: DynamicBalancer,
{
    let me = rank.rank() as u32;
    let nprocs = cfg.nprocs;
    let num_nodes = graph.num_nodes();
    let mut timers = PhaseTimers::new();

    // ---- Initialization (identical to the fault-free path) -------------
    let t0 = rank.wtime();
    let mut store = NodeStore::build(graph, partition, me, program, cfg.hash_buckets);
    rank.advance(cfg.costs.init_per_node * store.stored_count() as f64);
    if cfg.audit_every.is_some() {
        store.enable_audit();
        rank.advance(cfg.costs.audit_per_entry * store.stored_count() as f64);
    }
    timers.add(Phase::Initialization, rank.wtime() - t0);
    rank.trace_span("Initialization", "phase", t0, &[]);
    if cfg.validate {
        store
            .validate(graph)
            .unwrap_or_else(|e| panic!("rank {me}: init invariant: {e}"));
    }
    rank.barrier();

    let mut ckpt: Checkpoint<P::Data> = Checkpoint::genesis(
        partition.as_slice().to_vec(),
        nprocs,
        balancer.checkpoint_state(),
    );
    let mut counters = Counters::default();
    let mut dead = vec![false; nprocs];
    let mut crashed = vec![false; nprocs];
    let mut ranks_died: Vec<u32> = Vec::new();
    let mut detector = cfg.straggler.map(|(t, p)| StragglerDetector::new(t, p));
    let mut rollbacks = 0u32;
    let mut iterations_replayed = 0u32;
    let mut checkpoint_bytes = 0u64;
    let mut delta_stats = exchange::DeltaStats::default();
    let mut quiescent_iterations = 0u32;
    let mut inner_iterations = 0u32;
    let mut barriers_elided = 0u64;
    // Membership state. `frozen` is the agreed suspected set governing the
    // *next* iteration — replicated, because every rank copies it out of
    // the same bit-identical verdict.
    let mut frozen = vec![false; nprocs];
    let mut degraded_iterations = 0u32;
    let mut rejoins = 0u32;
    let mut rejoin_bytes = 0u64;
    let mut suspected_peak = 0u32;
    let mut integrity = IntegrityCounters::default();
    // Monotonic corruption-sweep pass counter; never rolled back, so
    // replay after a repair makes fresh decisions (see
    // [`crate::audit::inject_memory_faults`]). Sweeps and audits are
    // suspended while degraded: the whole degraded stretch is discarded
    // and replayed at heal anyway, and auditing it would charge repairs
    // for state that is about to be rewound.
    let mut mem_epoch = 0u64;
    let has_mem_faults = cfg.world.faults.has_memory_corruption();
    let plan_kills = cfg.world.faults.has_kills();
    let my_kill = cfg.world.faults.kill_time(me as usize);
    let k = cfg.checkpoint_every.max(1);

    macro_rules! recover {
        ($completed:expr, $iter:ident) => {{
            iterations_replayed += $completed - ckpt.iter;
            rollbacks += 1;
            roll_back(
                rank,
                graph,
                program,
                cfg,
                &mut store,
                balancer,
                &mut ckpt,
                &mut crashed,
                &mut dead,
                &mut ranks_died,
                &mut counters,
                &mut integrity,
                &mut timers,
                &mut checkpoint_bytes,
            );
            detector = cfg.straggler.map(|(t, p)| StragglerDetector::new(t, p));
            $iter = ckpt.iter + 1;
        }};
    }

    macro_rules! note_suspicion {
        ($verdict:expr) => {{
            let n = $verdict.suspected.iter().filter(|&&s| s).count() as u32;
            if n > suspected_peak {
                suspected_peak = n;
            }
        }};
    }

    // The heal sequence: rejoin the previously-suspected ranks (buddy
    // state transfer over the now-healed links), then discard the whole
    // degraded stretch with a standard rollback and replay it for real.
    macro_rules! heal_rejoin {
        ($completed:expr, $iter:ident) => {{
            let t0 = rank.wtime();
            let rejoining: Vec<u32> = (0..nprocs as u32)
                .filter(|&r| frozen[r as usize] && !crashed[r as usize])
                .collect();
            // Flush partition-era leftovers and synchronise before any
            // rejoin traffic flows; the verdict also refreshes the agreed
            // crash set (deferred crashes are already marked locally) and
            // carries the replica census in the otherwise-unused slot word
            // (bit `c` = this rank's ward for owner `c` passes its
            // staging-time checksums), so the fetch below escalates past
            // replicas that rotted during the degraded stretch.
            rank.purge_mailbox();
            let mut census = 0u64;
            for w in &ckpt.wards {
                let bad = audit::count_bad_entries(&w.entries, &w.sums);
                if bad == 0 {
                    census |= 1u64 << w.rank;
                } else {
                    integrity.bad_replicas += 1;
                    rank.trace_instant(
                        "bad_replica",
                        "integrity",
                        &[
                            ("owner", ArgValue::U64(w.rank as u64)),
                            ("entries", ArgValue::U64(bad)),
                        ],
                    );
                }
            }
            if store.audit.is_some() {
                let verified: usize = ckpt.wards.iter().map(|w| w.entries.len()).sum();
                rank.advance(cfg.costs.audit_per_entry * verified as f64);
            }
            let v = rank.ctl_exchange(CtlSlot {
                word: census,
                ..CtlSlot::default()
            });
            for r in v.dead_ranks() {
                crashed[r] = true;
            }
            if !ckpt.genesis {
                // Each rejoining rank re-fetches its committed image from
                // the nearest holder whose census bit confirms an intact
                // replica — the parked copy is treated as untrusted,
                // exactly as a real deployment would. The schedule is a
                // pure function of replicated state, so both sides derive
                // it identically.
                for &r in &rejoining {
                    let holder = match ckpt.holders_of(r, cfg.replication).into_iter().find(|&h| {
                        !crashed[h as usize]
                            && v.word(h as usize).is_some_and(|w| w & (1u64 << r) != 0)
                    }) {
                        Some(h) => h,
                        // No live holder with an intact copy: fall back to
                        // the rank's own in-memory copy of the committed
                        // image (it parked, it did not crash; if that copy
                        // rotted too, the heal rollback's own census
                        // rescues or escalates it).
                        None => continue,
                    };
                    if me == holder && r != me {
                        if let Some(w) = ckpt.wards.iter().find(|w| w.rank == r) {
                            let entries = &w.entries;
                            {
                                rank.advance(cfg.costs.checkpoint_per_entry * entries.len() as f64);
                                rank.send_reliable(
                                    r as usize,
                                    TAG_REJOIN,
                                    entries,
                                    RetryPolicy::Escalate,
                                );
                            }
                        }
                    } else if me == r {
                        // A failed fetch means the holder died this
                        // instant; keep the local copy and let the
                        // rollback's own verdict pick the crash up.
                        if let Ok(entries) =
                            rank.try_recv::<Vec<(u32, P::Data)>>(holder as usize, TAG_REJOIN)
                        {
                            rejoin_bytes += entries.to_bytes().len() as u64;
                            rank.advance(cfg.costs.checkpoint_per_entry * entries.len() as f64);
                            // Fresh staging-time checksums: the refetched
                            // image replaces `mine`, so its integrity
                            // baseline must follow (it is consulted by the
                            // rollback census moments from now).
                            ckpt.mine_sums = audit::entry_sums(&entries);
                            if store.audit.is_some() {
                                rank.advance(cfg.costs.audit_per_entry * entries.len() as f64);
                            }
                            ckpt.mine = entries;
                        }
                    }
                }
            }
            timers.add(Phase::Recovery, rank.wtime() - t0);
            rank.trace_span("Recovery", "phase", t0, &[]);
            rejoins += 1;
            rank.trace_instant(
                "rejoin",
                "membership",
                &[
                    ("ranks", ArgValue::U64(rejoining.len() as u64)),
                    ("to_iter", ArgValue::U64(ckpt.iter as u64)),
                ],
            );
            frozen.iter_mut().for_each(|f| *f = false);
            rank.set_parked(false);
            recover!($completed, $iter);
        }};
    }

    let mut iter: u32 = 1;
    let (total, gathered) = 'run: loop {
        while iter <= cfg.iterations {
            let degraded = frozen.iter().any(|&f| f);
            let parked = degraded && frozen[me as usize];
            rank.set_parked(parked);
            if degraded {
                degraded_iterations += 1;
            }
            // Degraded iterations are keep-the-lights-on work that the
            // heal rollback discards wholesale; like crash-mode garbage
            // iterations they get no iteration span.
            let tracer = if degraded {
                None
            } else {
                IterTracer::begin(rank, &timers)
            };
            let mut comp_this_iter = 0.0;

            // ---- Inner (barrier-elided) rounds -------------------------
            // Healthy rounds only: `frozen` is replicated (every rank
            // copies it out of the same bit-identical verdict), so all
            // ranks agree on whether this round elides its collectives.
            // While degraded, every round is a global round — suspicion
            // can only be refreshed at a control exchange, and the parked
            // minority must keep mirroring the majority's collective
            // footprint. Partition onset is therefore only ever detected
            // at a global round, exactly like crashes under recovery.
            if !degraded && !crate::driver::is_global_round(iter, cfg, true) {
                for phase in 0..program.phases() {
                    let ctx = ComputeCtx {
                        iter,
                        phase,
                        rank: me,
                        num_nodes,
                    };
                    exchange::inner_step(
                        rank,
                        program,
                        &mut store,
                        &ctx,
                        &cfg.costs,
                        &mut timers,
                        &mut comp_this_iter,
                    );
                    barriers_elided += 1;
                }
                inner_iterations += 1;
                counters.comp_since_balance += comp_this_iter;
                if has_mem_faults {
                    audit::inject_memory_faults(rank, &mut store, mem_epoch);
                    mem_epoch += 1;
                }
                if let Some(tracer) = tracer {
                    tracer.finish(rank, iter, &timers);
                }
                iter += 1;
                continue;
            }

            let mut changed_this_iter = 0u64;
            let mut saw_cut = false;
            if parked {
                // Park: mirror the majority's collective footprint —
                // one barrier per phase plus the boundary exchange below —
                // without touching any replicated state. The timeout
                // charge keeps the virtual clock moving even when *no*
                // group has quorum and every rank parks.
                rank.charge_partition_timeout();
                for _ in 0..program.phases() {
                    rank.barrier();
                }
            } else {
                // Replay the boundary passes the elided rounds skipped.
                // Healthy stretches only: degraded rounds are all global
                // (nothing was elided since the onset verdict, which fell
                // on a pure-schedule global round), and the whole degraded
                // stretch is discarded at heal anyway.
                if !degraded {
                    let missed = crate::driver::elided_before(iter, cfg, true);
                    if missed > 0
                        && exchange::catch_up_boundary(
                            rank,
                            program,
                            &mut store,
                            iter,
                            missed,
                            program.phases(),
                            me,
                            num_nodes,
                            &cfg.costs,
                            &mut timers,
                            &mut comp_this_iter,
                        )
                    {
                        store.needs_resync = true;
                    }
                }
                for phase in 0..program.phases() {
                    let ctx = ComputeCtx {
                        iter,
                        phase,
                        rank: me,
                        num_nodes,
                    };
                    let (_, cut, stats) = exchange::step_crash_aware(
                        rank,
                        graph,
                        program,
                        &mut store,
                        &ctx,
                        &cfg.costs,
                        &mut timers,
                        &mut comp_this_iter,
                        cfg.delta_exchange,
                        &frozen,
                    );
                    saw_cut |= cut;
                    delta_stats.absorb(stats);
                    changed_this_iter += stats.changed_nodes;
                }
                counters.comp_since_balance += comp_this_iter;
            }

            // ---- Iteration-end detection point -------------------------
            // Kill announcements are suspended while degraded (processing
            // them would mutate state the heal rollback must rewind); a
            // kill whose time passed mid-partition is announced at the
            // first post-heal boundary instead.
            let i_died = !degraded
                && plan_kills
                && !dead[me as usize]
                && my_kill.is_some_and(|t| rank.wtime() >= t);
            let verdict = rank.ctl_exchange(CtlSlot {
                word: changed_this_iter | ((saw_cut as u64) * CUT_FLAG),
                load: comp_this_iter,
                flag: i_died,
            });
            note_suspicion!(verdict);
            let any_cut = (0..nprocs).any(|r| verdict.word(r).is_some_and(|w| w & CUT_FLAG != 0));
            let new_crash = has_new_crash(&verdict, &crashed);

            if degraded || verdict.any_suspected() {
                if new_crash {
                    // Defer: rolling back across an active cut would stall
                    // on unreachable buddies. The heal rollback adopts.
                    for r in verdict.dead_ranks() {
                        crashed[r] = true;
                    }
                }
                if degraded && !verdict.any_suspected() {
                    heal_rejoin!(iter, iter);
                    continue;
                }
                frozen.copy_from_slice(&verdict.suspected);
                iter += 1;
                continue;
            }
            if new_crash {
                recover!(iter, iter);
                continue;
            }
            if any_cut {
                // A blip too short to span a detection boundary: frames
                // were lost but nobody is suspected any more, so a plain
                // rollback discards the damaged iteration.
                rank.trace_instant("blip_rollback", "membership", &[]);
                recover!(iter, iter);
                continue;
            }
            if cfg.delta_exchange {
                let global: u64 = (0..nprocs)
                    .filter_map(|r| verdict.word(r))
                    .map(|w| w & !CUT_FLAG)
                    .sum();
                if global == 0 {
                    quiescent_iterations += 1;
                }
            }

            // ---- Cooperative fail-stop (announced via the flag bits) ----
            if plan_kills {
                let newly: Vec<u32> = (0..nprocs as u32)
                    .filter(|&r| verdict.flag(r as usize) == Some(true) && !dead[r as usize])
                    .collect();
                for &d in &newly {
                    dead[d as usize] = true;
                    ranks_died.push(d);
                }
                for &d in &newly {
                    counters.evacuated += migrate::evacuate_rank(
                        rank,
                        graph,
                        &mut store,
                        d,
                        &dead,
                        &cfg.costs,
                        &mut timers,
                    );
                }
                if !newly.is_empty() {
                    counters.comp_since_balance = 0.0;
                    store.reset_loads();
                    if cfg.validate {
                        store.validate(graph).unwrap_or_else(|e| {
                            panic!("rank {me}: post-evacuation invariant: {e}")
                        });
                    }
                }
            }

            // ---- Periodic load balancing (control-plane protocol) -------
            let mut balanced_this_iter = false;
            if iter >= cfg.balance_offset.max(1)
                && migrate::is_balance_iteration(iter - cfg.balance_offset, cfg.balance_every)
            {
                match migrate::balance_round_crash(
                    rank,
                    graph,
                    &mut store,
                    balancer,
                    counters.comp_since_balance,
                    cfg.migration_batch,
                    cfg.migrant_policy,
                    &dead,
                    &crashed,
                    &cfg.costs,
                    &mut timers,
                ) {
                    Ok(out) => {
                        counters.migrations += out.migrated;
                        counters.skipped += out.skipped;
                        counters.comp_since_balance = 0.0;
                        store.reset_loads();
                        balanced_this_iter = true;
                        if cfg.validate {
                            store.validate(graph).unwrap_or_else(|e| {
                                panic!("rank {me}: post-migration invariant: {e}")
                            });
                        }
                    }
                    Err(()) => {
                        recover!(iter, iter);
                        continue;
                    }
                }
            }

            // ---- Straggler detection (from the boundary verdict) --------
            if let Some(det) = detector.as_mut() {
                let alive: Vec<f64> = (0..nprocs)
                    .filter(|&r| !dead[r])
                    .map(|r| verdict.load(r).unwrap_or(0.0))
                    .collect();
                let max = alive.iter().cloned().fold(0.0f64, f64::max);
                let mean = alive.iter().sum::<f64>() / alive.len().max(1) as f64;
                if det.observe(max, mean) && !balanced_this_iter {
                    match migrate::balance_round_crash(
                        rank,
                        graph,
                        &mut store,
                        balancer,
                        counters.comp_since_balance,
                        cfg.migration_batch,
                        cfg.migrant_policy,
                        &dead,
                        &crashed,
                        &cfg.costs,
                        &mut timers,
                    ) {
                        Ok(out) => {
                            counters.migrations += out.migrated;
                            counters.skipped += out.skipped;
                            counters.emergency_balances += 1;
                            counters.comp_since_balance = 0.0;
                            store.reset_loads();
                            if cfg.validate {
                                store.validate(graph).unwrap_or_else(|e| {
                                    panic!("rank {me}: post-emergency-balance invariant: {e}")
                                });
                            }
                        }
                        Err(()) => {
                            recover!(iter, iter);
                            continue;
                        }
                    }
                }
            }

            // ---- Silent-corruption injection & state audit -------------
            // Only on healthy boundaries: the degraded path `continue`d
            // above, and its whole stretch is discarded at heal anyway.
            // The audit always precedes the checkpoint below, so a
            // snapshot can never baseline corrupt state.
            if has_mem_faults {
                audit::inject_memory_faults(rank, &mut store, mem_epoch);
                mem_epoch += 1;
            }
            if let Some(ka) = cfg.audit_every {
                let due =
                    iter.is_multiple_of(ka) || iter.is_multiple_of(k) || iter == cfg.iterations;
                if due {
                    let t0 = rank.wtime();
                    let outcome = store.audit_verify();
                    rank.advance(cfg.costs.audit_per_entry * outcome.checked as f64);
                    let word = u64::from(outcome.owned_mismatches > 0)
                        | (u64::from(outcome.shadow_mismatches > 0) << 1);
                    let verdict = rank.ctl_exchange(CtlSlot {
                        word,
                        load: 0.0,
                        flag: false,
                    });
                    timers.add(Phase::Integrity, rank.wtime() - t0);
                    note_suspicion!(verdict);
                    integrity.audit_mismatches +=
                        outcome.owned_mismatches + outcome.shadow_mismatches;
                    rank.trace_instant(
                        "audit",
                        "integrity",
                        &[
                            ("iter", ArgValue::U64(iter as u64)),
                            ("checked", ArgValue::U64(outcome.checked as u64)),
                            ("root", ArgValue::U64(outcome.owned_root)),
                        ],
                    );
                    if outcome.bad() {
                        rank.trace_instant(
                            "audit_mismatch",
                            "integrity",
                            &[
                                ("iter", ArgValue::U64(iter as u64)),
                                ("owned", ArgValue::U64(outcome.owned_mismatches)),
                                ("shadow", ArgValue::U64(outcome.shadow_mismatches)),
                            ],
                        );
                    }
                    if verdict.any_suspected() {
                        // Partition onset at the audit boundary: even a
                        // bad verdict cannot be repaired across an active
                        // cut — go degraded; the heal rollback replays
                        // (and thereby repairs) this stretch anyway.
                        for r in verdict.dead_ranks() {
                            crashed[r] = true;
                        }
                        frozen.copy_from_slice(&verdict.suspected);
                        iter += 1;
                        continue;
                    }
                    if has_new_crash(&verdict, &crashed) {
                        recover!(iter, iter);
                        continue;
                    }
                    let any_owned =
                        (0..nprocs).any(|r| verdict.word(r).is_some_and(|w| w & 1 != 0));
                    let any_shadow =
                        (0..nprocs).any(|r| verdict.word(r).is_some_and(|w| w & 2 != 0));
                    if any_owned || (any_shadow && ka > 1) {
                        integrity.repairs += 1;
                        recover!(iter, iter);
                        continue;
                    }
                    if any_shadow {
                        let (saw_death, saw_cut) = exchange::resync_shadows(
                            rank,
                            &mut store,
                            &cfg.costs,
                            &mut timers,
                            &frozen,
                        );
                        integrity.shadow_resyncs += 1;
                        integrity.repairs += 1;
                        rank.trace_instant(
                            "shadow_resync",
                            "integrity",
                            &[("iter", ArgValue::U64(iter as u64))],
                        );
                        if saw_death || saw_cut {
                            recover!(iter, iter);
                            continue;
                        }
                    }
                }
            }

            // ---- Coordinated checkpoint --------------------------------
            if iter.is_multiple_of(k) {
                match take_checkpoint(
                    rank,
                    &mut store,
                    None,
                    iter,
                    &dead,
                    &ranks_died,
                    &counters,
                    balancer,
                    &crashed,
                    cfg.replication,
                    &cfg.costs,
                    &mut timers,
                    &mut checkpoint_bytes,
                ) {
                    Ok(c) => ckpt = c,
                    Err(v) => {
                        if v.any_suspected() {
                            // Partition onset mid-checkpoint: the staged
                            // snapshot is gone, but the iteration itself
                            // completed — go degraded on the previous
                            // committed checkpoint.
                            note_suspicion!(v);
                            for r in v.dead_ranks() {
                                crashed[r] = true;
                            }
                            frozen.copy_from_slice(&v.suspected);
                            iter += 1;
                            continue;
                        }
                        recover!(iter, iter);
                        continue;
                    }
                }
            }
            if let Some(tracer) = tracer {
                tracer.finish(rank, iter, &timers);
            }
            iter += 1;
        }

        // ---- Degraded past the end of the iteration space --------------
        // The run must not finish degraded: the majority's post-partition
        // results are provisional and the minority never computed the tail
        // at all. Every rank parks until the partition heals, then the
        // heal rollback replays the tail for real.
        if frozen.iter().any(|&f| f) {
            rank.set_parked(true);
            loop {
                degraded_iterations += 1;
                rank.charge_partition_timeout();
                let verdict = rank.ctl_exchange(CtlSlot::default());
                note_suspicion!(verdict);
                for r in verdict.dead_ranks() {
                    crashed[r] = true;
                }
                if !verdict.any_suspected() {
                    heal_rejoin!(iter - 1, iter);
                    continue 'run;
                }
                frozen.copy_from_slice(&verdict.suspected);
            }
        }

        // ---- Crash- and partition-tolerant final gather ----------------
        let verdict = rank.ctl_exchange(CtlSlot::default());
        note_suspicion!(verdict);
        if verdict.any_suspected() {
            for r in verdict.dead_ranks() {
                crashed[r] = true;
            }
            frozen.copy_from_slice(&verdict.suspected);
            continue 'run;
        }
        if has_new_crash(&verdict, &crashed) {
            recover!(iter - 1, iter);
            continue 'run;
        }
        let designated = (0..nprocs)
            .find(|&r| !crashed[r])
            .expect("at least one rank survives") as u32;
        let owned: Vec<(u32, P::Data)> = store
            .internal
            .iter()
            .chain(store.peripheral.iter())
            .map(|node| {
                (
                    node.id,
                    store
                        .table
                        .get(node.id)
                        .unwrap_or_else(|| {
                            crate::error::invariant_violated(
                                me,
                                format!("no data for owned node {} at gather", node.id),
                            )
                        })
                        .clone(),
                )
            })
            .collect();
        let mut gathered: Option<Vec<(u32, P::Data)>> = None;
        let mut gather_cut = false;
        if me == designated {
            let mut all = owned;
            match crate::checkpoint::gather_chunks(rank, &crashed, &mut all) {
                Ok(()) => gathered = Some(all),
                Err(Died(p)) => {
                    if !rank.peer_dead(p) {
                        gather_cut = true;
                    }
                }
            }
        } else if !rank.send_reliable(
            designated as usize,
            TAG_GATHER,
            &owned,
            RetryPolicy::Escalate,
        ) {
            gather_cut = true;
        }
        // The closing verdict piggybacks whether anyone's gather hit a
        // cut, so a blip that severed the gather (but left nobody
        // suspected by resolution time) still re-runs the tail instead of
        // breaking with a torn result.
        let verdict = rank.ctl_exchange(CtlSlot {
            word: gather_cut as u64,
            ..CtlSlot::default()
        });
        note_suspicion!(verdict);
        if verdict.any_suspected() {
            for r in verdict.dead_ranks() {
                crashed[r] = true;
            }
            frozen.copy_from_slice(&verdict.suspected);
            continue 'run;
        }
        if has_new_crash(&verdict, &crashed) {
            recover!(iter - 1, iter);
            continue 'run;
        }
        if (0..nprocs).any(|r| verdict.word(r).is_some_and(|w| w != 0)) {
            recover!(iter - 1, iter);
            continue 'run;
        }
        break (rank.wtime(), gathered);
    };

    rank.reconcile_faults();
    RankOutcome {
        total,
        timers,
        comm: rank.stats(),
        migrations: counters.migrations,
        skipped: counters.skipped,
        evacuated: counters.evacuated,
        emergency_balances: counters.emergency_balances,
        ranks_died,
        gathered,
        owner: store.owner.clone(),
        checkpoint_bytes,
        rollbacks,
        iterations_replayed,
        delta: delta_stats,
        quiescent_iterations,
        inner_iterations,
        barriers_elided,
        degraded_iterations,
        rejoins,
        rejoin_bytes,
        suspected_peak,
        integrity,
        // The membership path never installs a pager: partition tolerance
        // and out-of-core paging are dispatched separately by the driver.
        pages: Default::default(),
        disk: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::CUT_FLAG;

    #[test]
    fn cut_flag_does_not_collide_with_changed_counts() {
        // The changed-node count occupies the low bits; any realistic
        // graph is far below 2^63 nodes, so the packed word round-trips.
        let changed: u64 = 1 << 40;
        let word = changed | CUT_FLAG;
        assert_eq!(word & !CUT_FLAG, changed);
        assert_ne!(word & CUT_FLAG, 0);
        assert_eq!(changed & CUT_FLAG, 0);
    }
}
