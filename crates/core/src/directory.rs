//! Remote data access beyond the neighbourhood (thesis §7.1).
//!
//! The platform's shadow machinery only delivers data of *adjacent* nodes.
//! The thesis's future-work list asks for a distributed data directory so
//! a processor "might have a possible access to the data of far off
//! processors (which are not neighbors of the current processor)". This
//! module provides that as a collective *fetch phase*: between iterations,
//! every rank submits the global ids it wants (possibly none), and the
//! phase resolves ownership through the replicated owner map — the
//! directory the platform already maintains through migration broadcasts —
//! and ships the current data back.
//!
//! Being collective keeps the protocol deterministic and deadlock-free
//! under the platform's BSP structure: requests are allgathered, owners
//! answer, requesters receive, one barrier closes the phase.

use crate::store::NodeStore;
use ic2_graph::NodeId;
use mpisim::{Rank, Wire};

/// Message tag for directory answers.
pub const TAG_DIRECTORY: u32 = 3;

/// Collectively fetch the current data of arbitrary (possibly remote,
/// possibly non-neighbouring) nodes.
///
/// Every rank must call this with its own `wanted` list (empty is fine).
/// Returns the requested `(id, data)` pairs in request order.
///
/// # Panics
/// Panics if a requested id is out of range for the application graph the
/// store was built from.
pub fn fetch<D>(rank: &Rank, store: &NodeStore<D>, wanted: &[NodeId]) -> Vec<(NodeId, D)>
where
    D: Clone + Wire + Send + 'static,
{
    let me = rank.rank() as u32;
    for &id in wanted {
        assert!(
            (id as usize) < store.owner.len(),
            "directory fetch for unknown node {id}"
        );
    }
    // 1. Publish every rank's shopping list.
    let all_requests: Vec<Vec<u32>> = rank.allgather(&wanted.to_vec());

    // 2. Answer the requests that name nodes this rank owns (including
    //    requests for our own data from ourselves — served locally below).
    for (requester, requests) in all_requests.iter().enumerate() {
        if requester == rank.rank() {
            continue;
        }
        let answer: Vec<(u32, D)> = requests
            .iter()
            .filter(|&&id| store.owner[id as usize] == me)
            .map(|&id| {
                let data = store
                    .table
                    .get(id)
                    .unwrap_or_else(|| panic!("owner of {id} lacks its data"))
                    .clone();
                (id, data)
            })
            .collect();
        if !answer.is_empty() {
            rank.send(requester, TAG_DIRECTORY, &answer);
        }
    }

    // 3. Collect our own answers: locally-owned entries immediately, one
    //    message from each distinct remote owner.
    let mut by_id: std::collections::HashMap<u32, D> = std::collections::HashMap::new();
    let mut remote_owners: Vec<u32> = Vec::new();
    for &id in wanted {
        let owner = store.owner[id as usize];
        if owner == me {
            by_id.insert(
                id,
                store.table.get(id).expect("own node data present").clone(),
            );
        } else if !remote_owners.contains(&owner) {
            remote_owners.push(owner);
        }
    }
    remote_owners.sort_unstable();
    for owner in remote_owners {
        let answer: Vec<(u32, D)> = rank.recv(owner as usize, TAG_DIRECTORY);
        for (id, data) in answer {
            by_id.insert(id, data);
        }
    }

    // 4. Close the phase so stray answers cannot leak into the next
    //    iteration's traffic.
    rank.barrier();

    wanted
        .iter()
        .map(|&id| {
            let data = by_id
                .get(&id)
                .unwrap_or_else(|| panic!("no answer for requested node {id}"))
                .clone();
            (id, data)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{AvgProgram, NodeProgram};
    use ic2_graph::generators::hex_grid;
    use ic2_partition::{metis::Metis, StaticPartitioner};
    use mpisim::{Config, World};
    use std::time::Duration;

    fn world() -> World {
        World::new(Config::default().with_watchdog(Duration::from_secs(10)))
    }

    #[test]
    fn fetches_far_off_data() {
        let graph = hex_grid(8, 8);
        let part = Metis::default().partition(&graph, 4);
        let program = AvgProgram::fine();
        let results = world().run(4, |rank| {
            let store = NodeStore::build(&graph, &part, rank.rank() as u32, &program, 32);
            // Everyone asks for the four corners of the mesh — far from
            // most ranks' neighbourhoods.
            let wanted = [0u32, 7, 56, 63];
            fetch(rank, &store, &wanted)
        });
        for got in results {
            // init(v) = v + 1 (AvgProgram convention).
            assert_eq!(
                got,
                vec![(0, 1), (7, 8), (56, 57), (63, 64)],
                "every rank sees identical remote data"
            );
        }
        let _ = program.phases();
    }

    #[test]
    fn mixed_and_empty_requests_work() {
        let graph = hex_grid(4, 4);
        let part = Metis::default().partition(&graph, 3);
        let program = AvgProgram::fine();
        let results = world().run(3, |rank| {
            let store = NodeStore::build(&graph, &part, rank.rank() as u32, &program, 16);
            let wanted: Vec<u32> = match rank.rank() {
                0 => vec![15, 0, 15], // duplicates allowed
                1 => vec![],
                _ => vec![5],
            };
            fetch(rank, &store, &wanted)
        });
        assert_eq!(results[0], vec![(15, 16), (0, 1), (15, 16)]);
        assert_eq!(results[1], vec![]);
        assert_eq!(results[2], vec![(5, 6)]);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn out_of_range_requests_panic() {
        let graph = hex_grid(2, 2);
        let part = Metis::default().partition(&graph, 2);
        let program = AvgProgram::fine();
        let _ = world().run(2, |rank| {
            let store = NodeStore::build(&graph, &part, rank.rank() as u32, &program, 8);
            fetch(rank, &store, &[99])
        });
    }
}
