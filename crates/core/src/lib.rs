//! # ic2mpi — a platform for parallel execution of graph-structured
//! iterative computations
//!
//! Rust reproduction of the iC2mpi platform (Botadra, Georgia State
//! University, 2006 / IPPS 2007). An application plugs three things into
//! the platform — exactly the thesis's plug-in points:
//!
//! 1. an **application program graph** ([`ic2_graph::Graph`]),
//! 2. **node data structures and a node computation function**
//!    (a [`NodeProgram`] implementation), and
//! 3. third-party **static partitioners** and **dynamic load balancers**
//!    ([`ic2_partition::StaticPartitioner`],
//!    [`ic2_balance::DynamicBalancer`]).
//!
//! The platform then executes the computation on `p` simulated MPI ranks
//! (see `mpisim`) in three phases (thesis §4):
//!
//! * **Initialization** ([`store`]) — every rank builds internal and
//!   peripheral node lists, the data-node table with a bucketed
//!   [hash table](hashtab), shadow-node bookkeeping
//!   (`shadow_for_procs`) and the communication-buffer plan.
//! * **Computation & communication** ([`exchange`]) — each iteration,
//!   nodes are updated by the user's node function fed a list of
//!   `(own data, neighbour data…)`; updated peripheral data is packed into
//!   per-processor buffers and exchanged (`MPI_Isend`/`MPI_Recv`, or the
//!   Figure-8a overlapped variant with `MPI_Irecv`).
//! * **Load balancing & task migration** ([`migrate`]) — periodically, a
//!   runtime processor graph (execution times + buffer lengths) is fed to
//!   the balancer; each busy → idle pair migrates the task that keeps the
//!   edge-cut smallest (Figure 9), with ownership, node lists, shadow sets
//!   and buffers updated on every affected rank.
//!
//! ```
//! use ic2mpi::prelude::*;
//!
//! // 64-node hexagonal grid, node function = neighbour averaging with a
//! // 0.3 ms grain — the thesis's fine-grained workload.
//! let graph = ic2_graph::generators::hex_grid_n(64);
//! let program = AvgProgram::fine();
//! let cfg = RunConfig::new(8, 20);
//! let report = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
//! assert_eq!(report.final_data.len(), 64);
//! println!("64-node hex grid on 8 procs: {:.4}s", report.total_time);
//! ```

pub mod audit;
pub mod checkpoint;
pub mod costs;
pub mod directory;
pub mod driver;
pub mod error;
pub mod exchange;
pub mod hashtab;
pub mod imbalance;
pub mod membership;
pub mod migrate;
pub mod paging;
pub mod program;
pub mod seq;
pub mod store;
pub mod timers;

pub use costs::CostModel;
pub use driver::{
    catch_flow_deadlock, run, try_run, ExchangeMode, ExecutionPolicy, RunConfig, RunReport,
};
pub use error::{PlatformError, StoreViolation};
pub use hashtab::NodeTable;
pub use imbalance::{GrainSchedule, ShiftingWindowLoad, StragglerDetector};
pub use migrate::{BalanceOutcome, MigrantPolicy};
pub use mpisim::trace::{chrome_trace_json, timeline_json, RankTrace, TraceEvent};
pub use paging::{BufferPool, EvictionPolicy, PageConfig, PageCounters};
pub use program::{AvgProgram, ComputeCtx, NeighborData, NodeProgram};
pub use store::{LocalNode, NodeStore};
pub use timers::{Phase, PhaseTimers};

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use crate::{
        catch_flow_deadlock, run, try_run, AvgProgram, ComputeCtx, CostModel, EvictionPolicy,
        ExchangeMode, ExecutionPolicy, GrainSchedule, MigrantPolicy, NeighborData, NodeProgram,
        PageConfig, PlatformError, RunConfig, RunReport, ShiftingWindowLoad,
    };
    pub use ic2_balance::{CentralizedHeuristic, Diffusion, DynamicBalancer, NoBalancer};
    pub use ic2_graph::{Graph, Partition};
    pub use ic2_partition::{metis::Metis, pagrid::PaGrid, StaticPartitioner};
}
