//! The application plug-in surface: node data + node computation function.

use crate::imbalance::GrainSchedule;
use ic2_graph::{Graph, NodeId};
use mpisim::Wire;

/// Context handed to the node computation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeCtx {
    /// 1-based iteration (time step) number.
    pub iter: u32,
    /// Sub-phase within the iteration, `0..NodeProgram::phases()`. The
    /// battlefield application interleaves several compute/communicate
    /// rounds per time step (thesis §2.2).
    pub phase: u32,
    /// Executing rank.
    pub rank: u32,
    /// Total node count of the application graph.
    pub num_nodes: usize,
}

/// One neighbour's identity and current data, as an element of the list
/// the platform passes to the node function (the thesis's "list with the
/// current node's data as the head followed by the data of its
/// neighbours").
#[derive(Debug)]
pub struct NeighborData<'a, D> {
    /// The neighbour's global node id.
    pub id: NodeId,
    /// The neighbour's data from the previous iteration (own nodes) or the
    /// last received shadow copy (remote nodes).
    pub data: &'a D,
}

/// A graph-structured iterative computation, plugged into the platform
/// without any MPI code — the thesis's central promise (Goal 2a).
///
/// The platform owns the data between iterations; the program only sees a
/// node with its neighbourhood and returns the node's next value (Jacobi
/// update). `cost` reports the node's *grain size*: in virtual-time mode
/// it is charged to the rank's clock, in real-time mode it is busy-spun —
/// both reproduce the thesis's "dummy for loop" load injection.
pub trait NodeProgram: Sync {
    /// Per-node application data (the thesis's `struct node_data`).
    /// `PartialEq` is what delta shadow exchange tests dirtiness with: a
    /// node whose newly computed value equals its current one is clean and
    /// its shadow update can be suppressed.
    type Data: Clone + PartialEq + Wire + Send + 'static;

    /// Initial data of `node` (the thesis initialises `data = globalID`).
    fn init(&self, node: NodeId, graph: &Graph) -> Self::Data;

    /// Compute `node`'s next value from its own data and its neighbours'.
    fn compute(
        &self,
        node: NodeId,
        own: &Self::Data,
        neighbors: &[NeighborData<'_, Self::Data>],
        ctx: &ComputeCtx,
    ) -> Self::Data;

    /// Grain size of computing `node` this iteration, in seconds.
    fn cost(&self, _node: NodeId, _own: &Self::Data, _ctx: &ComputeCtx) -> f64 {
        0.0
    }

    /// Compute/communicate rounds per iteration (default 1; the
    /// battlefield simulation uses more, thesis §2.2).
    fn phases(&self) -> u32 {
        1
    }
}

impl<P: NodeProgram> NodeProgram for &P {
    type Data = P::Data;
    fn init(&self, node: NodeId, graph: &Graph) -> Self::Data {
        (*self).init(node, graph)
    }
    fn compute(
        &self,
        node: NodeId,
        own: &Self::Data,
        neighbors: &[NeighborData<'_, Self::Data>],
        ctx: &ComputeCtx,
    ) -> Self::Data {
        (*self).compute(node, own, neighbors, ctx)
    }
    fn cost(&self, node: NodeId, own: &Self::Data, ctx: &ComputeCtx) -> f64 {
        (*self).cost(node, own, ctx)
    }
    fn phases(&self) -> u32 {
        (*self).phases()
    }
}

/// The thesis's generic workload: each node takes the average of its own
/// and its neighbours' data, with an injected grain size (0.3 ms fine,
/// 3 ms coarse, or the Figure-23 shifting schedule).
#[derive(Debug, Clone, Copy)]
pub struct AvgProgram {
    /// Grain-size schedule.
    pub grain: GrainSchedule,
}

impl AvgProgram {
    /// Fine-grained nodes: 0.3 ms each.
    pub fn fine() -> Self {
        AvgProgram {
            grain: GrainSchedule::Uniform(300e-6),
        }
    }

    /// Coarse-grained nodes: 3 ms each.
    pub fn coarse() -> Self {
        AvgProgram {
            grain: GrainSchedule::Uniform(3e-3),
        }
    }

    /// The Figure-23 shifting-window imbalance (coarse hot window moving
    /// across the domain every 10 iterations).
    pub fn shifting() -> Self {
        AvgProgram {
            grain: GrainSchedule::Shifting(crate::imbalance::ShiftingWindowLoad::default()),
        }
    }

    /// A persistent runtime hot region (half the id space at the 100:1
    /// coarse/fine ratio) — the companion workload that isolates the
    /// migration machinery from window drift.
    pub fn persistent() -> Self {
        AvgProgram {
            grain: GrainSchedule::Persistent {
                coarse: 3e-3,
                fine: 30e-6,
                hot_fraction: 0.5,
            },
        }
    }
}

impl NodeProgram for AvgProgram {
    type Data = i64;

    fn init(&self, node: NodeId, _graph: &Graph) -> i64 {
        // The thesis initialises node data to the (1-based) global id.
        node as i64 + 1
    }

    fn compute(
        &self,
        _node: NodeId,
        own: &i64,
        neighbors: &[NeighborData<'_, i64>],
        _ctx: &ComputeCtx,
    ) -> i64 {
        let sum: i64 = *own + neighbors.iter().map(|n| *n.data).sum::<i64>();
        sum / (neighbors.len() as i64 + 1)
    }

    fn cost(&self, node: NodeId, _own: &i64, ctx: &ComputeCtx) -> f64 {
        self.grain.cost(node, ctx.num_nodes, ctx.iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic2_graph::generators::hex_grid;

    fn ctx() -> ComputeCtx {
        ComputeCtx {
            iter: 1,
            phase: 0,
            rank: 0,
            num_nodes: 4,
        }
    }

    #[test]
    fn avg_program_initialises_to_one_based_id() {
        let g = hex_grid(2, 2);
        let p = AvgProgram::fine();
        assert_eq!(p.init(0, &g), 1);
        assert_eq!(p.init(3, &g), 4);
    }

    #[test]
    fn avg_program_averages_with_truncation() {
        let p = AvgProgram::fine();
        let (a, b) = (10i64, 5i64);
        let nbrs = [
            NeighborData { id: 1, data: &a },
            NeighborData { id: 2, data: &b },
        ];
        // (3 + 10 + 5) / 3 = 6
        assert_eq!(p.compute(0, &3, &nbrs, &ctx()), 6);
        // Isolated node keeps its value.
        assert_eq!(p.compute(0, &7, &[], &ctx()), 7);
    }

    #[test]
    fn grain_presets_match_the_thesis() {
        let fine = AvgProgram::fine();
        let coarse = AvgProgram::coarse();
        assert!((fine.cost(0, &0, &ctx()) - 300e-6).abs() < 1e-12);
        assert!((coarse.cost(0, &0, &ctx()) - 3e-3).abs() < 1e-12);
    }

    #[test]
    fn default_phase_count_is_one() {
        assert_eq!(AvgProgram::fine().phases(), 1);
    }
}
