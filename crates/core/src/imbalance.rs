//! Dynamic load-imbalance generation (thesis §5.5, Figure 23).
//!
//! The static-vs-dynamic experiments need load a static partitioner cannot
//! capture: the thesis varies each node's grain size over time, moving a
//! coarse-grained "hot window" across the global-id space every ten
//! iterations — 0–50 % first, then 25–75 %, then 50–100 %, repeating.

/// Grain size per node per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GrainSchedule {
    /// Every node costs the same every iteration.
    Uniform(f64),
    /// The Figure-23 shifting hot window.
    Shifting(ShiftingWindowLoad),
    /// A hot region that appears at run time and stays put: the first
    /// `hot_fraction` of the id space costs `coarse`, the rest `fine`.
    /// A static partitioner with uniform weights cannot see it, but —
    /// unlike the shifting window — a periodic balancer's corrections
    /// stay valid, so this isolates the migration machinery's benefit.
    Persistent {
        /// Grain of hot nodes.
        coarse: f64,
        /// Grain of cold nodes.
        fine: f64,
        /// Fraction of the id space that is hot.
        hot_fraction: f64,
    },
}

impl GrainSchedule {
    /// Cost of `node` (of `num_nodes`) at 1-based `iter`.
    pub fn cost(&self, node: u32, num_nodes: usize, iter: u32) -> f64 {
        match self {
            GrainSchedule::Uniform(g) => *g,
            GrainSchedule::Shifting(s) => s.cost(node, num_nodes, iter),
            GrainSchedule::Persistent {
                coarse,
                fine,
                hot_fraction,
            } => {
                let frac = node as f64 / num_nodes.max(1) as f64;
                if frac < *hot_fraction {
                    *coarse
                } else {
                    *fine
                }
            }
        }
    }
}

/// The thesis's shifting-window imbalance: within each window of
/// `window_iters` iterations, nodes whose global id falls inside the hot
/// band get `coarse` grain, the rest `fine`. The band cycles
/// `[0,50%] → [25%,75%] → [50%,100%]`.
///
/// The grain ratio is 100:1, matching the appendix's `SimulatorFunction`
/// (dummy loops of 100000 vs 1000 iterations), not the 10:1 ratio of the
/// §5.1 static-speedup experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftingWindowLoad {
    /// Grain of cold nodes (thesis: the 1000-iteration dummy loop,
    /// 1/100th of the hot grain).
    pub fine: f64,
    /// Grain of hot nodes (thesis: the 100000-iteration dummy loop
    /// ≈ the 3 ms coarse grain).
    pub coarse: f64,
    /// Iterations per window (thesis: 10).
    pub window_iters: u32,
}

impl Default for ShiftingWindowLoad {
    fn default() -> Self {
        ShiftingWindowLoad {
            fine: 30e-6,
            coarse: 3e-3,
            window_iters: 10,
        }
    }
}

impl ShiftingWindowLoad {
    /// The hot band `(lo, hi)` as node-fraction bounds for 1-based `iter`.
    pub fn hot_band(&self, iter: u32) -> (f64, f64) {
        let window = (iter.saturating_sub(1) / self.window_iters) % 3;
        match window {
            0 => (0.0, 0.50),
            1 => (0.25, 0.75),
            _ => (0.50, 1.0),
        }
    }

    /// Whether `node` is hot at `iter`.
    pub fn is_hot(&self, node: u32, num_nodes: usize, iter: u32) -> bool {
        let (lo, hi) = self.hot_band(iter);
        let frac = node as f64 / num_nodes.max(1) as f64;
        frac >= lo && frac < hi
    }

    /// Grain of `node` at `iter`.
    pub fn cost(&self, node: u32, num_nodes: usize, iter: u32) -> f64 {
        if self.is_hot(node, num_nodes, iter) {
            self.coarse
        } else {
            self.fine
        }
    }
}

/// Detects a straggling processor from the per-iteration compute times and
/// decides when to trigger an emergency balancing round off-schedule.
///
/// Fed the allreduced `(max, mean)` of the ranks' compute times, so every
/// rank observes the identical sequence and the strike counter — and
/// therefore the firing decision — is replicated without extra
/// communication. A single slow iteration (a cache hiccup, one hot node)
/// is not a straggler; only `patience` consecutive over-threshold
/// iterations fire, and firing resets the counter so corrections get a
/// chance to land before the next alarm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerDetector {
    /// Fire when `max > threshold * mean` (e.g. 2.0 = one rank is taking
    /// twice the average).
    pub threshold: f64,
    /// Consecutive over-threshold iterations required before firing.
    pub patience: u32,
    strikes: u32,
}

impl StragglerDetector {
    /// A detector with no strikes recorded yet.
    pub fn new(threshold: f64, patience: u32) -> Self {
        assert!(threshold >= 1.0, "threshold below 1.0 would always fire");
        assert!(patience >= 1, "patience 0 could never fire");
        StragglerDetector {
            threshold,
            patience,
            strikes: 0,
        }
    }

    /// Record one iteration's `(max, mean)` compute times; `true` means an
    /// emergency balancing round should run now.
    pub fn observe(&mut self, max: f64, mean: f64) -> bool {
        if mean > 0.0 && max > self.threshold * mean {
            self.strikes += 1;
        } else {
            self.strikes = 0;
        }
        if self.strikes >= self.patience {
            self.strikes = 0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_rotate_every_ten_iterations() {
        let s = ShiftingWindowLoad::default();
        assert_eq!(s.hot_band(1), (0.0, 0.5));
        assert_eq!(s.hot_band(10), (0.0, 0.5));
        assert_eq!(s.hot_band(11), (0.25, 0.75));
        assert_eq!(s.hot_band(20), (0.25, 0.75));
        assert_eq!(s.hot_band(21), (0.5, 1.0));
        assert_eq!(s.hot_band(30), (0.5, 1.0));
        // Cycles back.
        assert_eq!(s.hot_band(31), (0.0, 0.5));
    }

    #[test]
    fn hot_nodes_get_coarse_grain() {
        let s = ShiftingWindowLoad::default();
        // First window: node 0 of 64 is hot, node 63 is cold.
        assert_eq!(s.cost(0, 64, 1), s.coarse);
        assert_eq!(s.cost(63, 64, 1), s.fine);
        // Third window: reversed.
        assert_eq!(s.cost(0, 64, 25), s.fine);
        assert_eq!(s.cost(63, 64, 25), s.coarse);
    }

    #[test]
    fn half_the_domain_is_hot_in_each_window() {
        let s = ShiftingWindowLoad::default();
        for iter in [1, 11, 21] {
            let hot = (0..64).filter(|&v| s.is_hot(v, 64, iter)).count();
            assert_eq!(hot, 32, "iter {iter}");
        }
    }

    #[test]
    fn uniform_schedule_ignores_node_and_iter() {
        let g = GrainSchedule::Uniform(1e-3);
        assert_eq!(g.cost(0, 64, 1), 1e-3);
        assert_eq!(g.cost(63, 64, 99), 1e-3);
    }

    #[test]
    fn straggler_detector_needs_consecutive_strikes() {
        let mut d = StragglerDetector::new(2.0, 3);
        assert!(!d.observe(3.0, 1.0));
        assert!(!d.observe(3.0, 1.0));
        // A healthy iteration resets the streak.
        assert!(!d.observe(1.1, 1.0));
        assert!(!d.observe(3.0, 1.0));
        assert!(!d.observe(3.0, 1.0));
        assert!(d.observe(3.0, 1.0));
        // Firing resets too: the next alarm needs a fresh streak.
        assert!(!d.observe(3.0, 1.0));
        assert!(!d.observe(3.0, 1.0));
        assert!(d.observe(3.0, 1.0));
    }

    #[test]
    fn straggler_detector_ignores_balanced_and_idle_loads() {
        let mut d = StragglerDetector::new(2.0, 1);
        assert!(!d.observe(1.0, 1.0));
        assert!(!d.observe(1.9, 1.0));
        // Zero mean (nothing computed) never fires.
        assert!(!d.observe(5.0, 0.0));
        assert!(d.observe(2.1, 1.0));
    }
}
