//! Crash-consistent checkpointing and rollback recovery.
//!
//! The cooperative fail-stop protocol (see `migrate::evacuate_rank`)
//! assumes a dying rank announces its death and helps evacuate its tasks.
//! This module handles the *uncooperative* case — a rank that simply stops
//! (`FaultPlan::with_crash`): mailbox sealed, in-flight messages dropped,
//! nothing drained.
//!
//! ## Protocol
//!
//! * **Coordinated snapshots.** Every `k` iterations (`RunConfig::
//!   checkpoint_every`) each rank snapshots its complete state at the
//!   iteration boundary — full data-node table (owned nodes *and* shadows,
//!   so the image is self-contained), the replicated owner map, the
//!   replicated recovery counters, and the balancer's serialized state —
//!   and mirrors the table snapshot to deterministic *buddies*: its
//!   successors at distances `1..=r` in the ring of live ranks sorted by
//!   id (`RunConfig::replication`, default 1). Fewer than `r` crashes
//!   between consecutive checkpoints can never lose every copy of a
//!   partition; only losing a rank *and all `r` of its replicas* in the
//!   same inter-checkpoint window is unrecoverable (and reported as the
//!   typed [`crate::error::PlatformError::UnrecoverableState`]).
//!   A snapshot is *staged* first and only *committed* if the closing
//!   control exchange reports no new deaths, so a crash mid-checkpoint
//!   can never install a torn snapshot.
//!
//! * **End-to-end replica integrity.** Every staged copy — own and ward
//!   alike — gets per-entry checksums computed the moment it lands (the
//!   wire already checksums frames, so staging-time sums are equivalent
//!   to sums shipped from the sender, without growing the mirror
//!   payload). From staging to restore the copy sits at rest, exposed to
//!   the fault plan's silent bit flips
//!   ([`mpisim::FaultPlan::with_memory_corrupt`]); a *replica census*
//!   piggybacked on the rollback's first control exchange then tells
//!   every survivor which copies are still intact, restore escalates to
//!   the nearest intact replica, and a live rank whose own copy rotted
//!   adopts a full replacement the same way. Checksum arithmetic is
//!   charged to the virtual clock only when audits are configured
//!   (`RunConfig::audit_every`), so fault-free schedules are
//!   bit-identical to the pre-integrity platform.
//!
//! * **State audits.** Every `RunConfig::audit_every` iterations (and
//!   always right before a checkpoint, so a snapshot can never baseline
//!   corrupt state) each rank recomputes its owned and shadow digests
//!   against the incrementally-maintained [`crate::audit::AuditState`]
//!   and the verdicts ride one control exchange. Owner-region damage
//!   rolls back and replays; shadow-only damage caught the boundary it
//!   appeared is repaired by a targeted resync from the owners.
//!
//! * **Deterministic failure detection.** All agreement goes through
//!   [`mpisim::Rank::ctl_exchange`]: a barrier-shaped collective that
//!   resolves once every rank has either arrived or died, and whose
//!   verdict (dead set + per-rank slots) is snapshotted once at
//!   resolution — every survivor receives a bit-identical copy.
//!
//! * **Never-skip schedule.** Between detections, survivors run their
//!   normal schedule with crash-aware receives
//!   ([`crate::exchange::step_crash_aware`]): a receive whose sender died
//!   substitutes the stale shadow value and carries on, so every survivor
//!   still executes the identical sequence of barriers and control
//!   exchanges. The numerically garbage iteration this produces is
//!   discarded wholesale by rollback.
//!
//! * **Rollback recovery.** On a new death every survivor purges its
//!   mailbox, synchronises, restores the last committed checkpoint,
//!   adopts the dead rank's nodes per the pure replicated
//!   [`crate::migrate::plan_adoption`] (data shipped out of the buddy
//!   copy), immediately re-mirrors the adopted partition, and re-runs the
//!   lost iterations. Replay is bit-deterministic, the virtual clock keeps
//!   running forward (re-execution is *charged*, not hidden), and the
//!   final answer is byte-identical to the sequential oracle.

use crate::audit;
use crate::costs::CostModel;
use crate::driver::{IntegrityCounters, IterTracer, RankOutcome, RunConfig};
use crate::exchange;
use crate::imbalance::StragglerDetector;
use crate::migrate;
use crate::program::{ComputeCtx, NodeProgram};
use crate::store::NodeStore;
use crate::timers::{Phase, PhaseTimers};
use ic2_balance::DynamicBalancer;
use ic2_graph::{Graph, Partition};
use mpisim::{ArgValue, CtlSlot, CtlVerdict, Died, Envelope, Rank, RetryPolicy, Wire};
use std::time::{Duration, Instant};

/// Message tag for checkpoint snapshots mirrored to buddy ranks.
pub const TAG_MIRROR: u32 = 4;

/// Message tag for adopted-node data shipped out of a buddy copy.
pub const TAG_ADOPT: u32 = 5;

/// Message tag for the crash-tolerant final gather.
pub const TAG_GATHER: u32 = 6;

/// Receive half of the crash-tolerant final gather, safe at any mailbox
/// capacity. A blocking `try_recv`-in-ascending-source-order loop
/// deadlocks under bounded mailboxes: the designated root refuses to
/// consume frames from later sources while the canonical next source is
/// credit-stalled behind them, so the mailbox stays full and no credit is
/// ever granted. Instead, drain [`TAG_GATHER`] frames in whatever order
/// they arrive into source-keyed slots (freeing capacity so stalled
/// senders win credits), then charge and decode in canonical ascending
/// order — the virtual clock advances exactly as the blocking loop's
/// would. A source with no frame whose dead flag was observed before an
/// empty drain pass is definitively never coming (deliveries
/// happen-before the flag); it is charged the same detection timeout
/// [`Rank::try_recv`] pays and reported as [`Died`]. A partition
/// tombstone frame likewise, so the membership caller's `peer_dead`
/// check still disambiguates cut from crash.
pub(crate) fn gather_chunks<D: Wire>(
    rank: &Rank,
    crashed: &[bool],
    all: &mut Vec<(u32, D)>,
) -> Result<(), Died> {
    let me = rank.rank();
    let nprocs = rank.size();
    let sources: Vec<usize> = (0..nprocs).filter(|&r| !crashed[r] && r != me).collect();
    let mut frames: Vec<Option<Envelope>> = Vec::new();
    frames.resize_with(nprocs, || None);
    let mut dead = vec![false; nprocs];
    let deadline = Instant::now() + rank.config().watchdog;
    loop {
        let missing: Vec<usize> = sources
            .iter()
            .copied()
            .filter(|&p| frames[p].is_none() && !dead[p])
            .collect();
        if missing.is_empty() {
            break;
        }
        // Snapshot dead flags *before* draining: a flag set now plus an
        // empty drain below proves the peer's frame was never sent.
        let flagged: Vec<usize> = missing
            .iter()
            .copied()
            .filter(|&p| rank.peer_dead(p))
            .collect();
        let mut progress = false;
        while let Some(env) = rank.drain_one(None, TAG_GATHER) {
            let src = env.src;
            frames[src] = Some(env);
            progress = true;
        }
        for p in flagged {
            if frames[p].is_none() && !dead[p] {
                dead[p] = true;
                progress = true;
            }
        }
        if progress {
            continue;
        }
        if Instant::now() >= deadline {
            rank.deadlock_panic("final result gather (receive phase)");
        }
        rank.wait_incoming(Duration::from_millis(2));
    }
    for p in sources {
        match frames[p].take() {
            Some(env) if env.cut => {
                rank.charge_partition_timeout();
                return Err(Died(p));
            }
            Some(env) => {
                let chunk: Vec<(u32, D)> = rank.absorb(env);
                all.extend(chunk);
            }
            None => {
                rank.charge_crash_timeout();
                return Err(Died(p));
            }
        }
    }
    Ok(())
}

/// Typed panic payload for the one failure replication cannot cover:
/// every copy of rank `rank`'s checkpointed state is lost or corrupt.
/// Every survivor derives the identical verdict from the replica census
/// and raises it together; [`crate::driver::catch_flow_deadlock`]
/// downcasts it into
/// [`crate::error::PlatformError::UnrecoverableState`].
#[derive(Debug, Clone, Copy)]
pub struct UnrecoverableStateSignal {
    /// The rank whose state has no intact replica left.
    pub rank: u32,
}

/// Does `verdict` report any crash beyond those in `known`? The one
/// question every step of the crash-mode protocol asks before committing.
pub fn has_new_crash(verdict: &CtlVerdict, known: &[bool]) -> bool {
    verdict.dead.iter().zip(known).any(|(&d, &k)| d && !k)
}

/// The bit a paged rank sets in its control word when its pager has
/// latched page damage — every verified copy of some page is gone, so the
/// table holds a hole and the state must not be trusted or committed.
/// Bit 63 is the membership layer's cut flag, so damage rides bit 62;
/// both sit far above any realistic changed-node count sharing the word.
pub(crate) const DAMAGE_FLAG: u64 = 1 << 62;

/// Wire shape of a paged mirror payload: `(full_image, pages)` where each
/// page carries its bucket index and every surviving entry in that bucket.
/// A dirty page with zero entries still ships so the receiver drops stale
/// base-image entries for that bucket.
type PageDiffImage<D> = (bool, Vec<(u32, Vec<(u32, D)>)>);

/// Consecutive damage-poisoned agreement rounds tolerated before the
/// repair ladder concedes. Each strike is a full rollback + replay whose
/// disk made fresh fault decisions; a rank still damaged after this many
/// attempts has effectively lost every copy of some page, and every
/// survivor raises the identical [`UnrecoverableStateSignal`] rather than
/// ship a wrong answer.
pub(crate) const MAX_DISK_FAILURES: u32 = 3;

/// Does any live rank's verdict word carry [`DAMAGE_FLAG`]?
fn any_disk_damage(verdict: &CtlVerdict, nprocs: usize) -> bool {
    (0..nprocs).any(|r| verdict.word(r).is_some_and(|w| w & DAMAGE_FLAG != 0))
}

/// The lowest rank whose verdict word carries [`DAMAGE_FLAG`] — the
/// agreed victim named by [`UnrecoverableStateSignal`].
fn first_damaged(verdict: &CtlVerdict, nprocs: usize) -> Option<u32> {
    (0..nprocs as u32).find(|&r| {
        verdict
            .word(r as usize)
            .is_some_and(|w| w & DAMAGE_FLAG != 0)
    })
}

/// The replicated recovery counters a checkpoint rewinds together with the
/// node data. Fault statistics, timers and the virtual clock are
/// deliberately *not* here: recovery overhead must stay visible in the
/// run report rather than be rolled back out of existence.
#[derive(Debug, Clone, Default)]
pub(crate) struct Counters {
    pub(crate) migrations: usize,
    pub(crate) skipped: usize,
    pub(crate) evacuated: usize,
    pub(crate) emergency_balances: usize,
    pub(crate) comp_since_balance: f64,
}

/// One rank's committed checkpoint: everything needed to rewind the rank —
/// and, via the buddy copy, one crashed peer — to an iteration boundary.
#[derive(Debug, Clone)]
pub struct Checkpoint<D> {
    /// Genesis checkpoints (iteration 0) are reconstructed locally from
    /// the program's initial data instead of from `mine`/`ward` — no
    /// mirroring traffic is needed for them.
    pub genesis: bool,
    /// Completed iterations at the snapshot (0 = before the first).
    pub iter: u32,
    /// The replicated owner map at the snapshot.
    pub owner: Vec<u32>,
    /// This rank's full table snapshot (owned + shadows), ascending by id.
    pub mine: Vec<(u32, D)>,
    /// Staging-time per-entry checksums of `mine`: the baseline a restore
    /// verifies this copy against after its time at rest.
    pub mine_sums: Vec<u64>,
    /// The replica copies this rank holds: one [`Ward`] per ring
    /// predecessor at distance `1..=r`, nearest first.
    pub wards: Vec<Ward<D>>,
    /// Live (non-crashed) ranks at commit time, ascending. The buddy of
    /// ring member `r` is its successor in this ring.
    pub ring: Vec<u32>,
    /// Cooperative (fail-stop) deaths at the snapshot.
    pub dead: Vec<bool>,
    /// Death log at the snapshot.
    pub ranks_died: Vec<u32>,
    /// Replicated recovery counters at the snapshot.
    pub(crate) counters: Counters,
    /// The balancer's serialized state at the snapshot.
    pub balancer_state: Vec<u8>,
    /// Virtual clock at commit (bookkeeping: recovery overhead analysis).
    pub clock: f64,
}

impl<D> Checkpoint<D> {
    /// The communication-free checkpoint every rank starts from: iteration
    /// 0 state is reconstructible from the program's init function and the
    /// initial partition alone.
    pub(crate) fn genesis(owner: Vec<u32>, nprocs: usize, balancer_state: Vec<u8>) -> Self {
        Checkpoint {
            genesis: true,
            iter: 0,
            owner,
            mine: Vec::new(),
            mine_sums: Vec::new(),
            wards: Vec::new(),
            ring: (0..nprocs as u32).collect(),
            dead: vec![false; nprocs],
            ranks_died: Vec::new(),
            counters: Counters::default(),
            balancer_state,
            clock: 0.0,
        }
    }

    /// Which ring member holds `c`'s nearest replica (its ring successor);
    /// `None` if `c` was not in the ring or the ring has no other member.
    pub fn holder_of(&self, c: u32) -> Option<u32> {
        if self.ring.len() < 2 {
            return None;
        }
        let pos = self.ring.iter().position(|&r| r == c)?;
        Some(self.ring[(pos + 1) % self.ring.len()])
    }

    /// The ring members holding `c`'s replicas under replication factor
    /// `r`: its successors at distances `1..=min(r, ring members - 1)`,
    /// nearest first. Empty if `c` is not in the ring or the ring has no
    /// other member.
    pub fn holders_of(&self, c: u32, r: u32) -> Vec<u32> {
        let Some(pos) = self.ring.iter().position(|&x| x == c) else {
            return Vec::new();
        };
        let eff = (r as usize).min(self.ring.len().saturating_sub(1));
        (1..=eff)
            .map(|d| self.ring[(pos + d) % self.ring.len()])
            .collect()
    }
}

/// One replica copy a rank holds for a ring predecessor.
#[derive(Debug, Clone)]
pub struct Ward<D> {
    /// The owner whose snapshot this is.
    pub rank: u32,
    /// The owner's full table snapshot, ascending by id.
    pub entries: Vec<(u32, D)>,
    /// Per-entry checksums computed when the copy landed (staging time).
    pub sums: Vec<u64>,
}

/// Stage a coordinated snapshot, mirror it to the buddy, and commit it iff
/// the closing control exchange reports no new death. `Err(verdict)` means
/// the staged snapshot was discarded and the caller must react: roll back
/// to its *previous* checkpoint on a new crash, or — in membership mode,
/// when the returned verdict suspects ranks — treat it as partition onset
/// and go degraded instead.
#[allow(clippy::too_many_arguments)]
pub(crate) fn take_checkpoint<D, B>(
    rank: &Rank,
    store: &mut NodeStore<D>,
    prev: Option<&Checkpoint<D>>,
    iter: u32,
    dead: &[bool],
    ranks_died: &[u32],
    counters: &Counters,
    balancer: &B,
    crashed: &[bool],
    replication: u32,
    costs: &CostModel,
    timers: &mut PhaseTimers,
    checkpoint_bytes: &mut u64,
) -> Result<Checkpoint<D>, CtlVerdict>
where
    D: Clone + PartialEq + Wire + Send + 'static,
    B: DynamicBalancer + ?Sized,
{
    let t0 = rank.wtime();
    let me = rank.rank() as u32;
    let paged = store.pager.is_some();
    // A paged store snapshots through the pager: fault every page in,
    // copy, spill back down to budget (read-only — nothing is re-dirtied)
    // and charge the accumulated virtual I/O before any agreement.
    store.bulk_begin();
    let mut mine = store.snapshot_table();
    store.bulk_end_clean();
    let storage_io = exchange::drain_storage(rank, store, timers);
    rank.advance(costs.checkpoint_per_entry * mine.len() as f64);
    // Per-entry checksums are always *computed* (they are what makes a
    // replica verifiable at all), but their arithmetic is charged only
    // when audits are configured: integrity hardening must not perturb
    // the pre-integrity platform's bit-exact schedules.
    let mine_sums = audit::entry_sums(&mine);
    if store.audit.is_some() {
        rank.advance(costs.audit_per_entry * mine.len() as f64);
    }
    let ring: Vec<u32> = (0..store.nprocs as u32)
        .filter(|&r| !crashed[r as usize])
        .collect();
    // Mirror payload. Non-paged stores ship the full snapshot — the exact
    // pre-paging wire format, byte for byte. Paged stores ship an
    // incremental page-diff image instead: `(full, [(page, entries…)])`
    // covering only the pages written since the previous committed
    // checkpoint; the receiver patches its prior ward. A full image is
    // forced whenever there is no usable base — first checkpoint, genesis
    // predecessor, or a ring change that re-mapped the buddies.
    let full_image = prev.is_none_or(|p| p.genesis || p.ring != ring);
    let diff: Option<PageDiffImage<D>> = paged.then(|| {
        let pages: Vec<usize> = if full_image {
            (0..store.table.bucket_count()).collect()
        } else {
            store
                .pager
                .as_ref()
                .expect("paged store has a pager")
                .ckpt_dirty_pages()
        };
        // A dirty page with no surviving entries still ships (empty): the
        // receiver must drop the entries it previously held for it.
        let mut groups: std::collections::BTreeMap<u32, Vec<(u32, D)>> =
            pages.into_iter().map(|b| (b as u32, Vec::new())).collect();
        for (id, d) in &mine {
            let b = store.table.bucket_index(*id) as u32;
            if let Some(g) = groups.get_mut(&b) {
                g.push((*id, d.clone()));
            }
        }
        (full_image, groups.into_iter().collect())
    });
    let bytes = match &diff {
        Some(payload) => payload.to_bytes().len() as u64,
        None => mine.to_bytes().len() as u64,
    };
    *checkpoint_bytes += bytes;
    let mut wards: Vec<Ward<D>> = Vec::new();
    let staged = (|| {
        if ring.len() > 1 {
            let pos = ring
                .iter()
                .position(|&r| r == me)
                .expect("a live rank is in its own ring");
            // Mirror to the successors at distances 1..=r; distances are
            // capped by the ring, so each buddy is a distinct rank and
            // each (sender, receiver) pair carries exactly one mirror.
            let eff_r = (replication as usize).min(ring.len() - 1);
            for d in 1..=eff_r {
                let buddy = ring[(pos + d) % ring.len()];
                match &diff {
                    Some(payload) => {
                        rank.send_reliable(
                            buddy as usize,
                            TAG_MIRROR,
                            payload,
                            RetryPolicy::Escalate,
                        );
                    }
                    None => {
                        rank.send_reliable(
                            buddy as usize,
                            TAG_MIRROR,
                            &mine,
                            RetryPolicy::Escalate,
                        );
                    }
                }
            }
            for d in 1..=eff_r {
                let pred = ring[(pos + ring.len() - d) % ring.len()];
                // What landed, and how many entries physically shipped
                // (the charge basis — a page diff is cheaper than a full
                // image exactly because the clean base is not re-sent).
                let received: Result<(Vec<(u32, D)>, usize), ()> = if paged {
                    match rank.try_recv::<PageDiffImage<D>>(pred as usize, TAG_MIRROR) {
                        Ok((was_full, pages)) => {
                            let shipped = pages.iter().map(|(_, es)| es.len()).sum::<usize>();
                            let mut entries: Vec<(u32, D)> = if was_full {
                                Vec::new()
                            } else {
                                // Patch the prior ward: drop every entry on
                                // a page the diff rewrites (the page map is
                                // a pure replicated function of the id) and
                                // keep the rest as the unchanged base. Both
                                // sides derive `full` from replicated state,
                                // so an incremental always finds its base.
                                let base = prev
                                    .and_then(|p| p.wards.iter().find(|w| w.rank == pred))
                                    .expect("incremental mirror implies a prior ward");
                                let rewritten: std::collections::BTreeSet<u32> =
                                    pages.iter().map(|(b, _)| *b).collect();
                                base.entries
                                    .iter()
                                    .filter(|(id, _)| {
                                        !rewritten.contains(&(store.table.bucket_index(*id) as u32))
                                    })
                                    .cloned()
                                    .collect()
                            };
                            for (_, es) in pages {
                                entries.extend(es);
                            }
                            entries.sort_unstable_by_key(|&(id, _)| id);
                            Ok((entries, shipped))
                        }
                        Err(_) => Err(()),
                    }
                } else {
                    match rank.try_recv::<Vec<(u32, D)>>(pred as usize, TAG_MIRROR) {
                        Ok(entries) => {
                            let n = entries.len();
                            Ok((entries, n))
                        }
                        Err(_) => Err(()),
                    }
                };
                match received {
                    Ok((mut entries, shipped)) => {
                        rank.advance(costs.checkpoint_per_entry * shipped as f64);
                        // Staging-time checksums: the wire is already
                        // frame-checksummed, so computing the sums here is
                        // equivalent to shipping the sender's — without
                        // growing the mirror payload.
                        let sums = audit::entry_sums(&entries);
                        if store.audit.is_some() {
                            rank.advance(costs.audit_per_entry * entries.len() as f64);
                        }
                        // From here until a restore consults it, the copy
                        // sits at rest: apply the fault plan's silent bit
                        // flips now, keyed by holder so sibling replicas
                        // of the same owner fail independently.
                        audit::corrupt_entries_at_rest(rank, &mut entries, iter as u64);
                        wards.push(Ward {
                            rank: pred,
                            entries,
                            sums,
                        });
                    }
                    Err(()) => return Err(()),
                }
            }
        }
        Ok(())
    })();
    // Commit barrier: everyone holds a staged snapshot; it becomes the
    // recovery point only if nobody died while staging. Every rank arrives
    // here even when its own mirror receive failed — skipping the exchange
    // would offset the collective count by one, and peers would match
    // their *next* control exchange against this one and desynchronise
    // the whole protocol. A failed receive means the predecessor died, so
    // the verdict reports a new crash and every rank aborts together.
    // The word carries the pager's damage latch: a snapshot that paged in
    // a lost page is a hole, and *nobody* may commit it as a recovery
    // point (word 0 without paging — the exchange is byte-identical).
    let verdict = rank.ctl_exchange(CtlSlot {
        word: u64::from(store.disk_damaged()) * DAMAGE_FLAG,
        load: 0.0,
        flag: false,
    });
    timers.add(Phase::Checkpoint, rank.wtime() - t0 - storage_io);
    rank.trace_span("Checkpoint", "phase", t0, &[]);
    if staged.is_err()
        || has_new_crash(&verdict, crashed)
        || any_disk_damage(&verdict, store.nprocs)
    {
        return Err(verdict);
    }
    // The diff this image carried is now the committed baseline.
    if let Some(p) = store.pager.as_mut() {
        p.clear_ckpt_dirty();
    }
    rank.trace_instant(
        "checkpoint",
        "recovery",
        &[
            ("iter", ArgValue::U64(iter as u64)),
            ("bytes", ArgValue::U64(bytes)),
            ("replicas", ArgValue::U64(wards.len() as u64)),
        ],
    );
    // The committed own copy is at rest too, under this rank's key —
    // independent of the decisions its buddies made for their wards.
    audit::corrupt_entries_at_rest(rank, &mut mine, iter as u64);
    Ok(Checkpoint {
        genesis: false,
        iter,
        owner: store.owner.clone(),
        mine,
        mine_sums,
        wards,
        ring,
        dead: dead.to_vec(),
        ranks_died: ranks_died.to_vec(),
        counters: counters.clone(),
        balancer_state: balancer.checkpoint_state(),
        clock: rank.wtime(),
    })
}

/// The subset of a buddy copy one adopter needs: the nodes of crashed rank
/// `c` assigned to adopter `a` by `plan`, plus their neighbours (they
/// become the adopter's shadows). `ward` is `c`'s full table snapshot, so
/// every wanted entry is guaranteed present.
fn package_for<D: Clone>(
    graph: &Graph,
    plan: &[(u32, u32)],
    owner: &[u32],
    c: u32,
    a: u32,
    ward: &[(u32, D)],
) -> Vec<(u32, D)> {
    let mut wanted: Vec<u32> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for &(v, t) in plan {
        if owner[v as usize] != c || t != a {
            continue;
        }
        for id in std::iter::once(v).chain(graph.neighbors(v).iter().copied()) {
            if seen.insert(id) {
                wanted.push(id);
            }
        }
    }
    wanted
        .into_iter()
        .map(|id| {
            let idx = ward
                .binary_search_by_key(&id, |&(i, _)| i)
                .unwrap_or_else(|_| panic!("buddy copy of rank {c} lacks node {id}"));
            (id, ward[idx].1.clone())
        })
        .collect()
}

/// Roll every survivor back to the last committed checkpoint after the
/// failure detector reports a new crash. Loops until an attempt completes
/// with no further deaths; on return the world state (store, counters,
/// dead sets, balancer) is the checkpoint state with the crashed ranks'
/// nodes adopted by survivors, and `ckpt` has been re-mirrored over the
/// shrunken ring.
///
/// # Panics
/// Raises [`UnrecoverableStateSignal`] (on every survivor, identically)
/// when some rank's state has no intact replica left: the rank and all
/// `r` of its copies were lost or corrupted in the same inter-checkpoint
/// window — the one failure mode replication cannot cover.
#[allow(clippy::too_many_arguments)]
pub(crate) fn roll_back<P, B>(
    rank: &Rank,
    graph: &Graph,
    program: &P,
    cfg: &RunConfig,
    store: &mut NodeStore<P::Data>,
    balancer: &mut B,
    ckpt: &mut Checkpoint<P::Data>,
    crashed: &mut [bool],
    dead: &mut [bool],
    ranks_died: &mut Vec<u32>,
    counters: &mut Counters,
    integrity: &mut IntegrityCounters,
    timers: &mut PhaseTimers,
    checkpoint_bytes: &mut u64,
) where
    P: NodeProgram,
    P::Data: Clone + Wire + Send + 'static,
    B: DynamicBalancer,
{
    let me = rank.rank() as u32;
    let nprocs = store.nprocs;
    debug_assert!(
        nprocs <= 64,
        "the replica census packs owner ranks into a u64 slot word"
    );
    // Strike counter for page damage discovered while re-mirroring: the
    // verdict words are replicated, so every survivor counts identically
    // and escalates together.
    let mut disk_strikes = 0u32;
    'attempt: loop {
        let t0 = rank.wtime();
        // 1. Discard every in-flight message from the aborted epoch, then
        //    synchronise: nobody proceeds (and starts sending recovery or
        //    replay traffic) until everyone has purged. The verdict also
        //    refreshes the agreed cumulative crash set — and carries the
        //    *replica census* in the otherwise-unused slot word and flag:
        //    bit `c` of the word says this rank holds an intact (checksum
        //    -verified) ward for owner `c`; the flag says its own copy
        //    survived its time at rest. One collective thus tells every
        //    survivor exactly where intact state still exists.
        rank.purge_mailbox();
        let mut word = 0u64;
        for w in &ckpt.wards {
            let bad = audit::count_bad_entries(&w.entries, &w.sums);
            if bad == 0 {
                word |= 1u64 << w.rank;
            } else {
                integrity.bad_replicas += 1;
                rank.trace_instant(
                    "bad_replica",
                    "integrity",
                    &[
                        ("owner", ArgValue::U64(w.rank as u64)),
                        ("entries", ArgValue::U64(bad)),
                    ],
                );
            }
        }
        let mine_bad = if ckpt.genesis {
            0
        } else {
            audit::count_bad_entries(&ckpt.mine, &ckpt.mine_sums)
        };
        if mine_bad > 0 {
            integrity.bad_replicas += 1;
            rank.trace_instant(
                "bad_replica",
                "integrity",
                &[
                    ("owner", ArgValue::U64(me as u64)),
                    ("entries", ArgValue::U64(mine_bad)),
                ],
            );
        }
        if store.audit.is_some() {
            let verified =
                ckpt.wards.iter().map(|w| w.entries.len()).sum::<usize>() + ckpt.mine.len();
            rank.advance(cfg.costs.audit_per_entry * verified as f64);
        }
        let verdict = rank.ctl_exchange(CtlSlot {
            word,
            load: 0.0,
            flag: mine_bad == 0,
        });
        for r in verdict.dead_ranks() {
            crashed[r] = true;
        }

        // Live ranks whose own copy rotted at rest adopt a full intact
        // replica instead (self-rescue), exactly like a crashed rank's
        // adopters — agreed from the census, so the traffic pattern is
        // replicated. Crashed ranks have no slot, so they are the
        // adoption plan's problem, not the rescue list's.
        let rescue: Vec<u32> = (0..nprocs as u32)
            .filter(|&r| !crashed[r as usize] && verdict.flag(r as usize) == Some(false))
            .collect();
        // The elected source for rank `x`'s state: the nearest ring
        // successor (distance 1..=r) that is alive and whose census bit
        // confirms an intact ward — the escalation order local → buddy 1
        // → … → buddy r. No candidate means every copy is gone.
        let elect = |x: u32| -> Option<u32> {
            ckpt.holders_of(x, cfg.replication).into_iter().find(|&h| {
                !crashed[h as usize]
                    && verdict
                        .word(h as usize)
                        .is_some_and(|w| w & (1u64 << x) != 0)
            })
        };

        // 2. Replicated adoption plan: a pure function of the checkpointed
        //    owner map and the agreed dead set, so every survivor derives
        //    it identically with no communication.
        let plan = migrate::plan_adoption(graph, &ckpt.owner, crashed, &ckpt.dead);
        let mut owner = ckpt.owner.clone();
        for &(v, t) in &plan {
            owner[v as usize] = t;
        }

        // 3. Restore node data under the post-adoption ownership.
        let restore = (|| -> Result<(), ()> {
            if ckpt.genesis {
                // Iteration-0 state is reconstructible locally. The pager
                // — and its virtual disk, whose operation counter salts
                // every fault decision — survives the rebuild: replay must
                // make *fresh* disk-fault decisions, or a rot-prone run
                // would re-damage itself identically forever.
                let part = Partition::new(owner.clone(), nprocs);
                let pager = store.pager.take();
                *store = NodeStore::build(graph, &part, me, program, cfg.hash_buckets);
                store.pager = pager;
                if let Some(p) = store.pager.as_mut() {
                    p.reset_after_restore();
                }
                rank.advance(cfg.costs.init_per_node * store.stored_count() as f64);
                return Ok(());
            }
            // Rescue first: a rank whose own copy rotted replaces its
            // entries base wholesale with an intact replica shipped from
            // the elected holder, before any adoption traffic.
            let mut entries = ckpt.mine.clone();
            rank.advance(cfg.costs.checkpoint_per_entry * entries.len() as f64);
            for &x in &rescue {
                let holder = match elect(x) {
                    Some(h) => h,
                    None => std::panic::panic_any(UnrecoverableStateSignal { rank: x }),
                };
                if x == me {
                    match rank.try_recv::<Vec<(u32, P::Data)>>(holder as usize, TAG_ADOPT) {
                        Ok(copy) => {
                            rank.advance(cfg.costs.checkpoint_per_entry * copy.len() as f64);
                            entries = copy;
                        }
                        Err(_) => return Err(()),
                    }
                } else if me == holder {
                    let w = ckpt
                        .wards
                        .iter()
                        .find(|w| w.rank == x)
                        .expect("census bit implies a held ward");
                    rank.advance(cfg.costs.checkpoint_per_entry * w.entries.len() as f64);
                    rank.send_reliable(x as usize, TAG_ADOPT, &w.entries, RetryPolicy::Escalate);
                }
            }
            // Ship adopted data out of the replica copies, one crashed
            // owner at a time, ascending — a deterministic traffic
            // pattern both sides derive from the plan. The source is the
            // elected holder: the nearest successor whose copy the census
            // verified, so restore escalates past lost or rotted replicas
            // and fails (typed) only when all `r` are gone.
            let mut lost_owners: Vec<u32> =
                plan.iter().map(|&(v, _)| ckpt.owner[v as usize]).collect();
            lost_owners.sort_unstable();
            lost_owners.dedup();
            for &c in &lost_owners {
                let holder = match elect(c) {
                    Some(h) => h,
                    None => std::panic::panic_any(UnrecoverableStateSignal { rank: c }),
                };
                let mut adopters: Vec<u32> = plan
                    .iter()
                    .filter(|&&(v, _)| ckpt.owner[v as usize] == c)
                    .map(|&(_, t)| t)
                    .collect();
                adopters.sort_unstable();
                adopters.dedup();
                if me == holder {
                    let ward = ckpt
                        .wards
                        .iter()
                        .find(|w| w.rank == c)
                        .expect("census bit implies a held ward");
                    for &a in &adopters {
                        let package = package_for(graph, &plan, &ckpt.owner, c, a, &ward.entries);
                        rank.advance(cfg.costs.checkpoint_per_entry * package.len() as f64);
                        if a == me {
                            entries.extend(package);
                        } else {
                            rank.send_reliable(
                                a as usize,
                                TAG_ADOPT,
                                &package,
                                RetryPolicy::Escalate,
                            );
                        }
                    }
                } else if adopters.contains(&me) {
                    match rank.try_recv::<Vec<(u32, P::Data)>>(holder as usize, TAG_ADOPT) {
                        Ok(package) => {
                            rank.advance(cfg.costs.checkpoint_per_entry * package.len() as f64);
                            entries.extend(package);
                        }
                        // The holder crashed mid-recovery: restart the
                        // attempt with the refreshed dead set.
                        Err(_) => return Err(()),
                    }
                }
            }
            // Installing the owner map rebuilds the replicated directory;
            // restore() keeps only what this rank needs under it.
            store.restore(graph, owner.clone(), entries);
            // The rebuilt table is wholly in RAM: re-point the pager at it
            // (fresh pool, purged disk, damage latch cleared) so paging
            // resumes from a verified state.
            if let Some(p) = store.pager.as_mut() {
                p.reset_after_restore();
            }
            Ok(())
        })();
        if restore.is_ok() {
            // 4. Rewind the replicated bookkeeping. Crashes are permanent:
            //    they are re-overlaid on the checkpointed cooperative state.
            *counters = ckpt.counters.clone();
            for (d, &cd) in dead.iter_mut().zip(&ckpt.dead) {
                *d = cd;
            }
            for r in 0..nprocs {
                if crashed[r] {
                    dead[r] = true;
                }
            }
            ranks_died.clear();
            ranks_died.extend(ckpt.ranks_died.iter().copied());
            for r in 0..nprocs as u32 {
                if crashed[r as usize] && !ranks_died.contains(&r) {
                    ranks_died.push(r);
                }
            }
            balancer.restore_state(&ckpt.balancer_state);
            // The restore replaced the table wholesale: re-seed the
            // maintained digests from the restored values (charged like
            // any digest pass).
            if cfg.audit_every.is_some() {
                store.enable_audit();
                rank.advance(cfg.costs.audit_per_entry * store.stored_count() as f64);
            }
            // Digest re-seed done (it needs the whole table resident):
            // spill the restored pages back down to budget and charge the
            // I/O before the agreement round below.
            store.bulk_end_clean();
            exchange::drain_storage(rank, store, timers);
            if cfg.validate {
                store
                    .validate(graph)
                    .unwrap_or_else(|e| panic!("rank {me}: post-recovery invariant: {e}"));
            }
        }

        // 5. Agree the restore completed without further deaths. Every
        //    rank arrives here even when its own restore aborted (a buddy
        //    holder died mid-shipment): skipping the exchange would leave
        //    the survivors' collective counts misaligned and deadlock the
        //    next protocol step. The death that failed the restore is by
        //    construction a new crash, so the verdict sends everyone back
        //    around together.
        let verdict = rank.ctl_exchange(CtlSlot::default());
        timers.add(Phase::Recovery, rank.wtime() - t0);
        rank.trace_span("Recovery", "phase", t0, &[]);
        if restore.is_err() || has_new_crash(&verdict, crashed) {
            continue 'attempt;
        }
        // Each completed self-rescue is a repair the platform performed
        // (agreed: the rescue list came out of the census verdict).
        integrity.repairs += rescue.len() as u32;

        // 6. Re-mirror immediately: the adopted partition must itself be
        //    crash-safe before replay resumes, otherwise a second crash
        //    could orphan the adopted nodes with no copy anywhere. This is
        //    also what re-replicates state whose holders were lost: the
        //    shrunken ring gets a fresh full set of `r` copies.
        match take_checkpoint(
            rank,
            store,
            None,
            ckpt.iter,
            dead,
            ranks_died,
            counters,
            balancer,
            crashed,
            cfg.replication,
            &cfg.costs,
            timers,
            checkpoint_bytes,
        ) {
            Ok(c) => {
                *ckpt = c;
                rank.trace_instant(
                    "rollback",
                    "recovery",
                    &[("to_iter", ArgValue::U64(ckpt.iter as u64))],
                );
                return;
            }
            Err(v) => {
                // A re-mirror that failed *without* a new crash failed
                // because some pager latched damage while spilling or
                // re-reading its restored pages. Each such round already
                // replayed with fresh disk decisions; after
                // `MAX_DISK_FAILURES` of them in a row the page is deemed
                // unrecoverable and every survivor raises the identical
                // typed signal.
                if !has_new_crash(&v, crashed) && any_disk_damage(&v, nprocs) {
                    disk_strikes += 1;
                    rank.trace_instant(
                        "disk_damage",
                        "storage",
                        &[("strikes", ArgValue::U64(disk_strikes as u64))],
                    );
                    if disk_strikes >= MAX_DISK_FAILURES {
                        let victim =
                            first_damaged(&v, nprocs).expect("damage verdict names a damaged rank");
                        std::panic::panic_any(UnrecoverableStateSignal { rank: victim });
                    }
                }
                continue 'attempt;
            }
        }
    }
}

/// The crash-mode SPMD body: the platform driver's normal flow of control
/// (thesis Figure 6) re-expressed over the failure-detecting control plane,
/// with coordinated checkpoints and rollback recovery wrapped around it.
/// Run under [`mpisim::World::run_fallible`], which converts a crashed
/// rank's unwind into a `None` outcome.
pub(crate) fn run_rank_with_recovery<P, B>(
    rank: &Rank,
    graph: &Graph,
    program: &P,
    partition: &Partition,
    balancer: &mut B,
    cfg: &RunConfig,
) -> RankOutcome<P::Data>
where
    P: NodeProgram,
    P::Data: Clone + Wire + Send + 'static,
    B: DynamicBalancer,
{
    let me = rank.rank() as u32;
    let nprocs = cfg.nprocs;
    let num_nodes = graph.num_nodes();
    let mut timers = PhaseTimers::new();

    // ---- Initialization (identical to the fault-free path) -------------
    let t0 = rank.wtime();
    let mut store = NodeStore::build(graph, partition, me, program, cfg.hash_buckets);
    rank.advance(cfg.costs.init_per_node * store.stored_count() as f64);
    if cfg.audit_every.is_some() {
        store.enable_audit();
        rank.advance(cfg.costs.audit_per_entry * store.stored_count() as f64);
    }
    timers.add(Phase::Initialization, rank.wtime() - t0);
    rank.trace_span("Initialization", "phase", t0, &[]);
    // Out-of-core mode: install the pager *after* the audit digests seeded
    // (they need the whole table) and spill down to the buffer budget —
    // the spilled pages get their first verified disk commit here.
    if let Some(pc) = &cfg.paging {
        store.enable_paging(pc, &cfg.world.faults, &cfg.costs);
        exchange::drain_storage(rank, &mut store, &mut timers);
    }
    if cfg.validate {
        store
            .validate(graph)
            .unwrap_or_else(|e| panic!("rank {me}: init invariant: {e}"));
    }
    rank.barrier();

    let mut ckpt: Checkpoint<P::Data> = Checkpoint::genesis(
        partition.as_slice().to_vec(),
        nprocs,
        balancer.checkpoint_state(),
    );
    let mut counters = Counters::default();
    let mut dead = vec![false; nprocs];
    let mut crashed = vec![false; nprocs];
    let mut ranks_died: Vec<u32> = Vec::new();
    let mut detector = cfg.straggler.map(|(t, p)| StragglerDetector::new(t, p));
    let mut rollbacks = 0u32;
    let mut iterations_replayed = 0u32;
    let mut checkpoint_bytes = 0u64;
    let mut integrity = IntegrityCounters::default();
    // Consecutive boundaries poisoned by page damage (replicated: counted
    // from the agreed verdict words, reset on every clean boundary). Each
    // strike rolls back and replays with fresh disk-fault decisions;
    // `MAX_DISK_FAILURES` in a row means some page is gone for good.
    let mut disk_failures = 0u32;
    // The corruption sweep's epoch is a monotonic pass counter, *never*
    // rolled back: replay after a repair makes fresh decisions, so a run
    // is not doomed to re-corrupt identically and converges.
    let mut mem_epoch = 0u64;
    let has_mem_faults = cfg.world.faults.has_memory_corruption();
    // Wire-traffic accounting, not replicated program state: like the
    // fault counters these tally what physically happened, so replayed
    // iterations count again and rollback does not rewind them.
    let mut delta_stats = exchange::DeltaStats::default();
    let mut quiescent_iterations = 0u32;
    let mut inner_iterations = 0u32;
    let mut barriers_elided = 0u64;
    let plan_kills = cfg.world.faults.has_kills();
    let my_kill = cfg.world.faults.kill_time(me as usize);
    let k = cfg.checkpoint_every.max(1);

    // One rollback sequence, repeated at every detection point: account the
    // replay (`$completed` = iterations whose work the rewind discards),
    // rewind, and resume from the checkpoint.
    macro_rules! recover {
        ($completed:expr, $iter:ident) => {{
            iterations_replayed += $completed - ckpt.iter;
            rollbacks += 1;
            roll_back(
                rank,
                graph,
                program,
                cfg,
                &mut store,
                balancer,
                &mut ckpt,
                &mut crashed,
                &mut dead,
                &mut ranks_died,
                &mut counters,
                &mut integrity,
                &mut timers,
                &mut checkpoint_bytes,
            );
            // Detector state is replicated-but-unsnapshotted: reset it
            // identically everywhere and let replay re-feed it.
            detector = cfg.straggler.map(|(t, p)| StragglerDetector::new(t, p));
            $iter = ckpt.iter + 1;
        }};
    }

    // Mid-iteration detections discard the current (garbage) iteration
    // too; gather-phase detections only discard what ran past the last
    // checkpoint.

    let mut iter: u32 = 1;
    let (total, gathered) = 'run: loop {
        while iter <= cfg.iterations {
            // Aborted iterations (a `recover!` path `continue`s) simply
            // drop the tracer: no iteration span is emitted for garbage
            // iterations, the rollback instant marks them instead.
            let tracer = IterTracer::begin(rank, &timers);
            let mut comp_this_iter = 0.0;

            // ---- Inner (barrier-elided) rounds -------------------------
            // Interior-only, no communication and no detection point:
            // crashes, damage latches, and audit verdicts all surface at
            // the next global round's control exchange. The schedule is a
            // pure function of `iter` (checkpoint and audit cadences force
            // global rounds), so replay after a rollback re-elides the
            // identical rounds. The at-rest corruption sweep still runs
            // every round — its epoch is monotonic and never rolled back.
            if !crate::driver::is_global_round(iter, cfg, true) {
                for phase in 0..program.phases() {
                    let ctx = ComputeCtx {
                        iter,
                        phase,
                        rank: me,
                        num_nodes,
                    };
                    exchange::inner_step(
                        rank,
                        program,
                        &mut store,
                        &ctx,
                        &cfg.costs,
                        &mut timers,
                        &mut comp_this_iter,
                    );
                    barriers_elided += 1;
                }
                inner_iterations += 1;
                counters.comp_since_balance += comp_this_iter;
                if has_mem_faults {
                    audit::inject_memory_faults(rank, &mut store, mem_epoch);
                    mem_epoch += 1;
                }
                if let Some(tracer) = tracer {
                    tracer.finish(rank, iter, &timers);
                }
                iter += 1;
                continue;
            }

            // ---- Global round ------------------------------------------
            // Replay the boundary passes the elided rounds skipped, then
            // run the full crash-aware exchange; stale retained shadows
            // force a full repack.
            let missed = crate::driver::elided_before(iter, cfg, true);
            if missed > 0
                && exchange::catch_up_boundary(
                    rank,
                    program,
                    &mut store,
                    iter,
                    missed,
                    program.phases(),
                    me,
                    num_nodes,
                    &cfg.costs,
                    &mut timers,
                    &mut comp_this_iter,
                )
            {
                store.needs_resync = true;
            }
            let mut changed_this_iter = 0u64;
            for phase in 0..program.phases() {
                let ctx = ComputeCtx {
                    iter,
                    phase,
                    rank: me,
                    num_nodes,
                };
                let (_, _, stats) = exchange::step_crash_aware(
                    rank,
                    graph,
                    program,
                    &mut store,
                    &ctx,
                    &cfg.costs,
                    &mut timers,
                    &mut comp_this_iter,
                    cfg.delta_exchange,
                    &[],
                );
                delta_stats.absorb(stats);
                changed_this_iter += stats.changed_nodes;
            }
            counters.comp_since_balance += comp_this_iter;

            // ---- Iteration-end detection point -------------------------
            // One control exchange carries everything the boundary needs:
            // the failure detector's verdict, each rank's compute time
            // (straggler sample), cooperative kill announcements — and,
            // under delta exchange, the changed-node count piggybacked in
            // the otherwise-unused metadata word.
            let i_died =
                plan_kills && !dead[me as usize] && my_kill.is_some_and(|t| rank.wtime() >= t);
            // The damage latch rides bit 62 of the changed-count word (0
            // without paging, so the exchange is byte-identical): a rank
            // that lost every verified copy of a page served a hole this
            // iteration, and everyone must discard the epoch together.
            let i_damaged = store.disk_damaged();
            let verdict = rank.ctl_exchange(CtlSlot {
                word: changed_this_iter | (u64::from(i_damaged) * DAMAGE_FLAG),
                load: comp_this_iter,
                flag: i_died,
            });
            if has_new_crash(&verdict, &crashed) {
                recover!(iter, iter);
                continue;
            }
            if any_disk_damage(&verdict, nprocs) {
                disk_failures += 1;
                rank.trace_instant(
                    "disk_damage",
                    "storage",
                    &[
                        ("iter", ArgValue::U64(iter as u64)),
                        ("strikes", ArgValue::U64(disk_failures as u64)),
                    ],
                );
                if disk_failures >= MAX_DISK_FAILURES {
                    let victim = first_damaged(&verdict, nprocs)
                        .expect("damage verdict names a damaged rank");
                    std::panic::panic_any(UnrecoverableStateSignal { rank: victim });
                }
                integrity.repairs += 1;
                recover!(iter, iter);
                continue;
            }
            disk_failures = 0;
            if cfg.delta_exchange {
                let global: u64 = (0..nprocs)
                    .filter_map(|r| verdict.word(r))
                    .map(|w| w & !DAMAGE_FLAG)
                    .sum();
                if global == 0 {
                    quiescent_iterations += 1;
                }
            }

            // ---- Cooperative fail-stop (announced via the flag bits) ----
            if plan_kills {
                let newly: Vec<u32> = (0..nprocs as u32)
                    .filter(|&r| verdict.flag(r as usize) == Some(true) && !dead[r as usize])
                    .collect();
                for &d in &newly {
                    dead[d as usize] = true;
                    ranks_died.push(d);
                }
                // Evacuation is whole-table surgery: page everything in
                // for it, conservatively re-dirty, and spill back after.
                if !newly.is_empty() {
                    store.bulk_begin();
                }
                for &d in &newly {
                    counters.evacuated += migrate::evacuate_rank(
                        rank,
                        graph,
                        &mut store,
                        d,
                        &dead,
                        &cfg.costs,
                        &mut timers,
                    );
                }
                if !newly.is_empty() {
                    store.bulk_end();
                    exchange::drain_storage(rank, &mut store, &mut timers);
                    counters.comp_since_balance = 0.0;
                    store.reset_loads();
                    if cfg.validate {
                        store.validate(graph).unwrap_or_else(|e| {
                            panic!("rank {me}: post-evacuation invariant: {e}")
                        });
                    }
                }
            }

            // ---- Periodic load balancing (control-plane protocol) -------
            let mut balanced_this_iter = false;
            if iter >= cfg.balance_offset.max(1)
                && migrate::is_balance_iteration(iter - cfg.balance_offset, cfg.balance_every)
            {
                // Migration mutates buckets behind the pager's back:
                // whole-table phase (the Err path skips the spill — the
                // rollback it triggers resets the pager wholesale).
                store.bulk_begin();
                match migrate::balance_round_crash(
                    rank,
                    graph,
                    &mut store,
                    balancer,
                    counters.comp_since_balance,
                    cfg.migration_batch,
                    cfg.migrant_policy,
                    &dead,
                    &crashed,
                    &cfg.costs,
                    &mut timers,
                ) {
                    Ok(out) => {
                        store.bulk_end();
                        exchange::drain_storage(rank, &mut store, &mut timers);
                        counters.migrations += out.migrated;
                        counters.skipped += out.skipped;
                        counters.comp_since_balance = 0.0;
                        store.reset_loads();
                        balanced_this_iter = true;
                        if cfg.validate {
                            store.validate(graph).unwrap_or_else(|e| {
                                panic!("rank {me}: post-migration invariant: {e}")
                            });
                        }
                    }
                    Err(()) => {
                        recover!(iter, iter);
                        continue;
                    }
                }
            }

            // ---- Straggler detection (from the boundary verdict) --------
            if let Some(det) = detector.as_mut() {
                let alive: Vec<f64> = (0..nprocs)
                    .filter(|&r| !dead[r])
                    .map(|r| verdict.load(r).unwrap_or(0.0))
                    .collect();
                let max = alive.iter().cloned().fold(0.0f64, f64::max);
                let mean = alive.iter().sum::<f64>() / alive.len().max(1) as f64;
                if det.observe(max, mean) && !balanced_this_iter {
                    store.bulk_begin();
                    match migrate::balance_round_crash(
                        rank,
                        graph,
                        &mut store,
                        balancer,
                        counters.comp_since_balance,
                        cfg.migration_batch,
                        cfg.migrant_policy,
                        &dead,
                        &crashed,
                        &cfg.costs,
                        &mut timers,
                    ) {
                        Ok(out) => {
                            store.bulk_end();
                            exchange::drain_storage(rank, &mut store, &mut timers);
                            counters.migrations += out.migrated;
                            counters.skipped += out.skipped;
                            counters.emergency_balances += 1;
                            counters.comp_since_balance = 0.0;
                            store.reset_loads();
                            if cfg.validate {
                                store.validate(graph).unwrap_or_else(|e| {
                                    panic!("rank {me}: post-emergency-balance invariant: {e}")
                                });
                            }
                        }
                        Err(()) => {
                            recover!(iter, iter);
                            continue;
                        }
                    }
                }
            }

            // ---- Silent-corruption injection & state audit -------------
            // The fault plan's sweep over live at-rest state runs at the
            // boundary, after the iteration's writes — and the audit runs
            // before any checkpoint, so a snapshot can never baseline
            // corrupt state.
            if has_mem_faults {
                audit::inject_memory_faults(rank, &mut store, mem_epoch);
                mem_epoch += 1;
            }
            if let Some(ka) = cfg.audit_every {
                let due =
                    iter.is_multiple_of(ka) || iter.is_multiple_of(k) || iter == cfg.iterations;
                if due {
                    // The audit digests the whole partition: page it in,
                    // and spill back (read-only) before the verdict round.
                    // A page lost here leaves its entries missing, which
                    // the verify counts as mismatches — at-rest disk rot
                    // that defeated every copy surfaces as owner-region
                    // damage and rolls back like memory rot.
                    store.bulk_begin();
                    let t0 = rank.wtime();
                    let outcome = store.audit_verify();
                    rank.advance(cfg.costs.audit_per_entry * outcome.checked as f64);
                    store.bulk_end_clean();
                    let storage_io = exchange::drain_storage(rank, &mut store, &mut timers);
                    // One collective agrees the boundary's verdict: bit 0
                    // of the word = owner-region damage somewhere on this
                    // rank, bit 1 = shadow-region damage.
                    let word = u64::from(outcome.owned_mismatches > 0)
                        | (u64::from(outcome.shadow_mismatches > 0) << 1);
                    let verdict = rank.ctl_exchange(CtlSlot {
                        word,
                        load: 0.0,
                        flag: false,
                    });
                    timers.add(Phase::Integrity, rank.wtime() - t0 - storage_io);
                    integrity.audit_mismatches +=
                        outcome.owned_mismatches + outcome.shadow_mismatches;
                    rank.trace_instant(
                        "audit",
                        "integrity",
                        &[
                            ("iter", ArgValue::U64(iter as u64)),
                            ("checked", ArgValue::U64(outcome.checked as u64)),
                            ("root", ArgValue::U64(outcome.owned_root)),
                        ],
                    );
                    if outcome.bad() {
                        rank.trace_instant(
                            "audit_mismatch",
                            "integrity",
                            &[
                                ("iter", ArgValue::U64(iter as u64)),
                                ("owned", ArgValue::U64(outcome.owned_mismatches)),
                                ("shadow", ArgValue::U64(outcome.shadow_mismatches)),
                            ],
                        );
                    }
                    if has_new_crash(&verdict, &crashed) {
                        recover!(iter, iter);
                        continue;
                    }
                    let any_owned =
                        (0..nprocs).any(|r| verdict.word(r).is_some_and(|w| w & 1 != 0));
                    let any_shadow =
                        (0..nprocs).any(|r| verdict.word(r).is_some_and(|w| w & 2 != 0));
                    if any_owned || (any_shadow && ka > 1) {
                        // Owner-region damage — or shadow damage that
                        // compute may already have read, when audits are
                        // sparser than every iteration — poisons results:
                        // the only sound repair is rollback + replay from
                        // the last verified snapshot.
                        integrity.repairs += 1;
                        recover!(iter, iter);
                        continue;
                    }
                    if any_shadow {
                        // Shadow-only damage caught the very boundary it
                        // appeared (audits every iteration): nothing has
                        // read it yet, so a targeted resync from the
                        // owners — who re-note every shadow hash — repairs
                        // it at a fraction of a rollback's cost.
                        let (saw_death, _) = exchange::resync_shadows(
                            rank,
                            &mut store,
                            &cfg.costs,
                            &mut timers,
                            &[],
                        );
                        integrity.shadow_resyncs += 1;
                        integrity.repairs += 1;
                        rank.trace_instant(
                            "shadow_resync",
                            "integrity",
                            &[("iter", ArgValue::U64(iter as u64))],
                        );
                        if saw_death {
                            recover!(iter, iter);
                            continue;
                        }
                    }
                }
            }

            // ---- Coordinated checkpoint --------------------------------
            if iter.is_multiple_of(k) {
                match take_checkpoint(
                    rank,
                    &mut store,
                    Some(&ckpt),
                    iter,
                    &dead,
                    &ranks_died,
                    &counters,
                    balancer,
                    &crashed,
                    cfg.replication,
                    &cfg.costs,
                    &mut timers,
                    &mut checkpoint_bytes,
                ) {
                    Ok(c) => ckpt = c,
                    Err(_) => {
                        recover!(iter, iter);
                        continue;
                    }
                }
            }
            if let Some(tracer) = tracer {
                tracer.finish(rank, iter, &timers);
            }
            iter += 1;
        }

        // ---- Crash-tolerant final gather ------------------------------
        // Survivors agree the iterations are done, ship their owned data
        // point-to-point to the lowest live rank, and agree once more that
        // nobody died during the gather. A death at any point here rolls
        // back and re-runs the tail of the computation.
        // Fault every page in *before* the pre-gather agreement: its word
        // carries the damage latch, so a page lost during this final sweep
        // rolls back and replays instead of shipping garbage — the gather
        // below may then assume every owned entry is present.
        store.bulk_begin();
        exchange::drain_storage(rank, &mut store, &mut timers);
        let verdict = rank.ctl_exchange(CtlSlot {
            word: u64::from(store.disk_damaged()) * DAMAGE_FLAG,
            load: 0.0,
            flag: false,
        });
        if has_new_crash(&verdict, &crashed) {
            recover!(iter - 1, iter);
            continue 'run;
        }
        if any_disk_damage(&verdict, nprocs) {
            disk_failures += 1;
            if disk_failures >= MAX_DISK_FAILURES {
                let victim =
                    first_damaged(&verdict, nprocs).expect("damage verdict names a damaged rank");
                std::panic::panic_any(UnrecoverableStateSignal { rank: victim });
            }
            integrity.repairs += 1;
            recover!(iter - 1, iter);
            continue 'run;
        }
        let designated = (0..nprocs)
            .find(|&r| !crashed[r])
            .expect("at least one rank survives") as u32;
        let owned: Vec<(u32, P::Data)> = store
            .internal
            .iter()
            .chain(store.peripheral.iter())
            .map(|node| {
                (
                    node.id,
                    store
                        .table
                        .get(node.id)
                        .unwrap_or_else(|| {
                            crate::error::invariant_violated(
                                me,
                                format!("no data for owned node {} at gather", node.id),
                            )
                        })
                        .clone(),
                )
            })
            .collect();
        let mut gathered: Option<Vec<(u32, P::Data)>> = None;
        if me == designated {
            let mut all = owned;
            if gather_chunks(rank, &crashed, &mut all).is_ok() {
                gathered = Some(all);
            }
        } else {
            rank.send_reliable(
                designated as usize,
                TAG_GATHER,
                &owned,
                RetryPolicy::Escalate,
            );
        }
        let verdict = rank.ctl_exchange(CtlSlot::default());
        if has_new_crash(&verdict, &crashed) {
            recover!(iter - 1, iter);
            continue 'run;
        }
        break (rank.wtime(), gathered);
    };

    // Past the closing ctl_exchange every live rank's deliveries have
    // landed: reconcile lingering stale/damaged frames into the fault
    // counters before the final snapshot (else the totals depend on host
    // scheduling).
    rank.reconcile_faults();
    RankOutcome {
        total,
        timers,
        comm: rank.stats(),
        migrations: counters.migrations,
        skipped: counters.skipped,
        evacuated: counters.evacuated,
        emergency_balances: counters.emergency_balances,
        ranks_died,
        gathered,
        owner: store.owner.clone(),
        checkpoint_bytes,
        rollbacks,
        iterations_replayed,
        delta: delta_stats,
        quiescent_iterations,
        inner_iterations,
        barriers_elided,
        degraded_iterations: 0,
        rejoins: 0,
        rejoin_bytes: 0,
        suspected_peak: 0,
        integrity,
        pages: store
            .pager
            .as_ref()
            .map(|p| p.counters())
            .unwrap_or_default(),
        disk: store
            .pager
            .as_ref()
            .map(|p| p.disk_counters())
            .unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holder_is_the_ring_successor() {
        let ckpt: Checkpoint<i64> = Checkpoint {
            ring: vec![0, 2, 3],
            ..Checkpoint::genesis(vec![0, 2, 3], 4, Vec::new())
        };
        assert_eq!(ckpt.holder_of(0), Some(2));
        assert_eq!(ckpt.holder_of(2), Some(3));
        assert_eq!(ckpt.holder_of(3), Some(0), "the ring wraps");
        assert_eq!(ckpt.holder_of(1), None, "rank 1 is not in the ring");
    }

    #[test]
    fn singleton_ring_has_no_holder() {
        let ckpt: Checkpoint<i64> = Checkpoint::genesis(vec![0, 0], 1, Vec::new());
        assert_eq!(ckpt.holder_of(0), None);
        assert!(ckpt.holders_of(0, 3).is_empty());
    }

    #[test]
    fn holders_escalate_along_ring_successors() {
        let ckpt: Checkpoint<i64> = Checkpoint {
            ring: vec![0, 2, 3, 5],
            ..Checkpoint::genesis(vec![0; 6], 6, Vec::new())
        };
        assert_eq!(ckpt.holders_of(2, 1), vec![3]);
        assert_eq!(ckpt.holders_of(2, 2), vec![3, 5]);
        assert_eq!(ckpt.holders_of(5, 2), vec![0, 2], "the ring wraps");
        assert_eq!(
            ckpt.holders_of(0, 9),
            vec![2, 3, 5],
            "distances cap at ring members - 1: a rank never buddies itself"
        );
        assert!(
            ckpt.holders_of(1, 2).is_empty(),
            "rank 1 is not in the ring"
        );
    }

    #[test]
    fn new_crash_detection_compares_against_known_set() {
        let verdict = CtlVerdict {
            dead: vec![false, true, false],
            suspected: vec![false; 3],
            slots: vec![None; 3],
        };
        assert!(has_new_crash(&verdict, &[false, false, false]));
        assert!(!has_new_crash(&verdict, &[false, true, false]));
        assert!(!has_new_crash(&verdict, &[true, true, false]));
    }
}
