//! Crash-consistent checkpointing and rollback recovery.
//!
//! The cooperative fail-stop protocol (see `migrate::evacuate_rank`)
//! assumes a dying rank announces its death and helps evacuate its tasks.
//! This module handles the *uncooperative* case — a rank that simply stops
//! (`FaultPlan::with_crash`): mailbox sealed, in-flight messages dropped,
//! nothing drained.
//!
//! ## Protocol
//!
//! * **Coordinated snapshots.** Every `k` iterations (`RunConfig::
//!   checkpoint_every`) each rank snapshots its complete state at the
//!   iteration boundary — full data-node table (owned nodes *and* shadows,
//!   so the image is self-contained), the replicated owner map, the
//!   replicated recovery counters, and the balancer's serialized state —
//!   and mirrors the table snapshot to a deterministic *buddy*: its
//!   successor in the ring of live ranks sorted by id. One crash between
//!   consecutive checkpoints can never lose both copies of a partition;
//!   only the simultaneous loss of a rank *and* its buddy in the same
//!   inter-checkpoint window is unrecoverable (and reported as such).
//!   A snapshot is *staged* first and only *committed* if the closing
//!   control exchange reports no new deaths, so a crash mid-checkpoint
//!   can never install a torn snapshot.
//!
//! * **Deterministic failure detection.** All agreement goes through
//!   [`mpisim::Rank::ctl_exchange`]: a barrier-shaped collective that
//!   resolves once every rank has either arrived or died, and whose
//!   verdict (dead set + per-rank slots) is snapshotted once at
//!   resolution — every survivor receives a bit-identical copy.
//!
//! * **Never-skip schedule.** Between detections, survivors run their
//!   normal schedule with crash-aware receives
//!   ([`crate::exchange::step_crash_aware`]): a receive whose sender died
//!   substitutes the stale shadow value and carries on, so every survivor
//!   still executes the identical sequence of barriers and control
//!   exchanges. The numerically garbage iteration this produces is
//!   discarded wholesale by rollback.
//!
//! * **Rollback recovery.** On a new death every survivor purges its
//!   mailbox, synchronises, restores the last committed checkpoint,
//!   adopts the dead rank's nodes per the pure replicated
//!   [`crate::migrate::plan_adoption`] (data shipped out of the buddy
//!   copy), immediately re-mirrors the adopted partition, and re-runs the
//!   lost iterations. Replay is bit-deterministic, the virtual clock keeps
//!   running forward (re-execution is *charged*, not hidden), and the
//!   final answer is byte-identical to the sequential oracle.

use crate::costs::CostModel;
use crate::driver::{IterTracer, RankOutcome, RunConfig};
use crate::exchange;
use crate::imbalance::StragglerDetector;
use crate::migrate;
use crate::program::{ComputeCtx, NodeProgram};
use crate::store::NodeStore;
use crate::timers::{Phase, PhaseTimers};
use ic2_balance::DynamicBalancer;
use ic2_graph::{Graph, Partition};
use mpisim::{ArgValue, CtlSlot, CtlVerdict, Rank, RetryPolicy, Wire};

/// Message tag for checkpoint snapshots mirrored to buddy ranks.
pub const TAG_MIRROR: u32 = 4;

/// Message tag for adopted-node data shipped out of a buddy copy.
pub const TAG_ADOPT: u32 = 5;

/// Message tag for the crash-tolerant final gather.
pub const TAG_GATHER: u32 = 6;

/// Does `verdict` report any crash beyond those in `known`? The one
/// question every step of the crash-mode protocol asks before committing.
pub fn has_new_crash(verdict: &CtlVerdict, known: &[bool]) -> bool {
    verdict.dead.iter().zip(known).any(|(&d, &k)| d && !k)
}

/// The replicated recovery counters a checkpoint rewinds together with the
/// node data. Fault statistics, timers and the virtual clock are
/// deliberately *not* here: recovery overhead must stay visible in the
/// run report rather than be rolled back out of existence.
#[derive(Debug, Clone, Default)]
pub(crate) struct Counters {
    pub(crate) migrations: usize,
    pub(crate) skipped: usize,
    pub(crate) evacuated: usize,
    pub(crate) emergency_balances: usize,
    pub(crate) comp_since_balance: f64,
}

/// One rank's committed checkpoint: everything needed to rewind the rank —
/// and, via the buddy copy, one crashed peer — to an iteration boundary.
#[derive(Debug, Clone)]
pub struct Checkpoint<D> {
    /// Genesis checkpoints (iteration 0) are reconstructed locally from
    /// the program's initial data instead of from `mine`/`ward` — no
    /// mirroring traffic is needed for them.
    pub genesis: bool,
    /// Completed iterations at the snapshot (0 = before the first).
    pub iter: u32,
    /// The replicated owner map at the snapshot.
    pub owner: Vec<u32>,
    /// This rank's full table snapshot (owned + shadows), ascending by id.
    pub mine: Vec<(u32, D)>,
    /// The buddy copy this rank holds: predecessor rank in the ring and
    /// its full table snapshot.
    pub ward: Option<(u32, Vec<(u32, D)>)>,
    /// Live (non-crashed) ranks at commit time, ascending. The buddy of
    /// ring member `r` is its successor in this ring.
    pub ring: Vec<u32>,
    /// Cooperative (fail-stop) deaths at the snapshot.
    pub dead: Vec<bool>,
    /// Death log at the snapshot.
    pub ranks_died: Vec<u32>,
    /// Replicated recovery counters at the snapshot.
    pub(crate) counters: Counters,
    /// The balancer's serialized state at the snapshot.
    pub balancer_state: Vec<u8>,
    /// Virtual clock at commit (bookkeeping: recovery overhead analysis).
    pub clock: f64,
}

impl<D> Checkpoint<D> {
    /// The communication-free checkpoint every rank starts from: iteration
    /// 0 state is reconstructible from the program's init function and the
    /// initial partition alone.
    pub(crate) fn genesis(owner: Vec<u32>, nprocs: usize, balancer_state: Vec<u8>) -> Self {
        Checkpoint {
            genesis: true,
            iter: 0,
            owner,
            mine: Vec::new(),
            ward: None,
            ring: (0..nprocs as u32).collect(),
            dead: vec![false; nprocs],
            ranks_died: Vec::new(),
            counters: Counters::default(),
            balancer_state,
            clock: 0.0,
        }
    }

    /// Which ring member holds `c`'s buddy copy (its ring successor);
    /// `None` if `c` was not in the ring or the ring has no other member.
    pub fn holder_of(&self, c: u32) -> Option<u32> {
        if self.ring.len() < 2 {
            return None;
        }
        let pos = self.ring.iter().position(|&r| r == c)?;
        Some(self.ring[(pos + 1) % self.ring.len()])
    }
}

/// Stage a coordinated snapshot, mirror it to the buddy, and commit it iff
/// the closing control exchange reports no new death. `Err(verdict)` means
/// the staged snapshot was discarded and the caller must react: roll back
/// to its *previous* checkpoint on a new crash, or — in membership mode,
/// when the returned verdict suspects ranks — treat it as partition onset
/// and go degraded instead.
#[allow(clippy::too_many_arguments)]
pub(crate) fn take_checkpoint<D, B>(
    rank: &Rank,
    store: &NodeStore<D>,
    iter: u32,
    dead: &[bool],
    ranks_died: &[u32],
    counters: &Counters,
    balancer: &B,
    crashed: &[bool],
    costs: &CostModel,
    timers: &mut PhaseTimers,
    checkpoint_bytes: &mut u64,
) -> Result<Checkpoint<D>, CtlVerdict>
where
    D: Clone + Wire + Send + 'static,
    B: DynamicBalancer + ?Sized,
{
    let t0 = rank.wtime();
    let me = rank.rank() as u32;
    let mine = store.snapshot_table();
    rank.advance(costs.checkpoint_per_entry * mine.len() as f64);
    let bytes = mine.to_bytes().len() as u64;
    *checkpoint_bytes += bytes;
    let ring: Vec<u32> = (0..store.nprocs as u32)
        .filter(|&r| !crashed[r as usize])
        .collect();
    let mut ward = None;
    let staged = (|| {
        if ring.len() > 1 {
            let pos = ring
                .iter()
                .position(|&r| r == me)
                .expect("a live rank is in its own ring");
            let buddy = ring[(pos + 1) % ring.len()];
            let prev = ring[(pos + ring.len() - 1) % ring.len()];
            rank.send_reliable(buddy as usize, TAG_MIRROR, &mine, RetryPolicy::Escalate);
            match rank.try_recv::<Vec<(u32, D)>>(prev as usize, TAG_MIRROR) {
                Ok(entries) => {
                    rank.advance(costs.checkpoint_per_entry * entries.len() as f64);
                    ward = Some((prev, entries));
                }
                Err(_) => return Err(()),
            }
        }
        Ok(())
    })();
    // Commit barrier: everyone holds a staged snapshot; it becomes the
    // recovery point only if nobody died while staging. Every rank arrives
    // here even when its own mirror receive failed — skipping the exchange
    // would offset the collective count by one, and peers would match
    // their *next* control exchange against this one and desynchronise
    // the whole protocol. A failed receive means the predecessor died, so
    // the verdict reports a new crash and every rank aborts together.
    let verdict = rank.ctl_exchange(CtlSlot::default());
    timers.add(Phase::Checkpoint, rank.wtime() - t0);
    rank.trace_span("Checkpoint", "phase", t0, &[]);
    if staged.is_err() || has_new_crash(&verdict, crashed) {
        return Err(verdict);
    }
    rank.trace_instant(
        "checkpoint",
        "recovery",
        &[
            ("iter", ArgValue::U64(iter as u64)),
            ("bytes", ArgValue::U64(bytes)),
        ],
    );
    Ok(Checkpoint {
        genesis: false,
        iter,
        owner: store.owner.clone(),
        mine,
        ward,
        ring,
        dead: dead.to_vec(),
        ranks_died: ranks_died.to_vec(),
        counters: counters.clone(),
        balancer_state: balancer.checkpoint_state(),
        clock: rank.wtime(),
    })
}

/// The subset of a buddy copy one adopter needs: the nodes of crashed rank
/// `c` assigned to adopter `a` by `plan`, plus their neighbours (they
/// become the adopter's shadows). `ward` is `c`'s full table snapshot, so
/// every wanted entry is guaranteed present.
fn package_for<D: Clone>(
    graph: &Graph,
    plan: &[(u32, u32)],
    owner: &[u32],
    c: u32,
    a: u32,
    ward: &[(u32, D)],
) -> Vec<(u32, D)> {
    let mut wanted: Vec<u32> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for &(v, t) in plan {
        if owner[v as usize] != c || t != a {
            continue;
        }
        for id in std::iter::once(v).chain(graph.neighbors(v).iter().copied()) {
            if seen.insert(id) {
                wanted.push(id);
            }
        }
    }
    wanted
        .into_iter()
        .map(|id| {
            let idx = ward
                .binary_search_by_key(&id, |&(i, _)| i)
                .unwrap_or_else(|_| panic!("buddy copy of rank {c} lacks node {id}"));
            (id, ward[idx].1.clone())
        })
        .collect()
}

/// Roll every survivor back to the last committed checkpoint after the
/// failure detector reports a new crash. Loops until an attempt completes
/// with no further deaths; on return the world state (store, counters,
/// dead sets, balancer) is the checkpoint state with the crashed ranks'
/// nodes adopted by survivors, and `ckpt` has been re-mirrored over the
/// shrunken ring.
///
/// # Panics
/// Panics if a crashed rank's buddy also crashed in the same
/// inter-checkpoint window (both copies of a partition lost — the one
/// failure mode buddy replication cannot cover).
#[allow(clippy::too_many_arguments)]
pub(crate) fn roll_back<P, B>(
    rank: &Rank,
    graph: &Graph,
    program: &P,
    cfg: &RunConfig,
    store: &mut NodeStore<P::Data>,
    balancer: &mut B,
    ckpt: &mut Checkpoint<P::Data>,
    crashed: &mut [bool],
    dead: &mut [bool],
    ranks_died: &mut Vec<u32>,
    counters: &mut Counters,
    timers: &mut PhaseTimers,
    checkpoint_bytes: &mut u64,
) where
    P: NodeProgram,
    P::Data: Clone + Wire + Send + 'static,
    B: DynamicBalancer,
{
    let me = rank.rank() as u32;
    let nprocs = store.nprocs;
    'attempt: loop {
        let t0 = rank.wtime();
        // 1. Discard every in-flight message from the aborted epoch, then
        //    synchronise: nobody proceeds (and starts sending recovery or
        //    replay traffic) until everyone has purged. The verdict also
        //    refreshes the agreed cumulative crash set.
        rank.purge_mailbox();
        let verdict = rank.ctl_exchange(CtlSlot::default());
        for r in verdict.dead_ranks() {
            crashed[r] = true;
        }

        // 2. Replicated adoption plan: a pure function of the checkpointed
        //    owner map and the agreed dead set, so every survivor derives
        //    it identically with no communication.
        let plan = migrate::plan_adoption(graph, &ckpt.owner, crashed, &ckpt.dead);
        let mut owner = ckpt.owner.clone();
        for &(v, t) in &plan {
            owner[v as usize] = t;
        }

        // 3. Restore node data under the post-adoption ownership.
        let restore = (|| -> Result<(), ()> {
            if ckpt.genesis {
                // Iteration-0 state is reconstructible locally.
                let part = Partition::new(owner.clone(), nprocs);
                *store = NodeStore::build(graph, &part, me, program, cfg.hash_buckets);
                rank.advance(cfg.costs.init_per_node * store.stored_count() as f64);
                return Ok(());
            }
            let mut entries = ckpt.mine.clone();
            rank.advance(cfg.costs.checkpoint_per_entry * entries.len() as f64);
            // Ship adopted data out of the buddy copies, one crashed
            // owner at a time, ascending — a deterministic traffic
            // pattern both sides derive from the plan.
            let mut lost_owners: Vec<u32> =
                plan.iter().map(|&(v, _)| ckpt.owner[v as usize]).collect();
            lost_owners.sort_unstable();
            lost_owners.dedup();
            for &c in &lost_owners {
                let holder = match ckpt.holder_of(c) {
                    Some(h) if !crashed[h as usize] => h,
                    _ => panic!(
                        "unrecoverable: rank {c} and its checkpoint buddy both crashed \
                         in the same inter-checkpoint window; both copies of its \
                         partition are lost"
                    ),
                };
                let mut adopters: Vec<u32> = plan
                    .iter()
                    .filter(|&&(v, _)| ckpt.owner[v as usize] == c)
                    .map(|&(_, t)| t)
                    .collect();
                adopters.sort_unstable();
                adopters.dedup();
                if me == holder {
                    let ward = ckpt
                        .ward
                        .as_ref()
                        .filter(|(w, _)| *w == c)
                        .expect("holder has the buddy copy of its ring predecessor");
                    for &a in &adopters {
                        let package = package_for(graph, &plan, &ckpt.owner, c, a, &ward.1);
                        rank.advance(cfg.costs.checkpoint_per_entry * package.len() as f64);
                        if a == me {
                            entries.extend(package);
                        } else {
                            rank.send_reliable(
                                a as usize,
                                TAG_ADOPT,
                                &package,
                                RetryPolicy::Escalate,
                            );
                        }
                    }
                } else if adopters.contains(&me) {
                    match rank.try_recv::<Vec<(u32, P::Data)>>(holder as usize, TAG_ADOPT) {
                        Ok(package) => {
                            rank.advance(cfg.costs.checkpoint_per_entry * package.len() as f64);
                            entries.extend(package);
                        }
                        // The holder crashed mid-recovery: restart the
                        // attempt with the refreshed dead set.
                        Err(_) => return Err(()),
                    }
                }
            }
            // Installing the owner map rebuilds the replicated directory;
            // restore() keeps only what this rank needs under it.
            store.restore(graph, owner.clone(), entries);
            Ok(())
        })();
        if restore.is_ok() {
            // 4. Rewind the replicated bookkeeping. Crashes are permanent:
            //    they are re-overlaid on the checkpointed cooperative state.
            *counters = ckpt.counters.clone();
            for (d, &cd) in dead.iter_mut().zip(&ckpt.dead) {
                *d = cd;
            }
            for r in 0..nprocs {
                if crashed[r] {
                    dead[r] = true;
                }
            }
            ranks_died.clear();
            ranks_died.extend(ckpt.ranks_died.iter().copied());
            for r in 0..nprocs as u32 {
                if crashed[r as usize] && !ranks_died.contains(&r) {
                    ranks_died.push(r);
                }
            }
            balancer.restore_state(&ckpt.balancer_state);
            if cfg.validate {
                store
                    .validate(graph)
                    .unwrap_or_else(|e| panic!("rank {me}: post-recovery invariant: {e}"));
            }
        }

        // 5. Agree the restore completed without further deaths. Every
        //    rank arrives here even when its own restore aborted (a buddy
        //    holder died mid-shipment): skipping the exchange would leave
        //    the survivors' collective counts misaligned and deadlock the
        //    next protocol step. The death that failed the restore is by
        //    construction a new crash, so the verdict sends everyone back
        //    around together.
        let verdict = rank.ctl_exchange(CtlSlot::default());
        timers.add(Phase::Recovery, rank.wtime() - t0);
        rank.trace_span("Recovery", "phase", t0, &[]);
        if restore.is_err() || has_new_crash(&verdict, crashed) {
            continue 'attempt;
        }

        // 6. Re-mirror immediately: the adopted partition must itself be
        //    crash-safe before replay resumes, otherwise a second crash
        //    could orphan the adopted nodes with no copy anywhere.
        match take_checkpoint(
            rank,
            store,
            ckpt.iter,
            dead,
            ranks_died,
            counters,
            balancer,
            crashed,
            &cfg.costs,
            timers,
            checkpoint_bytes,
        ) {
            Ok(c) => {
                *ckpt = c;
                rank.trace_instant(
                    "rollback",
                    "recovery",
                    &[("to_iter", ArgValue::U64(ckpt.iter as u64))],
                );
                return;
            }
            Err(_) => continue 'attempt,
        }
    }
}

/// The crash-mode SPMD body: the platform driver's normal flow of control
/// (thesis Figure 6) re-expressed over the failure-detecting control plane,
/// with coordinated checkpoints and rollback recovery wrapped around it.
/// Run under [`mpisim::World::run_fallible`], which converts a crashed
/// rank's unwind into a `None` outcome.
pub(crate) fn run_rank_with_recovery<P, B>(
    rank: &Rank,
    graph: &Graph,
    program: &P,
    partition: &Partition,
    balancer: &mut B,
    cfg: &RunConfig,
) -> RankOutcome<P::Data>
where
    P: NodeProgram,
    P::Data: Clone + Wire + Send + 'static,
    B: DynamicBalancer,
{
    let me = rank.rank() as u32;
    let nprocs = cfg.nprocs;
    let num_nodes = graph.num_nodes();
    let mut timers = PhaseTimers::new();

    // ---- Initialization (identical to the fault-free path) -------------
    let t0 = rank.wtime();
    let mut store = NodeStore::build(graph, partition, me, program, cfg.hash_buckets);
    rank.advance(cfg.costs.init_per_node * store.stored_count() as f64);
    timers.add(Phase::Initialization, rank.wtime() - t0);
    rank.trace_span("Initialization", "phase", t0, &[]);
    if cfg.validate {
        store
            .validate(graph)
            .unwrap_or_else(|e| panic!("rank {me}: init invariant: {e}"));
    }
    rank.barrier();

    let mut ckpt: Checkpoint<P::Data> = Checkpoint::genesis(
        partition.as_slice().to_vec(),
        nprocs,
        balancer.checkpoint_state(),
    );
    let mut counters = Counters::default();
    let mut dead = vec![false; nprocs];
    let mut crashed = vec![false; nprocs];
    let mut ranks_died: Vec<u32> = Vec::new();
    let mut detector = cfg.straggler.map(|(t, p)| StragglerDetector::new(t, p));
    let mut rollbacks = 0u32;
    let mut iterations_replayed = 0u32;
    let mut checkpoint_bytes = 0u64;
    // Wire-traffic accounting, not replicated program state: like the
    // fault counters these tally what physically happened, so replayed
    // iterations count again and rollback does not rewind them.
    let mut delta_stats = exchange::DeltaStats::default();
    let mut quiescent_iterations = 0u32;
    let plan_kills = cfg.world.faults.has_kills();
    let my_kill = cfg.world.faults.kill_time(me as usize);
    let k = cfg.checkpoint_every.max(1);

    // One rollback sequence, repeated at every detection point: account the
    // replay (`$completed` = iterations whose work the rewind discards),
    // rewind, and resume from the checkpoint.
    macro_rules! recover {
        ($completed:expr, $iter:ident) => {{
            iterations_replayed += $completed - ckpt.iter;
            rollbacks += 1;
            roll_back(
                rank,
                graph,
                program,
                cfg,
                &mut store,
                balancer,
                &mut ckpt,
                &mut crashed,
                &mut dead,
                &mut ranks_died,
                &mut counters,
                &mut timers,
                &mut checkpoint_bytes,
            );
            // Detector state is replicated-but-unsnapshotted: reset it
            // identically everywhere and let replay re-feed it.
            detector = cfg.straggler.map(|(t, p)| StragglerDetector::new(t, p));
            $iter = ckpt.iter + 1;
        }};
    }

    // Mid-iteration detections discard the current (garbage) iteration
    // too; gather-phase detections only discard what ran past the last
    // checkpoint.

    let mut iter: u32 = 1;
    let (total, gathered) = 'run: loop {
        while iter <= cfg.iterations {
            // Aborted iterations (a `recover!` path `continue`s) simply
            // drop the tracer: no iteration span is emitted for garbage
            // iterations, the rollback instant marks them instead.
            let tracer = IterTracer::begin(rank, &timers);
            let mut comp_this_iter = 0.0;
            let mut changed_this_iter = 0u64;
            for phase in 0..program.phases() {
                let ctx = ComputeCtx {
                    iter,
                    phase,
                    rank: me,
                    num_nodes,
                };
                let (_, _, stats) = exchange::step_crash_aware(
                    rank,
                    graph,
                    program,
                    &mut store,
                    &ctx,
                    &cfg.costs,
                    &mut timers,
                    &mut comp_this_iter,
                    cfg.delta_exchange,
                    &[],
                );
                delta_stats.absorb(stats);
                changed_this_iter += stats.changed_nodes;
            }
            counters.comp_since_balance += comp_this_iter;

            // ---- Iteration-end detection point -------------------------
            // One control exchange carries everything the boundary needs:
            // the failure detector's verdict, each rank's compute time
            // (straggler sample), cooperative kill announcements — and,
            // under delta exchange, the changed-node count piggybacked in
            // the otherwise-unused metadata word.
            let i_died =
                plan_kills && !dead[me as usize] && my_kill.is_some_and(|t| rank.wtime() >= t);
            let verdict = rank.ctl_exchange(CtlSlot {
                word: changed_this_iter,
                load: comp_this_iter,
                flag: i_died,
            });
            if has_new_crash(&verdict, &crashed) {
                recover!(iter, iter);
                continue;
            }
            if cfg.delta_exchange {
                let global: u64 = (0..nprocs).filter_map(|r| verdict.word(r)).sum();
                if global == 0 {
                    quiescent_iterations += 1;
                }
            }

            // ---- Cooperative fail-stop (announced via the flag bits) ----
            if plan_kills {
                let newly: Vec<u32> = (0..nprocs as u32)
                    .filter(|&r| verdict.flag(r as usize) == Some(true) && !dead[r as usize])
                    .collect();
                for &d in &newly {
                    dead[d as usize] = true;
                    ranks_died.push(d);
                }
                for &d in &newly {
                    counters.evacuated += migrate::evacuate_rank(
                        rank,
                        graph,
                        &mut store,
                        d,
                        &dead,
                        &cfg.costs,
                        &mut timers,
                    );
                }
                if !newly.is_empty() {
                    counters.comp_since_balance = 0.0;
                    store.reset_loads();
                    if cfg.validate {
                        store.validate(graph).unwrap_or_else(|e| {
                            panic!("rank {me}: post-evacuation invariant: {e}")
                        });
                    }
                }
            }

            // ---- Periodic load balancing (control-plane protocol) -------
            let mut balanced_this_iter = false;
            if iter >= cfg.balance_offset.max(1)
                && migrate::is_balance_iteration(iter - cfg.balance_offset, cfg.balance_every)
            {
                match migrate::balance_round_crash(
                    rank,
                    graph,
                    &mut store,
                    balancer,
                    counters.comp_since_balance,
                    cfg.migration_batch,
                    cfg.migrant_policy,
                    &dead,
                    &crashed,
                    &cfg.costs,
                    &mut timers,
                ) {
                    Ok(out) => {
                        counters.migrations += out.migrated;
                        counters.skipped += out.skipped;
                        counters.comp_since_balance = 0.0;
                        store.reset_loads();
                        balanced_this_iter = true;
                        if cfg.validate {
                            store.validate(graph).unwrap_or_else(|e| {
                                panic!("rank {me}: post-migration invariant: {e}")
                            });
                        }
                    }
                    Err(()) => {
                        recover!(iter, iter);
                        continue;
                    }
                }
            }

            // ---- Straggler detection (from the boundary verdict) --------
            if let Some(det) = detector.as_mut() {
                let alive: Vec<f64> = (0..nprocs)
                    .filter(|&r| !dead[r])
                    .map(|r| verdict.load(r).unwrap_or(0.0))
                    .collect();
                let max = alive.iter().cloned().fold(0.0f64, f64::max);
                let mean = alive.iter().sum::<f64>() / alive.len().max(1) as f64;
                if det.observe(max, mean) && !balanced_this_iter {
                    match migrate::balance_round_crash(
                        rank,
                        graph,
                        &mut store,
                        balancer,
                        counters.comp_since_balance,
                        cfg.migration_batch,
                        cfg.migrant_policy,
                        &dead,
                        &crashed,
                        &cfg.costs,
                        &mut timers,
                    ) {
                        Ok(out) => {
                            counters.migrations += out.migrated;
                            counters.skipped += out.skipped;
                            counters.emergency_balances += 1;
                            counters.comp_since_balance = 0.0;
                            store.reset_loads();
                            if cfg.validate {
                                store.validate(graph).unwrap_or_else(|e| {
                                    panic!("rank {me}: post-emergency-balance invariant: {e}")
                                });
                            }
                        }
                        Err(()) => {
                            recover!(iter, iter);
                            continue;
                        }
                    }
                }
            }

            // ---- Coordinated checkpoint --------------------------------
            if iter.is_multiple_of(k) {
                match take_checkpoint(
                    rank,
                    &store,
                    iter,
                    &dead,
                    &ranks_died,
                    &counters,
                    balancer,
                    &crashed,
                    &cfg.costs,
                    &mut timers,
                    &mut checkpoint_bytes,
                ) {
                    Ok(c) => ckpt = c,
                    Err(_) => {
                        recover!(iter, iter);
                        continue;
                    }
                }
            }
            if let Some(tracer) = tracer {
                tracer.finish(rank, iter, &timers);
            }
            iter += 1;
        }

        // ---- Crash-tolerant final gather ------------------------------
        // Survivors agree the iterations are done, ship their owned data
        // point-to-point to the lowest live rank, and agree once more that
        // nobody died during the gather. A death at any point here rolls
        // back and re-runs the tail of the computation.
        let verdict = rank.ctl_exchange(CtlSlot::default());
        if has_new_crash(&verdict, &crashed) {
            recover!(iter - 1, iter);
            continue 'run;
        }
        let designated = (0..nprocs)
            .find(|&r| !crashed[r])
            .expect("at least one rank survives") as u32;
        let owned: Vec<(u32, P::Data)> = store
            .internal
            .iter()
            .chain(store.peripheral.iter())
            .map(|node| {
                (
                    node.id,
                    store
                        .table
                        .get(node.id)
                        .expect("owned node has data")
                        .clone(),
                )
            })
            .collect();
        let mut gathered: Option<Vec<(u32, P::Data)>> = None;
        if me == designated {
            let mut all = owned;
            let mut complete = true;
            for r in (0..nprocs).filter(|&r| !crashed[r] && r != me as usize) {
                match rank.try_recv::<Vec<(u32, P::Data)>>(r, TAG_GATHER) {
                    Ok(chunk) => all.extend(chunk),
                    Err(_) => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                gathered = Some(all);
            }
        } else {
            rank.send_reliable(
                designated as usize,
                TAG_GATHER,
                &owned,
                RetryPolicy::Escalate,
            );
        }
        let verdict = rank.ctl_exchange(CtlSlot::default());
        if has_new_crash(&verdict, &crashed) {
            recover!(iter - 1, iter);
            continue 'run;
        }
        break (rank.wtime(), gathered);
    };

    // Past the closing ctl_exchange every live rank's deliveries have
    // landed: reconcile lingering stale/damaged frames into the fault
    // counters before the final snapshot (else the totals depend on host
    // scheduling).
    rank.reconcile_faults();
    RankOutcome {
        total,
        timers,
        comm: rank.stats(),
        migrations: counters.migrations,
        skipped: counters.skipped,
        evacuated: counters.evacuated,
        emergency_balances: counters.emergency_balances,
        ranks_died,
        gathered,
        owner: store.owner.clone(),
        checkpoint_bytes,
        rollbacks,
        iterations_replayed,
        delta: delta_stats,
        quiescent_iterations,
        degraded_iterations: 0,
        rejoins: 0,
        rejoin_bytes: 0,
        suspected_peak: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holder_is_the_ring_successor() {
        let ckpt: Checkpoint<i64> = Checkpoint {
            ring: vec![0, 2, 3],
            ..Checkpoint::genesis(vec![0, 2, 3], 4, Vec::new())
        };
        assert_eq!(ckpt.holder_of(0), Some(2));
        assert_eq!(ckpt.holder_of(2), Some(3));
        assert_eq!(ckpt.holder_of(3), Some(0), "the ring wraps");
        assert_eq!(ckpt.holder_of(1), None, "rank 1 is not in the ring");
    }

    #[test]
    fn singleton_ring_has_no_holder() {
        let ckpt: Checkpoint<i64> = Checkpoint::genesis(vec![0, 0], 1, Vec::new());
        assert_eq!(ckpt.holder_of(0), None);
    }

    #[test]
    fn new_crash_detection_compares_against_known_set() {
        let verdict = CtlVerdict {
            dead: vec![false, true, false],
            suspected: vec![false; 3],
            slots: vec![None; 3],
        };
        assert!(has_new_crash(&verdict, &[false, false, false]));
        assert!(!has_new_crash(&verdict, &[false, true, false]));
        assert!(!has_new_crash(&verdict, &[true, true, false]));
    }
}
