//! Incremental state-integrity digests.
//!
//! Silent memory corruption — a bit flipped in a stored node value with no
//! message ever crossing the network — is invisible to the frame checksums
//! of PR 4: those protect data *in flight*, not *at rest*. This module adds
//! the at-rest half: a per-node rolling hash over each entry's wire
//! encoding, maintained incrementally at every legitimate write (promote,
//! shadow unpack, migration insert, restore) and folded into order-invariant
//! per-region digests at audit boundaries. Corruption injected by
//! [`mpisim::FaultPlan::with_memory_corrupt`] deliberately bypasses the
//! maintenance hooks, so the stored hash and a fresh recompute disagree at
//! the next audit — exactly how ECC scrubbing or a Merkle audit catches a
//! flipped DRAM bit that the write path never saw.
//!
//! Two properties carry the whole design and are property-tested in
//! `tests/tests/audit.rs`:
//!
//! 1. **Incremental == full recompute.** After any interleaving of edits,
//!    migrations and restores, the maintained hash of every entry equals
//!    [`entry_hash`] of its current value.
//! 2. **Order invariance.** Region digests are XOR folds of per-entry
//!    hashes, so they do not depend on the order nodes are visited — ranks
//!    iterating bucket order and an oracle iterating id order agree.

use crate::store::NodeStore;
use ic2_graph::NodeId;
use ic2_rng::mix64;
use mpisim::{MemRegion, Rank, Wire};

/// Seed constant for the entry-hash chain (first 64 bits of the fractional
/// part of π, as used by several hash families; distinct from every seed
/// constant in `mpisim::faults` so audit hashes and fault decisions can
/// never correlate).
const ENTRY_SEED: u64 = 0x243f_6a88_85a3_08d3;

/// Hash one node entry: a mix64 chain over the node id, the wire-encoding
/// length, and each 8-byte little-endian word of the encoding (zero-padded
/// tail), with the word offset mixed in so permuted bytes hash differently.
pub fn entry_hash<D: Wire>(id: u32, data: &D) -> u64 {
    let bytes = data.to_bytes();
    let mut h = mix64(ENTRY_SEED ^ u64::from(id));
    h = mix64(h ^ bytes.len() as u64);
    for (i, chunk) in bytes.chunks(8).enumerate() {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix64(h ^ u64::from_le_bytes(word) ^ mix64(i as u64));
    }
    h
}

/// Per-rank incremental digest state: the maintained hash of every node
/// this rank currently stores, indexed densely by node id.
///
/// Entries the rank does not store are left at 0; region digests only fold
/// ids from the rank's internal/peripheral lists, so absent entries never
/// contribute.
#[derive(Debug, Clone)]
pub struct AuditState {
    hashes: Vec<u64>,
}

impl AuditState {
    /// Fresh state for a graph of `n_nodes` node ids (`0..n_nodes`).
    pub fn new(n_nodes: usize) -> Self {
        AuditState {
            hashes: vec![0; n_nodes],
        }
    }

    /// Record the maintained hash for `id` after a legitimate write.
    pub fn record(&mut self, id: u32, hash: u64) {
        self.hashes[id as usize] = hash;
    }

    /// The maintained hash for `id` (0 if never written).
    pub fn hash_of(&self, id: u32) -> u64 {
        self.hashes[id as usize]
    }

    /// Order-invariant digest over a set of node ids: XOR fold of the
    /// maintained hashes.
    pub fn digest<I: IntoIterator<Item = u32>>(&self, ids: I) -> u64 {
        ids.into_iter()
            .fold(0u64, |acc, id| acc ^ self.hashes[id as usize])
    }
}

/// What an audit-boundary check found on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct AuditOutcome {
    /// Owned entries whose recomputed hash disagrees with the maintained
    /// one — local store corruption in the owner's region.
    pub owned_mismatches: u64,
    /// Shadow entries whose recomputed hash disagrees — corruption in a
    /// retained remote copy.
    pub shadow_mismatches: u64,
    /// Entries hashed (owned + shadow), the unit the audit cost is
    /// charged per.
    pub checked: usize,
    /// XOR fold of the recomputed owned-entry hashes: this rank's digest
    /// root, piggybacked on the audit control exchange.
    pub owned_root: u64,
}

impl AuditOutcome {
    /// Any mismatch at all?
    pub(crate) fn bad(&self) -> bool {
        self.owned_mismatches > 0 || self.shadow_mismatches > 0
    }
}

/// Run one seeded corruption sweep over this rank's at-rest node state:
/// owned entries and retained shadow copies, as two separately-keyed
/// regions. Decisions are pure hashes of `(rank, epoch, region, id)` from
/// the world's fault plan, so a sweep is deterministic and two sweeps with
/// different epochs make fresh decisions — the epoch is a monotonic
/// injection-pass counter that never rolls back, so replay after a
/// rollback is not doomed to re-corrupt identically and converges.
///
/// Writes go straight to the table, bypassing [`NodeStore::audit_note`]:
/// that bypass *is* the fault being modelled (a DRAM bit flip the write
/// path never saw), and it is what the next audit boundary catches. The
/// sweep itself charges nothing to the virtual clock — silent corruption
/// is free; only detection and repair cost time.
pub(crate) fn inject_memory_faults<D>(rank: &Rank, store: &mut NodeStore<D>, epoch: u64)
where
    D: Wire + Clone + PartialEq,
{
    let me = rank.rank();
    if rank.config().faults.memory_corrupt_prob(me) <= 0.0 {
        return;
    }
    let owned: Vec<NodeId> = store
        .internal
        .iter()
        .chain(&store.peripheral)
        .map(|n| n.id)
        .collect();
    let sweeps = [
        (MemRegion::Owned, "owned", owned),
        (MemRegion::Shadow, "shadow", store.shadow_ids()),
    ];
    for (region, label, ids) in sweeps {
        for id in ids {
            let faults = &rank.config().faults;
            if !faults.memory_corrupts(me, epoch, region, u64::from(id)) {
                continue;
            }
            // A paged-out entry is not in RAM: the at-rest sweep only
            // touches resident state — pages on disk answer to the disk
            // fault plan (rot, torn writes) instead.
            let Some(cur) = store.table.get(id).cloned() else {
                continue;
            };
            let len_bits = (cur.to_bytes().len() as u64) * 8;
            if len_bits == 0 {
                continue;
            }
            let start = faults.memory_corrupt_bit(me, epoch, region, u64::from(id), len_bits);
            if let Some(damaged) = corrupt_value(&cur, start) {
                store.table.set_current(id, damaged);
                rank.count_memory_corruption(label, u64::from(id));
            }
        }
    }
}

/// Seeded at-rest corruption of a checkpoint replica's entries, keyed
/// `(holder rank, checkpoint iteration, Replica, id)` — applied exactly
/// once per staged copy, right after it lands. Different holders of the
/// same owner's state make independent decisions, which is what lets a
/// restore escalate to a sibling replica and succeed with up to `r - 1`
/// damaged copies.
pub(crate) fn corrupt_entries_at_rest<D>(rank: &Rank, entries: &mut [(u32, D)], ckpt_iter: u64)
where
    D: Wire + Clone + PartialEq,
{
    let me = rank.rank();
    if rank.config().faults.memory_corrupt_prob(me) <= 0.0 {
        return;
    }
    for (id, d) in entries.iter_mut() {
        let faults = &rank.config().faults;
        if !faults.memory_corrupts(me, ckpt_iter, MemRegion::Replica, u64::from(*id)) {
            continue;
        }
        let len_bits = (d.to_bytes().len() as u64) * 8;
        if len_bits == 0 {
            continue;
        }
        let start =
            faults.memory_corrupt_bit(me, ckpt_iter, MemRegion::Replica, u64::from(*id), len_bits);
        if let Some(damaged) = corrupt_value(d, start) {
            *d = damaged;
            rank.count_memory_corruption("replica", u64::from(*id));
        }
    }
}

/// Per-entry checksums for a checkpoint snapshot: `sums[i]` is the
/// [`entry_hash`] of `entries[i]`, computed at staging time so a restore
/// (or a ward holder, before shipping) can verify each entry survived its
/// time at rest.
pub fn entry_sums<D: Wire>(entries: &[(u32, D)]) -> Vec<u64> {
    entries.iter().map(|(id, d)| entry_hash(*id, d)).collect()
}

/// Verify a snapshot against its staging-time checksums; returns the
/// number of damaged entries (0 means the copy is intact).
pub fn count_bad_entries<D: Wire>(entries: &[(u32, D)], sums: &[u64]) -> u64 {
    if entries.len() != sums.len() {
        return entries.len().max(sums.len()) as u64;
    }
    entries
        .iter()
        .zip(sums)
        .filter(|((id, d), &s)| entry_hash(*id, d) != s)
        .count() as u64
}

/// Deterministically flip one bit of `value`'s wire encoding, starting at
/// `start_bit`, and decode the damaged bytes back into a value.
///
/// Not every bit position yields a decodable, *different* value (a flipped
/// length prefix usually truncates; a flipped sign bit in a float may
/// round-trip to the same `PartialEq` value for NaN-free types), so the
/// helper walks successive bit positions (wrapping) until one produces a
/// clean decode that differs from the original, visiting every bit once —
/// a `start_bit` inside a Vec's 64-bit length prefix must be able to walk
/// clear of it. Returns `None` only when every position resists — the
/// injection site then skips the entry, which is itself deterministic.
pub fn corrupt_value<D: Wire + Clone + PartialEq>(value: &D, start_bit: u64) -> Option<D> {
    let bytes = value.to_bytes();
    let len_bits = (bytes.len() as u64) * 8;
    if len_bits == 0 {
        return None;
    }
    for attempt in 0..len_bits {
        let bit = (start_bit + attempt) % len_bits;
        let mut damaged = bytes.clone();
        damaged[(bit / 8) as usize] ^= 1 << (bit % 8);
        if let Ok(v) = D::from_bytes(&damaged) {
            if v != *value {
                return Some(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_hash_separates_ids_values_and_byte_order() {
        let h = entry_hash(3, &42i64);
        assert_eq!(h, entry_hash(3, &42i64), "hash must be deterministic");
        assert_ne!(h, entry_hash(4, &42i64), "id must matter");
        assert_ne!(h, entry_hash(3, &43i64), "value must matter");
        // Two encodings with the same multiset of words but different word
        // order must hash differently (the offset mixing at work).
        let a = entry_hash(0, &vec![1u64, 2u64]);
        let b = entry_hash(0, &vec![2u64, 1u64]);
        assert_ne!(a, b, "word order must matter");
    }

    #[test]
    fn digest_is_order_invariant_and_tracks_records() {
        let mut s = AuditState::new(8);
        for id in 0..8u32 {
            s.record(id, entry_hash(id, &(i64::from(id) * 7)));
        }
        let forward = s.digest(0..8u32);
        let backward = s.digest((0..8u32).rev());
        let shuffled = s.digest([5u32, 0, 7, 2, 6, 1, 4, 3]);
        assert_eq!(forward, backward);
        assert_eq!(forward, shuffled);
        // Updating one entry changes the digest; restoring it restores the
        // digest (XOR fold is self-inverse per entry).
        let before = s.hash_of(3);
        s.record(3, entry_hash(3, &999i64));
        assert_ne!(s.digest(0..8u32), forward);
        s.record(3, before);
        assert_eq!(s.digest(0..8u32), forward);
    }

    #[test]
    fn digest_folds_only_the_requested_ids() {
        let mut s = AuditState::new(4);
        s.record(0, 0xaaaa);
        s.record(1, 0xbbbb);
        s.record(2, 0xcccc);
        assert_eq!(s.digest([0u32, 1]), 0xaaaa ^ 0xbbbb);
        assert_eq!(s.digest([3u32]), 0, "unwritten ids contribute nothing");
    }

    #[test]
    fn corrupt_value_round_trips_to_a_different_value() {
        let original = 1234i64;
        let damaged = corrupt_value(&original, 5).expect("i64 must be corruptible");
        assert_ne!(damaged, original);
        // Purely positional: the same start bit damages the same way.
        assert_eq!(damaged, corrupt_value(&original, 5).unwrap());
        // Different start bits reach different damage.
        assert_ne!(damaged, corrupt_value(&original, 6).unwrap());
    }

    #[test]
    fn corrupt_value_skips_undecodable_positions() {
        // A Vec<u64>'s encoding starts with a length prefix; most flips in
        // it do not decode. The helper must keep walking until it finds a
        // payload bit that round-trips.
        let original = vec![7u64, 9u64];
        let damaged = corrupt_value(&original, 0).expect("payload bits exist");
        assert_ne!(damaged, original);
        assert_eq!(damaged.len(), original.len(), "length prefix survived");
    }
}
