//! Sequential reference executor.
//!
//! Runs the same [`NodeProgram`] with the same Jacobi (double-buffered)
//! semantics as the parallel platform, with no partitioning or
//! communication. Tests compare the platform's gathered final data against
//! this oracle — the thesis's Goal 2a promise ("execute their sequential
//! code ... without any code change") in checkable form.

use crate::program::{ComputeCtx, NeighborData, NodeProgram};
use ic2_graph::Graph;

/// Run `iterations` time steps sequentially; returns final node data
/// indexed by node id.
pub fn run_sequential<P: NodeProgram>(graph: &Graph, program: &P, iterations: u32) -> Vec<P::Data> {
    let n = graph.num_nodes();
    let mut cur: Vec<P::Data> = graph.nodes().map(|v| program.init(v, graph)).collect();
    for iter in 1..=iterations {
        for phase in 0..program.phases() {
            let ctx = ComputeCtx {
                iter,
                phase,
                rank: 0,
                num_nodes: n,
            };
            let next: Vec<P::Data> = graph
                .nodes()
                .map(|v| {
                    let neighbors: Vec<NeighborData<'_, P::Data>> = graph
                        .neighbors(v)
                        .iter()
                        .map(|&w| NeighborData {
                            id: w,
                            data: &cur[w as usize],
                        })
                        .collect();
                    program.compute(v, &cur[v as usize], &neighbors, &ctx)
                })
                .collect();
            cur = next;
        }
    }
    cur
}

/// Total grain-cost the program would charge sequentially — the ideal
/// single-processor compute time (used for speedup sanity checks).
pub fn sequential_cost<P: NodeProgram>(graph: &Graph, program: &P, iterations: u32) -> f64 {
    let n = graph.num_nodes();
    let data: Vec<P::Data> = graph.nodes().map(|v| program.init(v, graph)).collect();
    let mut total = 0.0;
    for iter in 1..=iterations {
        for phase in 0..program.phases() {
            let ctx = ComputeCtx {
                iter,
                phase,
                rank: 0,
                num_nodes: n,
            };
            for v in graph.nodes() {
                total += program.cost(v, &data[v as usize], &ctx);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::AvgProgram;
    use ic2_graph::generators::hex_grid;

    #[test]
    fn averaging_converges_toward_uniform() {
        let g = hex_grid(4, 4);
        let final_data = run_sequential(&g, &AvgProgram::fine(), 50);
        let min = *final_data.iter().min().unwrap();
        let max = *final_data.iter().max().unwrap();
        assert!(
            max - min <= 2,
            "averaging should nearly converge: {min}..{max}"
        );
    }

    #[test]
    fn zero_iterations_returns_initial_data() {
        let g = hex_grid(2, 2);
        let data = run_sequential(&g, &AvgProgram::fine(), 0);
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn sequential_cost_scales_with_iterations() {
        let g = hex_grid(4, 4);
        let p = AvgProgram::fine();
        let c10 = sequential_cost(&g, &p, 10);
        let c20 = sequential_cost(&g, &p, 20);
        assert!((c20 - 2.0 * c10).abs() < 1e-9);
        assert!((c10 - 16.0 * 10.0 * 300e-6).abs() < 1e-9);
    }
}
