//! Platform overhead cost model.
//!
//! The thesis measures five kinds of platform overhead (§5.4, Figures
//! 21–22): initialization, computation overhead (building the node+
//! neighbour list handed to the node function, updating the data lists),
//! communication overhead (packing/unpacking buffers), the communication
//! itself, and load balancing / task migration. In virtual-time mode those
//! CPU costs must be *charged* to the rank's clock explicitly; this model
//! holds the per-operation constants. They are calibrated so the overhead
//! breakdown for fine-grained 64-node graphs lands in the thesis's
//! 0.01–0.04 s band over 35 iterations.

/// Per-operation virtual CPU costs, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Building one entry of the node+neighbours list passed to the
    /// application node function (computation overhead).
    pub per_list_item: f64,
    /// Writing one node's updated data back into the data-node list
    /// (computation overhead). Hybrid execution charges this per node
    /// actually promoted — interior nodes on inner rounds, boundary nodes
    /// during catch-up — so a full global round's charge equals BSP's.
    pub per_node_update: f64,
    /// Packing one shadow entry into a communication buffer
    /// (communication overhead).
    pub per_shadow_pack: f64,
    /// Unpacking one received shadow entry and updating the data-node list
    /// through the hash table (communication overhead).
    pub per_shadow_unpack: f64,
    /// Initialization-phase cost per locally stored node (owned + shadow).
    pub init_per_node: f64,
    /// Load-balancing bookkeeping cost per processor in the runtime
    /// processor graph.
    pub lb_per_proc: f64,
    /// Task-migration cost per migrated data entry (list surgery on the
    /// busy/idle processors).
    pub migrate_per_entry: f64,
    /// Checkpointing cost per snapshot entry staged, mirrored, or restored
    /// (crash-recovery bookkeeping).
    pub checkpoint_per_entry: f64,
    /// State-audit cost per entry hashed: incremental digest maintenance on
    /// a node write and the per-entry recompute at an audit boundary
    /// (integrity bookkeeping).
    pub audit_per_entry: f64,
    /// Fixed virtual seconds per disk operation issued by the out-of-core
    /// pager (seek + request overhead).
    pub disk_seek: f64,
    /// Virtual seconds per byte transferred to or from the virtual disk.
    pub disk_byte: f64,
    /// Base backoff charged when the pager retries a failed disk operation;
    /// doubles per attempt (bounded exponential backoff).
    pub disk_retry_backoff: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_list_item: 0.9e-6,
            per_node_update: 0.7e-6,
            per_shadow_pack: 2.2e-6,
            per_shadow_unpack: 3.0e-6,
            init_per_node: 110e-6,
            lb_per_proc: 18e-6,
            migrate_per_entry: 25e-6,
            checkpoint_per_entry: 4e-6,
            audit_per_entry: 1.0e-6,
            disk_seek: 1.0e-4,
            disk_byte: 1.0e-8,
            disk_retry_backoff: 2.0e-4,
        }
    }
}

impl CostModel {
    /// A zero-overhead model; useful in unit tests that assert pure
    /// message-passing behaviour.
    pub fn zero() -> Self {
        CostModel {
            per_list_item: 0.0,
            per_node_update: 0.0,
            per_shadow_pack: 0.0,
            per_shadow_unpack: 0.0,
            init_per_node: 0.0,
            lb_per_proc: 0.0,
            migrate_per_entry: 0.0,
            checkpoint_per_entry: 0.0,
            audit_per_entry: 0.0,
            disk_seek: 0.0,
            disk_byte: 0.0,
            disk_retry_backoff: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_are_positive_and_small() {
        let c = CostModel::default();
        for v in [
            c.per_list_item,
            c.per_node_update,
            c.per_shadow_pack,
            c.per_shadow_unpack,
            c.init_per_node,
            c.lb_per_proc,
            c.migrate_per_entry,
            c.checkpoint_per_entry,
            c.audit_per_entry,
            c.disk_seek,
            c.disk_byte,
            c.disk_retry_backoff,
        ] {
            assert!(v > 0.0 && v < 1e-3, "cost {v} out of range");
        }
    }

    #[test]
    fn zero_model_is_all_zero() {
        let c = CostModel::zero();
        assert_eq!(c.per_list_item, 0.0);
        assert_eq!(c.init_per_node, 0.0);
    }
}
