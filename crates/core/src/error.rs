//! Typed configuration errors for the platform driver.

use ic2_graph::NodeId;
use std::fmt;

/// A structural invariant of [`crate::store::NodeStore`] found violated by
/// [`crate::store::NodeStore::validate`]: ownership maps, node lists,
/// shadow bookkeeping, and the derived send plan must stay mutually
/// consistent after every rebuild, migration, and restore.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreViolation {
    /// The owner map does not cover the graph.
    OwnerMapLength {
        /// Nodes in the graph.
        expected: usize,
        /// Entries in the owner map.
        actual: usize,
    },
    /// A node on an internal/peripheral list is not owned by this rank.
    NotOwned {
        /// Which list claimed it.
        list: &'static str,
        /// The offending node.
        node: NodeId,
    },
    /// A node appears on both node lists.
    ListedTwice {
        /// The offending node.
        node: NodeId,
    },
    /// A listed node's cached neighbour list disagrees with the graph.
    StaleNeighborList {
        /// The offending node.
        node: NodeId,
    },
    /// An internal-list node has a remote neighbour.
    InternalHasRemoteNeighbor {
        /// The offending node.
        node: NodeId,
    },
    /// A peripheral-list node has no remote neighbour.
    PeripheralFullyLocal {
        /// The offending node.
        node: NodeId,
    },
    /// A node's recorded shadow destinations disagree with the derived set.
    ShadowForMismatch {
        /// The offending node.
        node: NodeId,
    },
    /// An owned node is missing from both node lists.
    UnlistedOwnedNode {
        /// The offending node.
        node: NodeId,
    },
    /// No data is stored (in RAM or on any page) for an owned node.
    MissingData {
        /// The offending node.
        node: NodeId,
    },
    /// No data is stored for a neighbour of an owned node.
    MissingNeighborData {
        /// The absent neighbour.
        node: NodeId,
        /// The owned node that needs it.
        of: NodeId,
    },
    /// The cached per-processor send counts disagree with the derived plan.
    SendPlanMismatch {
        /// Cached counts.
        planned: Vec<usize>,
        /// Counts re-derived from the shadow sets.
        derived: Vec<usize>,
    },
}

impl fmt::Display for StoreViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreViolation::OwnerMapLength { expected, actual } => {
                write!(f, "owner map length mismatch: {actual} != {expected}")
            }
            StoreViolation::NotOwned { list, node } => {
                write!(f, "{list} node {node} not owned")
            }
            StoreViolation::ListedTwice { node } => write!(f, "node {node} appears twice"),
            StoreViolation::StaleNeighborList { node } => {
                write!(f, "node {node} neighbour list stale")
            }
            StoreViolation::InternalHasRemoteNeighbor { node } => {
                write!(f, "internal node {node} has remote neighbour")
            }
            StoreViolation::PeripheralFullyLocal { node } => {
                write!(f, "peripheral node {node} is fully local")
            }
            StoreViolation::ShadowForMismatch { node } => {
                write!(f, "node {node} shadow_for set inconsistent")
            }
            StoreViolation::UnlistedOwnedNode { node } => {
                write!(f, "owned node {node} missing from lists")
            }
            StoreViolation::MissingData { node } => write!(f, "no data for owned node {node}"),
            StoreViolation::MissingNeighborData { node, of } => {
                write!(f, "no data for neighbour {node} of owned {of}")
            }
            StoreViolation::SendPlanMismatch { planned, derived } => {
                write!(f, "send_counts {planned:?} != derived {derived:?}")
            }
        }
    }
}

/// A caller mistake [`crate::driver::try_run`] reports instead of
/// panicking: an impossible world shape, a partition that does not cover
/// the graph, or nonsensical recovery knobs.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// `nprocs == 0`: the world needs at least one processor.
    NoProcessors,
    /// `hash_buckets == 0`: the data-node table needs at least one bucket.
    NoHashBuckets,
    /// The partitioner returned an assignment for the wrong number of
    /// nodes.
    PartitionLengthMismatch {
        /// Nodes in the application graph.
        nodes: usize,
        /// Entries in the returned partition.
        partition: usize,
    },
    /// A straggler threshold below 1.0 would flag every iteration.
    BadStragglerThreshold(f64),
    /// A straggler patience of zero could never accumulate a strike.
    ZeroStragglerPatience,
    /// A checkpoint interval of zero iterations is meaningless: crash
    /// recovery needs at least one iteration between snapshots.
    ZeroCheckpointInterval,
    /// A state-audit interval of zero iterations is meaningless: audits
    /// fire at iteration boundaries, at least one iteration apart.
    ZeroAuditInterval,
    /// A checkpoint replication factor of zero would leave no copy
    /// anywhere; recovery needs at least the owner's own baseline.
    ZeroReplicationFactor,
    /// A hybrid execution policy with `inner_k == 0` elides nothing: it is
    /// exactly BSP spelled confusingly, so it is rejected up front.
    ZeroInnerIterations,
    /// An out-of-core buffer-pool budget of zero pages could hold nothing
    /// resident; paging needs at least one frame.
    ZeroPageBudget,
    /// A [`crate::store::NodeStore`] failed its structural self-check.
    StoreInvariant(StoreViolation),
    /// Recovery exhausted every checkpoint replica: the rank's own
    /// baseline and all of its ring buddies' wards were lost or failed
    /// their per-entry checksums. The run cannot be restored to a
    /// consistent state.
    UnrecoverableState {
        /// The rank whose state could not be recovered from any replica.
        rank: u32,
    },
    /// An internal platform invariant was found violated mid-run — e.g. an
    /// owned node with no stored data at gather time, or a paged code path
    /// reached with no pager installed. The state is corrupt in a way no
    /// repair ladder covers, so the run fails typed instead of computing a
    /// wrong answer (and instead of a bare panic): never a wrong answer,
    /// never a panic.
    InternalInvariant {
        /// The rank that observed the violation.
        rank: u32,
        /// What was found inconsistent.
        detail: String,
    },
    /// Bounded mailboxes produced a cyclic credit wait that could never
    /// resolve: every rank in `cycle` was blocked sending to the next,
    /// whose mailbox was at capacity. Detected and reported (rather than
    /// hanging) by the flow-control deadlock detector; the cycle is
    /// rotated so its smallest rank comes first.
    FlowControlDeadlock {
        /// The ranks forming the cyclic wait, in chase order.
        cycle: Vec<usize>,
    },
    /// A rank addressed a message to a destination outside the world.
    /// Raised by the substrate as a typed payload (see
    /// [`mpisim::InvalidRank`]) instead of a bare out-of-bounds index
    /// panic, and surfaced here by [`crate::catch_flow_deadlock`].
    InvalidDestination {
        /// The rank that attempted the send.
        src: usize,
        /// The out-of-range destination.
        dest: usize,
        /// The world size; valid destinations are `0..world_size`.
        world_size: usize,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NoProcessors => write!(f, "need at least one processor"),
            PlatformError::NoHashBuckets => write!(f, "need at least one hash bucket"),
            PlatformError::PartitionLengthMismatch { nodes, partition } => write!(
                f,
                "partition covers {partition} nodes but the graph has {nodes}"
            ),
            PlatformError::BadStragglerThreshold(t) => write!(
                f,
                "straggler threshold {t} is below 1.0 and would always fire"
            ),
            PlatformError::ZeroStragglerPatience => {
                write!(f, "straggler patience must be at least 1 iteration")
            }
            PlatformError::ZeroCheckpointInterval => {
                write!(f, "checkpoint interval must be at least 1 iteration")
            }
            PlatformError::ZeroAuditInterval => {
                write!(f, "state-audit interval must be at least 1 iteration")
            }
            PlatformError::ZeroReplicationFactor => {
                write!(f, "checkpoint replication factor must be at least 1")
            }
            PlatformError::ZeroInnerIterations => {
                write!(
                    f,
                    "hybrid execution needs inner_k of at least 1 (0 is plain BSP)"
                )
            }
            PlatformError::ZeroPageBudget => {
                write!(f, "out-of-core page budget must be at least 1 page")
            }
            PlatformError::StoreInvariant(v) => write!(f, "store invariant violated: {v}"),
            PlatformError::UnrecoverableState { rank } => write!(
                f,
                "unrecoverable state: rank {rank} has no intact checkpoint replica left"
            ),
            PlatformError::InternalInvariant { rank, detail } => {
                write!(f, "internal invariant violated on rank {rank}: {detail}")
            }
            PlatformError::FlowControlDeadlock { cycle } => {
                write!(f, "flow-control deadlock: cyclic credit wait ")?;
                for r in cycle {
                    write!(f, "rank {r} -> ")?;
                }
                write!(f, "rank {}", cycle.first().copied().unwrap_or(0))
            }
            PlatformError::InvalidDestination {
                src,
                dest,
                world_size,
            } => write!(
                f,
                "rank {src} addressed invalid destination rank {dest} (world size {world_size})"
            ),
        }
    }
}

impl std::error::Error for PlatformError {}

/// Typed panic payload for a mid-run internal-invariant violation.
///
/// Rank bodies run inside the substrate's world threads and have no error
/// channel, so (like [`mpisim::FlowDeadlock`] and
/// [`crate::checkpoint::UnrecoverableStateSignal`]) the violation unwinds
/// as a typed payload that [`crate::catch_flow_deadlock`] downcasts into
/// [`PlatformError::InternalInvariant`]. Raised via [`invariant_violated`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantSignal {
    /// The rank that observed the violation.
    pub rank: u32,
    /// What was found inconsistent.
    pub detail: String,
}

/// Raise an [`InvariantSignal`] as a typed panic payload.
///
/// The platform's "never a wrong answer, never a panic" contract: corrupt
/// internal state must surface as a typed [`PlatformError`], not as a bare
/// `expect`/`panic!` message.
pub(crate) fn invariant_violated(rank: u32, detail: String) -> ! {
    std::panic::panic_any(InvariantSignal { rank, detail })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_value() {
        let e = PlatformError::PartitionLengthMismatch {
            nodes: 64,
            partition: 60,
        };
        assert_eq!(
            e.to_string(),
            "partition covers 60 nodes but the graph has 64"
        );
        assert!(PlatformError::BadStragglerThreshold(0.5)
            .to_string()
            .contains("0.5"));
        assert!(PlatformError::UnrecoverableState { rank: 3 }
            .to_string()
            .contains("rank 3"));
        assert!(PlatformError::ZeroAuditInterval
            .to_string()
            .contains("audit interval"));
        assert!(PlatformError::ZeroReplicationFactor
            .to_string()
            .contains("replication factor"));
        assert!(PlatformError::ZeroPageBudget
            .to_string()
            .contains("page budget"));
        assert!(PlatformError::ZeroInnerIterations
            .to_string()
            .contains("inner_k"));
        let ii = PlatformError::InternalInvariant {
            rank: 2,
            detail: "no data for owned node 7 at gather".into(),
        };
        assert_eq!(
            ii.to_string(),
            "internal invariant violated on rank 2: no data for owned node 7 at gather"
        );
        let v =
            PlatformError::StoreInvariant(StoreViolation::MissingNeighborData { node: 9, of: 4 });
        assert_eq!(
            v.to_string(),
            "store invariant violated: no data for neighbour 9 of owned 4"
        );
    }
}
