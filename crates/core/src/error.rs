//! Typed configuration errors for the platform driver.

use std::fmt;

/// A caller mistake [`crate::driver::try_run`] reports instead of
/// panicking: an impossible world shape, a partition that does not cover
/// the graph, or nonsensical recovery knobs.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// `nprocs == 0`: the world needs at least one processor.
    NoProcessors,
    /// `hash_buckets == 0`: the data-node table needs at least one bucket.
    NoHashBuckets,
    /// The partitioner returned an assignment for the wrong number of
    /// nodes.
    PartitionLengthMismatch {
        /// Nodes in the application graph.
        nodes: usize,
        /// Entries in the returned partition.
        partition: usize,
    },
    /// A straggler threshold below 1.0 would flag every iteration.
    BadStragglerThreshold(f64),
    /// A straggler patience of zero could never accumulate a strike.
    ZeroStragglerPatience,
    /// A checkpoint interval of zero iterations is meaningless: crash
    /// recovery needs at least one iteration between snapshots.
    ZeroCheckpointInterval,
    /// A state-audit interval of zero iterations is meaningless: audits
    /// fire at iteration boundaries, at least one iteration apart.
    ZeroAuditInterval,
    /// A checkpoint replication factor of zero would leave no copy
    /// anywhere; recovery needs at least the owner's own baseline.
    ZeroReplicationFactor,
    /// Recovery exhausted every checkpoint replica: the rank's own
    /// baseline and all of its ring buddies' wards were lost or failed
    /// their per-entry checksums. The run cannot be restored to a
    /// consistent state.
    UnrecoverableState {
        /// The rank whose state could not be recovered from any replica.
        rank: u32,
    },
    /// Bounded mailboxes produced a cyclic credit wait that could never
    /// resolve: every rank in `cycle` was blocked sending to the next,
    /// whose mailbox was at capacity. Detected and reported (rather than
    /// hanging) by the flow-control deadlock detector; the cycle is
    /// rotated so its smallest rank comes first.
    FlowControlDeadlock {
        /// The ranks forming the cyclic wait, in chase order.
        cycle: Vec<usize>,
    },
    /// A rank addressed a message to a destination outside the world.
    /// Raised by the substrate as a typed payload (see
    /// [`mpisim::InvalidRank`]) instead of a bare out-of-bounds index
    /// panic, and surfaced here by [`crate::catch_flow_deadlock`].
    InvalidDestination {
        /// The rank that attempted the send.
        src: usize,
        /// The out-of-range destination.
        dest: usize,
        /// The world size; valid destinations are `0..world_size`.
        world_size: usize,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NoProcessors => write!(f, "need at least one processor"),
            PlatformError::NoHashBuckets => write!(f, "need at least one hash bucket"),
            PlatformError::PartitionLengthMismatch { nodes, partition } => write!(
                f,
                "partition covers {partition} nodes but the graph has {nodes}"
            ),
            PlatformError::BadStragglerThreshold(t) => write!(
                f,
                "straggler threshold {t} is below 1.0 and would always fire"
            ),
            PlatformError::ZeroStragglerPatience => {
                write!(f, "straggler patience must be at least 1 iteration")
            }
            PlatformError::ZeroCheckpointInterval => {
                write!(f, "checkpoint interval must be at least 1 iteration")
            }
            PlatformError::ZeroAuditInterval => {
                write!(f, "state-audit interval must be at least 1 iteration")
            }
            PlatformError::ZeroReplicationFactor => {
                write!(f, "checkpoint replication factor must be at least 1")
            }
            PlatformError::UnrecoverableState { rank } => write!(
                f,
                "unrecoverable state: rank {rank} has no intact checkpoint replica left"
            ),
            PlatformError::FlowControlDeadlock { cycle } => {
                write!(f, "flow-control deadlock: cyclic credit wait ")?;
                for r in cycle {
                    write!(f, "rank {r} -> ")?;
                }
                write!(f, "rank {}", cycle.first().copied().unwrap_or(0))
            }
            PlatformError::InvalidDestination {
                src,
                dest,
                world_size,
            } => write!(
                f,
                "rank {src} addressed invalid destination rank {dest} (world size {world_size})"
            ),
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_value() {
        let e = PlatformError::PartitionLengthMismatch {
            nodes: 64,
            partition: 60,
        };
        assert_eq!(
            e.to_string(),
            "partition covers 60 nodes but the graph has 64"
        );
        assert!(PlatformError::BadStragglerThreshold(0.5)
            .to_string()
            .contains("0.5"));
        assert!(PlatformError::UnrecoverableState { rank: 3 }
            .to_string()
            .contains("rank 3"));
        assert!(PlatformError::ZeroAuditInterval
            .to_string()
            .contains("audit interval"));
        assert!(PlatformError::ZeroReplicationFactor
            .to_string()
            .contains("replication factor"));
    }
}
