//! The computation & communication phase (thesis §4.2, Figures 8 and 8a).

use crate::costs::CostModel;
use crate::paging::Pager;
use crate::program::{ComputeCtx, NeighborData, NodeProgram};
use crate::store::{LocalNode, NodeStore};
use crate::timers::{Phase, PhaseTimers};
use ic2_graph::Graph;
use mpisim::{ArgValue, CtlSlot, Envelope, Rank, RetryPolicy};
use std::time::{Duration, Instant};

/// Message tag for shadow-buffer exchange.
pub const TAG_SHADOW: u32 = 1;

/// Per-iteration delta-exchange accounting, summed by the driver across
/// iterations and ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Shadow entries packed into outgoing buffers.
    pub entries_sent: u64,
    /// Shadow entries suppressed because the node's value did not change
    /// (only ever non-zero in delta mode).
    pub entries_skipped: u64,
    /// Peripheral nodes whose value changed this iteration — the quantity
    /// piggybacked on the control exchange; a global sum of zero means the
    /// boundary is quiescent (only tracked in delta mode).
    pub changed_nodes: u64,
}

impl DeltaStats {
    /// Accumulate another iteration's counts.
    pub fn absorb(&mut self, other: DeltaStats) {
        self.entries_sent += other.entries_sent;
        self.entries_skipped += other.entries_skipped;
        self.changed_nodes += other.changed_nodes;
    }
}

/// What one [`step`] observed: local delta accounting plus, in delta mode,
/// the agreed global changed-node count from the iteration-closing control
/// exchange (`Some(0)` ⇒ every rank's boundary is quiescent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepResult {
    /// This rank's delta accounting for the iteration.
    pub delta: DeltaStats,
    /// Global changed-node total (identical on every rank); `None` when
    /// delta mode is off and the iteration closed with a plain barrier.
    pub global_changed: Option<u64>,
}

/// Per-destination shadow-update buffers (the thesis's array of buffer
/// arrays, one per neighbouring processor).
type ShadowBuffers<D> = Vec<Vec<(u32, D)>>;

/// How computation and communication are sequenced each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeMode {
    /// The basic prototype (Figure 8): update internal nodes, update
    /// peripheral nodes while packing buffers, then `MPI_Isend` /
    /// `MPI_Recv` all shadow buffers.
    #[default]
    PostComm,
    /// The overlapped variant (Figure 8a): peripheral nodes first, dispatch
    /// sends and post `MPI_Irecv`s, compute internal nodes while the
    /// communication is in flight, then wait and unpack.
    Overlap,
}

/// Run one compute + communicate round.
///
/// `comp_time_out` accumulates the execution time the thesis's load
/// balancer samples (the `ComputeOverNodes` duration: node computation plus
/// its overhead).
#[allow(clippy::too_many_arguments)]
pub fn step<P: NodeProgram>(
    rank: &Rank,
    _graph: &Graph,
    program: &P,
    store: &mut NodeStore<P::Data>,
    ctx: &ComputeCtx,
    mode: ExchangeMode,
    costs: &CostModel,
    timers: &mut PhaseTimers,
    comp_time_out: &mut f64,
    delta: bool,
) -> StepResult {
    let comp_t0 = rank.wtime();
    // Delta packing is suspended for one iteration after any structural
    // change (migration, evacuation, restore, genesis): every receiver's
    // retained shadows must be refreshed before dirtiness means anything.
    let delta_active = delta && !store.needs_resync;
    let mut stats = DeltaStats::default();
    let mut buffers: ShadowBuffers<P::Data> = vec![Vec::new(); store.nprocs];
    for (p, buf) in buffers.iter_mut().enumerate() {
        if store.send_counts[p] > 0 {
            buf.reserve(store.send_counts[p]);
        }
    }

    match mode {
        ExchangeMode::PostComm => {
            // Figure 8: internal nodes, then peripheral nodes (packing as
            // each is updated), then send/recv.
            compute_list(
                rank,
                program,
                &store.internal,
                &mut store.table,
                &mut store.node_load,
                &mut store.pager,
                ctx,
                costs,
                timers,
                None,
                delta,
                delta_active,
                &mut stats,
                None,
            );
            compute_list(
                rank,
                program,
                &store.peripheral,
                &mut store.table,
                &mut store.node_load,
                &mut store.pager,
                ctx,
                costs,
                timers,
                Some(&mut buffers),
                delta,
                delta_active,
                &mut stats,
                None,
            );
            *comp_time_out += rank.wtime() - comp_t0;
            rank.trace_span("Compute", "phase", comp_t0, &[]);
            if bounded(rank) {
                let (ex, _) = bounded_send(rank, store, &buffers, timers, &[]);
                bounded_collect(rank, store, ex, timers, costs, false, &[]);
            } else {
                send_buffers(rank, store, &buffers, timers, costs, &[]);
                recv_and_unpack(rank, store, timers, costs);
            }
        }
        ExchangeMode::Overlap => {
            // Figure 8a: peripherals first so their shadows can travel
            // while internal nodes compute.
            compute_list(
                rank,
                program,
                &store.peripheral,
                &mut store.table,
                &mut store.node_load,
                &mut store.pager,
                ctx,
                costs,
                timers,
                Some(&mut buffers),
                delta,
                delta_active,
                &mut stats,
                None,
            );
            if bounded(rank) {
                // Same virtual-time schedule as the unbounded overlap
                // (send charges here, receive charges after the internal
                // compute), but frames are drained opportunistically so a
                // full mailbox can never wedge the send phase.
                let (ex, _) = bounded_send(rank, store, &buffers, timers, &[]);
                compute_list(
                    rank,
                    program,
                    &store.internal,
                    &mut store.table,
                    &mut store.node_load,
                    &mut store.pager,
                    ctx,
                    costs,
                    timers,
                    None,
                    delta,
                    delta_active,
                    &mut stats,
                    None,
                );
                *comp_time_out += rank.wtime() - comp_t0;
                rank.trace_span("Compute", "phase", comp_t0, &[]);
                bounded_collect(rank, store, ex, timers, costs, false, &[]);
            } else {
                send_buffers(rank, store, &buffers, timers, costs, &[]);
                type ShadowRecv<D> = (u32, mpisim::RecvRequest<Vec<(u32, D)>>);
                let reqs: Vec<ShadowRecv<P::Data>> = store
                    .recv_procs()
                    .into_iter()
                    .map(|p| (p, rank.irecv(p as usize, TAG_SHADOW)))
                    .collect();
                compute_list(
                    rank,
                    program,
                    &store.internal,
                    &mut store.table,
                    &mut store.node_load,
                    &mut store.pager,
                    ctx,
                    costs,
                    timers,
                    None,
                    delta,
                    delta_active,
                    &mut stats,
                    None,
                );
                *comp_time_out += rank.wtime() - comp_t0;
                rank.trace_span("Compute", "phase", comp_t0, &[]);
                let recv_t0 = rank.wtime();
                for (_, req) in reqs {
                    let t0 = rank.wtime();
                    let msg = req.wait(rank);
                    timers.add(Phase::Communicate, rank.wtime() - t0);
                    unpack(rank, store, msg, timers, costs);
                }
                rank.trace_span("Communicate", "phase", recv_t0, &[]);
            }
        }
    }
    // This iteration shipped a full pack if delta packing was suspended;
    // either way receivers are now current, so the latch can drop.
    store.needs_resync = false;

    // End of iteration: promote every staged value (the thesis's
    // `data = most_recent_data` sweep), then the synchronisation that
    // closes `CommunicateShadows`. In delta mode the plain barrier becomes
    // a control exchange — identical virtual-time cost — carrying this
    // rank's changed-node count, so every rank learns the agreed global
    // total and can observe quiescence.
    let t0 = rank.wtime();
    promote_and_note(rank, store, costs);
    timers.add(Phase::ComputationOverhead, rank.wtime() - t0);
    drain_storage(rank, store, timers);
    let t0 = rank.wtime();
    let global_changed = if delta {
        rank.trace_instant(
            "delta_skipped",
            "delta",
            &[
                ("iter", ArgValue::U64(ctx.iter as u64)),
                ("sent", ArgValue::U64(stats.entries_sent)),
                ("skipped", ArgValue::U64(stats.entries_skipped)),
            ],
        );
        let verdict = rank.ctl_exchange(CtlSlot {
            word: stats.changed_nodes,
            load: 0.0,
            flag: false,
        });
        Some((0..rank.size()).filter_map(|r| verdict.word(r)).sum())
    } else {
        rank.barrier();
        None
    };
    timers.add(Phase::Communicate, rank.wtime() - t0);
    StepResult {
        delta: stats,
        global_changed,
    }
}

/// Crash-aware variant of [`step`]: identical schedule to
/// [`ExchangeMode::PostComm`], but every shadow receive goes through
/// [`Rank::try_recv`] so a crashed neighbour cannot wedge the round.
///
/// The *never-skip* rule: a receive whose sender has died simply keeps the
/// stale shadow value from the previous iteration and the rank runs the
/// rest of its schedule unchanged — every survivor still executes the
/// identical sequence of barriers and control exchanges, which is what
/// keeps the failure detector's verdicts aligned. The numerically garbage
/// iteration this produces is discarded wholesale by rollback recovery, so
/// it never reaches the final answer.
///
/// `frozen` marks ranks currently *suspected* by the membership layer
/// (empty slice ⇒ none): no shadow buffer is sent to a frozen rank, and its
/// expected receive is replaced by one `detect_timeout` charge in canonical
/// order — its retained stale shadows serve read-only, exactly the
/// degraded-mode contract. A receive that instead consumes a partition
/// *tombstone* (the peer is alive but newly unreachable) likewise keeps the
/// stale shadow and reports the cut.
///
/// Returns `(saw_death, saw_cut, stats)`: whether any awaited sender was
/// confirmed dead, whether any send or receive crossed an active partition,
/// plus this rank's delta accounting (the caller owns the
/// iteration-closing control exchange in crash mode, so the changed-node
/// count is handed back for it to piggyback there).
#[allow(clippy::too_many_arguments)]
pub fn step_crash_aware<P: NodeProgram>(
    rank: &Rank,
    _graph: &Graph,
    program: &P,
    store: &mut NodeStore<P::Data>,
    ctx: &ComputeCtx,
    costs: &CostModel,
    timers: &mut PhaseTimers,
    comp_time_out: &mut f64,
    delta: bool,
    frozen: &[bool],
) -> (bool, bool, DeltaStats) {
    let comp_t0 = rank.wtime();
    let delta_active = delta && !store.needs_resync;
    let mut stats = DeltaStats::default();
    let mut buffers: ShadowBuffers<P::Data> = vec![Vec::new(); store.nprocs];
    for (p, buf) in buffers.iter_mut().enumerate() {
        if store.send_counts[p] > 0 {
            buf.reserve(store.send_counts[p]);
        }
    }
    compute_list(
        rank,
        program,
        &store.internal,
        &mut store.table,
        &mut store.node_load,
        &mut store.pager,
        ctx,
        costs,
        timers,
        None,
        delta,
        delta_active,
        &mut stats,
        None,
    );
    compute_list(
        rank,
        program,
        &store.peripheral,
        &mut store.table,
        &mut store.node_load,
        &mut store.pager,
        ctx,
        costs,
        timers,
        Some(&mut buffers),
        delta,
        delta_active,
        &mut stats,
        None,
    );
    *comp_time_out += rank.wtime() - comp_t0;
    rank.trace_span("Compute", "phase", comp_t0, &[]);

    let mut saw_death = false;
    let mut saw_cut = false;
    let is_frozen = |p: usize| frozen.get(p).copied().unwrap_or(false);
    if bounded(rank) {
        let (ex, cut) = bounded_send(rank, store, &buffers, timers, frozen);
        saw_cut |= cut;
        let (death, cut) = bounded_collect(rank, store, ex, timers, costs, true, frozen);
        saw_death = death;
        saw_cut |= cut;
    } else {
        saw_cut |= send_buffers(rank, store, &buffers, timers, costs, frozen);
        let recv_t0 = rank.wtime();
        for p in store.recv_procs() {
            let t0 = rank.wtime();
            if is_frozen(p as usize) {
                // A suspected peer sends nothing while the partition is
                // open; pay the detection cost in canonical order and let
                // its retained stale shadows stand in.
                rank.charge_partition_timeout();
                timers.add(Phase::Communicate, rank.wtime() - t0);
                continue;
            }
            match rank.try_recv::<Vec<(u32, P::Data)>>(p as usize, TAG_SHADOW) {
                Ok(msg) => {
                    timers.add(Phase::Communicate, rank.wtime() - t0);
                    unpack(rank, store, msg, timers, costs);
                }
                Err(mpisim::Died(peer)) => {
                    // Stale shadow values stand in either way; the dead
                    // flag disambiguates a confirmed death from a
                    // partition tombstone (peer alive but unreachable).
                    timers.add(Phase::Communicate, rank.wtime() - t0);
                    if rank.peer_dead(peer) {
                        saw_death = true;
                    } else {
                        saw_cut = true;
                    }
                }
            }
        }
        rank.trace_span("Communicate", "phase", recv_t0, &[]);
    }
    store.needs_resync = false;

    let t0 = rank.wtime();
    promote_and_note(rank, store, costs);
    timers.add(Phase::ComputationOverhead, rank.wtime() - t0);
    drain_storage(rank, store, timers);
    if delta {
        rank.trace_instant(
            "delta_skipped",
            "delta",
            &[
                ("iter", ArgValue::U64(ctx.iter as u64)),
                ("sent", ArgValue::U64(stats.entries_sent)),
                ("skipped", ArgValue::U64(stats.entries_skipped)),
            ],
        );
    }
    let t0 = rank.wtime();
    rank.barrier();
    timers.add(Phase::Communicate, rank.wtime() - t0);
    (saw_death, saw_cut, stats)
}

/// One *inner* (barrier-elided) hybrid round for a single phase: interior
/// nodes only, fully local. Interior nodes have no remote readers by
/// construction, so nothing is packed, nothing travels, and no barrier or
/// control exchange closes the round — the whole point of
/// [`crate::ExecutionPolicy::Hybrid`]. Compute, overhead, promote, and
/// storage costs are charged exactly as a BSP round charges them for the
/// same list; only the synchronisation cost is elided.
#[allow(clippy::too_many_arguments)]
pub(crate) fn inner_step<P: NodeProgram>(
    rank: &Rank,
    program: &P,
    store: &mut NodeStore<P::Data>,
    ctx: &ComputeCtx,
    costs: &CostModel,
    timers: &mut PhaseTimers,
    comp_time_out: &mut f64,
) {
    let comp_t0 = rank.wtime();
    let mut stats = DeltaStats::default();
    compute_list(
        rank,
        program,
        &store.internal,
        &mut store.table,
        &mut store.node_load,
        &mut store.pager,
        ctx,
        costs,
        timers,
        None,
        false,
        false,
        &mut stats,
        None,
    );
    *comp_time_out += rank.wtime() - comp_t0;
    rank.trace_span("Compute", "phase", comp_t0, &[]);
    let t0 = rank.wtime();
    let interior = store.internal.len();
    promote_counted(rank, store, costs, interior);
    timers.add(Phase::ComputationOverhead, rank.wtime() - t0);
    drain_storage(rank, store, timers);
}

/// Replay the boundary (peripheral) compute passes for the `missed`
/// barrier-elided rounds immediately preceding global iteration
/// `global_iter`, oldest first, so by the time the global round's full
/// exchange runs every node has been computed exactly as many times as
/// plain BSP would have computed it. Nothing is packed or sent here — the
/// global round's own exchange ships the final boundary values.
///
/// Returns whether any replayed pass changed a boundary value. If so, the
/// retained remote shadows skipped `missed` refreshes and are stale, so
/// the caller must force a full repack (`needs_resync`) before delta
/// packing may trust dirtiness again.
#[allow(clippy::too_many_arguments)]
pub(crate) fn catch_up_boundary<P: NodeProgram>(
    rank: &Rank,
    program: &P,
    store: &mut NodeStore<P::Data>,
    global_iter: u32,
    missed: u32,
    phases: u32,
    me: u32,
    num_nodes: usize,
    costs: &CostModel,
    timers: &mut PhaseTimers,
    comp_time_out: &mut f64,
) -> bool {
    let mut changed = false;
    for back in (1..=missed).rev() {
        let j = global_iter - back;
        for phase in 0..phases {
            let ctx = ComputeCtx {
                iter: j,
                phase,
                rank: me,
                num_nodes,
            };
            let comp_t0 = rank.wtime();
            let mut stats = DeltaStats::default();
            compute_list(
                rank,
                program,
                &store.peripheral,
                &mut store.table,
                &mut store.node_load,
                &mut store.pager,
                &ctx,
                costs,
                timers,
                None,
                false,
                false,
                &mut stats,
                Some(&mut changed),
            );
            *comp_time_out += rank.wtime() - comp_t0;
            rank.trace_span("Compute", "phase", comp_t0, &[]);
            let t0 = rank.wtime();
            let boundary = store.peripheral.len();
            promote_counted(rank, store, costs, boundary);
            timers.add(Phase::ComputationOverhead, rank.wtime() - t0);
            drain_storage(rank, store, timers);
        }
    }
    changed
}

/// Update every node in `list`: build the node+neighbours list, invoke the
/// application node function, stage the result, and (for peripherals) pack
/// the update into the outgoing buffers.
///
/// Dirty tracking happens at the pack site: a node is dirty iff the value
/// it just computed differs from its current value — exactly the value
/// every receiver's retained shadow holds, by induction from the last full
/// sync. With `delta_active`, clean nodes are not packed (and their
/// `per_shadow_pack` cost is not charged); receivers keep the retained
/// shadow, which equals what a full exchange would have delivered.
///
/// In paged mode each node's bucket and its neighbours' buckets are faulted
/// in first; a node whose entry (or any neighbour entry) is missing after
/// that sits on a page that lost every copy — it is *skipped*, because the
/// pager's damage latch already guarantees this iteration is discarded by
/// rollback. Non-paged mode has no excuse for missing data: that is corrupt
/// platform state, surfaced as the typed
/// [`crate::PlatformError::InternalInvariant`] rather than a bare panic.
///
/// `track_changes` (used by the hybrid engine's boundary catch-up) flips to
/// `true` if any staged value differs from the node's current one — the
/// signal that retained remote shadows have gone stale across an elided
/// stretch and the next exchange must full-pack.
#[allow(clippy::too_many_arguments)]
fn compute_list<P: NodeProgram>(
    rank: &Rank,
    program: &P,
    list: &[LocalNode],
    table: &mut crate::hashtab::NodeTable<P::Data>,
    node_load: &mut [f64],
    pager: &mut Option<Pager>,
    ctx: &ComputeCtx,
    costs: &CostModel,
    timers: &mut PhaseTimers,
    mut buffers: Option<&mut ShadowBuffers<P::Data>>,
    delta: bool,
    delta_active: bool,
    stats: &mut DeltaStats,
    mut track_changes: Option<&mut bool>,
) {
    let paged = pager.is_some();
    for node in list {
        if let Some(pager) = pager.as_mut() {
            pager.ensure(
                table,
                std::iter::once(node.id).chain(node.neighbors.iter().copied()),
            );
        }
        // Computation overhead: form the list of the node and its
        // neighbours to hand to the node function.
        let t0 = rank.wtime();
        rank.advance(costs.per_list_item * (node.neighbors.len() + 1) as f64);
        let own = match table.get(node.id) {
            Some(d) => d,
            None if paged => continue,
            None => crate::error::invariant_violated(
                ctx.rank,
                format!("no data for owned node {} at compute", node.id),
            ),
        };
        let mut neighbors: Vec<NeighborData<'_, P::Data>> =
            Vec::with_capacity(node.neighbors.len());
        let mut incomplete = false;
        for &w in &node.neighbors {
            match table.get(w) {
                Some(data) => neighbors.push(NeighborData { id: w, data }),
                None if paged => {
                    incomplete = true;
                    break;
                }
                None => crate::error::invariant_violated(
                    ctx.rank,
                    format!("no data for neighbour {w} of owned node {}", node.id),
                ),
            }
        }
        if incomplete {
            continue;
        }
        let t1 = rank.wtime();
        timers.add(Phase::ComputationOverhead, t1 - t0);

        // The node computation itself, with its grain charged.
        rank.advance(program.cost(node.id, own, ctx));
        let next = program.compute(node.id, own, &neighbors, ctx);
        let t2 = rank.wtime();
        timers.add(Phase::Compute, t2 - t1);
        node_load[node.id as usize] += t2 - t1;
        if let Some(flag) = track_changes.as_deref_mut() {
            if next != *own {
                *flag = true;
            }
        }

        // Stage the update; pack it for every processor holding this node
        // as a shadow.
        rank.advance(costs.per_node_update);
        if let Some(buffers) = buffers.as_deref_mut() {
            let t3 = rank.wtime();
            timers.add(Phase::ComputationOverhead, t3 - t2);
            let changed = !delta || next != *own;
            drop(neighbors);
            if delta && changed {
                stats.changed_nodes += 1;
            }
            if changed || !delta_active {
                rank.advance(costs.per_shadow_pack * node.shadow_for.len() as f64);
                for &p in &node.shadow_for {
                    buffers[p as usize].push((node.id, next.clone()));
                }
                stats.entries_sent += node.shadow_for.len() as u64;
            } else {
                stats.entries_skipped += node.shadow_for.len() as u64;
            }
            timers.add(Phase::CommunicationOverhead, rank.wtime() - t3);
        } else {
            drop(neighbors);
            timers.add(Phase::ComputationOverhead, rank.wtime() - t2);
        }
        table.set_pending(node.id, next);
        if let Some(pager) = pager.as_mut() {
            pager.note_staged(table.bucket_index(node.id));
        }
    }
}

/// Fetch the installed pager on a code path only reachable in paged mode.
/// The impossible `None` is corrupt platform state, surfaced as the typed
/// [`crate::PlatformError::InternalInvariant`] instead of a bare panic.
fn pager_mut(rank_id: u32, pager: &mut Option<Pager>) -> &mut Pager {
    match pager.as_mut() {
        Some(p) => p,
        None => crate::error::invariant_violated(
            rank_id,
            "paged code path reached with no pager installed".into(),
        ),
    }
}

/// End-of-iteration promote sweep (the thesis's `data = most_recent_data`),
/// keeping the audit digest in step with every promoted value — one
/// `audit_per_entry` charge each when audits are on, nothing otherwise.
/// Paged mode promotes page by page through the pager's staged set, so
/// each staged page is resident exactly once.
fn promote_and_note<D: mpisim::Wire + Clone>(
    rank: &Rank,
    store: &mut NodeStore<D>,
    costs: &CostModel,
) {
    let count = store.owned_count();
    promote_counted(rank, store, costs, count);
}

/// [`promote_and_note`] with an explicit `per_node_update` charge count.
///
/// The hybrid engine splits one BSP iteration's promote sweep across an
/// inner round (interior nodes) and a boundary catch-up pass (peripheral
/// nodes); each charges exactly its own list's length, so the two halves
/// sum to the `owned_count` charge a plain BSP iteration pays — compute
/// cost parity by construction, with only the barrier/control cost elided.
pub(crate) fn promote_counted<D: mpisim::Wire + Clone>(
    rank: &Rank,
    store: &mut NodeStore<D>,
    costs: &CostModel,
    charged_nodes: usize,
) {
    rank.advance(costs.per_node_update * charged_nodes as f64);
    if store.pager.is_some() {
        let rank_id = store.rank;
        let NodeStore {
            pager,
            table,
            audit,
            ..
        } = store;
        let pager = pager_mut(rank_id, pager);
        match audit.as_mut() {
            Some(audit) => {
                let promoted = pager.promote(table, |id, d| {
                    audit.record(id, crate::audit::entry_hash(id, d));
                });
                rank.advance(costs.audit_per_entry * promoted as f64);
            }
            None => {
                pager.promote(table, |_, _| {});
            }
        }
        return;
    }
    match store.audit.as_mut() {
        Some(audit) => {
            let promoted = store.table.promote_all_with(|id, d| {
                audit.record(id, crate::audit::entry_hash(id, d));
            });
            rank.advance(costs.audit_per_entry * promoted as f64);
        }
        None => {
            store.table.promote_all();
        }
    }
}

/// Charge the pager's accumulated virtual I/O + backoff seconds to the
/// clock under [`Phase::Storage`]. Called at deterministic points (end of
/// each iteration's compute/communicate, after bulk phases) so paged runs
/// stay bit-identically reproducible; a no-op in non-paged mode.
pub(crate) fn drain_storage<D>(
    rank: &Rank,
    store: &mut NodeStore<D>,
    timers: &mut PhaseTimers,
) -> f64 {
    let s = store.take_storage_seconds();
    if s > 0.0 {
        rank.advance(s);
        timers.add(Phase::Storage, s);
    }
    s
}

/// Does this world bound its mailboxes (credit-based flow control)?
fn bounded(rank: &Rank) -> bool {
    rank.config().mailbox_capacity.is_some()
}

/// Send every non-empty buffer to its neighbouring processor. Shadow
/// buffers travel reliably: a receiver that never gets its buffer would
/// deadlock the whole BSP round, so under fault injection each lost send is
/// retransmitted (charging the ack timeout to virtual time) and the final
/// attempt is escalated through. Without faults this is the thesis's plain
/// buffered `MPI_Isend`. Retry and NACK-backoff time is attributed to the
/// integrity phase, the rest to communicate.
///
/// Sends to `frozen` (suspected) ranks are skipped outright. Returns
/// whether any send hit an active partition cut — the only way an
/// escalated reliable send can fail.
fn send_buffers<D: mpisim::Wire>(
    rank: &Rank,
    store: &NodeStore<D>,
    buffers: &[Vec<(u32, D)>],
    timers: &mut PhaseTimers,
    _costs: &CostModel,
    frozen: &[bool],
) -> bool {
    let t0 = rank.wtime();
    let r0 = rank.retry_seconds();
    let mut saw_cut = false;
    for (p, buf) in buffers.iter().enumerate() {
        if store.send_counts[p] > 0 && !frozen.get(p).copied().unwrap_or(false) {
            // Delta packing may suppress entries, but never adds any; the
            // (possibly empty) buffer is still sent so the message
            // schedule — and thus every receive pattern — is identical
            // with delta on or off.
            debug_assert!(buf.len() <= store.send_counts[p]);
            if !rank.send_reliable(p, TAG_SHADOW, buf, RetryPolicy::Escalate) {
                saw_cut = true;
            }
        }
    }
    let spent = rank.retry_seconds() - r0;
    // No call-site clamp: PhaseTimers::add clamps *and counts* genuinely
    // negative windows, so a sign-flipped measurement surfaces in
    // `RunReport::negative_clamps` instead of silently vanishing.
    timers.add(Phase::Integrity, spent);
    timers.add(Phase::Communicate, rank.wtime() - t0 - spent);
    if spent > 0.0 {
        rank.trace_span("Integrity", "phase", rank.wtime() - spent, &[]);
    }
    rank.trace_span("Communicate", "phase", t0, &[]);
    saw_cut
}

/// In-flight state of a bounded shadow exchange: frames physically drained
/// but not yet charged/unpacked, in a dense slot per sender rank.
struct BoundedExchange {
    frames: Vec<Option<Envelope>>,
    deadline: Instant,
}

/// The send half of the bounded-mailbox exchange schedule.
///
/// Sends run in the same canonical order (ascending destination, retries
/// back-to-back) as the unbounded schedule, so the sequence of virtual-time
/// charges is bit-identical; only the *head* send may wait for a credit,
/// and while it waits the rank drains shadow frames already addressed to it
/// — charge-free, the receive cost is applied canonically in
/// [`bounded_collect`]. That mutual draining is what makes the BSP
/// send-all-then-receive-all round deadlock-free at any capacity ≥ 1.
fn bounded_send<D: mpisim::Wire>(
    rank: &Rank,
    store: &NodeStore<D>,
    buffers: &[Vec<(u32, D)>],
    timers: &mut PhaseTimers,
    frozen: &[bool],
) -> (BoundedExchange, bool) {
    let t0 = rank.wtime();
    let r0 = rank.retry_seconds();
    let mut frames: Vec<Option<Envelope>> = Vec::new();
    frames.resize_with(rank.size(), || None);
    let deadline = Instant::now() + rank.config().watchdog;
    let mut saw_cut = false;
    for (p, buf) in buffers.iter().enumerate() {
        if store.send_counts[p] == 0 || frozen.get(p).copied().unwrap_or(false) {
            continue;
        }
        debug_assert!(buf.len() <= store.send_counts[p]);
        // No stall accounting here: whether this head send physically waits
        // depends on host scheduling. Credit stalls are tallied at their
        // canonical resolution point by the receiver, in [`bounded_collect`].
        loop {
            if rank.offer_credit(p) {
                if !rank.send_reliable_granted(p, TAG_SHADOW, buf, RetryPolicy::Escalate) {
                    saw_cut = true;
                }
                break;
            }
            if let Some(env) = rank.drain_one(None, TAG_SHADOW) {
                let src = env.src;
                frames[src] = Some(env);
            } else if Instant::now() >= deadline {
                rank.deadlock_panic("bounded shadow exchange (send phase)");
            } else {
                rank.wait_incoming(Duration::from_millis(2));
            }
        }
    }
    let spent = rank.retry_seconds() - r0;
    // No call-site clamp (see `send_buffers`): genuinely negative windows
    // are counted by `PhaseTimers::add` instead of silently erased.
    timers.add(Phase::Integrity, spent);
    timers.add(Phase::Communicate, rank.wtime() - t0 - spent);
    if spent > 0.0 {
        rank.trace_span("Integrity", "phase", rank.wtime() - spent, &[]);
    }
    rank.trace_span("Communicate", "phase", t0, &[]);
    (BoundedExchange { frames, deadline }, saw_cut)
}

/// The receive half of the bounded-mailbox exchange schedule: collect the
/// remaining expected frames (in whatever order they arrive), then charge
/// and unpack them in the canonical `recv_procs` order — reproducing the
/// unbounded schedule's virtual clocks exactly.
///
/// With `crash_aware`, a missing sender whose dead flag was observed
/// *before* an empty drain pass is definitively never coming (deliveries
/// happen-before the flag; same reasoning as [`Rank::try_recv`]); it is
/// charged the detect timeout in canonical order and its stale shadow
/// values stand in, mirroring the unbounded crash-aware path. Returns
/// `(saw_death, saw_cut)`: whether any awaited sender was dead, and
/// whether any frame was a partition tombstone. `frozen` (suspected) peers
/// are not waited for at all — each is charged one `detect_timeout` in
/// canonical order, like the unbounded crash-aware path.
#[allow(clippy::too_many_arguments)]
fn bounded_collect<D: mpisim::Wire + Clone>(
    rank: &Rank,
    store: &mut NodeStore<D>,
    ex: BoundedExchange,
    timers: &mut PhaseTimers,
    costs: &CostModel,
    crash_aware: bool,
    frozen: &[bool],
) -> (bool, bool) {
    let BoundedExchange {
        mut frames,
        deadline,
    } = ex;
    let is_frozen = |p: usize| frozen.get(p).copied().unwrap_or(false);
    let expected: Vec<usize> = store.recv_procs().iter().map(|&p| p as usize).collect();
    let mut dead_peers: Vec<usize> = Vec::new();
    loop {
        let missing: Vec<usize> = expected
            .iter()
            .copied()
            .filter(|&p| frames[p].is_none() && !dead_peers.contains(&p) && !is_frozen(p))
            .collect();
        if missing.is_empty() {
            break;
        }
        // Snapshot dead flags *before* draining: a flag set now plus an
        // empty drain below proves the peer's frame was never sent.
        let flagged: Vec<usize> = if crash_aware {
            missing
                .iter()
                .copied()
                .filter(|&p| rank.peer_dead(p))
                .collect()
        } else {
            Vec::new()
        };
        let mut got = false;
        while let Some(env) = rank.drain_one(None, TAG_SHADOW) {
            let src = env.src;
            frames[src] = Some(env);
            got = true;
        }
        let mut newly_dead = false;
        for p in flagged {
            if frames[p].is_none() && !dead_peers.contains(&p) {
                dead_peers.push(p);
                newly_dead = true;
            }
        }
        if got || newly_dead {
            continue;
        }
        if Instant::now() >= deadline {
            rank.deadlock_panic("bounded shadow exchange (receive phase)");
        }
        rank.wait_incoming(Duration::from_millis(2));
    }
    // Canonical credit-stall accounting (receiver side). With capacity C
    // and F data frames actually present this round, the last
    // `max(0, F - C)` senders in canonical order must have waited for a
    // mailbox slot, whatever the host interleaving looked like; sender
    // `present[C + j]`'s credit resolves exactly when the j-th present
    // frame is absorbed and frees its slot. Counting there makes the stall
    // tally — and its trace instants — a pure function of the
    // deterministic message schedule, byte-identical at every capacity.
    // (Partition tombstones bypass capacity, so cut frames don't count.)
    let (capacity, present): (usize, Vec<usize>) = match rank.config().mailbox_capacity {
        Some(cap) => (
            cap,
            expected
                .iter()
                .copied()
                .filter(|&p| !is_frozen(p) && matches!(&frames[p], Some(env) if !env.cut))
                .collect(),
        ),
        None => (0, Vec::new()),
    };
    let mut absorbed = 0usize;
    let mut saw_death = false;
    let mut saw_cut = false;
    let recv_t0 = rank.wtime();
    for p in expected {
        let t0 = rank.wtime();
        if is_frozen(p) {
            // Suspected peer: nothing was waited for; pay the detection
            // cost in canonical order, stale shadows stand in.
            rank.charge_partition_timeout();
            timers.add(Phase::Communicate, rank.wtime() - t0);
            continue;
        }
        match frames[p].take() {
            Some(env) if env.cut => {
                // Partition tombstone: the peer is alive but unreachable;
                // same stale-shadow stand-in, same detection cost.
                rank.charge_partition_timeout();
                timers.add(Phase::Communicate, rank.wtime() - t0);
                saw_cut = true;
            }
            Some(env) => {
                let msg: Vec<(u32, D)> = rank.absorb(env);
                if let Some(&stalled_sender) = present.get(capacity + absorbed) {
                    rank.count_credit_stall(stalled_sender);
                }
                absorbed += 1;
                timers.add(Phase::Communicate, rank.wtime() - t0);
                unpack(rank, store, msg, timers, costs);
            }
            None => {
                // Dead sender: charge the detect timeout the blocking path
                // would have paid; stale shadow values stand in.
                rank.charge_crash_timeout();
                timers.add(Phase::Communicate, rank.wtime() - t0);
                saw_death = true;
            }
        }
    }
    rank.trace_span("Communicate", "phase", recv_t0, &[]);
    (saw_death, saw_cut)
}

/// Blocking receive from every neighbouring processor, then unpack.
fn recv_and_unpack<D: mpisim::Wire + Clone>(
    rank: &Rank,
    store: &mut NodeStore<D>,
    timers: &mut PhaseTimers,
    costs: &CostModel,
) {
    let recv_t0 = rank.wtime();
    for p in store.recv_procs() {
        let t0 = rank.wtime();
        let msg: Vec<(u32, D)> = rank.recv(p as usize, TAG_SHADOW);
        timers.add(Phase::Communicate, rank.wtime() - t0);
        unpack(rank, store, msg, timers, costs);
    }
    rank.trace_span("Communicate", "phase", recv_t0, &[]);
}

/// Apply one received shadow buffer to the data-node table. Paged mode
/// faults each shadow's bucket in first and skips entries whose page lost
/// every copy (the damage latch already dooms the iteration to rollback).
fn unpack<D: mpisim::Wire + Clone>(
    rank: &Rank,
    store: &mut NodeStore<D>,
    msg: Vec<(u32, D)>,
    timers: &mut PhaseTimers,
    costs: &CostModel,
) {
    let t0 = rank.wtime();
    rank.advance(costs.per_shadow_unpack * msg.len() as f64);
    if store.audit.is_some() {
        rank.advance(costs.audit_per_entry * msg.len() as f64);
    }
    let paged = store.pager.is_some();
    for (id, data) in msg {
        if paged {
            let b = store.table.bucket_index(id);
            let (pager, table) = (pager_mut(store.rank, &mut store.pager), &mut store.table);
            pager.ensure(table, [id]);
            if !store.table.contains(id) {
                continue;
            }
            store.audit_note(id, &data);
            store.table.set_current(id, data);
            pager_mut(store.rank, &mut store.pager).note_write(b);
        } else {
            store.audit_note(id, &data);
            store.table.set_current(id, data);
        }
    }
    timers.add(Phase::CommunicationOverhead, rank.wtime() - t0);
}

/// A dedicated shadow-repair exchange: every rank repacks *all* of its
/// peripheral nodes' current values and ships them to their shadow holders
/// through the regular exchange machinery (bounded or unbounded, so it is
/// safe at any mailbox capacity), and receivers overwrite their retained
/// shadows — through [`NodeStore::audit_note`], restoring the digest.
///
/// This is the targeted repair an audit boundary triggers when only
/// *shadow* copies are damaged and the audit interval is 1 (no compute has
/// read the damaged value yet): strictly cheaper than a rollback, one
/// exchange round charged to the clock like any other. Crash-aware: a
/// sender dying mid-repair is reported, not wedged on.
///
/// Returns `(saw_death, saw_cut)` exactly like [`step_crash_aware`]'s
/// communication phase.
pub(crate) fn resync_shadows<D>(
    rank: &Rank,
    store: &mut NodeStore<D>,
    costs: &CostModel,
    timers: &mut PhaseTimers,
    frozen: &[bool],
) -> (bool, bool)
where
    D: mpisim::Wire + Clone,
{
    let t0 = rank.wtime();
    let paged = store.pager.is_some();
    let mut buffers: ShadowBuffers<D> = vec![Vec::new(); store.nprocs];
    for node in &store.peripheral {
        if paged {
            let (pager, table) = (pager_mut(store.rank, &mut store.pager), &mut store.table);
            pager.ensure(table, [node.id]);
        }
        let cur = match store.table.get(node.id) {
            Some(d) => d,
            // Damaged page: nothing to repack; the damage latch forces a
            // rollback that supersedes this repair anyway.
            None if paged => continue,
            None => crate::error::invariant_violated(
                store.rank,
                format!(
                    "no data for owned peripheral node {} at shadow resync",
                    node.id
                ),
            ),
        };
        rank.advance(costs.per_shadow_pack * node.shadow_for.len() as f64);
        for &p in &node.shadow_for {
            buffers[p as usize].push((node.id, cur.clone()));
        }
    }
    timers.add(Phase::CommunicationOverhead, rank.wtime() - t0);

    let mut saw_death = false;
    let mut saw_cut = false;
    if bounded(rank) {
        let (ex, cut) = bounded_send(rank, store, &buffers, timers, frozen);
        saw_cut |= cut;
        let (death, cut) = bounded_collect(rank, store, ex, timers, costs, true, frozen);
        saw_death |= death;
        saw_cut |= cut;
    } else {
        saw_cut |= send_buffers(rank, store, &buffers, timers, costs, frozen);
        let is_frozen = |p: usize| frozen.get(p).copied().unwrap_or(false);
        let recv_t0 = rank.wtime();
        for p in store.recv_procs() {
            let t0 = rank.wtime();
            if is_frozen(p as usize) {
                rank.charge_partition_timeout();
                timers.add(Phase::Communicate, rank.wtime() - t0);
                continue;
            }
            match rank.try_recv::<Vec<(u32, D)>>(p as usize, TAG_SHADOW) {
                Ok(msg) => {
                    timers.add(Phase::Communicate, rank.wtime() - t0);
                    unpack(rank, store, msg, timers, costs);
                }
                Err(mpisim::Died(peer)) => {
                    timers.add(Phase::Communicate, rank.wtime() - t0);
                    if rank.peer_dead(peer) {
                        saw_death = true;
                    } else {
                        saw_cut = true;
                    }
                }
            }
        }
        rank.trace_span("Communicate", "phase", recv_t0, &[]);
    }
    // A full pack just went out: every receiver's retained shadows are
    // current again, so delta packing may resume.
    store.needs_resync = false;

    // Close the repair round with the same barrier a regular step ends
    // with. Without it a fast rank may run ahead into the next iteration's
    // exchange while a slow peer is still collecting repair frames — and
    // the bounded drain schedule keys in-flight frames by source rank, so
    // the run-ahead frame would overwrite the unconsumed repair frame and
    // deadlock the round (the exact hazard tests/runahead_repro.rs pins).
    drain_storage(rank, store, timers);
    let t0 = rank.wtime();
    rank.barrier();
    timers.add(Phase::Communicate, rank.wtime() - t0);
    (saw_death, saw_cut)
}
