//! The data-node table: node data behind a bucketed hash table.
//!
//! The thesis stores node data in a linked "data node list" and reaches it
//! through a hash table — an array of sorted bucket lists keyed by a
//! modulo hash of the global id — giving "amortized constant time access
//! to the node data during computation" \[PSC95\]. This module is that
//! structure, idiomatically: buckets of sorted `(id, slot)` vectors. It
//! plays the thesis's dual role: data access during computation, and data
//! update after communication (and it keeps a migrated-away node's entry,
//! since the busy processor still needs it as a shadow).
//!
//! Each slot holds the *current* value plus an optional *pending* value
//! (the thesis's `data` / `most_recent_data` pair): computation writes
//! pending, and the end of the iteration promotes pending to current.

use ic2_graph::NodeId;

#[derive(Debug, Clone, PartialEq)]
struct Entry<D> {
    id: NodeId,
    cur: D,
    pending: Option<D>,
}

/// Bucketed node-data table.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTable<D> {
    buckets: Vec<Vec<Entry<D>>>,
    len: usize,
}

impl<D> NodeTable<D> {
    /// A table with `buckets` hash buckets (the thesis's
    /// `HASH_TABLE_LENGTH`).
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "hash table needs at least one bucket");
        NodeTable {
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
            len: 0,
        }
    }

    fn bucket_of(&self, id: NodeId) -> usize {
        id as usize % self.buckets.len()
    }

    /// The bucket index holding `id` — the out-of-core layer's page id for
    /// the node (one page = one bucket).
    pub fn bucket_index(&self, id: NodeId) -> usize {
        self.bucket_of(id)
    }

    /// Number of stored nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `id` has an entry.
    pub fn contains(&self, id: NodeId) -> bool {
        let b = self.bucket_of(id);
        self.buckets[b].binary_search_by_key(&id, |e| e.id).is_ok()
    }

    /// Insert a node's data. Replaces (and returns) the previous current
    /// value if the node was already present — that is what happens when a
    /// migration delivers data the receiver already held as a shadow.
    pub fn insert(&mut self, id: NodeId, data: D) -> Option<D> {
        let b = self.bucket_of(id);
        match self.buckets[b].binary_search_by_key(&id, |e| e.id) {
            Ok(i) => Some(std::mem::replace(&mut self.buckets[b][i].cur, data)),
            Err(i) => {
                self.buckets[b].insert(
                    i,
                    Entry {
                        id,
                        cur: data,
                        pending: None,
                    },
                );
                self.len += 1;
                None
            }
        }
    }

    /// Current data of `id`.
    pub fn get(&self, id: NodeId) -> Option<&D> {
        let b = self.bucket_of(id);
        self.buckets[b]
            .binary_search_by_key(&id, |e| e.id)
            .ok()
            .map(|i| &self.buckets[b][i].cur)
    }

    /// Overwrite the current value (shadow update after communication).
    ///
    /// # Panics
    /// Panics if `id` is not present — receiving a shadow update for an
    /// unknown node is a platform bug.
    pub fn set_current(&mut self, id: NodeId, data: D) {
        let b = self.bucket_of(id);
        match self.buckets[b].binary_search_by_key(&id, |e| e.id) {
            Ok(i) => self.buckets[b][i].cur = data,
            Err(_) => panic!("set_current: node {id} not in table"),
        }
    }

    /// Stage the next-iteration value (the thesis's `most_recent_data`).
    ///
    /// # Panics
    /// Panics if `id` is not present.
    pub fn set_pending(&mut self, id: NodeId, data: D) {
        let b = self.bucket_of(id);
        match self.buckets[b].binary_search_by_key(&id, |e| e.id) {
            Ok(i) => self.buckets[b][i].pending = Some(data),
            Err(_) => panic!("set_pending: node {id} not in table"),
        }
    }

    /// The staged value of `id`, if any.
    pub fn pending(&self, id: NodeId) -> Option<&D> {
        let b = self.bucket_of(id);
        self.buckets[b]
            .binary_search_by_key(&id, |e| e.id)
            .ok()
            .and_then(|i| self.buckets[b][i].pending.as_ref())
    }

    /// Promote every staged value to current (end of iteration:
    /// `data = most_recent_data`). Returns how many were promoted.
    pub fn promote_all(&mut self) -> usize {
        let mut promoted = 0;
        for bucket in &mut self.buckets {
            for entry in bucket {
                if let Some(next) = entry.pending.take() {
                    entry.cur = next;
                    promoted += 1;
                }
            }
        }
        promoted
    }

    /// [`Self::promote_all`], but calling `f(id, &new_current)` for every
    /// promoted entry — the hook the state-audit digest uses to observe the
    /// end-of-iteration writes without a second table walk.
    pub fn promote_all_with(&mut self, mut f: impl FnMut(NodeId, &D)) -> usize {
        let mut promoted = 0;
        for bucket in &mut self.buckets {
            for entry in bucket {
                if let Some(next) = entry.pending.take() {
                    entry.cur = next;
                    f(entry.id, &entry.cur);
                    promoted += 1;
                }
            }
        }
        promoted
    }

    /// Iterate `(id, current)` in ascending id order per bucket (global
    /// order is by `(id mod buckets, id)`).
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &D)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|e| (e.id, &e.cur)))
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Remove and return bucket `b`'s entries as `(id, current, pending)`
    /// triples in ascending id order — page-out for the paging layer.
    pub(crate) fn take_bucket(&mut self, b: usize) -> Vec<(NodeId, D, Option<D>)> {
        let entries = std::mem::take(&mut self.buckets[b]);
        self.len -= entries.len();
        entries
            .into_iter()
            .map(|e| (e.id, e.cur, e.pending))
            .collect()
    }

    /// Install a previously paged-out (or freshly read) bucket. The slot
    /// must be empty — pages are whole buckets, never merged.
    pub(crate) fn install_bucket(&mut self, b: usize, entries: Vec<(NodeId, D, Option<D>)>) {
        debug_assert!(
            self.buckets[b].is_empty(),
            "install over non-empty bucket {b}"
        );
        self.len += entries.len();
        self.buckets[b] = entries
            .into_iter()
            .map(|(id, cur, pending)| Entry { id, cur, pending })
            .collect();
    }

    /// [`Self::promote_all_with`] restricted to bucket `b` — the paging
    /// layer promotes page by page so each is resident exactly once.
    pub(crate) fn promote_bucket_with(&mut self, b: usize, mut f: impl FnMut(NodeId, &D)) -> usize {
        let mut promoted = 0;
        for entry in &mut self.buckets[b] {
            if let Some(next) = entry.pending.take() {
                entry.cur = next;
                f(entry.id, &entry.cur);
                promoted += 1;
            }
        }
        promoted
    }

    /// Longest bucket chain (diagnostic: the thesis's 10-bucket table
    /// degrades to long chains on 1024-node domains).
    pub fn max_chain(&self) -> usize {
        self.buckets.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = NodeTable::new(10);
        assert!(t.insert(5, "five").is_none());
        assert!(t.insert(15, "fifteen").is_none()); // same bucket as 5
        assert!(t.insert(3, "three").is_none());
        assert_eq!(t.get(5), Some(&"five"));
        assert_eq!(t.get(15), Some(&"fifteen"));
        assert_eq!(t.get(3), Some(&"three"));
        assert_eq!(t.get(25), None);
        assert_eq!(t.len(), 3);
        assert!(t.contains(15));
        assert!(!t.contains(99));
    }

    #[test]
    fn insert_existing_replaces_and_returns_old() {
        let mut t = NodeTable::new(4);
        t.insert(1, 10);
        assert_eq!(t.insert(1, 20), Some(10));
        assert_eq!(t.get(1), Some(&20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn pending_promote_cycle() {
        let mut t = NodeTable::new(4);
        t.insert(1, 100);
        t.insert(2, 200);
        t.set_pending(1, 111);
        assert_eq!(t.get(1), Some(&100), "pending must not leak early");
        assert_eq!(t.pending(1), Some(&111));
        assert_eq!(t.promote_all(), 1);
        assert_eq!(t.get(1), Some(&111));
        assert_eq!(t.pending(1), None);
        assert_eq!(t.get(2), Some(&200));
    }

    #[test]
    fn promote_all_with_reports_each_promotion() {
        let mut t = NodeTable::new(4);
        t.insert(1, 100);
        t.insert(2, 200);
        t.insert(3, 300);
        t.set_pending(1, 111);
        t.set_pending(2, 222);
        let mut seen = Vec::new();
        assert_eq!(t.promote_all_with(|id, v| seen.push((id, *v))), 2);
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 111), (2, 222)]);
        assert_eq!(t.get(1), Some(&111));
        assert_eq!(t.get(3), Some(&300), "unpromoted entries untouched");
    }

    #[test]
    fn set_current_is_immediate() {
        let mut t = NodeTable::new(4);
        t.insert(7, 1);
        t.set_current(7, 2);
        assert_eq!(t.get(7), Some(&2));
    }

    #[test]
    #[should_panic(expected = "not in table")]
    fn set_current_unknown_panics() {
        let mut t: NodeTable<i32> = NodeTable::new(4);
        t.set_current(9, 0);
    }

    #[test]
    #[should_panic(expected = "not in table")]
    fn set_pending_unknown_panics() {
        let mut t: NodeTable<i32> = NodeTable::new(4);
        t.set_pending(9, 0);
    }

    #[test]
    fn iter_visits_everything_once() {
        let mut t = NodeTable::new(3);
        for id in 0..20u32 {
            t.insert(id, id as i64 * 2);
        }
        let mut seen: Vec<NodeId> = t.iter().map(|(id, _)| id).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn chains_stay_sorted_within_buckets() {
        let mut t = NodeTable::new(2);
        for id in [9u32, 1, 7, 3, 5] {
            t.insert(id, id);
        }
        assert_eq!(t.max_chain(), 5); // all odd ids share bucket 1
        let ids: Vec<NodeId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn single_bucket_degenerates_to_sorted_list() {
        let mut t = NodeTable::new(1);
        for id in (0..50u32).rev() {
            t.insert(id, ());
        }
        assert_eq!(t.len(), 50);
        assert_eq!(t.max_chain(), 50);
        assert!(t.contains(49));
    }
}
