//! End-to-end platform tests: the parallel execution must compute exactly
//! what the sequential program computes, for every partitioner, processor
//! count, exchange mode, and with dynamic migration active.

use ic2mpi::prelude::*;
use ic2mpi::seq;
use mpisim::NetModel;
use std::time::Duration;

fn cfg(nprocs: usize, iters: u32) -> RunConfig {
    RunConfig::new(nprocs, iters)
        .with_world(
            mpisim::Config::virtual_time(NetModel::origin2000())
                .with_watchdog(Duration::from_secs(15)),
        )
        .with_validation()
}

#[test]
fn matches_sequential_on_hex_grids() {
    for n in [32, 64] {
        let graph = ic2_graph::generators::hex_grid_n(n);
        let program = AvgProgram::fine();
        let oracle = seq::run_sequential(&graph, &program, 20);
        for procs in [1, 2, 4, 8] {
            let report = run(
                &graph,
                &program,
                &Metis::default(),
                || NoBalancer,
                &cfg(procs, 20),
            );
            assert_eq!(report.final_data, oracle, "{n} nodes on {procs} procs");
        }
    }
}

#[test]
fn matches_sequential_on_random_graphs() {
    for seed in 0..3 {
        let graph = ic2_graph::generators::thesis_random_graph(64, seed);
        let program = AvgProgram::fine();
        let oracle = seq::run_sequential(&graph, &program, 15);
        let report = run(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &cfg(8, 15),
        );
        assert_eq!(report.final_data, oracle, "seed {seed}");
    }
}

#[test]
fn matches_sequential_with_overlap_exchange() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let oracle = seq::run_sequential(&graph, &program, 20);
    let config = cfg(8, 20).with_exchange(ExchangeMode::Overlap);
    let report = run(&graph, &program, &Metis::default(), || NoBalancer, &config);
    assert_eq!(report.final_data, oracle);
}

#[test]
fn matches_sequential_under_dynamic_migration() {
    // The shifting-window load forces migrations; results must still be
    // bit-identical to sequential execution.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::shifting();
    let oracle = seq::run_sequential(&graph, &program, 25);
    let config = cfg(8, 25).with_balancing(10);
    // A tight threshold so the shifting hot window reliably fires the
    // balancer regardless of which (valid) partition Metis happens to pick.
    let report = run(
        &graph,
        &program,
        &Metis::default(),
        || CentralizedHeuristic { threshold: 0.05 },
        &config,
    );
    assert_eq!(report.final_data, oracle);
    assert!(
        report.migrations > 0,
        "shifting load must trigger at least one migration"
    );
    // Owner map must have moved away from the initial partition.
    assert_ne!(
        report.final_owner,
        report.initial_partition.as_slice().to_vec()
    );
}

#[test]
fn every_partitioner_plugin_runs_unmodified() {
    use ic2_partition::bands::{ColumnBand, RectangularBand, RowBand};
    use ic2_partition::graycode::GrayCodeBf;
    use ic2_partition::simple::{BlockPartition, RoundRobin};

    let graph = ic2_graph::generators::hex_grid(8, 8);
    let program = AvgProgram::fine();
    let oracle = seq::run_sequential(&graph, &program, 10);
    let partitioners: Vec<Box<dyn ic2_partition::StaticPartitioner + Sync>> = vec![
        Box::new(Metis::default()),
        Box::new(PaGrid::default()),
        Box::new(RowBand),
        Box::new(ColumnBand),
        Box::new(RectangularBand),
        Box::new(GrayCodeBf),
        Box::new(RoundRobin),
        Box::new(BlockPartition),
    ];
    for p in &partitioners {
        let report = run(&graph, &program, p.as_ref(), || NoBalancer, &cfg(4, 10));
        assert_eq!(report.final_data, oracle, "partitioner {}", p.name());
    }
}

#[test]
fn virtual_time_is_deterministic() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::shifting();
    let config = cfg(8, 25).with_balancing(10);
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        CentralizedHeuristic::default,
        &config,
    );
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        CentralizedHeuristic::default,
        &config,
    );
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.final_owner, b.final_owner);
}

#[test]
fn parallel_runs_are_faster_than_one_processor() {
    let graph = ic2_graph::generators::hex_grid_n(96);
    let program = AvgProgram::coarse();
    let t1 = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(1, 20),
    )
    .total_time;
    let t8 = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(8, 20),
    )
    .total_time;
    let speedup = t1 / t8;
    assert!(
        speedup > 3.0,
        "coarse grain on 8 procs should speed up well, got {speedup:.2}"
    );
}

#[test]
fn dynamic_balancing_beats_static_under_persistent_imbalance() {
    // The core claim of Figures 13-15 ("there's no way a static graph
    // partitioner can capture varying load requirements"), demonstrated
    // where the migration machinery has a chance: a runtime hot region
    // that persists longer than the correction latency. (Under the
    // Figure-23 *shifting* window the single-task corrections always lag
    // one window behind — see EXPERIMENTS.md.)
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::persistent();
    for procs in [4, 8] {
        let static_t = run(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &cfg(procs, 25),
        )
        .total_time;
        let dynamic_cfg = cfg(procs, 25)
            .with_balancing(10)
            .with_balance_offset(5)
            .with_migration_batch(12)
            .with_migrant_policy(ic2mpi::MigrantPolicy::LoadAware);
        let dynamic = run(
            &graph,
            &program,
            &Metis::default(),
            || Diffusion { threshold: 0.10 },
            &dynamic_cfg,
        );
        assert!(
            dynamic.total_time < static_t * 0.9,
            "procs {procs}: dynamic {:.4}s should clearly beat static {static_t:.4}s",
            dynamic.total_time
        );
        assert!(dynamic.migrations > 0);
        // And the computation must still be exact.
        let oracle = seq::run_sequential(&graph, &program, 25);
        assert_eq!(dynamic.final_data, oracle);
    }
}

#[test]
fn phase_timers_cover_all_activity() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let report = run(
        &graph,
        &program,
        &Metis::default(),
        CentralizedHeuristic::default,
        &cfg(4, 35).with_balancing(10),
    );
    for (r, timers) in report.timers.iter().enumerate() {
        assert!(timers.get(ic2mpi::Phase::Compute) > 0.0, "rank {r} compute");
        assert!(
            timers.get(ic2mpi::Phase::Initialization) > 0.0,
            "rank {r} init"
        );
        assert!(
            timers.get(ic2mpi::Phase::Communicate) > 0.0,
            "rank {r} communicate"
        );
        assert!(
            timers.get(ic2mpi::Phase::LoadBalancing) > 0.0,
            "rank {r} load balancing"
        );
        // The phase breakdown must roughly reconstruct the rank's total
        // virtual time (loop phases + init; gather at the end is untimed).
        assert!(timers.total() <= report.total_time * 1.01);
    }
}

#[test]
fn comm_stats_reflect_partition_quality() {
    let graph = ic2_graph::generators::hex_grid(8, 8);
    let program = AvgProgram::fine();
    let metis = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(4, 10),
    );
    let rr = run(
        &graph,
        &program,
        &ic2_partition::simple::RoundRobin,
        || NoBalancer,
        &cfg(4, 10),
    );
    let metis_bytes: u64 = metis.comm.iter().map(|c| c.bytes_sent).sum();
    let rr_bytes: u64 = rr.comm.iter().map(|c| c.bytes_sent).sum();
    assert!(
        metis_bytes * 2 < rr_bytes,
        "metis {metis_bytes}B should send far less than round-robin {rr_bytes}B"
    );
}

#[test]
fn single_processor_has_no_communication() {
    let graph = ic2_graph::generators::hex_grid_n(32);
    let program = AvgProgram::fine();
    let report = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(1, 10),
    );
    // Barrier traffic aside, no shadow bytes move.
    assert_eq!(report.comm[0].bytes_sent, 0);
    assert_eq!(report.migrations, 0);
}

#[test]
fn more_processors_than_useful_still_correct() {
    let graph = ic2_graph::generators::hex_grid(2, 4);
    let program = AvgProgram::fine();
    let oracle = seq::run_sequential(&graph, &program, 5);
    let report = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(8, 5),
    );
    assert_eq!(report.final_data, oracle);
}

#[test]
fn overlap_mode_beats_postcomm_on_slow_networks() {
    // Figure 8a's entire point: hide shadow-exchange latency behind
    // internal-node compute. On a WAN-like network with plenty of
    // internal work the gap must be visible, not just a tie.
    let graph = ic2_graph::generators::hex_grid(8, 8);
    let program = AvgProgram::coarse();
    let world = mpisim::Config::virtual_time(mpisim::NetModel::wan());
    let post = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(4, 15).with_world(world.clone()),
    );
    let overlap = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(4, 15)
            .with_world(world)
            .with_exchange(ExchangeMode::Overlap),
    );
    assert_eq!(post.final_data, overlap.final_data);
    assert!(
        overlap.total_time < post.total_time,
        "overlap {:.4} must beat postcomm {:.4} on a slow network",
        overlap.total_time,
        post.total_time
    );
}

#[test]
fn directory_fetch_composes_with_a_running_platform() {
    // §7.1 extension: non-neighbour data access between iterations.
    use ic2mpi::{directory, NodeStore};
    let graph = ic2_graph::generators::hex_grid(8, 8);
    let part = Metis::default().partition(&graph, 4);
    let program = AvgProgram::fine();
    let world =
        mpisim::World::new(mpisim::Config::default().with_watchdog(Duration::from_secs(10)));
    let results = world.run(4, |rank| {
        let store = NodeStore::build(&graph, &part, rank.rank() as u32, &program, 32);
        // Every rank fetches the node diagonally opposite its first owned
        // node — almost surely remote and non-adjacent.
        let mine = store
            .internal
            .iter()
            .chain(store.peripheral.iter())
            .map(|n| n.id)
            .min()
            .unwrap();
        let opposite = 63 - mine;
        directory::fetch(rank, &store, &[opposite])
    });
    for (rank, got) in results.iter().enumerate() {
        assert_eq!(got.len(), 1, "rank {rank}");
        let (id, data) = got[0];
        assert_eq!(data, id as i64 + 1, "initial data convention");
    }
}
