//! Property-based tests for the platform core: the hash table against a
//! model, store invariants under arbitrary partitions, and parallel ==
//! sequential on arbitrary workloads.

use ic2_graph::{generators, Partition};
use ic2mpi::prelude::*;
use ic2mpi::{seq, NodeStore, NodeTable};
use proptest::prelude::*;
use std::time::Duration;

/// Model-based test operations for the node table.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32, i64),
    SetPending(u32, i64),
    Promote,
    SetCurrent(u32, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..40, any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u32..40, any::<i64>()).prop_map(|(k, v)| Op::SetPending(k, v)),
        Just(Op::Promote),
        (0u32..40, any::<i64>()).prop_map(|(k, v)| Op::SetCurrent(k, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn node_table_matches_hashmap_model(
        buckets in 1usize..32,
        ops in proptest::collection::vec(op_strategy(), 0..120),
    ) {
        let mut table: NodeTable<i64> = NodeTable::new(buckets);
        let mut cur = std::collections::HashMap::new();
        let mut pending = std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let old = table.insert(k, v);
                    prop_assert_eq!(old, cur.insert(k, v));
                }
                Op::SetPending(k, v) => {
                    if cur.contains_key(&k) {
                        table.set_pending(k, v);
                        pending.insert(k, v);
                    }
                }
                Op::Promote => {
                    let promoted = table.promote_all();
                    prop_assert_eq!(promoted, pending.len());
                    for (k, v) in pending.drain() {
                        cur.insert(k, v);
                    }
                }
                Op::SetCurrent(k, v) => {
                    if cur.contains_key(&k) {
                        table.set_current(k, v);
                        cur.insert(k, v);
                    }
                }
            }
        }
        prop_assert_eq!(table.len(), cur.len());
        for (&k, &v) in &cur {
            // Pending values must not be visible before promotion.
            let expected = pending.get(&k).map_or(v, |_| v);
            prop_assert_eq!(table.get(k), Some(&expected));
        }
        for (&k, &v) in &pending {
            prop_assert_eq!(table.pending(k), Some(&v));
        }
    }

    #[test]
    fn store_invariants_hold_for_arbitrary_partitions(
        n in 2usize..40,
        k in 1usize..6,
        seed in any::<u64>(),
        assign in proptest::collection::vec(any::<u32>(), 40),
    ) {
        let graph = generators::random_connected(n, 3.0, 10, seed);
        let assignment: Vec<u32> = (0..n).map(|i| assign[i] % k as u32).collect();
        let partition = Partition::new(assignment, k);
        let program = AvgProgram::fine();
        for rank in 0..k as u32 {
            let store = NodeStore::build(&graph, &partition, rank, &program, 16);
            prop_assert_eq!(store.validate(&graph), Ok(()));
        }
    }

    #[test]
    fn shifting_window_always_heats_half_the_domain(
        num_nodes in 2usize..500,
        iter in 1u32..100,
    ) {
        let s = ShiftingWindowLoad::default();
        let hot = (0..num_nodes as u32)
            .filter(|&v| s.is_hot(v, num_nodes, iter))
            .count();
        // The band covers 50% of the fraction space; integer rounding may
        // shift by one node.
        let expected = num_nodes as f64 * 0.5;
        prop_assert!((hot as f64 - expected).abs() <= 1.0, "hot={hot} of {num_nodes}");
    }
}

proptest! {
    // Full platform runs are expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn parallel_equals_sequential_on_arbitrary_workloads(
        n in 4usize..28,
        procs in 1usize..5,
        iters in 1u32..8,
        seed in any::<u64>(),
        coarse in prop_oneof![Just(false), Just(true)],
    ) {
        let graph = generators::random_connected(n, 3.0, 10, seed);
        let program = if coarse { AvgProgram::coarse() } else { AvgProgram::fine() };
        let oracle = seq::run_sequential(&graph, &program, iters);
        let cfg = RunConfig::new(procs, iters)
            .with_world(mpisim::Config::default().with_watchdog(Duration::from_secs(10)))
            .with_validation();
        let report = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
        prop_assert_eq!(report.final_data, oracle);
    }

    #[test]
    fn migration_preserves_results_for_arbitrary_triggers(
        every in 1u32..6,
        batch in 1u32..6,
        threshold in 0.05f64..0.5,
    ) {
        let graph = generators::hex_grid_n(32);
        let program = AvgProgram::shifting();
        let iters = 12;
        let oracle = seq::run_sequential(&graph, &program, iters);
        let cfg = RunConfig::new(4, iters)
            .with_balancing(every)
            .with_migration_batch(batch)
            .with_migrant_policy(MigrantPolicy::LoadAware)
            .with_world(mpisim::Config::default().with_watchdog(Duration::from_secs(10)))
            .with_validation();
        let report = run(
            &graph,
            &program,
            &Metis::default(),
            || Diffusion { threshold },
            &cfg,
        );
        prop_assert_eq!(report.final_data, oracle);
    }
}
