//! Randomised tests for the platform core: the hash table against a
//! model, store invariants under arbitrary partitions, and parallel ==
//! sequential on arbitrary workloads.
//!
//! Inputs come from the in-tree [`SplitMix64`] generator with fixed seeds,
//! so runs are hermetic and reproducible.

use ic2_graph::{generators, Partition};
use ic2_rng::SplitMix64;
use ic2mpi::prelude::*;
use ic2mpi::{seq, NodeStore, NodeTable};
use std::time::Duration;

/// Model-based test operations for the node table.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32, i64),
    SetPending(u32, i64),
    Promote,
    SetCurrent(u32, i64),
}

fn arb_op(rng: &mut SplitMix64) -> Op {
    let k = rng.gen_range(0..40) as u32;
    let v = rng.next_u64() as i64;
    match rng.gen_range(0..4) {
        0 => Op::Insert(k, v),
        1 => Op::SetPending(k, v),
        2 => Op::Promote,
        _ => Op::SetCurrent(k, v),
    }
}

#[test]
fn node_table_matches_hashmap_model() {
    let mut rng = SplitMix64::new(0xC0DE1);
    for _ in 0..96 {
        let buckets = rng.gen_range(1..32);
        let ops: Vec<Op> = (0..rng.gen_range(0..120))
            .map(|_| arb_op(&mut rng))
            .collect();
        let mut table: NodeTable<i64> = NodeTable::new(buckets);
        let mut cur = std::collections::HashMap::new();
        let mut pending = std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let old = table.insert(k, v);
                    assert_eq!(old, cur.insert(k, v));
                }
                Op::SetPending(k, v) => {
                    if cur.contains_key(&k) {
                        table.set_pending(k, v);
                        pending.insert(k, v);
                    }
                }
                Op::Promote => {
                    let promoted = table.promote_all();
                    assert_eq!(promoted, pending.len());
                    for (k, v) in pending.drain() {
                        cur.insert(k, v);
                    }
                }
                Op::SetCurrent(k, v) => {
                    if cur.contains_key(&k) {
                        table.set_current(k, v);
                        cur.insert(k, v);
                    }
                }
            }
        }
        assert_eq!(table.len(), cur.len());
        for (&k, &v) in &cur {
            assert_eq!(table.get(k), Some(&v));
        }
        for (&k, &v) in &pending {
            assert_eq!(table.pending(k), Some(&v));
        }
    }
}

#[test]
fn store_invariants_hold_for_arbitrary_partitions() {
    let mut rng = SplitMix64::new(0xC0DE2);
    for _ in 0..96 {
        let n = rng.gen_range(2..40);
        let k = rng.gen_range(1..6);
        let graph = generators::random_connected(n, 3.0, 10, rng.next_u64());
        let assignment: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k) as u32).collect();
        let partition = Partition::new(assignment, k);
        let program = AvgProgram::fine();
        for rank in 0..k as u32 {
            let store = NodeStore::build(&graph, &partition, rank, &program, 16);
            assert_eq!(store.validate(&graph), Ok(()));
        }
    }
}

#[test]
fn shifting_window_always_heats_half_the_domain() {
    let mut rng = SplitMix64::new(0xC0DE3);
    for _ in 0..96 {
        let num_nodes = rng.gen_range(2..500);
        let iter = rng.gen_range(1..100) as u32;
        let s = ShiftingWindowLoad::default();
        let hot = (0..num_nodes as u32)
            .filter(|&v| s.is_hot(v, num_nodes, iter))
            .count();
        // The band covers 50% of the fraction space; integer rounding may
        // shift by one node.
        let expected = num_nodes as f64 * 0.5;
        assert!(
            (hot as f64 - expected).abs() <= 1.0,
            "hot={hot} of {num_nodes}"
        );
    }
}

#[test]
fn parallel_equals_sequential_on_arbitrary_workloads() {
    let mut rng = SplitMix64::new(0xC0DE4);
    for _ in 0..10 {
        let n = rng.gen_range(4..28);
        let procs = rng.gen_range(1..5);
        let iters = rng.gen_range(1..8) as u32;
        let coarse = rng.chance(0.5);
        let graph = generators::random_connected(n, 3.0, 10, rng.next_u64());
        let program = if coarse {
            AvgProgram::coarse()
        } else {
            AvgProgram::fine()
        };
        let oracle = seq::run_sequential(&graph, &program, iters);
        let cfg = RunConfig::new(procs, iters)
            .with_world(mpisim::Config::default().with_watchdog(Duration::from_secs(10)))
            .with_validation();
        let report = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
        assert_eq!(report.final_data, oracle);
    }
}

#[test]
fn migration_preserves_results_for_arbitrary_triggers() {
    let mut rng = SplitMix64::new(0xC0DE5);
    for _ in 0..10 {
        let every = rng.gen_range(1..6) as u32;
        let batch = rng.gen_range(1..6) as u32;
        let threshold = 0.05 + 0.45 * rng.next_f64();
        let graph = generators::hex_grid_n(32);
        let program = AvgProgram::shifting();
        let iters = 12;
        let oracle = seq::run_sequential(&graph, &program, iters);
        let cfg = RunConfig::new(4, iters)
            .with_balancing(every)
            .with_migration_batch(batch)
            .with_migrant_policy(MigrantPolicy::LoadAware)
            .with_world(mpisim::Config::default().with_watchdog(Duration::from_secs(10)))
            .with_validation();
        let report = run(
            &graph,
            &program,
            &Metis::default(),
            || Diffusion { threshold },
            &cfg,
        );
        assert_eq!(report.final_data, oracle);
    }
}
