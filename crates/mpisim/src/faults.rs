//! Deterministic fault injection ("chaos mode") for the simulated network.
//!
//! A [`FaultPlan`] describes which messages misbehave and which ranks are
//! slow or doomed. Every per-message decision is a pure hash of the
//! message's identity — `(seed, src, dest, tag, sequence number, attempt)`
//! — via [`mix64`], **never** a shared mutable RNG. That makes the plan
//! independent of thread interleaving: the same seed and plan produce the
//! same faults on every run, no matter how the OS schedules the rank
//! threads. All fault costs (delays, retry timeouts, straggler slowdowns)
//! are charged through the virtual clock, so a chaos run is exactly as
//! reproducible as a clean one.
//!
//! Faults apply only to *data-plane* traffic (non-negative user tags).
//! Collectives use the negative tag space and model a reliable control
//! plane: dropping a broadcast fragment would deadlock the binomial tree,
//! which is a failure mode of the transport model, not of the application
//! under test.

use ic2_rng::mix64;

/// A [`FaultPlan`] builder was handed a nonsensical input. Returned by the
/// `try_with_*` builders; the panicking `with_*` builders panic with this
/// error's `Display` text, so legacy `should_panic` expectations keep
/// matching.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A probability outside `[0, 1]` (NaN included).
    ProbabilityOutOfRange {
        /// Which knob was being set.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A negative (or NaN) time or duration.
    NegativeTime {
        /// Which knob was being set ("delay", "kill time", …).
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A straggler factor that is zero, negative, or NaN.
    NonPositiveFactor(f64),
    /// A partition interval with `until <= from` (or NaN bounds) can never
    /// cut anything.
    EmptyInterval {
        /// Window start.
        from: f64,
        /// Window end.
        until: f64,
    },
    /// A partition needs at least two non-empty groups to separate.
    DegeneratePartition,
    /// A rank listed in more than one group of the same partition.
    OverlappingGroups(usize),
    /// A link drop with `src == dst` (a rank cannot blackhole itself).
    SelfLink(usize),
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::ProbabilityOutOfRange { what, value } => {
                write!(f, "probability out of range: {what} = {value}")
            }
            FaultPlanError::NegativeTime { what, value } => {
                write!(f, "{what} must be non-negative (got {value})")
            }
            FaultPlanError::NonPositiveFactor(v) => {
                write!(f, "compute factor must be positive (got {v})")
            }
            FaultPlanError::EmptyInterval { from, until } => {
                write!(f, "partition interval [{from}, {until}) is empty")
            }
            FaultPlanError::DegeneratePartition => {
                write!(f, "a partition needs at least two non-empty groups")
            }
            FaultPlanError::OverlappingGroups(r) => {
                write!(f, "rank {r} appears in more than one partition group")
            }
            FaultPlanError::SelfLink(r) => {
                write!(f, "link drop {r} -> {r} is a self-loop")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

fn check_prob(what: &'static str, p: f64) -> Result<(), FaultPlanError> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(FaultPlanError::ProbabilityOutOfRange { what, value: p })
    }
}

fn check_time(what: &'static str, t: f64) -> Result<(), FaultPlanError> {
    if t >= 0.0 {
        Ok(())
    } else {
        Err(FaultPlanError::NegativeTime { what, value: t })
    }
}

/// A group-structured network partition over a virtual-time window: while
/// the sender's clock is in `[from, until)`, every data-plane message
/// between ranks in *different* listed groups is cut (delivered as a
/// metadata-only tombstone the receiver detects deterministically). Ranks
/// not listed in any group are "floaters": reachable from every group.
/// Control-plane traffic (negative tags) is never cut — the failure
/// detector's agreement protocol models an out-of-band control network.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// The disjoint rank groups the partition separates.
    pub groups: Vec<Vec<usize>>,
    /// Window start (virtual seconds, inclusive).
    pub from: f64,
    /// Window end (virtual seconds, exclusive).
    pub until: f64,
}

impl PartitionSpec {
    /// Which group `rank` belongs to, if listed.
    pub fn group_of(&self, rank: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&rank))
    }

    /// Is this partition's window active at virtual time `at`?
    pub fn active_at(&self, at: f64) -> bool {
        at >= self.from && at < self.until
    }
}

/// The quorum rule, shared by the failure detector and the membership
/// layer: which live ranks the active partitions leave *suspected* at
/// virtual time `at`. For each active partition, the majority side is the
/// group whose live members plus the live floaters strictly outnumber half
/// the live total (ties broken toward the larger group, then the lower
/// index); every live rank in any other group is suspected. With no
/// majority anywhere, **all** listed live ranks are suspected — structural
/// split-brain prevention: no side may mutate shared state.
pub fn suspects(partitions: &[PartitionSpec], at: f64, live: &[bool]) -> Vec<bool> {
    let n = live.len();
    let mut sus = vec![false; n];
    for p in partitions {
        if !p.active_at(at) {
            continue;
        }
        let live_total = live.iter().filter(|&&l| l).count();
        let floaters = (0..n)
            .filter(|&r| live[r] && p.group_of(r).is_none())
            .count();
        let mut majority: Option<(usize, usize)> = None; // (members, group)
        for (gi, g) in p.groups.iter().enumerate() {
            let members = g.iter().filter(|&&r| r < n && live[r]).count();
            let is_majority = 2 * (members + floaters) > live_total;
            if is_majority && majority.is_none_or(|(m, _)| members > m) {
                majority = Some((members, gi));
            }
        }
        for (gi, g) in p.groups.iter().enumerate() {
            if majority.is_some_and(|(_, best)| best == gi) {
                continue;
            }
            for &r in g {
                if r < n && live[r] {
                    sus[r] = true;
                }
            }
        }
    }
    sus
}

/// Which class of at-rest state a memory-corruption decision targets.
/// Message corruption damages bytes *in flight*; memory corruption damages
/// bytes *at rest*, in one of three places the platform caches state
/// between wire crossings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemRegion {
    /// A node the rank owns (its authoritative current value).
    Owned,
    /// A delta-retained shadow copy of a neighbour's node.
    Shadow,
    /// A checkpoint replica at rest (the rank's own baseline or a ward it
    /// holds for a ring buddy).
    Replica,
}

impl MemRegion {
    fn code(self) -> u64 {
        match self {
            MemRegion::Owned => 1,
            MemRegion::Shadow => 2,
            MemRegion::Replica => 3,
        }
    }
}

/// Which class of storage misbehaviour a disk-fault decision injects.
/// The four kinds map to the four things a real block device does to an
/// out-of-core store: power loss mid-write (torn write), media decay
/// (read rot), flaky controllers (transient errors), and a full device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskFault {
    /// A write is acknowledged but lands damaged: one bit of the stored
    /// blob is flipped. The page checksum catches it on read-back.
    TornWrite,
    /// A stored blob decays at rest: one bit flips *in the slot*, sticky
    /// across re-reads of the same stored version. Retrying the read
    /// cannot help; only another copy can.
    ReadRot,
    /// An I/O operation fails outright but the slot is untouched.
    /// Retrying (with backoff charged to the virtual clock) can succeed.
    TransientError,
    /// A write is rejected because the device reports no space. Like
    /// transient errors, per-attempt: a retry may find room.
    Full,
}

impl DiskFault {
    fn code(self) -> u64 {
        match self {
            DiskFault::TornWrite => 1,
            DiskFault::ReadRot => 2,
            DiskFault::TransientError => 3,
            DiskFault::Full => 4,
        }
    }
}

/// What the fault plan decided for one transmission attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// The message is silently lost (sender is still charged for sending).
    pub dropped: bool,
    /// The message arrives [`FaultPlan::delay_seconds`] late.
    pub delayed: bool,
    /// A second, identical copy is delivered.
    pub duplicated: bool,
    /// The message is delivered at the *front* of the receiver's queue,
    /// overtaking earlier traffic.
    pub reordered: bool,
    /// One bit of the payload is flipped in flight. The frame checksum no
    /// longer matches, so the receiver detects and discards it.
    pub corrupted: bool,
    /// The payload is shortened in flight. Also caught by the checksum.
    pub truncated: bool,
    /// The message is silently lost to a per-link blackhole
    /// ([`FaultPlan::with_link_drop`]). Counted separately from `dropped`
    /// so per-link loss is visible in [`crate::FaultStats`].
    pub link_dropped: bool,
}

impl FaultDecision {
    /// Does this attempt arrive damaged (checksum will fail at the receiver)?
    pub fn mangled(&self) -> bool {
        self.corrupted || self.truncated
    }

    /// Is this attempt lost in flight (globally or on its link)?
    pub fn lost(&self) -> bool {
        self.dropped || self.link_dropped
    }
}

/// A seeded, deterministic schedule of network and process faults.
///
/// The default plan is a no-op. Build one with the `with_*` methods:
///
/// ```
/// use mpisim::FaultPlan;
/// let plan = FaultPlan::new(42)
///     .with_drop(0.05)
///     .with_delay(0.10, 2e-3)
///     .with_straggler(1, 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every per-message hash decision.
    pub seed: u64,
    /// Probability a data message is dropped.
    pub drop_prob: f64,
    /// Probability a data message is delayed.
    pub delay_prob: f64,
    /// Extra virtual latency added to a delayed message, in seconds.
    pub delay_seconds: f64,
    /// Probability a data message is delivered twice.
    pub dup_prob: f64,
    /// Probability a data message overtakes queued traffic at the receiver.
    pub reorder_prob: f64,
    /// Probability a data message has one payload bit flipped in flight.
    pub corrupt_prob: f64,
    /// Probability a data message has its payload shortened in flight.
    pub truncate_prob: f64,
    /// `(rank, factor)`: rank's compute time is multiplied by `factor`.
    pub stragglers: Vec<(usize, f64)>,
    /// `(rank, virtual_time)`: rank fail-stops once its clock passes the
    /// given virtual time (cooperative fail-stop — the platform detects it
    /// at the next iteration boundary and evacuates).
    pub kills: Vec<(usize, f64)>,
    /// `(rank, virtual_time)`: rank *crashes* once its clock passes the
    /// given virtual time — uncooperative death. The rank dies instantly at
    /// its next substrate operation: its mailbox is sealed, anything still
    /// queued for it is dropped, nothing it would have sent after the crash
    /// point is ever sent, and it does not drain or evacuate. Survivors
    /// learn of the death through the control plane's failure detector
    /// ([`crate::Rank::ctl_exchange`]) and must recover on their own.
    pub crashes: Vec<(usize, f64)>,
    /// Virtual seconds a reliable send waits for a (simulated) ack before
    /// retransmitting.
    pub retry_timeout: f64,
    /// Retransmissions a reliable send attempts beyond the first try.
    pub max_retries: u32,
    /// Virtual seconds a receiver waits out before concluding that a
    /// crashed peer will never send (charged to the clock each time a
    /// receive is abandoned on a dead peer).
    pub detect_timeout: f64,
    /// Group-structured network partitions over virtual-time windows.
    pub partitions: Vec<PartitionSpec>,
    /// `(src, dst, p)`: each data message on the directed link `src → dst`
    /// is independently lost with probability `p` (pure per-message hash,
    /// same purity laws as the global probabilities).
    pub link_drops: Vec<(usize, usize, f64)>,
    /// `(rank, p)`: each at-rest state entry on `rank` (owned node data,
    /// retained shadow caches, checkpoint replicas) independently has one
    /// bit flipped with probability `p` per injection sweep. Decisions are
    /// a pure hash of `(rank, epoch, region, index)`, never a shared RNG —
    /// the platform's audit machinery, not the transport checksums, must
    /// catch these.
    pub memory_corrupt: Vec<(usize, f64)>,
    /// `(rank, region, p)`: region-scoped overrides of the blanket
    /// per-rank probability. Lets a plan rot, say, only the checkpoint
    /// replicas a rank holds (`MemRegion::Replica`) while leaving its live
    /// owned data pristine — the construction the multi-replica restore
    /// tests use to make "exactly these copies are bad" deterministic.
    pub memory_corrupt_regions: Vec<(usize, MemRegion, f64)>,
    /// `(rank, kind, p)`: each disk operation on `rank`'s virtual disk is
    /// independently subject to fault `kind` with probability `p`.
    /// Decisions are pure hashes of `(rank, kind, page, slot, version,
    /// attempt)` — same purity laws as every other fault family, so an
    /// out-of-core chaos run is bit-reproducible.
    pub disk_faults: Vec<(usize, DiskFault, f64)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay_seconds: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            stragglers: Vec::new(),
            kills: Vec::new(),
            crashes: Vec::new(),
            retry_timeout: 1e-3,
            max_retries: 8,
            detect_timeout: 5e-3,
            partitions: Vec::new(),
            link_drops: Vec::new(),
            memory_corrupt: Vec::new(),
            memory_corrupt_regions: Vec::new(),
            disk_faults: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A no-op plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Drop each data message with probability `p`.
    pub fn with_drop(self, p: f64) -> Self {
        self.try_with_drop(p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_drop`].
    pub fn try_with_drop(mut self, p: f64) -> Result<Self, FaultPlanError> {
        check_prob("drop", p)?;
        self.drop_prob = p;
        Ok(self)
    }

    /// Delay each data message with probability `p` by `seconds` of
    /// virtual latency.
    pub fn with_delay(self, p: f64, seconds: f64) -> Self {
        self.try_with_delay(p, seconds)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_delay`].
    pub fn try_with_delay(mut self, p: f64, seconds: f64) -> Result<Self, FaultPlanError> {
        check_prob("delay", p)?;
        check_time("delay", seconds)?;
        self.delay_prob = p;
        self.delay_seconds = seconds;
        Ok(self)
    }

    /// Duplicate each data message with probability `p`.
    pub fn with_dup(self, p: f64) -> Self {
        self.try_with_dup(p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_dup`].
    pub fn try_with_dup(mut self, p: f64) -> Result<Self, FaultPlanError> {
        check_prob("dup", p)?;
        self.dup_prob = p;
        Ok(self)
    }

    /// Let each data message overtake queued traffic with probability `p`.
    pub fn with_reorder(self, p: f64) -> Self {
        self.try_with_reorder(p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_reorder`].
    pub fn try_with_reorder(mut self, p: f64) -> Result<Self, FaultPlanError> {
        check_prob("reorder", p)?;
        self.reorder_prob = p;
        Ok(self)
    }

    /// Flip one payload bit of each data message with probability `p`.
    /// The damage is caught by the frame checksum at the receiver, which
    /// NACKs the frame; the sender retransmits with exponential backoff.
    pub fn with_corrupt(self, p: f64) -> Self {
        self.try_with_corrupt(p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_corrupt`].
    pub fn try_with_corrupt(mut self, p: f64) -> Result<Self, FaultPlanError> {
        check_prob("corrupt", p)?;
        self.corrupt_prob = p;
        Ok(self)
    }

    /// Shorten each data message's payload with probability `p`. Like
    /// corruption, truncation is caught by the frame checksum and repaired
    /// by retransmission.
    pub fn with_truncate(self, p: f64) -> Self {
        self.try_with_truncate(p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_truncate`].
    pub fn try_with_truncate(mut self, p: f64) -> Result<Self, FaultPlanError> {
        check_prob("truncate", p)?;
        self.truncate_prob = p;
        Ok(self)
    }

    /// Multiply `rank`'s compute time by `factor` (a straggler; `factor`
    /// below 1.0 makes it a speed demon, which is also legal).
    pub fn with_straggler(self, rank: usize, factor: f64) -> Self {
        self.try_with_straggler(rank, factor)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_straggler`].
    pub fn try_with_straggler(mut self, rank: usize, factor: f64) -> Result<Self, FaultPlanError> {
        if factor <= 0.0 || factor.is_nan() {
            return Err(FaultPlanError::NonPositiveFactor(factor));
        }
        self.stragglers.retain(|&(r, _)| r != rank);
        self.stragglers.push((rank, factor));
        Ok(self)
    }

    /// Fail-stop `rank` once its virtual clock reaches `at`.
    pub fn with_kill(self, rank: usize, at: f64) -> Self {
        self.try_with_kill(rank, at)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_kill`].
    pub fn try_with_kill(mut self, rank: usize, at: f64) -> Result<Self, FaultPlanError> {
        check_time("kill time", at)?;
        self.kills.retain(|&(r, _)| r != rank);
        self.kills.push((rank, at));
        Ok(self)
    }

    /// Crash `rank` (uncooperatively) once its virtual clock reaches `at`:
    /// the rank dies at its next substrate operation without draining or
    /// handing anything off. Survivors must detect the death and recover.
    pub fn with_crash(self, rank: usize, at: f64) -> Self {
        self.try_with_crash(rank, at)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_crash`].
    pub fn try_with_crash(mut self, rank: usize, at: f64) -> Result<Self, FaultPlanError> {
        check_time("crash time", at)?;
        self.crashes.retain(|&(r, _)| r != rank);
        self.crashes.push((rank, at));
        Ok(self)
    }

    /// Tune the reliable-send retransmission policy.
    pub fn with_retry(self, timeout: f64, max_retries: u32) -> Self {
        self.try_with_retry(timeout, max_retries)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_retry`].
    pub fn try_with_retry(
        mut self,
        timeout: f64,
        max_retries: u32,
    ) -> Result<Self, FaultPlanError> {
        check_time("timeout", timeout)?;
        self.retry_timeout = timeout;
        self.max_retries = max_retries;
        Ok(self)
    }

    /// Tune the failure detector's per-receive abandonment timeout.
    pub fn with_detect_timeout(self, timeout: f64) -> Self {
        self.try_with_detect_timeout(timeout)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_detect_timeout`].
    pub fn try_with_detect_timeout(mut self, timeout: f64) -> Result<Self, FaultPlanError> {
        check_time("timeout", timeout)?;
        self.detect_timeout = timeout;
        Ok(self)
    }

    /// Partition the world into `groups` for the virtual-time window
    /// `[from, until)`: every data message between ranks in different
    /// groups is cut while the window is active. Ranks not listed in any
    /// group stay reachable from everyone.
    pub fn with_partition(self, groups: Vec<Vec<usize>>, from: f64, until: f64) -> Self {
        self.try_with_partition(groups, from, until)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_partition`].
    pub fn try_with_partition(
        mut self,
        groups: Vec<Vec<usize>>,
        from: f64,
        until: f64,
    ) -> Result<Self, FaultPlanError> {
        check_time("partition start", from)?;
        if until <= from || until.is_nan() {
            return Err(FaultPlanError::EmptyInterval { from, until });
        }
        if groups.len() < 2 || groups.iter().any(|g| g.is_empty()) {
            return Err(FaultPlanError::DegeneratePartition);
        }
        let mut seen = std::collections::BTreeSet::new();
        for &r in groups.iter().flatten() {
            if !seen.insert(r) {
                return Err(FaultPlanError::OverlappingGroups(r));
            }
        }
        self.partitions.push(PartitionSpec {
            groups,
            from,
            until,
        });
        Ok(self)
    }

    /// Independently lose each data message on the directed link
    /// `src → dst` with probability `p`.
    pub fn with_link_drop(self, src: usize, dst: usize, p: f64) -> Self {
        self.try_with_link_drop(src, dst, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_link_drop`].
    pub fn try_with_link_drop(
        mut self,
        src: usize,
        dst: usize,
        p: f64,
    ) -> Result<Self, FaultPlanError> {
        check_prob("link drop", p)?;
        if src == dst {
            return Err(FaultPlanError::SelfLink(src));
        }
        self.link_drops.retain(|&(s, d, _)| (s, d) != (src, dst));
        self.link_drops.push((src, dst, p));
        Ok(self)
    }

    /// Silently flip bits in `rank`'s at-rest state with per-entry
    /// probability `p` on each injection sweep. Unlike wire corruption,
    /// nothing in the transport detects this — only a state audit
    /// (`RunConfig::with_state_audit`) or a checkpoint checksum can.
    pub fn with_memory_corrupt(self, rank: usize, p: f64) -> Self {
        self.try_with_memory_corrupt(rank, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_memory_corrupt`].
    pub fn try_with_memory_corrupt(mut self, rank: usize, p: f64) -> Result<Self, FaultPlanError> {
        check_prob("memory corrupt", p)?;
        self.memory_corrupt.retain(|&(r, _)| r != rank);
        self.memory_corrupt.push((rank, p));
        Ok(self)
    }

    /// Region-scoped at-rest corruption: flip bits only in `region` on
    /// `rank`, overriding the blanket [`FaultPlan::with_memory_corrupt`]
    /// probability for that region. `with_memory_corrupt_in(h, Replica, 1.0)`
    /// deterministically rots every checkpoint copy rank `h` holds while
    /// its live state stays pristine — the lever the escalating-restore
    /// tests use to knock out exactly `r - 1` (or all `r`) replicas.
    pub fn with_memory_corrupt_in(self, rank: usize, region: MemRegion, p: f64) -> Self {
        self.try_with_memory_corrupt_in(rank, region, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_memory_corrupt_in`].
    pub fn try_with_memory_corrupt_in(
        mut self,
        rank: usize,
        region: MemRegion,
        p: f64,
    ) -> Result<Self, FaultPlanError> {
        check_prob("memory corrupt", p)?;
        self.memory_corrupt_regions
            .retain(|&(r, reg, _)| r != rank || reg != region);
        self.memory_corrupt_regions.push((rank, region, p));
        Ok(self)
    }

    /// Subject each disk operation on `rank`'s virtual disk to fault
    /// `kind` with probability `p`. Torn writes and read rot damage
    /// stored bytes (caught by the page checksum); transient errors and
    /// disk-full rejections fail the operation cleanly (healed by retry
    /// with backoff charged to the virtual clock).
    pub fn with_disk_fault(self, rank: usize, kind: DiskFault, p: f64) -> Self {
        self.try_with_disk_fault(rank, kind, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::with_disk_fault`].
    pub fn try_with_disk_fault(
        mut self,
        rank: usize,
        kind: DiskFault,
        p: f64,
    ) -> Result<Self, FaultPlanError> {
        check_prob("disk fault", p)?;
        self.disk_faults.retain(|&(r, k, _)| (r, k) != (rank, kind));
        self.disk_faults.push((rank, kind, p));
        Ok(self)
    }

    /// Whether any rank's virtual disk is scheduled to misbehave.
    pub fn has_disk_faults(&self) -> bool {
        self.disk_faults.iter().any(|&(_, _, p)| p > 0.0)
    }

    /// Probability of disk fault `kind` on `rank` (0.0 unless scheduled).
    pub fn disk_fault_prob(&self, rank: usize, kind: DiskFault) -> f64 {
        self.disk_faults
            .iter()
            .find(|&&(r, k, _)| r == rank && k == kind)
            .map_or(0.0, |&(_, _, p)| p)
    }

    /// Hash chain shared by the disk-fault decision and its bit choice.
    /// Seeded apart from the message, mangle, and memory chains so disk
    /// faults never correlate with any other fault family.
    fn disk_hash(&self, rank: usize, kind: DiskFault, page: u64, slot: u64, version: u64) -> u64 {
        let mut h = mix64(self.seed ^ 0x94d0_49bb_1331_11eb);
        h = mix64(h ^ rank as u64);
        h = mix64(h ^ kind.code());
        h = mix64(h ^ page);
        h = mix64(h ^ slot);
        mix64(h ^ version)
    }

    /// Does fault `kind` strike attempt `attempt` of the disk operation on
    /// `(page, slot, version)` of `rank`'s disk? Pure function of the plan
    /// and the identity tuple. Sticky faults (read rot) pass `attempt = 0`
    /// so every re-read of the same stored version sees the same decay.
    pub fn disk_fault_hits(
        &self,
        rank: usize,
        kind: DiskFault,
        page: u64,
        slot: u64,
        version: u64,
        attempt: u64,
    ) -> bool {
        let p = self.disk_fault_prob(rank, kind);
        if p <= 0.0 {
            return false;
        }
        let h = self.disk_hash(rank, kind, page, slot, version);
        unit(mix64(h ^ mix64(attempt.wrapping_add(1)))) < p
    }

    /// Which bit (in `[0, len_bits)`) of the stored blob a torn write or
    /// read-rot hit flips. Pure hash of the same identity that produced
    /// the decision.
    #[allow(clippy::too_many_arguments)]
    pub fn disk_fault_bit(
        &self,
        rank: usize,
        kind: DiskFault,
        page: u64,
        slot: u64,
        version: u64,
        attempt: u64,
        len_bits: u64,
    ) -> u64 {
        debug_assert!(len_bits > 0);
        let h = self.disk_hash(rank, kind, page, slot, version);
        mix64(h ^ mix64(attempt.wrapping_add(1)) ^ 0x5b) % len_bits
    }

    /// Whether any rank is scheduled for at-rest memory corruption.
    pub fn has_memory_corruption(&self) -> bool {
        self.memory_corrupt.iter().any(|&(_, p)| p > 0.0)
            || self.memory_corrupt_regions.iter().any(|&(_, _, p)| p > 0.0)
    }

    /// The largest per-entry corruption probability scheduled anywhere on
    /// `rank` (0.0 unless scheduled) — the cheap "does this rank need
    /// injection sweeps at all?" gate.
    pub fn memory_corrupt_prob(&self, rank: usize) -> f64 {
        let blanket = self
            .memory_corrupt
            .iter()
            .find(|&&(r, _)| r == rank)
            .map_or(0.0, |&(_, p)| p);
        self.memory_corrupt_regions
            .iter()
            .filter(|&&(r, _, _)| r == rank)
            .fold(blanket, |acc, &(_, _, p)| acc.max(p))
    }

    /// Per-sweep per-entry corruption probability for `region` on `rank`:
    /// the region-scoped override if one is set, else the blanket per-rank
    /// probability.
    pub fn memory_corrupt_prob_in(&self, rank: usize, region: MemRegion) -> f64 {
        self.memory_corrupt_regions
            .iter()
            .find(|&&(r, reg, _)| r == rank && reg == region)
            .map_or_else(
                || {
                    self.memory_corrupt
                        .iter()
                        .find(|&&(r, _)| r == rank)
                        .map_or(0.0, |&(_, p)| p)
                },
                |&(_, _, p)| p,
            )
    }

    /// Hash chain shared by the memory-corruption decision and its bit
    /// choice. Seeded apart from both the message-decision and mangle
    /// chains so memory faults never correlate with wire faults.
    fn memory_hash(&self, rank: usize, epoch: u64, region: MemRegion, index: u64) -> u64 {
        let mut h = mix64(self.seed ^ 0xd6e8_feb8_6659_fd93);
        h = mix64(h ^ rank as u64);
        h = mix64(h ^ epoch);
        h = mix64(h ^ region.code());
        mix64(h ^ index)
    }

    /// Does the entry `index` in `region` on `rank` get a bit flipped in
    /// injection sweep `epoch`? Pure function of the plan and the identity
    /// tuple — independent of call order and thread schedule.
    pub fn memory_corrupts(&self, rank: usize, epoch: u64, region: MemRegion, index: u64) -> bool {
        let p = self.memory_corrupt_prob_in(rank, region);
        if p <= 0.0 {
            return false;
        }
        let h = self.memory_hash(rank, epoch, region, index);
        unit(mix64(h ^ 1)) < p
    }

    /// Which bit (in `[0, len_bits)`) of the chosen entry flips. Pure hash
    /// of the same identity that produced the decision.
    pub fn memory_corrupt_bit(
        &self,
        rank: usize,
        epoch: u64,
        region: MemRegion,
        index: u64,
        len_bits: u64,
    ) -> u64 {
        debug_assert!(len_bits > 0);
        let h = self.memory_hash(rank, epoch, region, index);
        mix64(h ^ 2) % len_bits
    }

    /// Does this plan perturb messages at all? (Partitions are *not*
    /// message faults: a cut is a deterministic property of the link and
    /// the clock, so it needs none of the seq/checksum machinery that
    /// probabilistic faults activate. Memory corruption is not a message
    /// fault either: it damages state at rest, invisibly to the wire.)
    pub fn message_faults(&self) -> bool {
        self.drop_prob > 0.0
            || self.delay_prob > 0.0
            || self.dup_prob > 0.0
            || self.reorder_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.truncate_prob > 0.0
            || self.link_drops.iter().any(|&(_, _, p)| p > 0.0)
    }

    /// Does this plan do anything at all?
    pub fn is_noop(&self) -> bool {
        !self.message_faults()
            && !self.has_memory_corruption()
            && !self.has_disk_faults()
            && self.stragglers.is_empty()
            && self.kills.is_empty()
            && self.crashes.is_empty()
            && self.partitions.is_empty()
    }

    /// Whether any partition window is scheduled.
    pub fn has_partitions(&self) -> bool {
        !self.partitions.is_empty()
    }

    /// Is the directed link `src → dest` severed by an active partition at
    /// virtual time `at`? Pure function of the plan and `(src, dest, tag,
    /// at)`; control-plane traffic (`tag < 0`) is never cut.
    pub fn cut(&self, src: usize, dest: usize, tag: i64, at: f64) -> bool {
        if tag < 0 || src == dest || self.partitions.is_empty() {
            return false;
        }
        self.partitions.iter().any(|p| {
            p.active_at(at)
                && match (p.group_of(src), p.group_of(dest)) {
                    (Some(a), Some(b)) => a != b,
                    _ => false,
                }
        })
    }

    /// The quorum verdict at virtual time `at` given the live set — see
    /// [`suspects`].
    pub fn suspects(&self, at: f64, live: &[bool]) -> Vec<bool> {
        suspects(&self.partitions, at, live)
    }

    /// Compute-time multiplier for `rank` (1.0 unless it straggles).
    pub fn compute_factor(&self, rank: usize) -> f64 {
        self.stragglers
            .iter()
            .find(|&&(r, _)| r == rank)
            .map_or(1.0, |&(_, f)| f)
    }

    /// Virtual time at which `rank` fail-stops, if scheduled to.
    pub fn kill_time(&self, rank: usize) -> Option<f64> {
        self.kills
            .iter()
            .find(|&&(r, _)| r == rank)
            .map(|&(_, t)| t)
    }

    /// Whether any rank is scheduled to die.
    pub fn has_kills(&self) -> bool {
        !self.kills.is_empty()
    }

    /// Virtual time at which `rank` crashes uncooperatively, if scheduled.
    pub fn crash_time(&self, rank: usize) -> Option<f64> {
        self.crashes
            .iter()
            .find(|&&(r, _)| r == rank)
            .map(|&(_, t)| t)
    }

    /// Whether any rank is scheduled to crash uncooperatively.
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty()
    }

    /// The fate of transmission `attempt` of the message identified by
    /// `(src, dest, tag, seq)`. Pure function of the plan and the message
    /// identity; collective traffic (`tag < 0`) is never faulted.
    pub fn decide(
        &self,
        src: usize,
        dest: usize,
        tag: i64,
        seq: u64,
        attempt: u32,
    ) -> FaultDecision {
        if tag < 0 || !self.message_faults() {
            return FaultDecision::default();
        }
        let mut h = mix64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        h = mix64(h ^ src as u64);
        h = mix64(h ^ dest as u64);
        h = mix64(h ^ tag as u64);
        h = mix64(h ^ seq);
        h = mix64(h ^ attempt as u64);
        let link_prob = self
            .link_drops
            .iter()
            .find(|&&(s, d, _)| (s, d) == (src, dest))
            .map_or(0.0, |&(_, _, p)| p);
        FaultDecision {
            dropped: unit(mix64(h ^ 1)) < self.drop_prob,
            delayed: unit(mix64(h ^ 2)) < self.delay_prob,
            duplicated: unit(mix64(h ^ 3)) < self.dup_prob,
            reordered: unit(mix64(h ^ 4)) < self.reorder_prob,
            corrupted: unit(mix64(h ^ 5)) < self.corrupt_prob,
            truncated: unit(mix64(h ^ 6)) < self.truncate_prob,
            link_dropped: unit(mix64(h ^ 9)) < link_prob,
        }
    }

    /// Deterministically damage `bytes` in place according to `decision`.
    ///
    /// The mangle parameters (which bit flips, how much is cut) are a pure
    /// hash of the same message identity that produced the decision, so a
    /// mangled frame is byte-identical on every run. Empty payloads cannot
    /// be damaged (there is nothing to flip or cut) — callers should treat
    /// an empty payload's decision as clean.
    #[allow(clippy::too_many_arguments)]
    pub fn mangle(
        &self,
        src: usize,
        dest: usize,
        tag: i64,
        seq: u64,
        attempt: u32,
        decision: FaultDecision,
        bytes: &mut Vec<u8>,
    ) {
        if bytes.is_empty() || !decision.mangled() {
            return;
        }
        let mut h = mix64(self.seed ^ 0x5851_f42d_4c95_7f2d);
        h = mix64(h ^ src as u64);
        h = mix64(h ^ dest as u64);
        h = mix64(h ^ tag as u64);
        h = mix64(h ^ seq);
        h = mix64(h ^ attempt as u64);
        if decision.truncated {
            // Keep a strict prefix: anywhere from 0 to len-1 bytes survive.
            let keep = (mix64(h ^ 7) % bytes.len() as u64) as usize;
            bytes.truncate(keep);
        }
        if decision.corrupted && !bytes.is_empty() {
            let bit = mix64(h ^ 8) % (bytes.len() as u64 * 8);
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
    }
}

/// Map a hash to a uniform float in [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        assert!(!plan.message_faults());
        assert_eq!(plan.decide(0, 1, 5, 0, 0), FaultDecision::default());
        assert_eq!(plan.compute_factor(3), 1.0);
        assert_eq!(plan.kill_time(3), None);
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(7).with_drop(0.3).with_delay(0.3, 1e-3);
        for seq in 0..100 {
            assert_eq!(plan.decide(0, 1, 5, seq, 0), plan.decide(0, 1, 5, seq, 0));
        }
    }

    #[test]
    fn decisions_depend_on_identity() {
        let plan = FaultPlan::new(7).with_drop(0.5);
        let base: Vec<bool> = (0..64)
            .map(|s| plan.decide(0, 1, 5, s, 0).dropped)
            .collect();
        let other_src: Vec<bool> = (0..64)
            .map(|s| plan.decide(2, 1, 5, s, 0).dropped)
            .collect();
        let other_attempt: Vec<bool> = (0..64)
            .map(|s| plan.decide(0, 1, 5, s, 1).dropped)
            .collect();
        assert_ne!(base, other_src);
        assert_ne!(base, other_attempt);
    }

    #[test]
    fn drop_rate_is_roughly_calibrated() {
        let plan = FaultPlan::new(99).with_drop(0.2);
        let n = 10_000;
        let dropped = (0..n)
            .filter(|&s| plan.decide(0, 1, 5, s, 0).dropped)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((0.17..0.23).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn collective_tags_are_never_faulted() {
        let plan = FaultPlan::new(1)
            .with_drop(1.0)
            .with_dup(1.0)
            .with_reorder(1.0);
        for tag in [-1i64, -2, -1000] {
            assert_eq!(plan.decide(0, 1, tag, 0, 0), FaultDecision::default());
        }
        // While a user tag at p=1.0 always drops.
        assert!(plan.decide(0, 1, 0, 0, 0).dropped);
    }

    #[test]
    fn straggler_and_kill_lookup() {
        let plan = FaultPlan::new(0).with_straggler(2, 3.0).with_kill(1, 0.5);
        assert_eq!(plan.compute_factor(2), 3.0);
        assert_eq!(plan.compute_factor(0), 1.0);
        assert_eq!(plan.kill_time(1), Some(0.5));
        assert_eq!(plan.kill_time(2), None);
        assert!(plan.has_kills());
        assert!(!plan.is_noop());
        assert!(!plan.message_faults());
    }

    #[test]
    fn builders_replace_existing_entries() {
        let plan = FaultPlan::new(0)
            .with_straggler(2, 3.0)
            .with_straggler(2, 5.0);
        assert_eq!(plan.compute_factor(2), 5.0);
        assert_eq!(plan.stragglers.len(), 1);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        let _ = FaultPlan::new(0).with_drop(1.5);
    }

    #[test]
    fn corruption_decisions_are_pure_and_calibrated() {
        let plan = FaultPlan::new(4242).with_corrupt(0.2).with_truncate(0.1);
        assert!(plan.message_faults());
        let n = 10_000;
        let (mut corrupted, mut truncated) = (0usize, 0usize);
        for s in 0..n {
            let d = plan.decide(0, 1, 5, s, 0);
            assert_eq!(d, plan.decide(0, 1, 5, s, 0));
            corrupted += d.corrupted as usize;
            truncated += d.truncated as usize;
        }
        let cr = corrupted as f64 / n as f64;
        let tr = truncated as f64 / n as f64;
        assert!((0.17..0.23).contains(&cr), "observed corrupt rate {cr}");
        assert!((0.08..0.12).contains(&tr), "observed truncate rate {tr}");
        // Control-plane traffic is never damaged.
        let sure = FaultPlan::new(1).with_corrupt(1.0).with_truncate(1.0);
        assert_eq!(sure.decide(0, 1, -3, 0, 0), FaultDecision::default());
    }

    #[test]
    fn mangle_is_deterministic_and_always_changes_the_payload() {
        let plan = FaultPlan::new(9).with_corrupt(1.0).with_truncate(0.5);
        for seq in 0..200u64 {
            let original: Vec<u8> = (0u8..32)
                .map(|i| i.wrapping_mul(7).wrapping_add(seq as u8) ^ 0x5a)
                .collect();
            let d = plan.decide(2, 3, 11, seq, 0);
            assert!(d.corrupted);
            let mut a = original.clone();
            let mut b = original.clone();
            plan.mangle(2, 3, 11, seq, 0, d, &mut a);
            plan.mangle(2, 3, 11, seq, 0, d, &mut b);
            assert_eq!(a, b, "mangle must be pure");
            assert_ne!(a, original, "a mangled frame must differ");
            if d.truncated {
                assert!(a.len() < original.len());
            }
        }
        // Empty payloads are left alone.
        let mut empty: Vec<u8> = Vec::new();
        let d = plan.decide(0, 1, 5, 0, 0);
        plan.mangle(0, 1, 5, 0, 0, d, &mut empty);
        assert!(empty.is_empty());
    }

    /// Deterministic sampler over "interesting" f64s for the validation
    /// property tests (no external RNG crates).
    fn sample_f64(i: u64) -> f64 {
        let h = mix64(i ^ 0xf00d);
        match h % 8 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -((h >> 8) as f64 * 1e-12) - 1e-9,
            4 => 1.0 + (h >> 8) as f64 * 1e-12,
            _ => ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64),
        }
    }

    #[test]
    fn probability_validation_is_exhaustive_over_sampled_inputs() {
        type ProbBuilder = fn(FaultPlan, f64) -> Result<FaultPlan, FaultPlanError>;
        let builders: [(&str, ProbBuilder); 9] = [
            ("drop", |pl, p| pl.try_with_drop(p)),
            ("delay", |pl, p| pl.try_with_delay(p, 1e-3)),
            ("dup", |pl, p| pl.try_with_dup(p)),
            ("reorder", |pl, p| pl.try_with_reorder(p)),
            ("corrupt", |pl, p| pl.try_with_corrupt(p)),
            ("truncate", |pl, p| pl.try_with_truncate(p)),
            ("link drop", |pl, p| pl.try_with_link_drop(0, 1, p)),
            ("memory corrupt", |pl, p| pl.try_with_memory_corrupt(0, p)),
            ("disk fault", |pl, p| {
                pl.try_with_disk_fault(0, DiskFault::ReadRot, p)
            }),
        ];
        for i in 0..2000u64 {
            let p = sample_f64(i);
            let valid = (0.0..=1.0).contains(&p);
            for (what, build) in builders {
                match build(FaultPlan::new(1), p) {
                    Ok(plan) => assert!(valid, "{what} accepted {p}: {plan:?}"),
                    Err(e) => {
                        assert!(!valid, "{what} rejected in-range {p}: {e}");
                        // NaN != NaN, so compare the payload bitwise.
                        match &e {
                            FaultPlanError::ProbabilityOutOfRange { what: w, value } => {
                                assert_eq!(*w, what);
                                assert_eq!(value.to_bits(), p.to_bits());
                            }
                            other => panic!("{what}: unexpected error {other:?}"),
                        }
                        assert!(
                            e.to_string().contains("probability out of range"),
                            "typed error must keep the legacy panic phrase: {e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn time_validation_is_exhaustive_over_sampled_inputs() {
        type TimeBuilder = fn(FaultPlan, f64) -> Result<FaultPlan, FaultPlanError>;
        let builders: [(&str, TimeBuilder); 5] = [
            ("delay", |pl, t| pl.try_with_delay(0.1, t)),
            ("kill time", |pl, t| pl.try_with_kill(0, t)),
            ("crash time", |pl, t| pl.try_with_crash(0, t)),
            ("timeout", |pl, t| pl.try_with_retry(t, 3)),
            ("timeout", |pl, t| pl.try_with_detect_timeout(t)),
        ];
        for i in 0..2000u64 {
            let t = sample_f64(i.wrapping_mul(31));
            let valid = t >= 0.0; // +inf is a legal (if silly) time
            for (what, build) in builders {
                match build(FaultPlan::new(1), t) {
                    Ok(_) => assert!(valid, "{what} accepted {t}"),
                    Err(e) => {
                        assert!(!valid, "{what} rejected non-negative {t}: {e}");
                        match &e {
                            FaultPlanError::NegativeTime { what: w, value } => {
                                assert_eq!(*w, what);
                                assert_eq!(value.to_bits(), t.to_bits());
                            }
                            other => panic!("{what}: unexpected error {other:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn partition_builder_validates_structure() {
        let two = || vec![vec![0, 1], vec![2, 3]];
        assert!(FaultPlan::new(0)
            .try_with_partition(two(), 0.1, 0.5)
            .is_ok());
        // Degenerate intervals and groups are typed errors.
        assert_eq!(
            FaultPlan::new(0)
                .try_with_partition(two(), 0.5, 0.5)
                .unwrap_err(),
            FaultPlanError::EmptyInterval {
                from: 0.5,
                until: 0.5
            }
        );
        assert!(matches!(
            FaultPlan::new(0).try_with_partition(two(), -0.1, 0.5),
            Err(FaultPlanError::NegativeTime { .. })
        ));
        assert!(matches!(
            FaultPlan::new(0).try_with_partition(two(), f64::NAN, 0.5),
            Err(FaultPlanError::NegativeTime { .. })
        ));
        assert!(matches!(
            FaultPlan::new(0).try_with_partition(two(), 0.1, f64::NAN),
            Err(FaultPlanError::EmptyInterval { .. })
        ));
        assert_eq!(
            FaultPlan::new(0)
                .try_with_partition(vec![vec![0, 1]], 0.1, 0.5)
                .unwrap_err(),
            FaultPlanError::DegeneratePartition
        );
        assert_eq!(
            FaultPlan::new(0)
                .try_with_partition(vec![vec![0], vec![]], 0.1, 0.5)
                .unwrap_err(),
            FaultPlanError::DegeneratePartition
        );
        assert_eq!(
            FaultPlan::new(0)
                .try_with_partition(vec![vec![0, 1], vec![1, 2]], 0.1, 0.5)
                .unwrap_err(),
            FaultPlanError::OverlappingGroups(1)
        );
        assert_eq!(
            FaultPlan::new(0).try_with_link_drop(3, 3, 0.5).unwrap_err(),
            FaultPlanError::SelfLink(3)
        );
    }

    #[test]
    #[should_panic(expected = "partition interval")]
    fn panicking_partition_builder_reports_the_typed_error() {
        let _ = FaultPlan::new(0).with_partition(vec![vec![0], vec![1]], 1.0, 0.5);
    }

    #[test]
    fn cut_is_windowed_and_group_structured() {
        let plan = FaultPlan::new(0).with_partition(vec![vec![0, 1], vec![2, 3]], 0.5, 1.0);
        assert!(plan.has_partitions());
        assert!(!plan.message_faults(), "partitions are not message faults");
        assert!(!plan.is_noop());
        // Cross-group links cut inside the window, both directions.
        assert!(plan.cut(0, 2, 7, 0.5));
        assert!(plan.cut(2, 0, 7, 0.75));
        // Intra-group, floater, control, and out-of-window traffic passes.
        assert!(!plan.cut(0, 1, 7, 0.75));
        assert!(!plan.cut(0, 4, 7, 0.75), "floaters stay reachable");
        assert!(!plan.cut(4, 2, 7, 0.75));
        assert!(!plan.cut(0, 2, -3, 0.75), "control plane is never cut");
        assert!(!plan.cut(0, 2, 7, 0.49));
        assert!(!plan.cut(0, 2, 7, 1.0), "window end is exclusive");
    }

    #[test]
    fn quorum_rule_suspects_the_minority() {
        let plan = FaultPlan::new(0).with_partition(vec![vec![0, 1, 2], vec![3, 4]], 0.0, 1.0);
        let all_live = vec![true; 5];
        // Majority group {0,1,2} survives; minority {3,4} is suspected.
        assert_eq!(
            plan.suspects(0.5, &all_live),
            vec![false, false, false, true, true]
        );
        // Outside the window nobody is suspected.
        assert_eq!(plan.suspects(1.5, &all_live), vec![false; 5]);
        // Deaths shift the balance: with 0 and 1 dead, {2} vs {3,4} makes
        // the second group the majority.
        let live = vec![false, false, true, true, true];
        assert_eq!(
            plan.suspects(0.5, &live),
            vec![false, false, true, false, false]
        );
    }

    #[test]
    fn no_quorum_suspects_every_listed_rank() {
        // Equal halves, no floaters: neither side can claim a strict
        // majority, so both park (split-brain prevention).
        let plan = FaultPlan::new(0).with_partition(vec![vec![0, 1], vec![2, 3]], 0.0, 1.0);
        assert_eq!(plan.suspects(0.5, &[true; 4]), vec![true; 4]);
        // A floater tips nothing (both sides tie at 3 of 5... majority
        // needs strict > half): 2+1=3 of 5 live is a strict majority for
        // the *larger* group only on member-count tie-breaks — here both
        // groups tie, so the lower-indexed one wins.
        let plan5 = FaultPlan::new(0).with_partition(vec![vec![0, 1], vec![2, 3]], 0.0, 1.0);
        assert_eq!(
            plan5.suspects(0.5, &[true; 5]),
            vec![false, false, true, true, false]
        );
    }

    #[test]
    fn link_drop_decisions_are_link_local_and_calibrated() {
        let plan = FaultPlan::new(77).with_link_drop(2, 5, 0.3);
        assert!(plan.message_faults());
        let n = 10_000;
        let hit = (0..n)
            .filter(|&s| plan.decide(2, 5, 9, s, 0).link_dropped)
            .count();
        let rate = hit as f64 / n as f64;
        assert!(
            (0.27..0.33).contains(&rate),
            "observed link-drop rate {rate}"
        );
        // Other links — including the reverse direction — are untouched.
        for s in 0..200 {
            assert!(!plan.decide(5, 2, 9, s, 0).link_dropped);
            assert!(!plan.decide(2, 4, 9, s, 0).link_dropped);
            assert!(!plan.decide(2, 5, -9, s, 0).link_dropped);
        }
        // A zero-probability link drop activates nothing.
        assert!(!FaultPlan::new(1).with_link_drop(0, 1, 0.0).message_faults());
    }

    #[test]
    fn memory_corruption_is_pure_rank_local_and_calibrated() {
        let plan = FaultPlan::new(123).with_memory_corrupt(2, 0.2);
        assert!(plan.has_memory_corruption());
        assert!(!plan.is_noop());
        assert!(
            !plan.message_faults(),
            "memory corruption is not a message fault"
        );
        let n = 10_000u64;
        let mut hit = 0usize;
        for i in 0..n {
            let d = plan.memory_corrupts(2, 0, MemRegion::Owned, i);
            assert_eq!(d, plan.memory_corrupts(2, 0, MemRegion::Owned, i));
            hit += d as usize;
        }
        let rate = hit as f64 / n as f64;
        assert!(
            (0.17..0.23).contains(&rate),
            "observed memory-corrupt rate {rate}"
        );
        // Only the scheduled rank is hit.
        for i in 0..500 {
            assert!(!plan.memory_corrupts(0, 0, MemRegion::Owned, i));
            assert!(!plan.memory_corrupts(3, 0, MemRegion::Shadow, i));
        }
        assert_eq!(plan.memory_corrupt_prob(2), 0.2);
        assert_eq!(plan.memory_corrupt_prob(0), 0.0);
    }

    #[test]
    fn memory_corruption_decisions_depend_on_epoch_and_region() {
        let plan = FaultPlan::new(5).with_memory_corrupt(1, 0.5);
        let key = |epoch, region| -> Vec<bool> {
            (0..128)
                .map(|i| plan.memory_corrupts(1, epoch, region, i))
                .collect()
        };
        assert_ne!(
            key(0, MemRegion::Owned),
            key(1, MemRegion::Owned),
            "a later sweep must make fresh decisions (replay convergence)"
        );
        assert_ne!(key(0, MemRegion::Owned), key(0, MemRegion::Shadow));
        assert_ne!(key(0, MemRegion::Shadow), key(0, MemRegion::Replica));
        // The bit choice is pure and in range.
        for i in 0..200 {
            let b = plan.memory_corrupt_bit(1, 3, MemRegion::Replica, i, 64);
            assert_eq!(b, plan.memory_corrupt_bit(1, 3, MemRegion::Replica, i, 64));
            assert!(b < 64);
        }
    }

    #[test]
    fn memory_corruption_builder_replaces_and_validates() {
        let plan = FaultPlan::new(0)
            .with_memory_corrupt(1, 0.3)
            .with_memory_corrupt(1, 0.6);
        assert_eq!(plan.memory_corrupt.len(), 1);
        assert_eq!(plan.memory_corrupt_prob(1), 0.6);
        // A zero-probability entry activates nothing.
        let zero = FaultPlan::new(0).with_memory_corrupt(0, 0.0);
        assert!(!zero.has_memory_corruption());
        assert!(zero.is_noop());
        assert!(matches!(
            FaultPlan::new(0).try_with_memory_corrupt(0, 1.5),
            Err(FaultPlanError::ProbabilityOutOfRange { .. })
        ));
    }

    #[test]
    fn region_scoped_memory_corruption_overrides_the_blanket() {
        // Replica-only corruption: live regions stay pristine.
        let plan = FaultPlan::new(9).with_memory_corrupt_in(2, MemRegion::Replica, 1.0);
        assert!(plan.has_memory_corruption());
        assert_eq!(plan.memory_corrupt_prob(2), 1.0, "gate sees the max");
        assert_eq!(plan.memory_corrupt_prob_in(2, MemRegion::Replica), 1.0);
        assert_eq!(plan.memory_corrupt_prob_in(2, MemRegion::Owned), 0.0);
        for i in 0..200 {
            assert!(plan.memory_corrupts(2, 0, MemRegion::Replica, i));
            assert!(!plan.memory_corrupts(2, 0, MemRegion::Owned, i));
            assert!(!plan.memory_corrupts(2, 0, MemRegion::Shadow, i));
            assert!(!plan.memory_corrupts(1, 0, MemRegion::Replica, i));
        }
        // An override composes with (and wins over) the blanket rate.
        let mixed = FaultPlan::new(9)
            .with_memory_corrupt(2, 0.5)
            .with_memory_corrupt_in(2, MemRegion::Shadow, 0.0);
        assert_eq!(mixed.memory_corrupt_prob_in(2, MemRegion::Owned), 0.5);
        assert_eq!(mixed.memory_corrupt_prob_in(2, MemRegion::Shadow), 0.0);
        for i in 0..500 {
            assert!(!mixed.memory_corrupts(2, 0, MemRegion::Shadow, i));
        }
        // Re-registering the same (rank, region) replaces, not accumulates.
        let re = FaultPlan::new(0)
            .with_memory_corrupt_in(1, MemRegion::Owned, 0.3)
            .with_memory_corrupt_in(1, MemRegion::Owned, 0.7);
        assert_eq!(re.memory_corrupt_regions.len(), 1);
        assert_eq!(re.memory_corrupt_prob_in(1, MemRegion::Owned), 0.7);
        assert!(matches!(
            FaultPlan::new(0).try_with_memory_corrupt_in(0, MemRegion::Owned, -0.1),
            Err(FaultPlanError::ProbabilityOutOfRange { .. })
        ));
    }

    #[test]
    fn disk_fault_decisions_are_pure_rank_local_and_calibrated() {
        let plan = FaultPlan::new(321).with_disk_fault(1, DiskFault::TransientError, 0.2);
        assert!(plan.has_disk_faults());
        assert!(!plan.is_noop());
        assert!(!plan.message_faults(), "disk faults are not message faults");
        assert!(!plan.has_memory_corruption());
        let n = 10_000u64;
        let mut hit = 0usize;
        for page in 0..n {
            let d = plan.disk_fault_hits(1, DiskFault::TransientError, page, 0, 3, 0);
            assert_eq!(
                d,
                plan.disk_fault_hits(1, DiskFault::TransientError, page, 0, 3, 0)
            );
            hit += d as usize;
        }
        let rate = hit as f64 / n as f64;
        assert!(
            (0.17..0.23).contains(&rate),
            "observed disk-fault rate {rate}"
        );
        // Only the scheduled rank and kind are hit.
        for page in 0..500 {
            assert!(!plan.disk_fault_hits(0, DiskFault::TransientError, page, 0, 3, 0));
            assert!(!plan.disk_fault_hits(1, DiskFault::TornWrite, page, 0, 3, 0));
        }
        assert_eq!(plan.disk_fault_prob(1, DiskFault::TransientError), 0.2);
        assert_eq!(plan.disk_fault_prob(1, DiskFault::ReadRot), 0.0);
    }

    #[test]
    fn disk_fault_decisions_depend_on_the_full_identity() {
        let plan = FaultPlan::new(6).with_disk_fault(0, DiskFault::ReadRot, 0.5);
        let key = |slot: u64, version: u64, attempt: u64| -> Vec<bool> {
            (0..128)
                .map(|p| plan.disk_fault_hits(0, DiskFault::ReadRot, p, slot, version, attempt))
                .collect()
        };
        assert_ne!(key(0, 1, 0), key(1, 1, 0), "slot must matter");
        assert_ne!(key(0, 1, 0), key(0, 2, 0), "version must matter");
        assert_ne!(key(0, 1, 0), key(0, 1, 1), "attempt must matter");
        // The bit choice is pure and in range.
        for p in 0..200 {
            let b = plan.disk_fault_bit(0, DiskFault::ReadRot, p, 1, 4, 0, 512);
            assert_eq!(
                b,
                plan.disk_fault_bit(0, DiskFault::ReadRot, p, 1, 4, 0, 512)
            );
            assert!(b < 512);
        }
    }

    #[test]
    fn disk_fault_builder_replaces_and_validates() {
        let plan = FaultPlan::new(0)
            .with_disk_fault(2, DiskFault::Full, 0.3)
            .with_disk_fault(2, DiskFault::Full, 0.6)
            .with_disk_fault(2, DiskFault::TornWrite, 0.1);
        assert_eq!(plan.disk_faults.len(), 2, "same (rank, kind) replaces");
        assert_eq!(plan.disk_fault_prob(2, DiskFault::Full), 0.6);
        assert_eq!(plan.disk_fault_prob(2, DiskFault::TornWrite), 0.1);
        // A zero-probability entry activates nothing.
        let zero = FaultPlan::new(0).with_disk_fault(0, DiskFault::ReadRot, 0.0);
        assert!(!zero.has_disk_faults());
        assert!(zero.is_noop());
        assert!(matches!(
            FaultPlan::new(0).try_with_disk_fault(0, DiskFault::Full, -0.5),
            Err(FaultPlanError::ProbabilityOutOfRange { .. })
        ));
    }

    #[test]
    fn crash_lookup_and_replacement() {
        let plan = FaultPlan::new(0).with_crash(3, 0.25).with_crash(3, 0.5);
        assert_eq!(plan.crash_time(3), Some(0.5));
        assert_eq!(plan.crash_time(0), None);
        assert_eq!(plan.crashes.len(), 1);
        assert!(plan.has_crashes());
        assert!(!plan.has_kills());
        assert!(!plan.is_noop());
        assert!(!plan.message_faults());
    }
}
