//! Deterministic fault injection ("chaos mode") for the simulated network.
//!
//! A [`FaultPlan`] describes which messages misbehave and which ranks are
//! slow or doomed. Every per-message decision is a pure hash of the
//! message's identity — `(seed, src, dest, tag, sequence number, attempt)`
//! — via [`mix64`], **never** a shared mutable RNG. That makes the plan
//! independent of thread interleaving: the same seed and plan produce the
//! same faults on every run, no matter how the OS schedules the rank
//! threads. All fault costs (delays, retry timeouts, straggler slowdowns)
//! are charged through the virtual clock, so a chaos run is exactly as
//! reproducible as a clean one.
//!
//! Faults apply only to *data-plane* traffic (non-negative user tags).
//! Collectives use the negative tag space and model a reliable control
//! plane: dropping a broadcast fragment would deadlock the binomial tree,
//! which is a failure mode of the transport model, not of the application
//! under test.

use ic2_rng::mix64;

/// What the fault plan decided for one transmission attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// The message is silently lost (sender is still charged for sending).
    pub dropped: bool,
    /// The message arrives [`FaultPlan::delay_seconds`] late.
    pub delayed: bool,
    /// A second, identical copy is delivered.
    pub duplicated: bool,
    /// The message is delivered at the *front* of the receiver's queue,
    /// overtaking earlier traffic.
    pub reordered: bool,
    /// One bit of the payload is flipped in flight. The frame checksum no
    /// longer matches, so the receiver detects and discards it.
    pub corrupted: bool,
    /// The payload is shortened in flight. Also caught by the checksum.
    pub truncated: bool,
}

impl FaultDecision {
    /// Does this attempt arrive damaged (checksum will fail at the receiver)?
    pub fn mangled(&self) -> bool {
        self.corrupted || self.truncated
    }
}

/// A seeded, deterministic schedule of network and process faults.
///
/// The default plan is a no-op. Build one with the `with_*` methods:
///
/// ```
/// use mpisim::FaultPlan;
/// let plan = FaultPlan::new(42)
///     .with_drop(0.05)
///     .with_delay(0.10, 2e-3)
///     .with_straggler(1, 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every per-message hash decision.
    pub seed: u64,
    /// Probability a data message is dropped.
    pub drop_prob: f64,
    /// Probability a data message is delayed.
    pub delay_prob: f64,
    /// Extra virtual latency added to a delayed message, in seconds.
    pub delay_seconds: f64,
    /// Probability a data message is delivered twice.
    pub dup_prob: f64,
    /// Probability a data message overtakes queued traffic at the receiver.
    pub reorder_prob: f64,
    /// Probability a data message has one payload bit flipped in flight.
    pub corrupt_prob: f64,
    /// Probability a data message has its payload shortened in flight.
    pub truncate_prob: f64,
    /// `(rank, factor)`: rank's compute time is multiplied by `factor`.
    pub stragglers: Vec<(usize, f64)>,
    /// `(rank, virtual_time)`: rank fail-stops once its clock passes the
    /// given virtual time (cooperative fail-stop — the platform detects it
    /// at the next iteration boundary and evacuates).
    pub kills: Vec<(usize, f64)>,
    /// `(rank, virtual_time)`: rank *crashes* once its clock passes the
    /// given virtual time — uncooperative death. The rank dies instantly at
    /// its next substrate operation: its mailbox is sealed, anything still
    /// queued for it is dropped, nothing it would have sent after the crash
    /// point is ever sent, and it does not drain or evacuate. Survivors
    /// learn of the death through the control plane's failure detector
    /// ([`crate::Rank::ctl_exchange`]) and must recover on their own.
    pub crashes: Vec<(usize, f64)>,
    /// Virtual seconds a reliable send waits for a (simulated) ack before
    /// retransmitting.
    pub retry_timeout: f64,
    /// Retransmissions a reliable send attempts beyond the first try.
    pub max_retries: u32,
    /// Virtual seconds a receiver waits out before concluding that a
    /// crashed peer will never send (charged to the clock each time a
    /// receive is abandoned on a dead peer).
    pub detect_timeout: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay_seconds: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            stragglers: Vec::new(),
            kills: Vec::new(),
            crashes: Vec::new(),
            retry_timeout: 1e-3,
            max_retries: 8,
            detect_timeout: 5e-3,
        }
    }
}

impl FaultPlan {
    /// A no-op plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Drop each data message with probability `p`.
    pub fn with_drop(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_prob = p;
        self
    }

    /// Delay each data message with probability `p` by `seconds` of
    /// virtual latency.
    pub fn with_delay(mut self, p: f64, seconds: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        assert!(seconds >= 0.0, "delay must be non-negative");
        self.delay_prob = p;
        self.delay_seconds = seconds;
        self
    }

    /// Duplicate each data message with probability `p`.
    pub fn with_dup(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.dup_prob = p;
        self
    }

    /// Let each data message overtake queued traffic with probability `p`.
    pub fn with_reorder(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.reorder_prob = p;
        self
    }

    /// Flip one payload bit of each data message with probability `p`.
    /// The damage is caught by the frame checksum at the receiver, which
    /// NACKs the frame; the sender retransmits with exponential backoff.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.corrupt_prob = p;
        self
    }

    /// Shorten each data message's payload with probability `p`. Like
    /// corruption, truncation is caught by the frame checksum and repaired
    /// by retransmission.
    pub fn with_truncate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.truncate_prob = p;
        self
    }

    /// Multiply `rank`'s compute time by `factor` (a straggler; `factor`
    /// below 1.0 makes it a speed demon, which is also legal).
    pub fn with_straggler(mut self, rank: usize, factor: f64) -> Self {
        assert!(factor > 0.0, "compute factor must be positive");
        self.stragglers.retain(|&(r, _)| r != rank);
        self.stragglers.push((rank, factor));
        self
    }

    /// Fail-stop `rank` once its virtual clock reaches `at`.
    pub fn with_kill(mut self, rank: usize, at: f64) -> Self {
        assert!(at >= 0.0, "kill time must be non-negative");
        self.kills.retain(|&(r, _)| r != rank);
        self.kills.push((rank, at));
        self
    }

    /// Crash `rank` (uncooperatively) once its virtual clock reaches `at`:
    /// the rank dies at its next substrate operation without draining or
    /// handing anything off. Survivors must detect the death and recover.
    pub fn with_crash(mut self, rank: usize, at: f64) -> Self {
        assert!(at >= 0.0, "crash time must be non-negative");
        self.crashes.retain(|&(r, _)| r != rank);
        self.crashes.push((rank, at));
        self
    }

    /// Tune the reliable-send retransmission policy.
    pub fn with_retry(mut self, timeout: f64, max_retries: u32) -> Self {
        assert!(timeout >= 0.0, "timeout must be non-negative");
        self.retry_timeout = timeout;
        self.max_retries = max_retries;
        self
    }

    /// Tune the failure detector's per-receive abandonment timeout.
    pub fn with_detect_timeout(mut self, timeout: f64) -> Self {
        assert!(timeout >= 0.0, "timeout must be non-negative");
        self.detect_timeout = timeout;
        self
    }

    /// Does this plan perturb messages at all?
    pub fn message_faults(&self) -> bool {
        self.drop_prob > 0.0
            || self.delay_prob > 0.0
            || self.dup_prob > 0.0
            || self.reorder_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.truncate_prob > 0.0
    }

    /// Does this plan do anything at all?
    pub fn is_noop(&self) -> bool {
        !self.message_faults()
            && self.stragglers.is_empty()
            && self.kills.is_empty()
            && self.crashes.is_empty()
    }

    /// Compute-time multiplier for `rank` (1.0 unless it straggles).
    pub fn compute_factor(&self, rank: usize) -> f64 {
        self.stragglers
            .iter()
            .find(|&&(r, _)| r == rank)
            .map_or(1.0, |&(_, f)| f)
    }

    /// Virtual time at which `rank` fail-stops, if scheduled to.
    pub fn kill_time(&self, rank: usize) -> Option<f64> {
        self.kills
            .iter()
            .find(|&&(r, _)| r == rank)
            .map(|&(_, t)| t)
    }

    /// Whether any rank is scheduled to die.
    pub fn has_kills(&self) -> bool {
        !self.kills.is_empty()
    }

    /// Virtual time at which `rank` crashes uncooperatively, if scheduled.
    pub fn crash_time(&self, rank: usize) -> Option<f64> {
        self.crashes
            .iter()
            .find(|&&(r, _)| r == rank)
            .map(|&(_, t)| t)
    }

    /// Whether any rank is scheduled to crash uncooperatively.
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty()
    }

    /// The fate of transmission `attempt` of the message identified by
    /// `(src, dest, tag, seq)`. Pure function of the plan and the message
    /// identity; collective traffic (`tag < 0`) is never faulted.
    pub fn decide(
        &self,
        src: usize,
        dest: usize,
        tag: i64,
        seq: u64,
        attempt: u32,
    ) -> FaultDecision {
        if tag < 0 || !self.message_faults() {
            return FaultDecision::default();
        }
        let mut h = mix64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        h = mix64(h ^ src as u64);
        h = mix64(h ^ dest as u64);
        h = mix64(h ^ tag as u64);
        h = mix64(h ^ seq);
        h = mix64(h ^ attempt as u64);
        FaultDecision {
            dropped: unit(mix64(h ^ 1)) < self.drop_prob,
            delayed: unit(mix64(h ^ 2)) < self.delay_prob,
            duplicated: unit(mix64(h ^ 3)) < self.dup_prob,
            reordered: unit(mix64(h ^ 4)) < self.reorder_prob,
            corrupted: unit(mix64(h ^ 5)) < self.corrupt_prob,
            truncated: unit(mix64(h ^ 6)) < self.truncate_prob,
        }
    }

    /// Deterministically damage `bytes` in place according to `decision`.
    ///
    /// The mangle parameters (which bit flips, how much is cut) are a pure
    /// hash of the same message identity that produced the decision, so a
    /// mangled frame is byte-identical on every run. Empty payloads cannot
    /// be damaged (there is nothing to flip or cut) — callers should treat
    /// an empty payload's decision as clean.
    #[allow(clippy::too_many_arguments)]
    pub fn mangle(
        &self,
        src: usize,
        dest: usize,
        tag: i64,
        seq: u64,
        attempt: u32,
        decision: FaultDecision,
        bytes: &mut Vec<u8>,
    ) {
        if bytes.is_empty() || !decision.mangled() {
            return;
        }
        let mut h = mix64(self.seed ^ 0x5851_f42d_4c95_7f2d);
        h = mix64(h ^ src as u64);
        h = mix64(h ^ dest as u64);
        h = mix64(h ^ tag as u64);
        h = mix64(h ^ seq);
        h = mix64(h ^ attempt as u64);
        if decision.truncated {
            // Keep a strict prefix: anywhere from 0 to len-1 bytes survive.
            let keep = (mix64(h ^ 7) % bytes.len() as u64) as usize;
            bytes.truncate(keep);
        }
        if decision.corrupted && !bytes.is_empty() {
            let bit = mix64(h ^ 8) % (bytes.len() as u64 * 8);
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
    }
}

/// Map a hash to a uniform float in [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        assert!(!plan.message_faults());
        assert_eq!(plan.decide(0, 1, 5, 0, 0), FaultDecision::default());
        assert_eq!(plan.compute_factor(3), 1.0);
        assert_eq!(plan.kill_time(3), None);
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(7).with_drop(0.3).with_delay(0.3, 1e-3);
        for seq in 0..100 {
            assert_eq!(plan.decide(0, 1, 5, seq, 0), plan.decide(0, 1, 5, seq, 0));
        }
    }

    #[test]
    fn decisions_depend_on_identity() {
        let plan = FaultPlan::new(7).with_drop(0.5);
        let base: Vec<bool> = (0..64)
            .map(|s| plan.decide(0, 1, 5, s, 0).dropped)
            .collect();
        let other_src: Vec<bool> = (0..64)
            .map(|s| plan.decide(2, 1, 5, s, 0).dropped)
            .collect();
        let other_attempt: Vec<bool> = (0..64)
            .map(|s| plan.decide(0, 1, 5, s, 1).dropped)
            .collect();
        assert_ne!(base, other_src);
        assert_ne!(base, other_attempt);
    }

    #[test]
    fn drop_rate_is_roughly_calibrated() {
        let plan = FaultPlan::new(99).with_drop(0.2);
        let n = 10_000;
        let dropped = (0..n)
            .filter(|&s| plan.decide(0, 1, 5, s, 0).dropped)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((0.17..0.23).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn collective_tags_are_never_faulted() {
        let plan = FaultPlan::new(1)
            .with_drop(1.0)
            .with_dup(1.0)
            .with_reorder(1.0);
        for tag in [-1i64, -2, -1000] {
            assert_eq!(plan.decide(0, 1, tag, 0, 0), FaultDecision::default());
        }
        // While a user tag at p=1.0 always drops.
        assert!(plan.decide(0, 1, 0, 0, 0).dropped);
    }

    #[test]
    fn straggler_and_kill_lookup() {
        let plan = FaultPlan::new(0).with_straggler(2, 3.0).with_kill(1, 0.5);
        assert_eq!(plan.compute_factor(2), 3.0);
        assert_eq!(plan.compute_factor(0), 1.0);
        assert_eq!(plan.kill_time(1), Some(0.5));
        assert_eq!(plan.kill_time(2), None);
        assert!(plan.has_kills());
        assert!(!plan.is_noop());
        assert!(!plan.message_faults());
    }

    #[test]
    fn builders_replace_existing_entries() {
        let plan = FaultPlan::new(0)
            .with_straggler(2, 3.0)
            .with_straggler(2, 5.0);
        assert_eq!(plan.compute_factor(2), 5.0);
        assert_eq!(plan.stragglers.len(), 1);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        let _ = FaultPlan::new(0).with_drop(1.5);
    }

    #[test]
    fn corruption_decisions_are_pure_and_calibrated() {
        let plan = FaultPlan::new(4242).with_corrupt(0.2).with_truncate(0.1);
        assert!(plan.message_faults());
        let n = 10_000;
        let (mut corrupted, mut truncated) = (0usize, 0usize);
        for s in 0..n {
            let d = plan.decide(0, 1, 5, s, 0);
            assert_eq!(d, plan.decide(0, 1, 5, s, 0));
            corrupted += d.corrupted as usize;
            truncated += d.truncated as usize;
        }
        let cr = corrupted as f64 / n as f64;
        let tr = truncated as f64 / n as f64;
        assert!((0.17..0.23).contains(&cr), "observed corrupt rate {cr}");
        assert!((0.08..0.12).contains(&tr), "observed truncate rate {tr}");
        // Control-plane traffic is never damaged.
        let sure = FaultPlan::new(1).with_corrupt(1.0).with_truncate(1.0);
        assert_eq!(sure.decide(0, 1, -3, 0, 0), FaultDecision::default());
    }

    #[test]
    fn mangle_is_deterministic_and_always_changes_the_payload() {
        let plan = FaultPlan::new(9).with_corrupt(1.0).with_truncate(0.5);
        for seq in 0..200u64 {
            let original: Vec<u8> = (0u8..32)
                .map(|i| i.wrapping_mul(7).wrapping_add(seq as u8) ^ 0x5a)
                .collect();
            let d = plan.decide(2, 3, 11, seq, 0);
            assert!(d.corrupted);
            let mut a = original.clone();
            let mut b = original.clone();
            plan.mangle(2, 3, 11, seq, 0, d, &mut a);
            plan.mangle(2, 3, 11, seq, 0, d, &mut b);
            assert_eq!(a, b, "mangle must be pure");
            assert_ne!(a, original, "a mangled frame must differ");
            if d.truncated {
                assert!(a.len() < original.len());
            }
        }
        // Empty payloads are left alone.
        let mut empty: Vec<u8> = Vec::new();
        let d = plan.decide(0, 1, 5, 0, 0);
        plan.mangle(0, 1, 5, 0, 0, d, &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn crash_lookup_and_replacement() {
        let plan = FaultPlan::new(0).with_crash(3, 0.25).with_crash(3, 0.5);
        assert_eq!(plan.crash_time(3), Some(0.5));
        assert_eq!(plan.crash_time(0), None);
        assert_eq!(plan.crashes.len(), 1);
        assert!(plan.has_crashes());
        assert!(!plan.has_kills());
        assert!(!plan.is_noop());
        assert!(!plan.message_faults());
    }
}
