//! Shared, immutable message payload buffers.
//!
//! Every envelope used to own its payload as a `Vec<u8>`, so the
//! retransmit loop, fault-injected duplicates, `bcast` fan-out and `gather`
//! forwarding each paid a full byte copy per hop or attempt. [`Payload`]
//! replaces that with an in-tree `Arc<[u8]>`: one allocation per encoded
//! message, shared by reference count everywhere downstream. The pristine
//! buffer is immutable by construction — fault-plan damage is applied to a
//! private copy at the delivery site (copy-on-write), so a damaged delivery
//! can never leak into a clean retransmission of the same frame.
//!
//! Construction and cloning are instrumented with process-global counters
//! ([`payload_metrics`]) so tests can assert the zero-copy properties
//! directly: a retransmit storm must not allocate new payload bytes, and a
//! broadcast tree must allocate exactly once at the root.

use crate::wire::Wire;
use std::cell::RefCell;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static SHARED_CLONES: AtomicU64 = AtomicU64::new(0);

/// An immutable, reference-counted message payload.
///
/// Cloning is a reference-count bump (counted in
/// [`PayloadMetrics::shared_clones`]), never a byte copy. Constructing one
/// — from a `Vec<u8>`, a slice, or [`encode_payload`] — is the only
/// operation that allocates (counted in [`PayloadMetrics::allocs`]).
#[derive(Debug)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl Clone for Payload {
    fn clone(&self) -> Self {
        SHARED_CLONES.fetch_add(1, Ordering::Relaxed);
        Payload(Arc::clone(&self.0))
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Payload(Arc::from(bytes))
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Payload(Arc::from(bytes))
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Payload {}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.0[..] == other[..]
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

/// Snapshot of the process-global payload-buffer counters — the test hook
/// that makes zero-copy a checked property instead of a hope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PayloadMetrics {
    /// Payload buffers allocated (one per encoded message, plus one per
    /// fault-damaged delivery copy).
    pub allocs: u64,
    /// Total bytes across those allocations.
    pub alloc_bytes: u64,
    /// Reference-count clones — shares of an existing buffer that would
    /// each have been a full byte copy under owned-`Vec` envelopes.
    pub shared_clones: u64,
}

/// Read the process-global payload counters. They accumulate across every
/// world in the process; tests that assert on them must [`
/// reset_payload_metrics`] first and serialise against other payload
/// traffic (run them in a dedicated test binary).
pub fn payload_metrics() -> PayloadMetrics {
    PayloadMetrics {
        allocs: ALLOCS.load(Ordering::Relaxed),
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        shared_clones: SHARED_CLONES.load(Ordering::Relaxed),
    }
}

/// Zero the process-global payload counters.
pub fn reset_payload_metrics() {
    ALLOCS.store(0, Ordering::Relaxed);
    ALLOC_BYTES.store(0, Ordering::Relaxed);
    SHARED_CLONES.store(0, Ordering::Relaxed);
}

thread_local! {
    /// Reusable scratch buffer for wire framing. Encoding into a fresh
    /// `Vec` pays growth reallocations on every message; the pool keeps one
    /// warmed-up buffer per rank thread, so steady-state framing does a
    /// single exact-size allocation (the `Arc<[u8]>` itself) per message.
    static ENCODE_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Encode `value` into a shared payload through the thread-local
/// encode-buffer pool.
pub fn encode_payload<T: Wire>(value: &T) -> Payload {
    ENCODE_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.clear();
        value.encode(&mut buf);
        Payload::from(&buf[..])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process-global, so these tests assert relative
    // deltas only — they stay correct whatever runs concurrently.

    #[test]
    fn clone_shares_the_allocation() {
        let p = Payload::from(vec![1u8, 2, 3]);
        let before = payload_metrics();
        let q = p.clone();
        let r = q.clone();
        let after = payload_metrics();
        assert_eq!(after.allocs, before.allocs, "clones must not allocate");
        assert_eq!(after.shared_clones, before.shared_clones + 2);
        assert_eq!(&p[..], &r[..]);
        assert!(Arc::ptr_eq(&p.0, &r.0), "clones share one buffer");
    }

    #[test]
    fn construction_counts_bytes() {
        let before = payload_metrics();
        let p = Payload::from(vec![0u8; 100]);
        let after = payload_metrics();
        assert_eq!(p.len(), 100);
        assert!(!p.is_empty());
        assert_eq!(after.allocs, before.allocs + 1);
        assert_eq!(after.alloc_bytes, before.alloc_bytes + 100);
    }

    #[test]
    fn encode_payload_round_trips() {
        let v: Vec<u32> = vec![7, 8, 9];
        let p = encode_payload(&v);
        assert_eq!(&p[..], &v.to_bytes()[..]);
        let back = Vec::<u32>::from_bytes(&p).unwrap();
        assert_eq!(back, v);
        // The pooled buffer is reused: a second encode is identical.
        let q = encode_payload(&v);
        assert_eq!(p, q);
    }

    #[test]
    fn empty_payload() {
        let p = Payload::from(Vec::new());
        assert!(p.is_empty());
        assert_eq!(p.as_slice(), &[] as &[u8]);
    }
}
