//! Nonblocking-operation handles (`MPI_Request` analogues).

use crate::comm::Rank;
use crate::mailbox::Pattern;
use crate::wire::Wire;
use std::marker::PhantomData;

/// Handle for a nonblocking send (`MPI_Isend`).
///
/// Sends in this substrate are buffered — the payload is copied into the
/// destination mailbox at post time — so the request is complete on
/// creation. `wait` exists so code can be written exactly like its MPI
/// counterpart.
#[derive(Debug)]
#[must_use = "an isend should be waited on (or explicitly dropped) like an MPI_Request"]
pub struct SendRequest {
    pub(crate) _private: (),
}

impl SendRequest {
    /// Complete the send. Always immediate.
    pub fn wait(self, _rank: &Rank) {}
}

/// Handle for a nonblocking receive (`MPI_Irecv`) of a `T`.
///
/// The match pattern is captured at post time; [`RecvRequest::wait`]
/// blocks until a matching message exists, then charges the receive
/// overhead at the *current* clock — so compute performed between posting
/// and waiting genuinely overlaps communication, as in the thesis's
/// Figure 8a variant.
#[derive(Debug)]
#[must_use = "an irecv must be waited on to obtain the message"]
pub struct RecvRequest<T: Wire> {
    pub(crate) pattern: Pattern,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T: Wire> RecvRequest<T> {
    /// Block until the matching message arrives and decode it.
    pub fn wait(self, rank: &Rank) -> T {
        rank.complete_recv(self.pattern)
    }

    /// Like [`wait`](Self::wait), but also reports the sending rank
    /// (useful with [`crate::ANY_SOURCE`]).
    pub fn wait_with_source(self, rank: &Rank) -> (usize, T) {
        rank.complete_recv_with_source(self.pattern)
    }

    /// Nonblocking completion test (`MPI_Test`): would `wait` return
    /// without blocking?
    pub fn test(&self, rank: &Rank) -> bool {
        rank.probe_pattern(self.pattern)
    }
}
