//! Wire encoding of message payloads.
//!
//! MPI programs describe message layouts with derived datatypes
//! (`MPI_Type_struct` + `MPI_Type_commit` in the thesis's
//! `CommunicateShadows`). The equivalent here is the [`Wire`] trait: a type
//! that knows how to serialise itself to bytes and back. Encoded length is
//! what the network model charges for, and what the platform reports as
//! communication volume (the thesis weights processor-graph edges by buffer
//! lengths).

use ic2_rng::mix64;
use std::fmt;

/// Seeded 64-bit checksum over one framed payload.
///
/// Every data-plane envelope carries `frame_checksum(seed, src, tag, seq,
/// payload)` computed by the sender over the *pristine* bytes; the receiver
/// recomputes it on delivery and discards (NACKs) any frame that fails to
/// verify. Built on [`mix64`] so the platform stays dependency-free: the
/// payload is absorbed in 8-byte little-endian words (the tail zero-padded)
/// with each word's offset mixed in, so bit flips, truncations, extensions
/// and word swaps all change the sum. Binding `(src, tag, seq)` into the
/// sum means a frame cannot be mistaken for a different message that
/// happens to share its payload.
pub fn frame_checksum(seed: u64, src: usize, tag: i64, seq: u64, bytes: &[u8]) -> u64 {
    let mut h = mix64(seed ^ 0xa076_1d64_78bd_642f);
    h = mix64(h ^ src as u64);
    h = mix64(h ^ tag as u64);
    h = mix64(h ^ seq);
    h = mix64(h ^ bytes.len() as u64);
    for (i, chunk) in bytes.chunks(8).enumerate() {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix64(h ^ u64::from_le_bytes(word) ^ mix64(i as u64));
    }
    h
}

/// Error produced when decoding a malformed or truncated message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description of what failed to decode.
    pub what: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.what)
    }
}

impl std::error::Error for WireError {}

/// A type that can cross the simulated network.
///
/// Implementations must round-trip: `decode(encode(x)) == x`, consuming
/// exactly the bytes `encode` produced (so values can be concatenated).
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from the front of `buf`, advancing it.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode a value that must occupy the entire buffer.
    fn from_bytes(mut buf: &[u8]) -> Result<Self, WireError> {
        let v = Self::decode(&mut buf)?;
        if !buf.is_empty() {
            return Err(WireError {
                what: "trailing bytes after decode",
            });
        }
        Ok(v)
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
    if buf.len() < n {
        return Err(WireError { what });
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

macro_rules! wire_num {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
                let bytes = take(buf, std::mem::size_of::<$t>(), concat!("truncated ", stringify!($t)))?;
                Ok(<$t>::from_le_bytes(bytes.try_into().unwrap()))
            }
        }
    )*};
}

wire_num!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(u64::decode(buf)? as usize)
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let b = take(buf, 1, "truncated bool")?;
        match b[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError {
                what: "invalid bool byte",
            }),
        }
    }
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(())
    }
}

/// Largest zero-width-element `Vec` a decoder will materialise; see
/// `Vec::decode`.
const ZERO_WIDTH_VEC_CAP: usize = 1 << 16;

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let len = u64::decode(buf)? as usize;
        // Guard against hostile lengths: each element needs at least one byte
        // unless the element type is zero-sized on the wire.
        let mut v = Vec::with_capacity(len.min(buf.len().max(16)));
        for _ in 0..len {
            let before = buf.len();
            v.push(T::decode(buf)?);
            if buf.len() == before && len > ZERO_WIDTH_VEC_CAP {
                // Zero-width elements consume no input, so a mutated length
                // prefix would otherwise make this loop run for up to 2^64
                // iterations. Cap how many we are willing to materialise.
                return Err(WireError {
                    what: "oversized zero-width Vec",
                });
            }
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let tag = take(buf, 1, "truncated Option tag")?[0];
        match tag {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            _ => Err(WireError {
                what: "invalid Option tag",
            }),
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let len = u64::decode(buf)? as usize;
        let bytes = take(buf, len, "truncated String")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError {
            what: "invalid utf-8 in String",
        })
    }
}

macro_rules! wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
                Ok(($($name::decode(buf)?,)+))
            }
        }
    };
}

wire_tuple!(A: 0);
wire_tuple!(A: 0, B: 1);
wire_tuple!(A: 0, B: 1, C: 2);
wire_tuple!(A: 0, B: 1, C: 2, D: 3);
wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl<T: Wire, const N: usize> Wire for [T; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        for item in self {
            item.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::decode(buf)?);
        }
        items.try_into().map_err(|_| WireError {
            what: "array length mismatch",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn numbers_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(1234u16);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(-42i32);
        roundtrip(i64::MIN);
        roundtrip(3.5f32);
        roundtrip(-0.125f64);
        roundtrip(usize::MAX);
    }

    #[test]
    fn compounds_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(7i64));
        roundtrip(Option::<i64>::None);
        roundtrip("hello world".to_string());
        roundtrip(String::new());
        roundtrip((1u32, 2.5f64, true));
        roundtrip([1u16, 2, 3, 4]);
        roundtrip(vec![(1u32, vec![2u8, 3]), (4, vec![])]);
    }

    #[test]
    fn concatenated_values_decode_in_order() {
        let mut buf = Vec::new();
        1u32.encode(&mut buf);
        "ab".to_string().encode(&mut buf);
        2.0f64.encode(&mut buf);
        let mut slice = &buf[..];
        assert_eq!(u32::decode(&mut slice).unwrap(), 1);
        assert_eq!(String::decode(&mut slice).unwrap(), "ab");
        assert_eq!(f64::decode(&mut slice).unwrap(), 2.0);
        assert!(slice.is_empty());
    }

    #[test]
    fn truncated_input_errors() {
        assert!(u64::from_bytes(&[1, 2, 3]).is_err());
        assert!(String::from_bytes(&5u64.to_bytes()).is_err());
        assert!(Vec::<u32>::from_bytes(&3u64.to_bytes()).is_err());
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = 1u32.to_bytes();
        bytes.push(9);
        assert!(u32::from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_enum_tags_error() {
        assert!(bool::from_bytes(&[2]).is_err());
        assert!(Option::<u8>::from_bytes(&[7]).is_err());
    }

    #[test]
    fn zero_width_vec_roundtrips_but_hostile_lengths_error() {
        roundtrip(vec![(); 5]);
        roundtrip(vec![(); ZERO_WIDTH_VEC_CAP]);
        // A mutated length prefix must error instead of looping ~forever.
        let hostile = u64::MAX.to_bytes();
        assert!(Vec::<()>::from_bytes(&hostile).is_err());
        let nested = (u64::MAX / 2).to_bytes();
        assert!(Vec::<[(); 4]>::from_bytes(&nested).is_err());
    }

    #[test]
    fn frame_checksum_detects_damage() {
        let payload: Vec<u8> = (0..67).map(|i| (i * 31) as u8).collect();
        let sum = frame_checksum(42, 1, 7, 3, &payload);
        // Pure in all inputs.
        assert_eq!(sum, frame_checksum(42, 1, 7, 3, &payload));
        // Sensitive to identity: seed, src, tag, seq.
        assert_ne!(sum, frame_checksum(43, 1, 7, 3, &payload));
        assert_ne!(sum, frame_checksum(42, 2, 7, 3, &payload));
        assert_ne!(sum, frame_checksum(42, 1, 8, 3, &payload));
        assert_ne!(sum, frame_checksum(42, 1, 7, 4, &payload));
        // Every single-bit flip changes the sum.
        for bit in 0..payload.len() * 8 {
            let mut flipped = payload.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(sum, frame_checksum(42, 1, 7, 3, &flipped), "bit {bit}");
        }
        // Every truncation changes the sum.
        for keep in 0..payload.len() {
            assert_ne!(
                sum,
                frame_checksum(42, 1, 7, 3, &payload[..keep]),
                "keep {keep}"
            );
        }
        // The empty payload is still bound to its identity.
        assert_ne!(
            frame_checksum(42, 1, 7, 3, &[]),
            frame_checksum(42, 1, 7, 4, &[])
        );
    }

    #[test]
    fn non_utf8_string_errors() {
        let mut buf = Vec::new();
        2u64.encode(&mut buf);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(String::from_bytes(&buf).is_err());
    }
}
