//! Per-rank communication counters.

/// A message was addressed to a rank outside the world.
///
/// Raised as a typed panic payload by the sending [`crate::Rank`] (the
/// substrate's send APIs have no error channel, matching MPI semantics) so
/// the platform layer can downcast it into its own typed error instead of
/// surfacing a bare out-of-bounds index panic mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidRank {
    /// The rank that attempted the send (`usize::MAX` when unknown).
    pub src: usize,
    /// The out-of-range destination.
    pub dest: usize,
    /// The world size; valid destinations are `0..world`.
    pub world: usize,
}

impl std::fmt::Display for InvalidRank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} addressed invalid destination rank {} (world size {})",
            self.src, self.dest, self.world
        )
    }
}

impl std::error::Error for InvalidRank {}

/// Fault-injection bookkeeping, accumulated alongside [`CommStats`].
///
/// Sender-side counters record *injected* events (a duplicated message
/// counts once here however the receiver handles it); `stale_discarded`
/// is the receiver-side count of duplicate copies thrown away by ordered
/// receives.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Data messages silently lost by the fault plan.
    pub dropped: u64,
    /// Data messages delivered late.
    pub delayed: u64,
    /// Data messages delivered twice.
    pub duplicated: u64,
    /// Data messages injected at the front of the receiver's queue.
    pub reordered: u64,
    /// Retransmissions performed by reliable sends.
    pub retries: u64,
    /// Reliable sends whose final attempt had to be forced through.
    pub escalations: u64,
    /// Duplicate copies discarded by this rank's ordered receives.
    pub stale_discarded: u64,
    /// Crash-aware receives abandoned because the peer was dead
    /// (each one charged the fault plan's `detect_timeout`).
    pub crash_timeouts: u64,
    /// Data messages whose payload had a bit flipped in flight.
    pub corrupted: u64,
    /// Data messages whose payload was shortened in flight.
    pub truncated: u64,
    /// Damaged frames caught by the receiver's checksum verification
    /// (receiver-side; includes duplicates of damaged frames).
    pub corruptions_detected: u64,
    /// Retransmissions triggered by a NACKed (checksum-failed) frame,
    /// each charged an exponential-backoff timeout on the virtual clock.
    pub retransmits: u64,
    /// NACKs raised by receivers for damaged frames (sender-side count of
    /// the simulated NACK round-trips it honoured).
    pub nacks: u64,
    /// Data messages cut by an active network partition (sender-side; each
    /// one was delivered to the receiver as a metadata-only tombstone).
    pub partition_cuts: u64,
    /// Data messages lost to a per-link blackhole
    /// ([`crate::FaultPlan::with_link_drop`]), counted separately from the
    /// global `dropped`.
    pub link_dropped: u64,
    /// Receives abandoned because the peer was unreachable across a
    /// partition (receiver-side; each one charged `detect_timeout`).
    pub partition_timeouts: u64,
    /// At-rest state entries silently bit-flipped on this rank by
    /// [`crate::FaultPlan::with_memory_corrupt`] (injection count; detection
    /// and repair are the platform's job and counted separately there).
    pub memory_corruptions: u64,
    /// Disk operations failed with a transient I/O error
    /// ([`crate::FaultPlan::with_disk_fault`], injection count).
    pub disk_transient_errors: u64,
    /// Disk writes acknowledged but stored damaged (torn-write injections;
    /// the platform's read-back verification must catch them).
    pub disk_torn_writes: u64,
    /// Stored page versions decayed at rest (read-rot injections, counted
    /// once per rotten version).
    pub disk_read_rots: u64,
    /// Disk writes rejected for space (disk-full injections).
    pub disk_full_rejections: u64,
}

impl FaultStats {
    /// Element-wise sum.
    pub fn merge(&mut self, other: &FaultStats) {
        self.dropped += other.dropped;
        self.delayed += other.delayed;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.retries += other.retries;
        self.escalations += other.escalations;
        self.stale_discarded += other.stale_discarded;
        self.crash_timeouts += other.crash_timeouts;
        self.corrupted += other.corrupted;
        self.truncated += other.truncated;
        self.corruptions_detected += other.corruptions_detected;
        self.retransmits += other.retransmits;
        self.nacks += other.nacks;
        self.partition_cuts += other.partition_cuts;
        self.link_dropped += other.link_dropped;
        self.partition_timeouts += other.partition_timeouts;
        self.memory_corruptions += other.memory_corruptions;
        self.disk_transient_errors += other.disk_transient_errors;
        self.disk_torn_writes += other.disk_torn_writes;
        self.disk_read_rots += other.disk_read_rots;
        self.disk_full_rejections += other.disk_full_rejections;
    }

    /// Did any fault actually fire?
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }
}

/// Counters accumulated by a [`crate::Rank`] over its lifetime.
///
/// The iC2mpi load balancer weights processor-graph edges by communication
/// volume; these counters expose the same information without the platform
/// having to instrument every call site.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    /// Messages sent (point-to-point, including collective-internal).
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub msgs_recv: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Barriers entered.
    pub barriers: u64,
    /// Payload bytes sent to each destination rank.
    pub bytes_to: Vec<u64>,
    /// Fault-injection events observed by this rank.
    pub faults: FaultStats,
    /// Canonical credit stalls observed by this rank as a *receiver*: per
    /// bounded shadow-exchange round, `max(0, frames_present - capacity)`
    /// senders must have waited for a mailbox slot. Tallied at the
    /// virtual-time point where each overflowing frame's credit resolves —
    /// a pure function of the deterministic message schedule, so the count
    /// (unlike a physically-observed stall) is identical across hosts and
    /// runs. Zero whenever mailboxes are unbounded.
    pub credit_stalls: u64,
    /// Largest number of envelopes ever queued in this rank's mailbox.
    pub peak_mailbox_depth: u64,
    /// Virtual seconds this rank spent in integrity timeouts: reliable-send
    /// retry windows plus NACK/retransmit exponential backoff.
    pub retry_seconds: f64,
}

impl CommStats {
    /// Counters for a world of `n` ranks.
    pub fn new(n: usize) -> Self {
        CommStats {
            bytes_to: vec![0; n],
            ..Default::default()
        }
    }

    pub(crate) fn on_send(&mut self, dest: usize, bytes: usize) -> Result<(), InvalidRank> {
        let world = self.bytes_to.len();
        let slot = self.bytes_to.get_mut(dest).ok_or(InvalidRank {
            src: usize::MAX,
            dest,
            world,
        })?;
        *slot += bytes as u64;
        self.msgs_sent += 1;
        self.bytes_sent += bytes as u64;
        Ok(())
    }

    pub(crate) fn on_recv(&mut self, bytes: usize) {
        self.msgs_recv += 1;
        self.bytes_recv += bytes as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = CommStats::new(3);
        s.on_send(1, 10).unwrap();
        s.on_send(1, 5).unwrap();
        s.on_send(2, 7).unwrap();
        s.on_recv(4);
        assert_eq!(s.msgs_sent, 3);
        assert_eq!(s.bytes_sent, 22);
        assert_eq!(s.bytes_to, vec![0, 15, 7]);
        assert_eq!(s.msgs_recv, 1);
        assert_eq!(s.bytes_recv, 4);
        assert!(!s.faults.any());
    }

    #[test]
    fn fault_stats_merge() {
        let mut a = FaultStats {
            dropped: 1,
            retries: 2,
            ..Default::default()
        };
        let b = FaultStats {
            dropped: 3,
            stale_discarded: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.dropped, 4);
        assert_eq!(a.retries, 2);
        assert_eq!(a.stale_discarded, 1);
        assert!(a.any());
    }

    #[test]
    fn send_to_boundary_rank_is_a_typed_error() {
        let mut s = CommStats::new(3);
        // The last valid rank works; the first invalid one (== world size)
        // is a typed error, not an out-of-bounds index panic.
        s.on_send(2, 8).unwrap();
        let err = s.on_send(3, 8).unwrap_err();
        assert_eq!(err.dest, 3);
        assert_eq!(err.world, 3);
        assert!(err.to_string().contains("invalid destination rank 3"));
        // The failed send must not leak into the aggregate counters.
        assert_eq!(s.msgs_sent, 1);
        assert_eq!(s.bytes_sent, 8);
    }
}
