//! Per-rank communication counters.

/// Counters accumulated by a [`crate::Rank`] over its lifetime.
///
/// The iC2mpi load balancer weights processor-graph edges by communication
/// volume; these counters expose the same information without the platform
/// having to instrument every call site.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    /// Messages sent (point-to-point, including collective-internal).
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub msgs_recv: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Barriers entered.
    pub barriers: u64,
    /// Payload bytes sent to each destination rank.
    pub bytes_to: Vec<u64>,
}

impl CommStats {
    /// Counters for a world of `n` ranks.
    pub fn new(n: usize) -> Self {
        CommStats {
            bytes_to: vec![0; n],
            ..Default::default()
        }
    }

    pub(crate) fn on_send(&mut self, dest: usize, bytes: usize) {
        self.msgs_sent += 1;
        self.bytes_sent += bytes as u64;
        self.bytes_to[dest] += bytes as u64;
    }

    pub(crate) fn on_recv(&mut self, bytes: usize) {
        self.msgs_recv += 1;
        self.bytes_recv += bytes as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = CommStats::new(3);
        s.on_send(1, 10);
        s.on_send(1, 5);
        s.on_send(2, 7);
        s.on_recv(4);
        assert_eq!(s.msgs_sent, 3);
        assert_eq!(s.bytes_sent, 22);
        assert_eq!(s.bytes_to, vec![0, 15, 7]);
        assert_eq!(s.msgs_recv, 1);
        assert_eq!(s.bytes_recv, 4);
    }
}
