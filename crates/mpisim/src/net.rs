//! Network and timing models.
//!
//! Virtual time follows the LogP tradition: a message of `b` bytes sent at
//! (sender) time `t` arrives at `t + o_send + latency + b * per_byte`; the
//! receiver pays `o_recv` on top of the arrival time. A barrier synchronises
//! all clocks to the maximum plus `barrier_cost`.

/// LogP-style cost parameters, all in (virtual) seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// One-way wire latency per message (α).
    pub latency: f64,
    /// Transfer cost per payload byte (1/β).
    pub per_byte: f64,
    /// CPU overhead charged to the sender per message (o_s).
    pub send_overhead: f64,
    /// CPU overhead charged to the receiver per message (o_r).
    pub recv_overhead: f64,
    /// Cost of a barrier, charged after clock synchronisation.
    pub barrier_cost: f64,
}

impl NetModel {
    /// Calibrated to reproduce the *shape* of the thesis's SGI Origin-2000
    /// numbers (Section 5): sub-millisecond message cost, growing barrier
    /// cost with rank count absorbed in `barrier_cost`, fine-grained 64-node
    /// graphs flattening between 8 and 16 processors.
    pub fn origin2000() -> Self {
        NetModel {
            latency: 160e-6,
            per_byte: 9e-9,
            send_overhead: 18e-6,
            recv_overhead: 42e-6,
            barrier_cost: 70e-6,
        }
    }

    /// An idealised zero-cost network; useful in tests that only check
    /// message delivery semantics.
    pub fn zero() -> Self {
        NetModel {
            latency: 0.0,
            per_byte: 0.0,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            barrier_cost: 0.0,
        }
    }

    /// A deliberately slow network (grid/WAN-like); used to widen the gap
    /// between partition qualities in tests and ablations.
    pub fn wan() -> Self {
        NetModel {
            latency: 2e-3,
            per_byte: 100e-9,
            send_overhead: 50e-6,
            recv_overhead: 80e-6,
            barrier_cost: 500e-6,
        }
    }

    /// Arrival time at the receiver for a `bytes`-byte message whose send
    /// started at sender-clock `send_clock` (after the send overhead).
    pub fn arrival(&self, send_clock: f64, bytes: usize) -> f64 {
        send_clock + self.latency + bytes as f64 * self.per_byte
    }
}

/// How the substrate accounts for time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimingMode {
    /// Deterministic virtual clocks driven by a [`NetModel`] and explicit
    /// [`crate::Rank::advance`] calls. `Rank::wtime` reads the virtual clock.
    Virtual(NetModel),
    /// Wall-clock timing: `advance` busy-spins for the requested duration
    /// (the thesis's "dummy for loop" grain injection) and `wtime` reads a
    /// monotonic clock.
    Real,
}

impl TimingMode {
    /// The network model, if virtual.
    pub fn net(&self) -> Option<&NetModel> {
        match self {
            TimingMode::Virtual(m) => Some(m),
            TimingMode::Real => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_accounts_for_latency_and_size() {
        let m = NetModel {
            latency: 1.0,
            per_byte: 0.5,
            ..NetModel::zero()
        };
        assert_eq!(m.arrival(10.0, 4), 10.0 + 1.0 + 2.0);
    }

    #[test]
    fn zero_model_is_free() {
        let m = NetModel::zero();
        assert_eq!(m.arrival(3.0, 1000), 3.0);
    }

    #[test]
    fn presets_are_ordered_by_cost() {
        let fast = NetModel::origin2000();
        let slow = NetModel::wan();
        assert!(slow.latency > fast.latency);
        assert!(slow.per_byte > fast.per_byte);
    }
}
