//! The per-rank communication endpoint.

use crate::mailbox::{Envelope, Pattern};
use crate::net::TimingMode;
use crate::payload::{encode_payload, Payload};
use crate::request::{RecvRequest, SendRequest};
use crate::stats::{CommStats, InvalidRank};
use crate::trace::{ArgValue, Args, TraceEvent};
use crate::wire::{frame_checksum, Wire};
use crate::world::{BlockedOp, Config, CtlSlot, CtlVerdict, FlowDeadlock, RankCrashed, Shared};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// User-visible message tag. Internally tags are widened to `i64`;
/// collectives use the negative range so they can never collide with
/// user traffic.
pub type Tag = u32;

/// Wildcard source for [`Rank::recv_any`] (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Option<usize> = None;

/// Verdict of a crash-aware receive: the awaited peer has crashed and its
/// message will never arrive. Returned by [`Rank::try_recv`]; the contained
/// rank is the dead peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Died(pub usize);

/// What [`Rank::send_reliable`] does when every retransmission is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicy {
    /// Force the final attempt through (models an out-of-band recovery
    /// path). Use for traffic the protocol cannot make progress without.
    Escalate,
    /// Report the loss to the caller, who must degrade gracefully.
    GiveUp,
}

/// How an individual transmission fared, as the *sender* observes it.
///
/// `Mangled` means the frame physically reached the destination mailbox but
/// was damaged in flight: the receiver's checksum verification will discard
/// it and (in the modelled protocol) NACK it back to the sender.
enum Delivery {
    Delivered,
    Dropped,
    Mangled,
    /// The destination is unreachable across an active network partition.
    /// Terminal: unlike a probabilistic drop, retrying cannot help while
    /// the window is open, and escalation does not apply — the partition
    /// models a severed link, not a lossy one. A metadata-only tombstone
    /// was deposited at the receiver so it observes the cut at a
    /// deterministic point in its own receive stream.
    Cut,
}

/// How a transmission pays for its slot in a bounded destination mailbox.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CreditMode {
    /// No credit needed: control plane, retransmissions (attempt > 0), and
    /// unbounded mailboxes. Retransmissions must bypass capacity — a
    /// mailbox full of damaged frames would otherwise deadlock the very
    /// retransmit that repairs it. The overflow is bounded by the retry
    /// budget.
    Bypass,
    /// The caller already holds a credit from [`Rank::offer_credit`].
    Held,
    /// Block (wall-clock only — zero virtual time) until a credit frees up,
    /// scavenging garbage frames from the destination and watching for
    /// cyclic credit waits.
    Acquire,
}

/// Consecutive identical cycle observations (50 ms apart) required before
/// the flow-control deadlock detector convicts. A genuine credit cycle is
/// stable — any progress at all changes some mailbox's epoch and resets the
/// streak — so confirmation trades a few hundred milliseconds for zero
/// false positives.
const FLOW_DEADLOCK_CONFIRM: u32 = 5;

/// How long a credit-stalled sender parks between retries.
const FLOW_SLICE: Duration = Duration::from_millis(50);

/// One rank's endpoint into the simulated world — the analogue of an
/// `MPI_Comm` plus the rank's identity.
///
/// A `Rank` is handed to the SPMD closure by [`crate::World::run`]. It is
/// deliberately `!Sync`: a rank belongs to exactly one thread, like an MPI
/// process.
pub struct Rank {
    id: usize,
    n: usize,
    shared: Arc<Shared>,
    clock: Cell<f64>,
    coll_seq: Cell<i64>,
    stats: RefCell<CommStats>,
    epoch: Instant,
    /// Per-(dest, tag) sequence counters for fault-aware sends. Only
    /// touched when message faults are active, so the map stays bounded
    /// by the set of live user tags.
    send_seq: RefCell<HashMap<(usize, i64), u64>>,
    /// Cached [`crate::FaultPlan::message_faults`] for the hot send path.
    msg_faults: bool,
    /// Cached [`crate::FaultPlan::has_partitions`]: gates the per-send
    /// partition-cut check to one predicted-false branch when no
    /// partitions are scheduled.
    partitioned: bool,
    /// Cached straggler multiplier for [`advance`](Self::advance).
    compute_factor: f64,
    /// Cached [`crate::FaultPlan::crash_time`] for this rank: the virtual
    /// time past which its next substrate operation kills it.
    crash_time: Option<f64>,
    /// Private structured-event buffer; `None` when tracing is off, so
    /// every emit site reduces to one predicted-false branch. Flushed into
    /// the world's [`crate::TraceCollector`] when the rank drops — which
    /// happens on normal completion *and* while unwinding from an injected
    /// crash, so a dead rank's partial trace survives.
    trace: Option<RefCell<Vec<TraceEvent>>>,
}

impl Rank {
    pub(crate) fn new(id: usize, n: usize, shared: Arc<Shared>, epoch: Instant) -> Self {
        let msg_faults = shared.cfg.faults.message_faults();
        let partitioned = shared.cfg.faults.has_partitions();
        let compute_factor = shared.cfg.faults.compute_factor(id);
        let crash_time = shared.cfg.faults.crash_time(id);
        let trace = shared.cfg.trace.as_ref().map(|_| RefCell::new(Vec::new()));
        Rank {
            id,
            n,
            shared,
            clock: Cell::new(0.0),
            coll_seq: Cell::new(0),
            stats: RefCell::new(CommStats::new(n)),
            epoch,
            send_seq: RefCell::new(HashMap::new()),
            msg_faults,
            partitioned,
            compute_factor,
            crash_time,
            trace,
        }
    }

    // ---- tracing ---------------------------------------------------------

    /// Is structured tracing active for this world?
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Record an instantaneous trace event at the current virtual time.
    /// No-op (one branch) when tracing is off; never touches the clock.
    #[inline]
    pub fn trace_instant(&self, name: &'static str, cat: &'static str, args: &Args) {
        if let Some(buf) = &self.trace {
            buf.borrow_mut().push(TraceEvent::Instant {
                name,
                cat,
                at: self.wtime(),
                args: args.to_vec(),
            });
        }
    }

    /// Record a span from `start` — an earlier [`Rank::wtime`] reading —
    /// to the current virtual time. No-op (one branch) when tracing is
    /// off; never touches the clock.
    #[inline]
    pub fn trace_span(&self, name: &'static str, cat: &'static str, start: f64, args: &Args) {
        if let Some(buf) = &self.trace {
            buf.borrow_mut().push(TraceEvent::Span {
                name,
                cat,
                start,
                end: self.wtime(),
                args: args.to_vec(),
            });
        }
    }

    /// Die here if this rank's scheduled crash time has passed. The check
    /// sits at every substrate operation, so the crash point is a
    /// deterministic position in the rank's own instruction stream —
    /// independent of OS scheduling. The full death protocol (mailbox
    /// sealed, dead flag published, failure detector notified) runs
    /// *before* the unwind, so survivors can already observe the death
    /// while this thread is still unwinding.
    fn maybe_crash(&self) {
        if let Some(t) = self.crash_time {
            if self.wtime() >= t {
                self.trace_instant("crash", "fault", &[]);
                self.shared.declare_dead(self.id);
                std::panic::panic_any(RankCrashed(self.id));
            }
        }
    }

    /// This rank's id in `0..size()` (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.id
    }

    /// Number of ranks in the world (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.n
    }

    /// The configuration this rank's world runs with (timing model,
    /// watchdog, fault plan).
    pub fn config(&self) -> &Config {
        &self.shared.cfg
    }

    /// Current time in seconds (`MPI_Wtime`): the virtual clock in
    /// [`TimingMode::Virtual`], wall-clock since world start otherwise.
    pub fn wtime(&self) -> f64 {
        match self.shared.cfg.timing {
            TimingMode::Virtual(_) => self.clock.get(),
            TimingMode::Real => self.epoch.elapsed().as_secs_f64(),
        }
    }

    /// Charge `seconds` of compute to this rank.
    ///
    /// In virtual mode this advances the clock; in real mode it busy-spins
    /// (the thesis injects grain sizes with a dummy `for` loop — this is
    /// that loop). A straggler fault multiplies the charge.
    pub fn advance(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "cannot advance time backwards");
        let seconds = seconds * self.compute_factor;
        match self.shared.cfg.timing {
            TimingMode::Virtual(_) => self.clock.set(self.clock.get() + seconds),
            TimingMode::Real => {
                let until = Instant::now() + Duration::from_secs_f64(seconds);
                while Instant::now() < until {
                    std::hint::spin_loop();
                }
            }
        }
        self.maybe_crash();
    }

    /// Reconcile receiver-side fault counters before a *final* statistics
    /// snapshot: discard (and count) any stale duplicates or damaged
    /// frames still sitting in this rank's mailbox. Call after the closing
    /// barrier — once every in-flight delivery has landed — so
    /// `stale_discarded`/`corruptions_detected` reach the same totals
    /// regardless of how host threads interleaved (see
    /// [`Mailbox::reconcile`]). Deliberately not folded into
    /// [`Rank::stats`], which is also sampled mid-run and must never
    /// mutate the mailbox.
    pub fn reconcile_faults(&self) {
        self.shared.mailboxes[self.id].reconcile();
    }

    /// Snapshot of this rank's communication counters, including
    /// receiver-side fault bookkeeping.
    pub fn stats(&self) -> CommStats {
        let mut s = self.stats.borrow().clone();
        let mb = &self.shared.mailboxes[self.id];
        s.faults.stale_discarded = mb.stale_discarded();
        s.faults.corruptions_detected = mb.corruptions_detected();
        // Max-merged, never assigned: the mailbox's own high-water mark is
        // monotonic, but max keeps the invariant obvious and immune to any
        // future snapshot source whose peak could shrink between calls.
        s.peak_mailbox_depth = s.peak_mailbox_depth.max(mb.peak_depth());
        s
    }

    /// Virtual seconds spent so far in integrity timeouts (retry windows
    /// and NACK backoff). Cheap accessor for phase attribution in callers
    /// that bracket a communication region.
    pub fn retry_seconds(&self) -> f64 {
        self.stats.borrow().retry_seconds
    }

    // ---- point to point -------------------------------------------------

    /// Buffered send (`MPI_Send`/`MPI_Isend` with buffering): copies the
    /// encoded payload into `dest`'s mailbox and returns immediately.
    ///
    /// Under an active fault plan this is the *unreliable* datagram path:
    /// the message may be dropped, delayed, duplicated or reordered.
    pub fn send<T: Wire>(&self, dest: usize, tag: Tag, value: &T) {
        self.send_tagged(dest, tag as i64, value);
    }

    /// Nonblocking send (`MPI_Isend`). Semantically identical to
    /// [`send`](Self::send) here, returning a request for MPI-shaped code.
    pub fn isend<T: Wire>(&self, dest: usize, tag: Tag, value: &T) -> SendRequest {
        self.send_tagged(dest, tag as i64, value);
        SendRequest { _private: () }
    }

    /// Reliable send: retransmit on (simulated) ack timeout or NACK, up to
    /// the fault plan's retry budget. Every lost attempt charges the plan's
    /// `retry_timeout` to this rank's virtual clock and counts a retry;
    /// every NACKed (checksum-failed) attempt charges an exponential
    /// backoff and counts a retransmit.
    ///
    /// Returns `true` once an attempt is delivered intact. With
    /// [`RetryPolicy::GiveUp`] the send can return `false` (every attempt
    /// lost or damaged); with [`RetryPolicy::Escalate`] the final attempt
    /// is forced through clean, so the send always succeeds eventually.
    ///
    /// Without message faults this is exactly [`send`](Self::send).
    pub fn send_reliable<T: Wire>(
        &self,
        dest: usize,
        tag: Tag,
        value: &T,
        policy: RetryPolicy,
    ) -> bool {
        self.send_reliable_inner(dest, tag, value, policy, CreditMode::Acquire)
    }

    /// [`Rank::send_reliable`] whose first attempt spends a credit already
    /// obtained from [`Rank::offer_credit`]. Never blocks on flow control —
    /// the building block for schedules that interleave receiving with
    /// sending instead of stalling (see the exchange layer).
    pub fn send_reliable_granted<T: Wire>(
        &self,
        dest: usize,
        tag: Tag,
        value: &T,
        policy: RetryPolicy,
    ) -> bool {
        self.send_reliable_inner(dest, tag, value, policy, CreditMode::Held)
    }

    fn send_reliable_inner<T: Wire>(
        &self,
        dest: usize,
        tag: Tag,
        value: &T,
        policy: RetryPolicy,
        first_credit: CreditMode,
    ) -> bool {
        let t = tag as i64;
        // One allocation per message: every attempt below shares this
        // buffer by reference count.
        let payload = encode_payload(value);
        if !self.msg_faults {
            // The fast path can still hit a partition cut — the only fault
            // that fires without `message_faults()` being on.
            return !matches!(
                self.transmit(dest, t, 0, 0, &payload, false, first_credit),
                Delivery::Cut
            );
        }
        let seq = self.alloc_seq(dest, t);
        let max = self.shared.cfg.faults.max_retries;
        for attempt in 0..=max {
            let force = attempt == max && policy == RetryPolicy::Escalate;
            let credit = if attempt == 0 {
                first_credit
            } else {
                CreditMode::Bypass
            };
            match self.transmit(dest, t, seq, attempt, &payload, force, credit) {
                Delivery::Delivered => return true,
                Delivery::Dropped => {
                    // Lost: we waited a full ack timeout before concluding
                    // that.
                    self.charge_timeout(self.shared.cfg.faults.retry_timeout);
                    if attempt < max {
                        self.stats.borrow_mut().faults.retries += 1;
                        self.trace_instant(
                            "retry",
                            "integrity",
                            &[
                                ("dest", ArgValue::U64(dest as u64)),
                                ("attempt", ArgValue::U64(attempt as u64)),
                            ],
                        );
                    }
                }
                Delivery::Mangled => {
                    // The receiver's checksum caught the damage and NACKed
                    // the frame; back off exponentially and retransmit.
                    self.nack_backoff(attempt);
                    if attempt < max {
                        self.stats.borrow_mut().faults.retransmits += 1;
                    }
                }
                // A severed link stays severed for the whole window: no
                // retry budget can cross it and escalation does not apply.
                Delivery::Cut => return false,
            }
        }
        false
    }

    // ---- flow control ----------------------------------------------------

    /// Try to obtain one delivery credit for `dest` without blocking,
    /// scavenging the destination's garbage frames on a first failure.
    /// Always succeeds for unbounded mailboxes. A granted credit must be
    /// spent with [`Rank::send_reliable_granted`] (or returned with
    /// [`Rank::refund_credit`]).
    pub fn offer_credit(&self, dest: usize) -> bool {
        if !self.shared.mailboxes[dest].is_bounded() {
            return true;
        }
        if self.shared.try_acquire_credit(self.id, dest) {
            return true;
        }
        self.shared.mailboxes[dest].scavenge();
        self.shared.try_acquire_credit(self.id, dest)
    }

    /// Return a credit obtained from [`Rank::offer_credit`] that will not
    /// be spent after all.
    pub fn refund_credit(&self, dest: usize) {
        if self.shared.mailboxes[dest].is_bounded() {
            self.shared.mailboxes[dest].release_credit();
        }
    }

    /// Count one credit stall: a sender (`src`) whose frame could not have
    /// held a free slot in this rank's bounded mailbox for the current
    /// exchange round. Called by the *receiver* at the canonical
    /// virtual-time point where the overflowing frame's credit resolves —
    /// the model is `max(0, frames_present - capacity)` stalls per round,
    /// a pure function of the deterministic message schedule. Whether a
    /// sender *physically* parked is a host-scheduling accident; this
    /// canonical resolution point is what keeps same-seed traces
    /// byte-identical at every mailbox capacity.
    pub fn count_credit_stall(&self, src: usize) {
        self.stats.borrow_mut().credit_stalls += 1;
        self.trace_instant(
            "credit_stall",
            "flow",
            &[("src", ArgValue::U64(src as u64))],
        );
    }

    /// Count one injected at-rest memory corruption on this rank
    /// ([`crate::FaultPlan::with_memory_corrupt`]). The platform layer owns
    /// the state being damaged, so it reports each flip here; unlike credit
    /// stalls this is fully deterministic (a pure hash decision at a
    /// virtual-clock boundary).
    pub fn count_memory_corruption(&self, region: &'static str, index: u64) {
        self.stats.borrow_mut().faults.memory_corruptions += 1;
        self.trace_instant(
            "memory_corrupt",
            "fault",
            &[
                ("region", ArgValue::Str(region)),
                ("node", ArgValue::U64(index)),
            ],
        );
    }

    /// Park briefly until something lands in (or drains from) this rank's
    /// own mailbox. Used by interleaved send/receive schedules between
    /// failed credit offers. Checks for world poisoning first.
    pub fn wait_incoming(&self, slice: Duration) {
        self.check_poison();
        self.shared.mailboxes[self.id].wait_change(slice);
    }

    /// Panic with the world-state deadlock report — for callers running
    /// their own watchdogged wait loops.
    pub fn deadlock_panic(&self, what: &str) -> ! {
        panic!(
            "rank {}: {what} timed out after {:?} (likely deadlock); world state:\n{}",
            self.id,
            self.shared.cfg.watchdog,
            self.shared.deadlock_report()
        );
    }

    /// Block until a credit for `dest` frees up. Wall-clock only: credit
    /// stalls model finite buffering, not link latency, so zero virtual
    /// time is charged. While parked the sender scavenges garbage frames
    /// from the destination (they hold capacity slots the owner may never
    /// get to free — it could itself be blocked sending) and runs the
    /// flow-control deadlock detector: a cyclic credit wait observed
    /// unchanged [`FLOW_DEADLOCK_CONFIRM`] times panics with a
    /// [`FlowDeadlock`] payload rather than hanging until the watchdog.
    fn acquire_credit(&self, dest: usize, tag: i64) -> bool {
        if tag < 0 || !self.shared.mailboxes[dest].is_bounded() {
            return false;
        }
        if self.shared.try_acquire_credit(self.id, dest) {
            return true;
        }
        // No stall counting here: whether this blocking send physically
        // parks depends on host scheduling. Credit stalls are tallied at
        // their canonical resolution point by the receiver (see
        // [`Rank::count_credit_stall`]), which keeps the counter and its
        // trace instants byte-deterministic at every capacity.
        self.shared.set_blocked(
            self.id,
            Some(BlockedOp {
                what: "send (awaiting credit)",
                src: Some(dest),
                tag: Some(tag),
                vtime: self.clock.get(),
            }),
        );
        let deadline = Instant::now() + self.shared.cfg.watchdog;
        let mut last: Option<Vec<(usize, u64)>> = None;
        let mut streak = 0u32;
        loop {
            if self.shared.poisoned.load(Ordering::Relaxed) {
                self.shared.clear_credit_wait(self.id);
                panic!("rank {}: aborting because another rank panicked", self.id);
            }
            self.shared.mailboxes[dest].scavenge();
            if self.shared.try_acquire_credit(self.id, dest) {
                break;
            }
            match self.shared.flow_cycle(self.id) {
                Some(cycle) => {
                    if last.as_ref() == Some(&cycle) {
                        streak += 1;
                    } else {
                        streak = 1;
                        last = Some(cycle.clone());
                    }
                    if streak >= FLOW_DEADLOCK_CONFIRM {
                        let mut members: Vec<usize> = cycle.iter().map(|&(m, _)| m).collect();
                        let lo = members
                            .iter()
                            .enumerate()
                            .min_by_key(|&(_, &m)| m)
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        members.rotate_left(lo);
                        self.shared.clear_credit_wait(self.id);
                        std::panic::panic_any(FlowDeadlock { cycle: members });
                    }
                }
                None => {
                    streak = 0;
                    last = None;
                }
            }
            if Instant::now() >= deadline {
                self.shared.clear_credit_wait(self.id);
                panic!(
                    "rank {}: send to rank {dest} starved waiting for a mailbox credit \
                     for {:?}; world state:\n{}",
                    self.id,
                    self.shared.cfg.watchdog,
                    self.shared.deadlock_report()
                );
            }
            self.shared.mailboxes[dest].wait_change(FLOW_SLICE);
        }
        self.shared.set_blocked(self.id, None);
        true
    }

    /// Charge an integrity timeout (virtual clock + bookkeeping).
    fn charge_timeout(&self, seconds: f64) {
        if let TimingMode::Virtual(_) = self.shared.cfg.timing {
            self.clock.set(self.clock.get() + seconds);
        }
        self.stats.borrow_mut().retry_seconds += seconds;
    }

    /// Pay for one NACK round-trip: exponential backoff on the retry
    /// timeout, capped at 2^10 windows.
    fn nack_backoff(&self, attempt: u32) {
        let backoff = self.shared.cfg.faults.retry_timeout * (1u64 << attempt.min(10)) as f64;
        self.charge_timeout(backoff);
        self.stats.borrow_mut().faults.nacks += 1;
        self.trace_instant(
            "nack",
            "integrity",
            &[
                ("attempt", ArgValue::U64(attempt as u64)),
                ("backoff", ArgValue::F64(backoff)),
            ],
        );
    }

    /// Blocking receive from a specific source (`MPI_Recv`).
    pub fn recv<T: Wire>(&self, src: usize, tag: Tag) -> T {
        self.complete_recv(Pattern {
            src: Some(src),
            tag: tag as i64,
        })
    }

    /// Blocking receive from any source; returns `(source, value)`.
    pub fn recv_any<T: Wire>(&self, tag: Tag) -> (usize, T) {
        self.complete_recv_with_source(Pattern {
            src: None,
            tag: tag as i64,
        })
    }

    /// Crash-aware blocking receive: wait for a message from `src`, but if
    /// `src` has crashed and its message will never come, give up after the
    /// fault plan's `detect_timeout` (charged to the virtual clock) and
    /// return [`Died`].
    ///
    /// The outcome is deterministic: every message a rank sends
    /// happens-before its death is published, so once the dead flag is
    /// observed *and* a subsequent mailbox check comes up empty, the
    /// message provably was never sent. Whether `src` sent before crashing
    /// is a pure function of its own (deterministic) instruction stream.
    pub fn try_recv<T: Wire>(&self, src: usize, tag: Tag) -> Result<T, Died> {
        self.maybe_crash();
        let pattern = Pattern {
            src: Some(src),
            tag: tag as i64,
        };
        let ordered = self.msg_faults && pattern.tag >= 0;
        self.shared.set_blocked(
            self.id,
            Some(BlockedOp {
                what: "try_recv",
                src: pattern.src,
                tag: Some(pattern.tag),
                vtime: self.clock.get(),
            }),
        );
        let deadline = Instant::now() + self.shared.cfg.watchdog;
        let env = loop {
            self.check_poison();
            // Read the dead flag *before* the mailbox check: deliveries
            // happen-before the flag is set, so flag-then-empty is a
            // definitive "never coming".
            let dead = self.shared.is_dead(src);
            let slice =
                Duration::from_millis(5).min(deadline.saturating_duration_since(Instant::now()));
            if let Some(env) = self.shared.mailboxes[self.id].recv(pattern, slice, ordered) {
                break env;
            }
            if dead {
                self.shared.set_blocked(self.id, None);
                if let TimingMode::Virtual(_) = self.shared.cfg.timing {
                    self.clock
                        .set(self.clock.get() + self.shared.cfg.faults.detect_timeout);
                }
                self.stats.borrow_mut().faults.crash_timeouts += 1;
                self.trace_instant(
                    "crash_timeout",
                    "fault",
                    &[("peer", ArgValue::U64(src as u64))],
                );
                return Err(Died(src));
            }
            if Instant::now() >= deadline {
                panic!(
                    "rank {}: crash-aware receive matching {:?} timed out after {:?} \
                     (likely deadlock); world state:\n{}",
                    self.id,
                    pattern,
                    self.shared.cfg.watchdog,
                    self.shared.deadlock_report()
                );
            }
        };
        self.shared.set_blocked(self.id, None);
        if env.cut {
            // A partition tombstone: the peer is alive but unreachable.
            // Pay the same detection cost as a crash timeout — the caller
            // waited a full `detect_timeout` before concluding the message
            // is not coming — and report the peer exactly as a death; the
            // membership layer disambiguates via the ctl verdict.
            if let TimingMode::Virtual(_) = self.shared.cfg.timing {
                self.clock
                    .set(self.clock.get() + self.shared.cfg.faults.detect_timeout);
            }
            self.stats.borrow_mut().faults.partition_timeouts += 1;
            self.trace_instant(
                "partition_timeout",
                "fault",
                &[("peer", ArgValue::U64(env.src as u64))],
            );
            return Err(Died(env.src));
        }
        if let TimingMode::Virtual(net) = self.shared.cfg.timing {
            let clock = self.clock.get().max(env.arrival) + net.recv_overhead;
            self.clock.set(clock);
        }
        self.stats.borrow_mut().on_recv(env.bytes.len());
        let value = T::from_bytes(&env.bytes).unwrap_or_else(|e| {
            panic!(
                "rank {}: message from rank {} tag {} failed to decode as {}: {e}",
                self.id,
                env.src,
                env.tag,
                std::any::type_name::<T>()
            )
        });
        Ok(value)
    }

    /// Discard every message currently queued in this rank's own mailbox.
    /// Crash-recovery rollback calls this so in-flight traffic from the
    /// aborted epoch cannot leak into the replayed one. Duplicate-detection
    /// bookkeeping survives the purge, so reliable streams that straddle a
    /// rollback still deduplicate correctly.
    pub fn purge_mailbox(&self) {
        self.shared.mailboxes[self.id].purge();
    }

    /// Nonblocking physical receipt for interleaved (bounded-mailbox)
    /// schedules: remove and return one matching envelope if present,
    /// without charging any receive cost. Ordered semantics apply exactly
    /// as in a blocking receive (damaged and stale frames are discarded,
    /// lowest sequence number wins). Pair with [`Rank::absorb`], which
    /// applies the virtual-time charge — keeping charges in a canonical
    /// order even when frames are drained in whatever order they arrive.
    pub fn drain_one(&self, src: Option<usize>, tag: Tag) -> Option<Envelope> {
        self.maybe_crash();
        self.check_poison();
        let pat = Pattern {
            src,
            tag: tag as i64,
        };
        let ordered = self.msg_faults && pat.tag >= 0;
        self.shared.mailboxes[self.id].recv(pat, Duration::ZERO, ordered)
    }

    /// Account for and decode an envelope previously taken with
    /// [`Rank::drain_one`]: charges the standard receive cost
    /// (`max(clock, arrival) + recv_overhead`) exactly as the blocking
    /// receive path would.
    pub fn absorb<T: Wire>(&self, env: Envelope) -> T {
        if let TimingMode::Virtual(net) = self.shared.cfg.timing {
            let clock = self.clock.get().max(env.arrival) + net.recv_overhead;
            self.clock.set(clock);
        }
        self.stats.borrow_mut().on_recv(env.bytes.len());
        T::from_bytes(&env.bytes).unwrap_or_else(|e| {
            panic!(
                "rank {}: message from rank {} tag {} failed to decode as {}: {e}",
                self.id,
                env.src,
                env.tag,
                std::any::type_name::<T>()
            )
        })
    }

    /// Has `rank` been declared dead? For interleaved schedules that need
    /// [`Rank::try_recv`]'s flag-then-empty reasoning without its blocking
    /// loop. Read the flag *before* a final mailbox drain: deliveries
    /// happen-before the flag is set, so flag-then-empty is a definitive
    /// "never coming".
    pub fn peer_dead(&self, rank: usize) -> bool {
        self.shared.is_dead(rank)
    }

    /// Charge the fault plan's `detect_timeout` and count one crash
    /// timeout — the cost [`Rank::try_recv`] pays when it concludes a peer
    /// died. Interleaved schedules call this once per dead peer, in
    /// canonical order, to stay bit-compatible with the blocking path.
    pub fn charge_crash_timeout(&self) {
        if let TimingMode::Virtual(_) = self.shared.cfg.timing {
            self.clock
                .set(self.clock.get() + self.shared.cfg.faults.detect_timeout);
        }
        self.stats.borrow_mut().faults.crash_timeouts += 1;
        self.trace_instant("crash_timeout", "fault", &[]);
    }

    /// Charge the fault plan's `detect_timeout` and count one partition
    /// timeout — the cost [`Rank::try_recv`] pays when it consumes a
    /// partition tombstone. Membership layers call this once per frozen
    /// peer (and once per parked round), in canonical order, so degraded
    /// iterations advance the virtual clock identically on every rank.
    pub fn charge_partition_timeout(&self) {
        if let TimingMode::Virtual(_) = self.shared.cfg.timing {
            self.clock
                .set(self.clock.get() + self.shared.cfg.faults.detect_timeout);
        }
        self.stats.borrow_mut().faults.partition_timeouts += 1;
        self.trace_instant("partition_timeout", "fault", &[]);
    }

    /// Mark this rank as parked (a partition minority waiting for the heal)
    /// or unparked. Purely diagnostic: the flag only changes how the
    /// watchdog's deadlock report describes this rank if the run wedges.
    pub fn set_parked(&self, parked: bool) {
        self.shared.set_parked(self.id, parked);
    }

    /// Post a nonblocking receive (`MPI_Irecv`); complete it with
    /// [`RecvRequest::wait`].
    pub fn irecv<T: Wire>(&self, src: usize, tag: Tag) -> RecvRequest<T> {
        RecvRequest {
            pattern: Pattern {
                src: Some(src),
                tag: tag as i64,
            },
            _marker: PhantomData,
        }
    }

    /// Nonblocking probe: is a message matching `(src, tag)` available?
    pub fn probe(&self, src: Option<usize>, tag: Tag) -> bool {
        self.probe_pattern(Pattern {
            src,
            tag: tag as i64,
        })
    }

    // ---- collectives ----------------------------------------------------
    //
    // Every rank must call each collective in the same order (the standard
    // MPI requirement); an internal per-rank sequence number keyed to the
    // negative tag space keeps successive collectives from interfering.
    // Collective traffic is never faulted: it models a reliable control
    // plane (see the `faults` module).

    /// Barrier (`MPI_Barrier`): blocks until all ranks arrive; in virtual
    /// mode every clock is synchronised to the maximum plus the model's
    /// barrier cost.
    pub fn barrier(&self) {
        self.maybe_crash();
        let entered = self.wtime();
        self.stats.borrow_mut().barriers += 1;
        self.shared.set_blocked(
            self.id,
            Some(BlockedOp {
                what: "barrier",
                src: None,
                tag: None,
                vtime: self.clock.get(),
            }),
        );
        let synced = self.shared.barrier.wait(self.n, self.clock.get(), || {
            self.check_poison();
        });
        self.shared.set_blocked(self.id, None);
        if let TimingMode::Virtual(net) = self.shared.cfg.timing {
            self.clock.set(synced + net.barrier_cost);
        }
        // The span's width is this rank's wait for the slowest peer — the
        // per-iteration imbalance signal, directly visible in Perfetto.
        self.trace_span("barrier", "sync", entered, &[]);
    }

    /// Control-plane exchange with failure detection: a barrier that also
    /// allgathers one [`CtlSlot`] per rank and returns the failure
    /// detector's [`CtlVerdict`].
    ///
    /// Unlike the tree-structured collectives (which deadlock if a peer
    /// crashes mid-tree), this goes through the shared barrier, which
    /// resolves as soon as every rank has either arrived or died. The
    /// verdict — dead set and slot vector — is snapshotted once at
    /// resolution, so **every survivor receives a bit-identical copy**:
    /// this is the agreement property crash recovery builds on. Costs one
    /// barrier in virtual time.
    pub fn ctl_exchange(&self, slot: CtlSlot) -> CtlVerdict {
        self.maybe_crash();
        let entered = self.wtime();
        self.stats.borrow_mut().barriers += 1;
        self.shared.set_blocked(
            self.id,
            Some(BlockedOp {
                what: "ctl_exchange",
                src: None,
                tag: None,
                vtime: self.clock.get(),
            }),
        );
        let (synced, verdict) =
            self.shared
                .barrier
                .wait_ctl(self.n, self.id, self.clock.get(), slot, || {
                    self.check_poison();
                });
        self.shared.set_blocked(self.id, None);
        if let TimingMode::Virtual(net) = self.shared.cfg.timing {
            self.clock.set(synced + net.barrier_cost);
        }
        self.trace_span("ctl_exchange", "sync", entered, &[]);
        verdict
    }

    /// Broadcast `value` from `root` to every rank (`MPI_Bcast`),
    /// binomial-tree structured as in real MPI implementations: latency
    /// grows with `log2(p)` rather than `p`.
    pub fn bcast<T: Wire>(&self, root: usize, value: &mut T) {
        let tag = self.next_coll_tag();
        // Work in a rotated space where the root is rank 0.
        let vrank = (self.id + self.n - root) % self.n;
        // The root frames the value once; every interior node forwards the
        // received payload to its children by reference count, so the whole
        // tree shares a single allocation.
        let payload = if vrank != 0 {
            // Receive from the parent: clear the lowest set bit.
            let vparent = vrank & (vrank - 1);
            let parent = (vparent + root) % self.n;
            let env = self.complete_recv_env(Pattern {
                src: Some(parent),
                tag,
            });
            *value = T::from_bytes(&env.bytes).unwrap_or_else(|e| {
                panic!(
                    "rank {}: message from rank {} tag {} failed to decode as {}: {e}",
                    self.id,
                    env.src,
                    env.tag,
                    std::any::type_name::<T>()
                )
            });
            env.bytes
        } else {
            encode_payload(value)
        };
        // Forward to children: set each zero bit below the lowest set bit
        // (for the root, all bits).
        let lowest = if vrank == 0 {
            self.n.next_power_of_two()
        } else {
            vrank & vrank.wrapping_neg()
        };
        let mut bit = lowest >> 1;
        while bit > 0 {
            let vchild = vrank | bit;
            if vchild < self.n && vchild != vrank {
                let child = (vchild + root) % self.n;
                self.send_payload(child, tag, &payload);
            }
            bit >>= 1;
        }
    }

    /// Gather one value from every rank at `root` (`MPI_Gather`),
    /// binomial-tree structured (mirror of [`bcast`](Self::bcast)): each
    /// subtree aggregates before forwarding to its parent.
    ///
    /// Returns `Some(values)` in rank order at the root, `None` elsewhere.
    pub fn gather<T: Wire + Clone>(&self, root: usize, value: &T) -> Option<Vec<T>> {
        let tag = self.next_coll_tag();
        let vrank = (self.id + self.n - root) % self.n;
        let lowest = if vrank == 0 {
            self.n.next_power_of_two()
        } else {
            vrank & vrank.wrapping_neg()
        };
        // Build the wire image of a `Vec<(u64, T)>` in place: a u64 entry
        // count followed by the entry bodies. Our own entry is encoded from
        // the borrowed `value` (no clone), and each child's subtree arrives
        // already framed this way, so its body is appended verbatim — each
        // hop serialises its aggregate exactly once and never decodes or
        // re-encodes what its children collected.
        let mut count: u64 = 1;
        let mut body: Vec<u8> = Vec::new();
        (self.id as u64).encode(&mut body);
        value.encode(&mut body);
        // Aggregate each child's subtree (children = vrank | bit, for the
        // power-of-two bits below this node's lowest set bit).
        let mut bit = 1usize;
        while bit < lowest {
            let vchild = vrank | bit;
            if vchild < self.n {
                let child = (vchild + root) % self.n;
                let env = self.complete_recv_env(Pattern {
                    src: Some(child),
                    tag,
                });
                let mut buf: &[u8] = &env.bytes;
                let sub = u64::decode(&mut buf).unwrap_or_else(|e| {
                    panic!(
                        "rank {}: gather frame from rank {} tag {} has no count prefix: {e}",
                        self.id, env.src, env.tag
                    )
                });
                count += sub;
                body.extend_from_slice(buf);
            }
            bit <<= 1;
        }
        if vrank != 0 {
            let vparent = vrank & (vrank - 1);
            let parent = (vparent + root) % self.n;
            let mut msg = Vec::with_capacity(8 + body.len());
            count.encode(&mut msg);
            msg.extend_from_slice(&body);
            self.send_payload(parent, tag, &Payload::from(msg));
            None
        } else {
            debug_assert_eq!(count as usize, self.n, "gather must cover every rank");
            let mut collected: Vec<(u64, T)> = Vec::with_capacity(count as usize);
            let mut buf: &[u8] = &body;
            for _ in 0..count {
                let entry = <(u64, T)>::decode(&mut buf).unwrap_or_else(|e| {
                    panic!("rank {}: gather aggregate failed to decode: {e}", self.id)
                });
                collected.push(entry);
            }
            collected.sort_unstable_by_key(|(r, _)| *r);
            Some(collected.into_iter().map(|(_, v)| v).collect())
        }
    }

    /// Reduce with `op` at every rank (`MPI_Allreduce`): gather at rank 0,
    /// fold, broadcast the result.
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Wire + Clone,
        F: Fn(T, T) -> T,
    {
        let gathered = self.gather(0, &value);
        let mut result = match gathered {
            Some(all) => {
                let mut it = all.into_iter();
                let first = it.next().expect("world has at least one rank");
                it.fold(first, &op)
            }
            None => value,
        };
        self.bcast(0, &mut result);
        result
    }

    /// Gather one value from every rank *at* every rank
    /// (`MPI_Allgather`): gather at rank 0, then broadcast the vector.
    pub fn allgather<T: Wire + Clone>(&self, value: &T) -> Vec<T> {
        let mut all = self.gather(0, value).unwrap_or_default();
        self.bcast(0, &mut all);
        all
    }

    /// Inclusive prefix reduction (`MPI_Scan`): rank `i` receives
    /// `op(v_0, …, v_i)`.
    pub fn scan<T, F>(&self, value: T, op: F) -> T
    where
        T: Wire + Clone,
        F: Fn(T, T) -> T,
    {
        let all = self.allgather(&value);
        let mut it = all.into_iter().take(self.id + 1);
        let first = it.next().expect("own contribution present");
        it.fold(first, &op)
    }

    /// Combined send + receive (`MPI_Sendrecv`): ship `value` to `dest`
    /// and collect a message from `src` with the same tag, without the
    /// deadlock risk of mis-ordered blocking calls.
    pub fn sendrecv<T: Wire>(&self, dest: usize, src: usize, tag: Tag, value: &T) -> T {
        self.send(dest, tag, value);
        self.recv(src, tag)
    }

    // ---- internals -------------------------------------------------------

    fn next_coll_tag(&self) -> i64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        -1 - seq
    }

    /// Next sequence number for the `(dest, tag)` stream. Always 0 when
    /// message faults are off (receivers then don't reorder by sequence,
    /// so numbering would be wasted work).
    fn alloc_seq(&self, dest: usize, tag: i64) -> u64 {
        if !self.msg_faults || tag < 0 {
            return 0;
        }
        let mut map = self.send_seq.borrow_mut();
        let ctr = map.entry((dest, tag)).or_insert(0);
        let seq = *ctr;
        *ctr += 1;
        seq
    }

    fn send_tagged<T: Wire>(&self, dest: usize, tag: i64, value: &T) {
        let payload = encode_payload(value);
        self.send_payload(dest, tag, &payload);
    }

    /// [`Rank::send_tagged`] for an already-encoded payload: the zero-copy
    /// building block collective forwarding uses to pass a received buffer
    /// downstream without re-framing it.
    fn send_payload(&self, dest: usize, tag: i64, payload: &Payload) {
        let seq = self.alloc_seq(dest, tag);
        if !self.msg_faults || tag < 0 {
            self.transmit(dest, tag, seq, 0, payload, false, CreditMode::Acquire);
            return;
        }
        // Datagram semantics with integrity repair: drops stay lost (that
        // is what send_reliable is for), but a frame the receiver NACKs as
        // damaged is retransmitted within the retry budget — checksums must
        // never silently turn a delivered message into a lost one.
        let max = self.shared.cfg.faults.max_retries;
        for attempt in 0..=max {
            let credit = if attempt == 0 {
                CreditMode::Acquire
            } else {
                CreditMode::Bypass
            };
            match self.transmit(dest, tag, seq, attempt, payload, false, credit) {
                Delivery::Delivered | Delivery::Dropped | Delivery::Cut => return,
                Delivery::Mangled => {
                    self.nack_backoff(attempt);
                    if attempt < max {
                        self.stats.borrow_mut().faults.retransmits += 1;
                    }
                }
            }
        }
    }

    /// Charge the send cost, consult the fault plan, and (maybe) deposit
    /// the message. `force` overrides drop *and* damage decisions
    /// ([`RetryPolicy::Escalate`]'s last resort).
    ///
    /// Takes the pristine payload by reference: retry loops call this once
    /// per attempt without copying a byte, and a delivered attempt shares
    /// the buffer with the envelope by reference count. Fault-plan damage
    /// is copy-on-write — only a mangled delivery materialises a private
    /// damaged buffer, leaving the shared pristine bytes untouched for the
    /// retransmission that repairs it.
    #[allow(clippy::too_many_arguments)]
    fn transmit(
        &self,
        dest: usize,
        tag: i64,
        seq: u64,
        attempt: u32,
        payload: &Payload,
        force: bool,
        credit: CreditMode,
    ) -> Delivery {
        self.maybe_crash();
        if dest >= self.n {
            // Typed payload, not a bare index panic: the platform layer
            // downcasts this into its own configuration-error type.
            std::panic::panic_any(InvalidRank {
                src: self.id,
                dest,
                world: self.n,
            });
        }
        // Flow control happens before any clock or stats side effect: a
        // send that parks for a credit re-runs later with identical fault
        // decisions and identical virtual-time charges, as if it had never
        // been attempted.
        let reserved = match credit {
            CreditMode::Bypass => false,
            CreditMode::Held => true,
            CreditMode::Acquire => self.acquire_credit(dest, tag),
        };
        let len = payload.len();
        let mut arrival = match self.shared.cfg.timing {
            TimingMode::Virtual(net) => {
                let clock = self.clock.get() + net.send_overhead;
                self.clock.set(clock);
                net.arrival(clock, len)
            }
            TimingMode::Real => 0.0,
        };
        if let Err(e) = self.stats.borrow_mut().on_send(dest, len) {
            std::panic::panic_any(InvalidRank { src: self.id, ..e });
        }
        let plan = &self.shared.cfg.faults;
        let fault_args: [(&'static str, ArgValue); 3] = [
            ("dest", ArgValue::U64(dest as u64)),
            ("tag", ArgValue::U64(tag.max(0) as u64)),
            ("attempt", ArgValue::U64(attempt as u64)),
        ];
        // Partition cuts come before the probabilistic fault roll: a
        // severed link loses the frame with certainty, `force` does not
        // apply (escalation models an out-of-band path around a *lossy*
        // link, not a severed one), and the receiver gets a metadata-only
        // tombstone so it observes the cut at a deterministic point in its
        // own receive stream. Tombstones bypass capacity (see
        // `Mailbox::data_occupancy`), so any reserved credit is returned.
        if self.partitioned && tag >= 0 && plan.cut(self.id, dest, tag, self.clock.get()) {
            self.stats.borrow_mut().faults.partition_cuts += 1;
            self.trace_instant("cut", "fault", &fault_args);
            if reserved {
                self.shared.mailboxes[dest].release_credit();
            }
            self.shared.mailboxes[dest].deliver(
                Envelope {
                    src: self.id,
                    tag,
                    arrival,
                    seq,
                    checksum: 0,
                    cut: true,
                    bytes: Payload::from(Vec::new()),
                },
                false,
            );
            return Delivery::Cut;
        }
        let mut decision = plan.decide(self.id, dest, tag, seq, attempt);
        if force || payload.is_empty() {
            // An escalated attempt models an out-of-band clean path; empty
            // payloads have no bits to damage.
            decision.corrupted = false;
            decision.truncated = false;
        }
        if decision.lost() {
            if !force {
                if decision.dropped {
                    self.stats.borrow_mut().faults.dropped += 1;
                    self.trace_instant("drop", "fault", &fault_args);
                }
                if decision.link_dropped {
                    self.stats.borrow_mut().faults.link_dropped += 1;
                    self.trace_instant("link_drop", "fault", &fault_args);
                }
                if reserved {
                    self.shared.mailboxes[dest].release_credit();
                }
                return Delivery::Dropped;
            }
            self.stats.borrow_mut().faults.escalations += 1;
            self.trace_instant("escalate", "fault", &fault_args);
        }
        if decision.delayed {
            self.stats.borrow_mut().faults.delayed += 1;
            self.trace_instant("delay", "fault", &fault_args);
            arrival += plan.delay_seconds;
        }
        // The checksum covers the *pristine* payload: a frame damaged
        // below keeps the original sum, which is exactly how the receiver
        // catches it.
        let checksum = if self.msg_faults && tag >= 0 {
            frame_checksum(plan.seed, self.id, tag, seq, payload)
        } else {
            0
        };
        // Copy-on-write damage: a clean delivery shares the pristine
        // buffer; only a mangled one pays for a private damaged copy.
        let wire_bytes = if decision.mangled() {
            {
                let mut st = self.stats.borrow_mut();
                st.faults.corrupted += decision.corrupted as u64;
                st.faults.truncated += decision.truncated as u64;
            }
            if decision.corrupted {
                self.trace_instant("corrupt", "fault", &fault_args);
            }
            if decision.truncated {
                self.trace_instant("truncate", "fault", &fault_args);
            }
            let mut damaged = payload.to_vec();
            plan.mangle(self.id, dest, tag, seq, attempt, decision, &mut damaged);
            Payload::from(damaged)
        } else {
            payload.clone()
        };
        if decision.duplicated {
            // The copy is byte- and time-identical to the original, so the
            // receiver's dedup sees exactly one of them whichever is
            // scanned first — determinism is preserved for free. Duplicates
            // bypass capacity like retransmissions do.
            self.stats.borrow_mut().faults.duplicated += 1;
            self.trace_instant("duplicate", "fault", &fault_args);
            self.shared.mailboxes[dest].deliver(
                Envelope {
                    src: self.id,
                    tag,
                    arrival,
                    seq,
                    checksum,
                    cut: false,
                    bytes: wire_bytes.clone(),
                },
                false,
            );
        }
        if decision.reordered {
            self.stats.borrow_mut().faults.reordered += 1;
            self.trace_instant("reorder", "fault", &fault_args);
        }
        let env = Envelope {
            src: self.id,
            tag,
            arrival,
            seq,
            checksum,
            cut: false,
            bytes: wire_bytes,
        };
        if reserved {
            self.shared.mailboxes[dest].deliver_reserved(env, decision.reordered);
        } else {
            self.shared.mailboxes[dest].deliver(env, decision.reordered);
        }
        if decision.mangled() {
            Delivery::Mangled
        } else {
            Delivery::Delivered
        }
    }

    pub(crate) fn complete_recv<T: Wire>(&self, pattern: Pattern) -> T {
        self.complete_recv_with_source(pattern).1
    }

    /// The blocking receive engine: wait for a matching envelope, charge
    /// the receive cost, and hand back the envelope itself — payload still
    /// shared — so collective forwarding can pass the buffer downstream
    /// without a decode/re-encode round trip.
    pub(crate) fn complete_recv_env(&self, pattern: Pattern) -> Envelope {
        self.maybe_crash();
        // Under message faults, user-tag receives go through the ordered
        // path: lowest sequence number first, duplicates discarded.
        let ordered = self.msg_faults && pattern.tag >= 0;
        self.shared.set_blocked(
            self.id,
            Some(BlockedOp {
                what: "recv",
                src: pattern.src,
                tag: Some(pattern.tag),
                vtime: self.clock.get(),
            }),
        );
        let deadline = Instant::now() + self.shared.cfg.watchdog;
        let env = loop {
            self.check_poison();
            let slice =
                Duration::from_millis(50).min(deadline.saturating_duration_since(Instant::now()));
            // Plain blocking receives never consume partition tombstones:
            // a program that does not understand partitions should wedge
            // (and get a watchdog report naming the suspected peer) rather
            // than decode a payload-less frame. Partition-aware code uses
            // `try_recv`, which accepts tombstones and converts them into
            // a detection timeout.
            if let Some(env) =
                self.shared.mailboxes[self.id].recv_where(pattern, slice, ordered, false)
            {
                break env;
            }
            if Instant::now() >= deadline {
                panic!(
                    "rank {}: receive matching {:?} timed out after {:?} (likely deadlock); \
                     world state:\n{}",
                    self.id,
                    pattern,
                    self.shared.cfg.watchdog,
                    self.shared.deadlock_report()
                );
            }
        };
        self.shared.set_blocked(self.id, None);
        if let TimingMode::Virtual(net) = self.shared.cfg.timing {
            let clock = self.clock.get().max(env.arrival) + net.recv_overhead;
            self.clock.set(clock);
        }
        self.stats.borrow_mut().on_recv(env.bytes.len());
        env
    }

    pub(crate) fn complete_recv_with_source<T: Wire>(&self, pattern: Pattern) -> (usize, T) {
        let env = self.complete_recv_env(pattern);
        let value = T::from_bytes(&env.bytes).unwrap_or_else(|e| {
            panic!(
                "rank {}: message from rank {} tag {} failed to decode as {}: {e}",
                self.id,
                env.src,
                env.tag,
                std::any::type_name::<T>()
            )
        });
        (env.src, value)
    }

    pub(crate) fn probe_pattern(&self, pattern: Pattern) -> bool {
        self.shared.mailboxes[self.id].probe(pattern)
    }

    fn check_poison(&self) {
        if self.shared.poisoned.load(Ordering::Relaxed) {
            panic!("rank {}: aborting because another rank panicked", self.id);
        }
    }

    /// Cumulative count of envelopes ever delivered into this rank's
    /// mailbox. Monotonic and — sampled at an iteration boundary, after
    /// the closing barrier — deterministic: every send of the iteration
    /// happens-before its sender's barrier entry. (The *instantaneous*
    /// queue depth is host-schedule-dependent; this counter is the
    /// reproducible mailbox-traffic signal the metrics timeline uses.)
    pub fn mailbox_delivered(&self) -> u64 {
        self.shared.mailboxes[self.id].delivered()
    }
}

impl std::fmt::Debug for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rank")
            .field("id", &self.id)
            .field("n", &self.n)
            .field("clock", &self.clock.get())
            .finish()
    }
}

impl Drop for Rank {
    /// Flush the trace buffer into the world's collector. Runs on normal
    /// completion and while unwinding from an injected crash alike — the
    /// rank is constructed inside its thread's closure, outside the
    /// `catch_unwind` that absorbs the crash — so a dead rank's partial
    /// trace is preserved up to the crash instant.
    fn drop(&mut self) {
        if let (Some(buf), Some(collector)) = (&self.trace, &self.shared.cfg.trace) {
            collector.flush(self.id, std::mem::take(&mut *buf.borrow_mut()));
        }
    }
}
