//! The per-rank communication endpoint.

use crate::mailbox::{Envelope, Pattern};
use crate::net::TimingMode;
use crate::request::{RecvRequest, SendRequest};
use crate::stats::CommStats;
use crate::wire::Wire;
use crate::world::Shared;
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// User-visible message tag. Internally tags are widened to `i64`;
/// collectives use the negative range so they can never collide with
/// user traffic.
pub type Tag = u32;

/// Wildcard source for [`Rank::recv_any`] (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Option<usize> = None;

/// One rank's endpoint into the simulated world — the analogue of an
/// `MPI_Comm` plus the rank's identity.
///
/// A `Rank` is handed to the SPMD closure by [`crate::World::run`]. It is
/// deliberately `!Sync`: a rank belongs to exactly one thread, like an MPI
/// process.
pub struct Rank {
    id: usize,
    n: usize,
    shared: Arc<Shared>,
    clock: Cell<f64>,
    coll_seq: Cell<i64>,
    stats: RefCell<CommStats>,
    epoch: Instant,
}

impl Rank {
    pub(crate) fn new(id: usize, n: usize, shared: Arc<Shared>, epoch: Instant) -> Self {
        Rank {
            id,
            n,
            shared,
            clock: Cell::new(0.0),
            coll_seq: Cell::new(0),
            stats: RefCell::new(CommStats::new(n)),
            epoch,
        }
    }

    /// This rank's id in `0..size()` (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.id
    }

    /// Number of ranks in the world (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.n
    }

    /// Current time in seconds (`MPI_Wtime`): the virtual clock in
    /// [`TimingMode::Virtual`], wall-clock since world start otherwise.
    pub fn wtime(&self) -> f64 {
        match self.shared.cfg.timing {
            TimingMode::Virtual(_) => self.clock.get(),
            TimingMode::Real => self.epoch.elapsed().as_secs_f64(),
        }
    }

    /// Charge `seconds` of compute to this rank.
    ///
    /// In virtual mode this advances the clock; in real mode it busy-spins
    /// (the thesis injects grain sizes with a dummy `for` loop — this is
    /// that loop).
    pub fn advance(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "cannot advance time backwards");
        match self.shared.cfg.timing {
            TimingMode::Virtual(_) => self.clock.set(self.clock.get() + seconds),
            TimingMode::Real => {
                let until = Instant::now() + Duration::from_secs_f64(seconds);
                while Instant::now() < until {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Snapshot of this rank's communication counters.
    pub fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    // ---- point to point -------------------------------------------------

    /// Buffered send (`MPI_Send`/`MPI_Isend` with buffering): copies the
    /// encoded payload into `dest`'s mailbox and returns immediately.
    pub fn send<T: Wire>(&self, dest: usize, tag: Tag, value: &T) {
        self.send_tagged(dest, tag as i64, value);
    }

    /// Nonblocking send (`MPI_Isend`). Semantically identical to
    /// [`send`](Self::send) here, returning a request for MPI-shaped code.
    pub fn isend<T: Wire>(&self, dest: usize, tag: Tag, value: &T) -> SendRequest {
        self.send_tagged(dest, tag as i64, value);
        SendRequest { _private: () }
    }

    /// Blocking receive from a specific source (`MPI_Recv`).
    pub fn recv<T: Wire>(&self, src: usize, tag: Tag) -> T {
        self.complete_recv(Pattern {
            src: Some(src),
            tag: tag as i64,
        })
    }

    /// Blocking receive from any source; returns `(source, value)`.
    pub fn recv_any<T: Wire>(&self, tag: Tag) -> (usize, T) {
        self.complete_recv_with_source(Pattern {
            src: None,
            tag: tag as i64,
        })
    }

    /// Post a nonblocking receive (`MPI_Irecv`); complete it with
    /// [`RecvRequest::wait`].
    pub fn irecv<T: Wire>(&self, src: usize, tag: Tag) -> RecvRequest<T> {
        RecvRequest {
            pattern: Pattern {
                src: Some(src),
                tag: tag as i64,
            },
            _marker: PhantomData,
        }
    }

    /// Nonblocking probe: is a message matching `(src, tag)` available?
    pub fn probe(&self, src: Option<usize>, tag: Tag) -> bool {
        self.probe_pattern(Pattern {
            src,
            tag: tag as i64,
        })
    }

    // ---- collectives ----------------------------------------------------
    //
    // Every rank must call each collective in the same order (the standard
    // MPI requirement); an internal per-rank sequence number keyed to the
    // negative tag space keeps successive collectives from interfering.

    /// Barrier (`MPI_Barrier`): blocks until all ranks arrive; in virtual
    /// mode every clock is synchronised to the maximum plus the model's
    /// barrier cost.
    pub fn barrier(&self) {
        self.stats.borrow_mut().barriers += 1;
        let synced = self.shared.barrier.wait(self.n, self.clock.get(), || {
            self.check_poison();
        });
        if let TimingMode::Virtual(net) = self.shared.cfg.timing {
            self.clock.set(synced + net.barrier_cost);
        }
    }

    /// Broadcast `value` from `root` to every rank (`MPI_Bcast`),
    /// binomial-tree structured as in real MPI implementations: latency
    /// grows with `log2(p)` rather than `p`.
    pub fn bcast<T: Wire>(&self, root: usize, value: &mut T) {
        let tag = self.next_coll_tag();
        // Work in a rotated space where the root is rank 0.
        let vrank = (self.id + self.n - root) % self.n;
        if vrank != 0 {
            // Receive from the parent: clear the lowest set bit.
            let vparent = vrank & (vrank - 1);
            let parent = (vparent + root) % self.n;
            *value = self.complete_recv(Pattern {
                src: Some(parent),
                tag,
            });
        }
        // Forward to children: set each zero bit below the lowest set bit
        // (for the root, all bits).
        let lowest = if vrank == 0 {
            self.n.next_power_of_two()
        } else {
            vrank & vrank.wrapping_neg()
        };
        let mut bit = lowest >> 1;
        while bit > 0 {
            let vchild = vrank | bit;
            if vchild < self.n && vchild != vrank {
                let child = (vchild + root) % self.n;
                self.send_tagged(child, tag, value);
            }
            bit >>= 1;
        }
    }

    /// Gather one value from every rank at `root` (`MPI_Gather`),
    /// binomial-tree structured (mirror of [`bcast`](Self::bcast)): each
    /// subtree aggregates before forwarding to its parent.
    ///
    /// Returns `Some(values)` in rank order at the root, `None` elsewhere.
    pub fn gather<T: Wire + Clone>(&self, root: usize, value: &T) -> Option<Vec<T>> {
        let tag = self.next_coll_tag();
        let vrank = (self.id + self.n - root) % self.n;
        let lowest = if vrank == 0 {
            self.n.next_power_of_two()
        } else {
            vrank & vrank.wrapping_neg()
        };
        let mut collected: Vec<(u64, T)> = vec![(self.id as u64, value.clone())];
        // Aggregate each child's subtree (children = vrank | bit, for the
        // power-of-two bits below this node's lowest set bit).
        let mut bit = 1usize;
        while bit < lowest {
            let vchild = vrank | bit;
            if vchild < self.n {
                let child = (vchild + root) % self.n;
                let sub: Vec<(u64, T)> = self.complete_recv(Pattern {
                    src: Some(child),
                    tag,
                });
                collected.extend(sub);
            }
            bit <<= 1;
        }
        if vrank != 0 {
            let vparent = vrank & (vrank - 1);
            let parent = (vparent + root) % self.n;
            self.send_tagged(parent, tag, &collected);
            None
        } else {
            debug_assert_eq!(collected.len(), self.n, "gather must cover every rank");
            collected.sort_unstable_by_key(|(r, _)| *r);
            Some(collected.into_iter().map(|(_, v)| v).collect())
        }
    }

    /// Reduce with `op` at every rank (`MPI_Allreduce`): gather at rank 0,
    /// fold, broadcast the result.
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Wire + Clone,
        F: Fn(T, T) -> T,
    {
        let gathered = self.gather(0, &value);
        let mut result = match gathered {
            Some(all) => {
                let mut it = all.into_iter();
                let first = it.next().expect("world has at least one rank");
                it.fold(first, &op)
            }
            None => value,
        };
        self.bcast(0, &mut result);
        result
    }

    /// Gather one value from every rank *at* every rank
    /// (`MPI_Allgather`): gather at rank 0, then broadcast the vector.
    pub fn allgather<T: Wire + Clone>(&self, value: &T) -> Vec<T> {
        let mut all = self.gather(0, value).unwrap_or_default();
        self.bcast(0, &mut all);
        all
    }

    /// Inclusive prefix reduction (`MPI_Scan`): rank `i` receives
    /// `op(v_0, …, v_i)`.
    pub fn scan<T, F>(&self, value: T, op: F) -> T
    where
        T: Wire + Clone,
        F: Fn(T, T) -> T,
    {
        let all = self.allgather(&value);
        let mut it = all.into_iter().take(self.id + 1);
        let first = it.next().expect("own contribution present");
        it.fold(first, &op)
    }

    /// Combined send + receive (`MPI_Sendrecv`): ship `value` to `dest`
    /// and collect a message from `src` with the same tag, without the
    /// deadlock risk of mis-ordered blocking calls.
    pub fn sendrecv<T: Wire>(&self, dest: usize, src: usize, tag: Tag, value: &T) -> T {
        self.send(dest, tag, value);
        self.recv(src, tag)
    }

    // ---- internals -------------------------------------------------------

    fn next_coll_tag(&self) -> i64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        -1 - seq
    }

    fn send_tagged<T: Wire>(&self, dest: usize, tag: i64, value: &T) {
        assert!(
            dest < self.n,
            "rank {}: send to invalid destination {dest} (world size {})",
            self.id,
            self.n
        );
        let bytes = value.to_bytes();
        let arrival = match self.shared.cfg.timing {
            TimingMode::Virtual(net) => {
                let clock = self.clock.get() + net.send_overhead;
                self.clock.set(clock);
                net.arrival(clock, bytes.len())
            }
            TimingMode::Real => 0.0,
        };
        self.stats.borrow_mut().on_send(dest, bytes.len());
        self.shared.mailboxes[dest].deliver(Envelope {
            src: self.id,
            tag,
            arrival,
            bytes,
        });
    }

    pub(crate) fn complete_recv<T: Wire>(&self, pattern: Pattern) -> T {
        self.complete_recv_with_source(pattern).1
    }

    pub(crate) fn complete_recv_with_source<T: Wire>(&self, pattern: Pattern) -> (usize, T) {
        let deadline = Instant::now() + self.shared.cfg.watchdog;
        let env = loop {
            self.check_poison();
            let slice = Duration::from_millis(50)
                .min(deadline.saturating_duration_since(Instant::now()));
            if let Some(env) = self.shared.mailboxes[self.id].recv(pattern, slice) {
                break env;
            }
            if Instant::now() >= deadline {
                panic!(
                    "rank {}: receive matching {:?} timed out after {:?} (likely deadlock); \
                     mailbox holds {:?}",
                    self.id,
                    pattern,
                    self.shared.cfg.watchdog,
                    self.shared.mailboxes[self.id].pending()
                );
            }
        };
        if let TimingMode::Virtual(net) = self.shared.cfg.timing {
            let clock = self.clock.get().max(env.arrival) + net.recv_overhead;
            self.clock.set(clock);
        }
        self.stats.borrow_mut().on_recv(env.bytes.len());
        let value = T::from_bytes(&env.bytes).unwrap_or_else(|e| {
            panic!(
                "rank {}: message from rank {} tag {} failed to decode as {}: {e}",
                self.id,
                env.src,
                env.tag,
                std::any::type_name::<T>()
            )
        });
        (env.src, value)
    }

    pub(crate) fn probe_pattern(&self, pattern: Pattern) -> bool {
        self.shared.mailboxes[self.id].probe(pattern)
    }

    fn check_poison(&self) {
        if self.shared.poisoned.load(Ordering::Relaxed) {
            panic!(
                "rank {}: aborting because another rank panicked",
                self.id
            );
        }
    }
}

impl std::fmt::Debug for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rank")
            .field("id", &self.id)
            .field("n", &self.n)
            .field("clock", &self.clock.get())
            .finish()
    }
}
