//! Structured event tracing keyed to the virtual clock.
//!
//! Every [`crate::Rank`] owns a private, lock-free event buffer; recording
//! an event is a branch plus a `Vec::push` and never touches the virtual
//! clock, so enabling tracing cannot perturb simulated time or results.
//! When a rank is dropped — at normal completion *or* while unwinding from
//! an injected crash — its buffer is flushed into the shared
//! [`TraceCollector`], which the platform layer harvests after the world
//! joins. The only lock is taken once per rank lifetime, at flush.
//!
//! Two sinks render the collected events without any registry
//! dependencies: [`chrome_trace_json`] emits the Chrome/Perfetto Trace
//! Event Format (one track per rank, timestamps in virtual-time
//! microseconds) and [`timeline_json`] emits a compact per-iteration
//! metrics timeline assembled from the `iteration` spans.

use std::fmt::Write as _;
use std::sync::Mutex;

/// Name of the per-iteration span the platform layer emits; the timeline
/// sink groups on it.
pub const ITERATION_SPAN: &str = "iteration";

/// A single argument value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned counter (iteration number, byte count, peer rank …).
    U64(u64),
    /// A duration or load in virtual seconds.
    F64(f64),
    /// A short static label.
    Str(&'static str),
}

/// Named arguments attached to an event at the call site.
pub type Args = [(&'static str, ArgValue)];

/// One structured trace event, timestamped on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A phase span covering `[start, end]` virtual seconds.
    Span {
        /// Event name (phase label, `iteration`, …).
        name: &'static str,
        /// Category: `phase`, `iter`, `comm`, …
        cat: &'static str,
        /// Span start, virtual seconds.
        start: f64,
        /// Span end, virtual seconds.
        end: f64,
        /// Named arguments.
        args: Vec<(&'static str, ArgValue)>,
    },
    /// An instantaneous event at `at` virtual seconds.
    Instant {
        /// Event name (`crash`, `migration`, `rollback`, …).
        name: &'static str,
        /// Category: `fault`, `integrity`, `flow`, `balance`, …
        cat: &'static str,
        /// Timestamp, virtual seconds.
        at: f64,
        /// Named arguments.
        args: Vec<(&'static str, ArgValue)>,
    },
}

/// The events one rank recorded over its lifetime.
pub type RankTrace = (usize, Vec<TraceEvent>);

/// Shared sink the per-rank buffers flush into.
///
/// Ranks never contend during a run: each takes the lock exactly once, in
/// its `Drop`, so a rank that dies mid-run still lands its partial trace.
#[derive(Debug, Default)]
pub struct TraceCollector {
    slots: Mutex<Vec<RankTrace>>,
}

impl TraceCollector {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn flush(&self, rank: usize, events: Vec<TraceEvent>) {
        if let Ok(mut slots) = self.slots.lock() {
            slots.push((rank, events));
        }
    }

    /// Drain the collected traces, sorted by rank id.
    ///
    /// Flush *order* depends on host thread scheduling, so the collector
    /// canonicalises by sorting; the events inside each rank's trace are in
    /// that rank's deterministic program order.
    pub fn take(&self) -> Vec<RankTrace> {
        let mut slots = std::mem::take(&mut *self.slots.lock().expect("trace collector poisoned"));
        slots.sort_by_key(|&(rank, _)| rank);
        slots
    }
}

fn fmt_us(out: &mut String, seconds: f64) {
    // Virtual seconds → microseconds. Rust's shortest-roundtrip `Display`
    // for f64 makes this byte-stable across runs and platforms.
    let _ = write!(out, "{}", seconds * 1e6);
}

fn fmt_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push_str(",\"args\":{");
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{key}\":");
        match value {
            ArgValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::F64(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::Str(v) => {
                let _ = write!(out, "\"{v}\"");
            }
        }
    }
    out.push('}');
}

/// Render traces in the Chrome/Perfetto Trace Event Format.
///
/// One metadata-named track (`tid`) per rank under a single process; spans
/// become complete events (`"ph":"X"`), instants become thread-scoped
/// instant events (`"ph":"i"`). Timestamps are **virtual-time
/// microseconds**, so a Perfetto "second" of wall time on screen is a
/// simulated microsecond. Load the output via Perfetto's "Open trace file"
/// or `chrome://tracing`.
pub fn chrome_trace_json(traces: &[RankTrace]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let emit_sep = |out: &mut String, first: &mut bool| {
        if *first {
            *first = false;
        } else {
            out.push_str(",\n");
        }
    };
    for &(rank, _) in traces {
        emit_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{rank},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"rank {rank}\"}}}}"
        );
    }
    for (rank, events) in traces {
        for event in events {
            emit_sep(&mut out, &mut first);
            match event {
                TraceEvent::Span {
                    name,
                    cat,
                    start,
                    end,
                    args,
                } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{rank},\"name\":\"{name}\",\
                         \"cat\":\"{cat}\",\"ts\":"
                    );
                    fmt_us(&mut out, *start);
                    out.push_str(",\"dur\":");
                    fmt_us(&mut out, (end - start).max(0.0));
                    fmt_args(&mut out, args);
                    out.push('}');
                }
                TraceEvent::Instant {
                    name,
                    cat,
                    at,
                    args,
                } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{rank},\
                         \"name\":\"{name}\",\"cat\":\"{cat}\",\"ts\":"
                    );
                    fmt_us(&mut out, *at);
                    fmt_args(&mut out, args);
                    out.push('}');
                }
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Render the compact per-iteration metrics timeline.
///
/// Assembled from the `iteration` spans each rank records at its iteration
/// boundaries: per-rank phase seconds for the window, the cumulative count
/// of envelopes delivered into the rank's mailbox, and the fault events
/// observed so far; plus a cross-rank compute imbalance ratio
/// (`max/mean`) per iteration. All fields are derived from the virtual
/// clock or deterministic counters, so same-seed timelines are
/// byte-identical.
pub fn timeline_json(traces: &[RankTrace]) -> String {
    // iteration -> Vec<(rank, args, start, end)>, in rank order because
    // `traces` is sorted.
    type IterRow<'a> = (usize, &'a Vec<(&'static str, ArgValue)>, f64, f64);
    let mut iters: Vec<u64> = Vec::new();
    let mut rows: Vec<Vec<IterRow<'_>>> = Vec::new();
    for (rank, events) in traces {
        for event in events {
            let TraceEvent::Span {
                name,
                start,
                end,
                args,
                ..
            } = event
            else {
                continue;
            };
            if *name != ITERATION_SPAN {
                continue;
            }
            let Some(iter) = arg_u64(args, "iter") else {
                continue;
            };
            let at = match iters.binary_search(&iter) {
                Ok(at) => at,
                Err(at) => {
                    iters.insert(at, iter);
                    rows.insert(at, Vec::new());
                    at
                }
            };
            rows[at].push((*rank, args, *start, *end));
        }
    }

    let mut out = String::with_capacity(4096);
    out.push_str("{\"iterations\":[\n");
    for (i, (iter, row)) in iters.iter().zip(&rows).enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let computes: Vec<f64> = row
            .iter()
            .filter_map(|(_, args, _, _)| arg_f64(args, "compute"))
            .collect();
        let imbalance = imbalance_ratio(&computes);
        let _ = write!(
            out,
            "{{\"iter\":{iter},\"imbalance\":{imbalance},\"ranks\":["
        );
        for (j, (rank, args, start, end)) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"rank\":{rank},\"start\":{start},\"end\":{end}");
            for (key, value) in args.iter() {
                if *key == "iter" {
                    continue;
                }
                match value {
                    ArgValue::U64(v) => {
                        let _ = write!(out, ",\"{key}\":{v}");
                    }
                    ArgValue::F64(v) => {
                        let _ = write!(out, ",\"{key}\":{v}");
                    }
                    ArgValue::Str(v) => {
                        let _ = write!(out, ",\"{key}\":\"{v}\"");
                    }
                }
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("\n]}\n");
    out
}

fn arg_u64(args: &[(&'static str, ArgValue)], key: &str) -> Option<u64> {
    args.iter().find_map(|(k, v)| match v {
        ArgValue::U64(v) if *k == key => Some(*v),
        _ => None,
    })
}

fn arg_f64(args: &[(&'static str, ArgValue)], key: &str) -> Option<f64> {
    args.iter().find_map(|(k, v)| match v {
        ArgValue::F64(v) if *k == key => Some(*v),
        _ => None,
    })
}

/// `max/mean` of the per-rank compute seconds for one iteration; `1` when
/// every rank was idle.
fn imbalance_ratio(computes: &[f64]) -> f64 {
    if computes.is_empty() {
        return 1.0;
    }
    let max = computes.iter().cloned().fold(0.0_f64, f64::max);
    let mean = computes.iter().sum::<f64>() / computes.len() as f64;
    if mean > 0.0 {
        max / mean
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<RankTrace> {
        vec![
            (
                0,
                vec![
                    TraceEvent::Span {
                        name: "Compute",
                        cat: "phase",
                        start: 0.0,
                        end: 0.5,
                        args: vec![],
                    },
                    TraceEvent::Span {
                        name: ITERATION_SPAN,
                        cat: "iter",
                        start: 0.0,
                        end: 1.0,
                        args: vec![
                            ("iter", ArgValue::U64(0)),
                            ("compute", ArgValue::F64(0.5)),
                            ("delivered", ArgValue::U64(3)),
                        ],
                    },
                    TraceEvent::Instant {
                        name: "crash",
                        cat: "fault",
                        at: 0.75,
                        args: vec![("peer", ArgValue::U64(1))],
                    },
                ],
            ),
            (
                1,
                vec![TraceEvent::Span {
                    name: ITERATION_SPAN,
                    cat: "iter",
                    start: 0.0,
                    end: 1.0,
                    args: vec![
                        ("iter", ArgValue::U64(0)),
                        ("compute", ArgValue::F64(1.5)),
                        ("delivered", ArgValue::U64(1)),
                    ],
                }],
            ),
        ]
    }

    #[test]
    fn collector_sorts_by_rank() {
        let collector = TraceCollector::new();
        collector.flush(2, vec![]);
        collector.flush(0, vec![]);
        collector.flush(1, vec![]);
        let taken = collector.take();
        let ranks: Vec<usize> = taken.iter().map(|&(r, _)| r).collect();
        assert_eq!(ranks, vec![0, 1, 2]);
        assert!(collector.take().is_empty(), "take drains");
    }

    #[test]
    fn chrome_sink_emits_tracks_spans_and_instants() {
        let json = chrome_trace_json(&sample());
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"args\":{\"name\":\"rank 0\"}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        // 0.5 virtual seconds → 500000 µs.
        assert!(json.contains("\"dur\":500000"));
        assert!(json.contains("\"peer\":1"));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn timeline_groups_by_iteration_and_computes_imbalance() {
        let json = timeline_json(&sample());
        assert!(json.contains("\"iter\":0"));
        // max 1.5 / mean 1.0
        assert!(json.contains("\"imbalance\":1.5"));
        assert!(json.contains("\"delivered\":3"));
        assert!(json.contains("\"rank\":1"));
    }

    #[test]
    fn sinks_are_deterministic_functions_of_the_trace() {
        let a = sample();
        let b = sample();
        assert_eq!(chrome_trace_json(&a), chrome_trace_json(&b));
        assert_eq!(timeline_json(&a), timeline_json(&b));
    }
}
